"""Run-level observability: counters, phase timers, event traces.

The simulator's engine ladder is fast enough that the next
regressions will be *silent* — a demoted trace, a cold fusion-plan
cache or a probe-shape miss shows up only as a fuzzy wall-clock
delta.  This package is the introspection substrate that makes such
regressions attributable after the fact:

``repro.obs.metrics``
    A process-wide :class:`~repro.obs.metrics.MetricsRegistry` of
    cheap always-on counters with snapshot/diff semantics, plus
    :class:`~repro.obs.metrics.PhaseTimers` — monotonic wall-clock
    accumulators the engines charge per pipeline phase (decode,
    CFG/fusion, trace formation, probe compilation, execution).

``repro.obs.events``
    An opt-in buffered JSONL span/event emitter
    (:class:`~repro.obs.events.EventLog`), enabled per run through
    ``MachineConfig(obs_events=...)``.  Off by default; when on it
    records run manifests, trace-formation events, limit demotions,
    per-trace dispatch profiles and side-exit heatmap counts at under
    2% timed overhead (gated in CI).

``repro.obs.manifest``
    The run manifest — knobs, engine, cache geometry, git sha, host —
    attached to every :class:`~repro.machine.cpu.RunResult` and every
    sharded-harness cell, so any recorded number can be traced back
    to the exact configuration that produced it.

``repro.obs.schema``
    The frozen ``RunResult.engine_stats`` key schema for every
    execution tier, with a validator the schema test drives.

``repro.obs.report``
    ``python -m repro.obs.report`` — renders top-N hot traces,
    side-exit heatmaps and phase-time breakdowns from an obs JSONL,
    and A/B diffs of two runs or two ``BENCH_engine.json`` records.
"""

from repro.obs.events import EventLog, read_events
from repro.obs.manifest import run_manifest
from repro.obs.metrics import REGISTRY, MetricsRegistry, PhaseTimers
from repro.obs.schema import ENGINE_STATS_KEYS, validate_engine_stats

__all__ = [
    "EventLog",
    "read_events",
    "run_manifest",
    "REGISTRY",
    "MetricsRegistry",
    "PhaseTimers",
    "ENGINE_STATS_KEYS",
    "validate_engine_stats",
]
