"""E2 — Figure 5: runtime overhead breakdown per encoding.

Regenerates the stacked-bar data: per benchmark and encoding, the
overhead split into (1) setbound instructions, (2) µops for
loading/storing bounds, (3) stalls on pointer metadata, (4) cache
pollution; plus the total.  Paper shape: averages of roughly 9%
(extern-4), 7% (intern-4) and 5% (intern-11), intern-11 max ~15%.
"""

from conftest import write_result

from repro.harness.figures import figure5_breakdown, figure5_table, \
    format_table
from repro.harness.runner import ENCODINGS


def test_figure5(matrix, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: figure5_table(matrix), rounds=1, iterations=1)
    table = format_table(headers, rows,
                         "Figure 5: runtime overhead breakdown")
    print("\n" + table)
    write_result("figure5.txt", table)

    averages = {}
    for enc in ENCODINGS:
        total = sum(figure5_breakdown(matrix[name], enc)["total"]
                    for name in matrix)
        averages[enc] = total / len(matrix)
    # shape assertions from the paper
    assert averages["extern4"] >= averages["intern4"] - 1e-9
    assert averages["intern4"] >= averages["intern11"] - 1e-9
    assert 0.0 < averages["intern11"] < 0.20, averages
    assert averages["extern4"] < 0.35, averages
    # intern-11 trims the worst case (paper: max 15%)
    worst11 = max(figure5_breakdown(matrix[n], "intern11")["total"]
                  for n in matrix)
    worst4 = max(figure5_breakdown(matrix[n], "extern4")["total"]
                 for n in matrix)
    assert worst11 <= worst4 + 1e-9


def test_figure5_breakdown_accounts_for_total(matrix):
    """Segments should approximately compose the total overhead."""
    for name, bench in matrix.items():
        for enc in ENCODINGS:
            seg = figure5_breakdown(bench, enc)
            reconstructed = (seg["setbound"] + seg["meta_uops"]
                             + seg["meta_stall"] + seg["pollution"])
            assert abs(reconstructed - seg["total"]) < 0.10, \
                (name, enc, seg)
