"""Recursive-descent parser for MiniC.

Grammar sketch (C subset)::

    unit       := (struct_decl | func_decl | var_decl)*
    struct     := 'struct' ID '{' (type declarator ';')* '}' ';'
    func       := type declarator '(' params ')' (block | ';')
    statement  := block | if | while | for | return | break | continue
                | decl ';' | expr ';' | ';'
    expr       := assignment (with the usual C precedence ladder)

Struct types are registered here (the parser owns the struct table so
that declarators can resolve ``struct node *``); field layout checking
happens in :mod:`repro.minic.sema`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.minic import ast
from repro.minic.errors import ParseError
from repro.minic.lexer import Token, tokenize
from repro.minic.types import (
    ArrayType,
    CHAR,
    INT,
    PointerType,
    StructType,
    Type,
    VOID,
)

#: binary operators by precedence level, lowest first
_BINOPS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=",
                         "&=", "|=", "^=", "<<=", ">>="})


class Parser:
    """One-shot parser; use :func:`parse`."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.structs: Dict[str, StructType] = {}

    # -- token plumbing -----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.at(kind, text):
            want = text or kind
            raise ParseError("expected %r, found %r" % (want, tok.text),
                             tok.line)
        return self.next()

    # -- types ---------------------------------------------------------------

    def at_type_start(self) -> bool:
        tok = self.peek()
        return tok.kind == "kw" and tok.text in ("int", "char", "void",
                                                 "struct", "static")

    def parse_base_type(self) -> Type:
        self.accept("kw", "static")  # accepted and ignored
        tok = self.expect("kw")
        if tok.text == "int":
            return INT
        if tok.text == "char":
            return CHAR
        if tok.text == "void":
            return VOID
        if tok.text == "struct":
            name = self.expect("id").text
            if name not in self.structs:
                self.structs[name] = StructType(name)
            return self.structs[name]
        raise ParseError("expected a type, found %r" % tok.text, tok.line)

    def parse_declarator(self, base: Type) -> Tuple[Type, str, int]:
        """Parse ``*... name [N]...``; returns (type, name, line)."""
        ty = base
        while self.accept("op", "*"):
            ty = PointerType(ty)
        tok = self.expect("id")
        dims: List[int] = []
        while self.accept("op", "["):
            num = self.expect("num")
            dims.append(num.value)
            self.expect("op", "]")
        for dim in reversed(dims):
            ty = ArrayType(ty, dim)
        return ty, tok.text, tok.line

    def parse_abstract_type(self) -> Type:
        """Type for casts/sizeof: base + stars (no abstract arrays)."""
        ty = self.parse_base_type()
        while self.accept("op", "*"):
            ty = PointerType(ty)
        return ty

    def at_cast(self) -> bool:
        """Lookahead: '(' followed by a type keyword is a cast."""
        if not self.at("op", "("):
            return False
        tok = self.peek(1)
        return tok.kind == "kw" and tok.text in ("int", "char", "void",
                                                 "struct")

    # -- top level ----------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        decls: List[ast.Decl] = []
        while not self.at("eof"):
            decls.extend(self.parse_top_decl())
        return ast.TranslationUnit(decls, self.structs)

    def parse_top_decl(self) -> List[ast.Decl]:
        line = self.peek().line
        if self.at("kw", "typedef"):
            raise ParseError("typedef is not supported in MiniC", line)
        # struct definition?
        if self.at("kw", "struct") and self.peek(1).kind == "id" \
                and self.peek(2).kind == "op" and self.peek(2).text == "{":
            return [self.parse_struct_def()]
        base = self.parse_base_type()
        if self.accept("op", ";"):
            return []  # bare 'struct foo;' forward declaration
        ty, name, dline = self.parse_declarator(base)
        if self.at("op", "("):
            return [self.parse_func_rest(ty, name, dline)]
        # global variable(s)
        decls: List[ast.Decl] = []
        while True:
            init = None
            if self.accept("op", "="):
                init = self.parse_assignment()
            decls.append(ast.VarDecl(ty, name, init, dline))
            if not self.accept("op", ","):
                break
            ty, name, dline = self.parse_declarator(base)
        self.expect("op", ";")
        return decls

    def parse_struct_def(self) -> ast.StructDecl:
        line = self.expect("kw", "struct").line
        name = self.expect("id").text
        if name not in self.structs:
            self.structs[name] = StructType(name)
        self.expect("op", "{")
        members: List[Tuple[Type, str]] = []
        while not self.accept("op", "}"):
            base = self.parse_base_type()
            while True:
                ty, fname, _ = self.parse_declarator(base)
                members.append((ty, fname))
                if not self.accept("op", ","):
                    break
            self.expect("op", ";")
        self.expect("op", ";")
        decl = ast.StructDecl(name, members, line)
        return decl

    def parse_func_rest(self, ret_type: Type, name: str,
                        line: int) -> ast.FuncDecl:
        self.expect("op", "(")
        params: List[Tuple[Type, str]] = []
        if not self.at("op", ")"):
            if self.at("kw", "void") and self.peek(1).text == ")":
                self.next()
            else:
                while True:
                    base = self.parse_base_type()
                    pty, pname, _ = self.parse_declarator(base)
                    if pty.is_array():
                        pty = pty.decayed()  # arrays decay in params
                    params.append((pty, pname))
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        if self.accept("op", ";"):
            return ast.FuncDecl(ret_type, name, params, None, line)
        body = self.parse_block()
        return ast.FuncDecl(ret_type, name, params, body, line)

    # -- statements ----------------------------------------------------------

    def parse_block(self) -> ast.Block:
        line = self.expect("op", "{").line
        stmts: List[ast.Stmt] = []
        while not self.accept("op", "}"):
            stmts.extend(self.parse_statement())
        return ast.Block(stmts, line)

    def parse_statement(self) -> List[ast.Stmt]:
        tok = self.peek()
        if self.at("op", "{"):
            return [self.parse_block()]
        if self.at("kw", "if"):
            return [self.parse_if()]
        if self.at("kw", "while"):
            return [self.parse_while()]
        if self.at("kw", "for"):
            return [self.parse_for()]
        if self.at("kw", "return"):
            self.next()
            value = None if self.at("op", ";") else self.parse_expr()
            self.expect("op", ";")
            return [ast.Return(value, tok.line)]
        if self.at("kw", "break"):
            self.next()
            self.expect("op", ";")
            return [ast.Break(tok.line)]
        if self.at("kw", "continue"):
            self.next()
            self.expect("op", ";")
            return [ast.Continue(tok.line)]
        if self.at_type_start():
            stmts = self.parse_local_decl()
            self.expect("op", ";")
            return stmts
        if self.accept("op", ";"):
            return []
        expr = self.parse_expr()
        self.expect("op", ";")
        return [ast.ExprStmt(expr, tok.line)]

    def parse_local_decl(self) -> List[ast.Stmt]:
        base = self.parse_base_type()
        stmts: List[ast.Stmt] = []
        while True:
            ty, name, line = self.parse_declarator(base)
            init = None
            if self.accept("op", "="):
                init = self.parse_assignment()
            stmts.append(ast.DeclStmt(ast.VarDecl(ty, name, init, line),
                                      line))
            if not self.accept("op", ","):
                break
        return stmts

    def parse_if(self) -> ast.If:
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = _single(self.parse_statement(), line)
        els = None
        if self.accept("kw", "else"):
            els = _single(self.parse_statement(), line)
        return ast.If(cond, then, els, line)

    def parse_while(self) -> ast.While:
        line = self.expect("kw", "while").line
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = _single(self.parse_statement(), line)
        return ast.While(cond, body, line)

    def parse_for(self) -> ast.For:
        line = self.expect("kw", "for").line
        self.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self.at("op", ";"):
            if self.at_type_start():
                decls = self.parse_local_decl()
                init = ast.Block(decls, line)
            else:
                init = ast.ExprStmt(self.parse_expr(), line)
        self.expect("op", ";")
        cond = None if self.at("op", ";") else self.parse_expr()
        self.expect("op", ";")
        step = None if self.at("op", ")") else self.parse_expr()
        self.expect("op", ")")
        body = _single(self.parse_statement(), line)
        return ast.For(init, cond, step, body, line)

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.accept("op", ","):
            right = self.parse_assignment()
            expr = ast.Binary(",", expr, right, right.line)
        return expr

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_ternary()
        tok = self.peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            return ast.Assign(tok.text, left, value, tok.line)
        return left

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.accept("op", "?"):
            then = self.parse_assignment()
            self.expect("op", ":")
            els = self.parse_assignment()
            return ast.Cond(cond, then, els, cond.line)
        return cond

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINOPS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = _BINOPS[level]
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.text in ops:
                self.next()
                right = self.parse_binary(level + 1)
                left = ast.Binary(tok.text, left, right, tok.line)
            else:
                return left

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "~", "!", "*", "&"):
            self.next()
            operand = self.parse_unary()
            return ast.Unary(tok.text, operand, tok.line)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.next()
            operand = self.parse_unary()
            return ast.Unary(tok.text, operand, tok.line)
        if tok.kind == "kw" and tok.text == "sizeof":
            self.next()
            if self.at_cast():
                self.expect("op", "(")
                ty = self.parse_abstract_type()
                self.expect("op", ")")
                return ast.SizeofType(ty, tok.line)
            operand = self.parse_unary()
            return ast.SizeofExpr(operand, tok.line)
        if self.at_cast():
            self.expect("op", "(")
            ty = self.parse_abstract_type()
            self.expect("op", ")")
            operand = self.parse_unary()
            return ast.Cast(ty, operand, tok.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if self.accept("op", "["):
                index = self.parse_expr()
                self.expect("op", "]")
                expr = ast.Index(expr, index, tok.line)
            elif self.accept("op", "."):
                name = self.expect("id").text
                expr = ast.Member(expr, name, False, tok.line)
            elif self.accept("op", "->"):
                name = self.expect("id").text
                expr = ast.Member(expr, name, True, tok.line)
            elif tok.kind == "op" and tok.text in ("++", "--"):
                self.next()
                expr = ast.Postfix(tok.text, expr, tok.line)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "num":
            self.next()
            return ast.IntLit(tok.value, tok.line)
        if tok.kind == "char":
            self.next()
            return ast.CharLit(tok.value, tok.line)
        if tok.kind == "str":
            self.next()
            return ast.StrLit(tok.value, tok.line)
        if tok.kind == "id":
            self.next()
            if self.at("op", "("):
                self.next()
                args: List[ast.Expr] = []
                if not self.at("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return ast.Call(tok.text, args, tok.line)
            return ast.Ident(tok.text, tok.line)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError("unexpected token %r" % tok.text, tok.line)


def _single(stmts: List[ast.Stmt], line: int) -> ast.Stmt:
    """Wrap a statement list as a single statement."""
    if len(stmts) == 1:
        return stmts[0]
    return ast.Block(stmts, line)


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC source into an untyped AST."""
    return Parser(source).parse_unit()
