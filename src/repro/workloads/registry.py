"""Workload registry: the nine Olden benchmarks in figure order."""

from __future__ import annotations

from typing import Dict, Optional

from repro.workloads import (
    bh,
    bisort,
    em3d,
    health,
    mst,
    perimeter,
    power,
    treeadd,
    tsp,
)


class Workload:
    """A runnable benchmark: name, MiniC source, description."""

    def __init__(self, name: str, source: str, description: str,
                 expected_output: Optional[str] = None):
        self.name = name
        self.source = source
        self.description = description
        self.expected_output = expected_output

    def __repr__(self):
        return "<Workload %s>" % self.name


#: figure order of the paper (Figures 5-7)
WORKLOADS: Dict[str, Workload] = {
    "bh": Workload(
        "bh", bh.SOURCE,
        "Barnes-Hut hierarchical N-body (quadtree)"),
    "bisort": Workload(
        "bisort", bisort.SOURCE,
        "bitonic sort over a binary tree"),
    "em3d": Workload(
        "em3d", em3d.SOURCE,
        "electromagnetic propagation on a bipartite graph"),
    "health": Workload(
        "health", health.SOURCE,
        "hospital simulation over linked lists"),
    "mst": Workload(
        "mst", mst.SOURCE,
        "minimum spanning tree with per-vertex hash tables"),
    "perimeter": Workload(
        "perimeter", perimeter.SOURCE,
        "perimeter of a quadtree-encoded image"),
    "power": Workload(
        "power", power.SOURCE,
        "power-system pricing over a four-level hierarchy"),
    "treeadd": Workload(
        "treeadd", treeadd.SOURCE,
        "recursive sum over a binary tree",
        expected_output=treeadd.EXPECTED_OUTPUT),
    "tsp": Workload(
        "tsp", tsp.SOURCE,
        "cheapest-insertion travelling-salesman tour"),
}

#: ablation variant for E10 (Section 5.3's mst tightening)
MST_UNTIGHTENED = Workload(
    "mst-untightened", mst.UNTIGHTENED_SOURCE,
    "mst with conservative whole-array bucket pointers")


def get_workload(name: str) -> Workload:
    """Look up a workload by name (raises KeyError with the list)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError("unknown workload %r (have: %s)"
                       % (name, ", ".join(WORKLOADS)))
