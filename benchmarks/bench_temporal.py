"""E11 (extension) — cost of the Section 6.2 temporal tracking.

The paper argues per-word alloc/unalloc tracking is a natural add-on
to HardBound's metadata.  This ablation measures what the extension
costs on an allocation-heavy workload and verifies it changes no
results.
"""

from conftest import write_result

from repro.harness.figures import format_table
from repro.harness.runner import run_workload
from repro.machine import MachineConfig

BENCHES = ("treeadd", "health", "bisort")


def test_temporal_overhead(benchmark):
    def measure():
        out = {}
        for name in BENCHES:
            spatial = run_workload(
                name, MachineConfig.hardbound(encoding="intern11"))
            temporal = run_workload(
                name, MachineConfig.hardbound(encoding="intern11",
                                              temporal=True))
            out[name] = (spatial, temporal)
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for name, (spatial, temporal) in out.items():
        rows.append([name,
                     "%d" % spatial.cycles,
                     "%d" % temporal.cycles,
                     "%.4f" % (temporal.cycles / spatial.cycles)])
    table = format_table(
        ["benchmark", "spatial-cycles", "temporal-cycles", "ratio"],
        rows, "E11: temporal-extension cost (intern11)")
    print("\n" + table)
    write_result("temporal_overhead.txt", table)

    for name, (spatial, temporal) in out.items():
        assert spatial.output == temporal.output, name
        # the tracker itself is off the timing path in this model:
        # cycle counts may only differ through markfree execution
        assert temporal.cycles >= spatial.cycles
        assert temporal.cycles <= 1.05 * spatial.cycles, name
