"""Differential testing: every execution engine against the legacy one.

The decoded closure engine, the basic-block fusion engine and the
superblock trace engine must be *bit-identical* to the legacy
interpreter: same exit codes, program output, instruction/µop/cycle
counts, same HardBound and memory-system statistics, the same final
memory image, and the same traps (type, message, faulting pc) on
every violation.  These tests run real Olden workloads and the
violation scenarios under all four engines and compare everything
observable.  (``tests/machine/test_superblocks.py`` extends the
four-way chain over the full workload registry and the trace-tier
edge cases.)
"""

import pytest

from repro.harness.runner import compile_cached
from repro.machine import (
    CPU,
    BoundsError,
    InstructionLimitExceeded,
    MachineConfig,
    MemoryFault,
    NonPointerError,
    Trap,
)
from repro.minic.driver import compile_program, mode_for_config
from repro.workloads.registry import WORKLOADS

#: three Olden workloads exercising trees, graphs and linked lists
DIFF_WORKLOADS = ("treeadd", "em3d", "health")

ENGINES = ("legacy", "decoded", "blocks", "superblocks")
NEW_ENGINES = ("decoded", "blocks", "superblocks")


def memory_image(cpu):
    """Normalized final memory state: non-zero pages plus segments.

    ``Memory.nonzero_pages`` is backing-store independent, so this
    snapshot compares engines regardless of how the bytes are held.
    """
    return (cpu.memory.nonzero_pages(), cpu.memory.brk,
            cpu.memory.globals_limit)


def run_engines(program, **config_kw):
    """Run one program under every engine; return results and images."""
    results, images = {}, {}
    for engine in ENGINES:
        cpu = CPU(program, MachineConfig(engine=engine, **config_kw))
        results[engine] = cpu.run()
        images[engine] = memory_image(cpu)
    return results, images


def assert_identical(legacy, other):
    assert other.exit_code == legacy.exit_code
    assert other.output == legacy.output
    assert other.instructions == legacy.instructions
    assert other.uops == legacy.uops
    assert other.stall_cycles == legacy.stall_cycles
    assert other.cycles == legacy.cycles
    assert other.setbound_uops == legacy.setbound_uops
    if legacy.hb_stats is None:
        assert other.hb_stats is None
    else:
        assert other.hb_stats.as_dict() == legacy.hb_stats.as_dict()
    if legacy.mem_stats is None:
        assert other.mem_stats is None
    else:
        assert other.mem_stats.as_dict() == legacy.mem_stats.as_dict()


def assert_all_identical(results, images=None):
    for engine in NEW_ENGINES:
        assert_identical(results["legacy"], results[engine])
        if images is not None:
            assert images[engine] == images["legacy"], engine


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("name", DIFF_WORKLOADS)
    def test_hardbound_functional(self, name):
        config = MachineConfig.hardbound(timing=False)
        program = compile_cached(WORKLOADS[name].source,
                                 mode_for_config(config))
        results, images = run_engines(
            program, mode=config.mode, encoding=config.encoding,
            timing=False)
        assert_all_identical(results, images)

    @pytest.mark.parametrize("name", DIFF_WORKLOADS)
    def test_plain_functional(self, name):
        config = MachineConfig.plain(timing=False)
        program = compile_cached(WORKLOADS[name].source,
                                 mode_for_config(config))
        results, images = run_engines(
            program, mode=config.mode, timing=False)
        assert_all_identical(results, images)

    @pytest.mark.parametrize("name", DIFF_WORKLOADS)
    def test_hardbound_with_timing_model(self, name):
        """Full stats equality including stalls, cache and page counts.

        With timing on, the blocks engine runs the fast memory model,
        so this is also the whole-workload differential for
        :class:`repro.caches.fast.FastMemorySystem`.
        """
        config = MachineConfig.hardbound(encoding="intern11")
        program = compile_cached(WORKLOADS[name].source,
                                 mode_for_config(config))
        results, images = run_engines(
            program, mode=config.mode, encoding="intern11", timing=True)
        assert_all_identical(results, images)

    @pytest.mark.parametrize("encoding", ("extern4", "intern4"))
    def test_encodings_with_timing_model(self, encoding):
        config = MachineConfig.hardbound(encoding=encoding)
        program = compile_cached(WORKLOADS["em3d"].source,
                                 mode_for_config(config))
        results, images = run_engines(
            program, mode=config.mode, encoding=encoding, timing=True)
        assert_all_identical(results, images)

    def test_plain_with_timing_model(self):
        config = MachineConfig.plain()
        program = compile_cached(WORKLOADS["treeadd"].source,
                                 mode_for_config(config))
        results, images = run_engines(
            program, mode=config.mode, timing=True)
        assert_all_identical(results, images)


VIOLATIONS = {
    "heap-overflow": """
        int main() {
            int *p = (int*)malloc(4 * sizeof(int));
            p[4] = 1;
            return 0;
        }""",
    "heap-read-overflow": """
        int main() {
            int *p = (int*)malloc(8);
            return p[2];
        }""",
    "heap-underflow": """
        int main() {
            int *p = (int*)malloc(8);
            p[-1] = 3;
            return 0;
        }""",
}


class TestTrapEquivalence:
    @pytest.mark.parametrize("name", sorted(VIOLATIONS))
    def test_violations_trap_identically(self, name):
        config = MachineConfig.hardbound(timing=False)
        program = compile_program(VIOLATIONS[name],
                                  mode_for_config(config))
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.hardbound(
                timing=False, engine=engine))
            with pytest.raises(BoundsError) as exc:
                cpu.run()
            traps[engine] = (type(exc.value), str(exc.value),
                             exc.value.pc, cpu.icount, cpu.pc)
        for engine in NEW_ENGINES:
            assert traps[engine] == traps["legacy"]

    def test_nonpointer_trap_identical(self):
        from repro.isa import assemble
        program = assemble("""
        main:
            mov r1, 0x2000000
            load r2, [r1]
            halt 0
        """)
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.hardbound(
                timing=False, engine=engine))
            with pytest.raises(NonPointerError) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc, cpu.icount)
        for engine in NEW_ENGINES:
            assert traps[engine] == traps["legacy"]

    def test_fetch_fault_identical(self):
        """Falling off the end faults with the same pc annotation."""
        from repro.isa import assemble
        program = assemble("main:\n  mov r1, 1\n")
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.plain(
                timing=False, engine=engine))
            with pytest.raises(MemoryFault) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc,
                             cpu.icount, cpu.pc)
        for engine in NEW_ENGINES:
            assert traps[engine] == traps["legacy"]

    def test_instruction_limit_identical(self):
        from repro.isa import assemble
        program = assemble("main:\n  jmp main\n")
        states = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.plain(
                timing=False, engine=engine, max_instructions=1000))
            with pytest.raises(InstructionLimitExceeded):
                cpu.run()
            states[engine] = (cpu.icount, cpu.pc)
        for engine in NEW_ENGINES:
            assert states[engine] == states["legacy"]

    def test_limit_mid_block_identical(self):
        """The limit can fire inside a fused straight-line run."""
        from repro.isa import assemble
        body = "\n".join("  add r1, r1, 1" for _ in range(20))
        program = assemble("main:\n%s\n  halt r1\n" % body)
        for limit in (1, 5, 19, 20, 21, 22):
            states = {}
            for engine in ENGINES:
                cpu = CPU(program, MachineConfig.plain(
                    timing=False, engine=engine,
                    max_instructions=limit))
                try:
                    result = cpu.run()
                    states[engine] = ("halt", result.exit_code,
                                      result.instructions, cpu.pc)
                except InstructionLimitExceeded:
                    states[engine] = ("limit", cpu.icount, cpu.pc)
            for engine in NEW_ENGINES:
                assert states[engine] == states["legacy"], limit

    def test_divide_by_zero_identical(self):
        from repro.isa import assemble
        from repro.machine import DivideByZeroError
        program = assemble("""
        main:
            mov r1, 10
            mov r2, 0
            div r3, r1, r2
            halt 0
        """)
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.plain(
                timing=False, engine=engine))
            with pytest.raises(DivideByZeroError) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc, cpu.icount)
        for engine in NEW_ENGINES:
            assert traps[engine] == traps["legacy"]

    def test_divide_by_zero_mid_block_identical(self):
        """A trap from a fused ALU template attributes the right pc."""
        from repro.isa import assemble
        from repro.machine import DivideByZeroError
        program = assemble("""
        main:
            mov r1, 10
            mov r2, 0
            add r3, r1, 5
            div r4, r3, r2
            add r5, r3, 1
            halt 0
        """)
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.plain(
                timing=False, engine=engine))
            with pytest.raises(DivideByZeroError) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc,
                             cpu.icount, cpu.pc)
        for engine in NEW_ENGINES:
            assert traps[engine] == traps["legacy"]

    def test_bad_return_identical(self):
        """The fused ret template raises the same code-pointer trap."""
        from repro.isa import assemble
        from repro.machine import InvalidCodePointerError
        program = assemble("""
        main:
            mov r1, 12345
            mov r15, r1
            ret
        """)
        for mode_fn in (MachineConfig.plain, MachineConfig.hardbound):
            traps = {}
            for engine in ENGINES:
                cpu = CPU(program, mode_fn(timing=False, engine=engine))
                with pytest.raises(InvalidCodePointerError) as exc:
                    cpu.run()
                traps[engine] = (str(exc.value), exc.value.pc,
                                 cpu.icount, cpu.pc)
            for engine in NEW_ENGINES:
                assert traps[engine] == traps["legacy"]


class TestTemporalEquivalence:
    def test_use_after_free_identical(self):
        from repro.machine.errors import UseAfterFreeError
        from repro.minic.driver import compile_program
        source = """
        int main() {
            int *p = (int*)malloc(4 * sizeof(int));
            p[1] = 7;
            free((void*)p);
            return p[1];             // dangling read
        }"""
        config = MachineConfig.hardbound(timing=False, temporal=True)
        program = compile_program(source, mode_for_config(config))
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.hardbound(
                timing=False, temporal=True, engine=engine))
            with pytest.raises(UseAfterFreeError) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc, cpu.icount)
        for engine in NEW_ENGINES:
            assert traps[engine] == traps["legacy"]
