"""MiniC tokenizer."""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.minic.errors import LexError

KEYWORDS = frozenset({
    "int", "char", "void", "struct", "if", "else", "while", "for",
    "return", "break", "continue", "sizeof", "static", "typedef",
})

#: Multi-character operators, longest first (order matters).
_OPERATORS = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "->", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
)

_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", "'": "'",
            '"': '"', "r": "\r"}


class Token(NamedTuple):
    """A lexical token: kind is 'id', 'num', 'str', 'char', 'kw' or 'op'."""

    kind: str
    text: str
    line: int
    value: Optional[object] = None


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniC source; raises :class:`LexError` with line info."""
    tokens: List[Token] = []
    i, line = 0, 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            tokens.append(Token("num", source[i:j], line, value))
            i = j
            continue
        if ch == "'":
            j, text = _scan_quoted(source, i, "'", line)
            if len(text) != 1:
                raise LexError("bad character literal", line)
            tokens.append(Token("char", source[i:j], line, ord(text)))
            i = j
            continue
        if ch == '"':
            j, text = _scan_quoted(source, i, '"', line)
            tokens.append(Token("str", source[i:j], line, text))
            i = j
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise LexError("unexpected character %r" % ch, line)
    tokens.append(Token("eof", "", line))
    return tokens


def _scan_quoted(source: str, start: int, quote: str, line: int):
    """Scan a quoted literal starting at ``start``; return (end, text)."""
    i = start + 1
    out = []
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == quote:
            return i + 1, "".join(out)
        if ch == "\n":
            break
        if ch == "\\" and i + 1 < n:
            esc = source[i + 1]
            if esc == "x":
                hex_digits = source[i + 2:i + 4]
                if len(hex_digits) != 2 or any(
                        c not in "0123456789abcdefABCDEF"
                        for c in hex_digits):
                    raise LexError("bad hex escape", line)
                out.append(chr(int(hex_digits, 16)))
                i += 4
                continue
            if esc not in _ESCAPES:
                raise LexError("unknown escape \\%s" % esc, line)
            out.append(_ESCAPES[esc])
            i += 2
            continue
        out.append(ch)
        i += 1
    raise LexError("unterminated %s literal" % quote, line)
