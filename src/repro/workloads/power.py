"""power: power-system pricing optimization (Olden).

A fixed hierarchy — root, feeders, laterals, branches, leaves — where
demand flows up and prices flow down until the root converges on a
target load.  Olden's floating-point optimization becomes 16.16 fixed
point; the hierarchy and per-level linked lists are preserved.
"""

FEEDERS = 4
LATERALS = 4
BRANCHES = 3
LEAVES = 4
ITERATIONS = 10

SOURCE = """
struct leaf {
    struct leaf *next;
    int base;       // fixed-point base demand
    int demand;
};

struct branch {
    struct branch *next;
    struct leaf *leaves;
    int demand;
};

struct lateral {
    struct lateral *next;
    struct branch *branches;
    int demand;
};

struct feeder {
    struct feeder *next;
    struct lateral *laterals;
    int demand;
};

int __seed;

int nextrand() {
    __seed = __seed * 1103515245 + 12345;
    return (__seed >> 8) & 32767;
}

struct leaf *make_leaves(int n) {
    struct leaf *head = (struct leaf*)0;
    for (int i = 0; i < n; i++) {
        struct leaf *l = (struct leaf*)malloc(sizeof(struct leaf));
        l->base = (nextrand() & 1023) + 512;
        l->demand = l->base;
        l->next = head;
        head = l;
    }
    return head;
}

struct branch *make_branches(int n) {
    struct branch *head = (struct branch*)0;
    for (int i = 0; i < n; i++) {
        struct branch *b = (struct branch*)malloc(sizeof(struct branch));
        b->leaves = make_leaves(%(leaves)d);
        b->demand = 0;
        b->next = head;
        head = b;
    }
    return head;
}

struct lateral *make_laterals(int n) {
    struct lateral *head = (struct lateral*)0;
    for (int i = 0; i < n; i++) {
        struct lateral *l = (struct lateral*)
            malloc(sizeof(struct lateral));
        l->branches = make_branches(%(branches)d);
        l->demand = 0;
        l->next = head;
        head = l;
    }
    return head;
}

struct feeder *make_feeders(int n) {
    struct feeder *head = (struct feeder*)0;
    for (int i = 0; i < n; i++) {
        struct feeder *f = (struct feeder*)malloc(sizeof(struct feeder));
        f->laterals = make_laterals(%(laterals)d);
        f->demand = 0;
        f->next = head;
        head = f;
    }
    return head;
}

// downward: apply price; upward: accumulate demand
int compute_leaf(struct leaf *l, int price) {
    l->demand = l->base - ((price * 3) >> 4);
    if (l->demand < 0) { l->demand = 0; }
    return l->demand;
}

int compute_branch(struct branch *b, int price) {
    int d = 0;
    for (struct leaf *l = b->leaves; l; l = l->next) {
        d += compute_leaf(l, price);
    }
    b->demand = d;
    return d;
}

int compute_lateral(struct lateral *lat, int price) {
    int d = 0;
    for (struct branch *b = lat->branches; b; b = b->next) {
        d += compute_branch(b, price + 8);     // line-loss surcharge
    }
    lat->demand = d;
    return d;
}

int compute_feeder(struct feeder *f, int price) {
    int d = 0;
    for (struct lateral *l = f->laterals; l; l = l->next) {
        d += compute_lateral(l, price + 16);
    }
    f->demand = d;
    return d;
}

int main() {
    __seed = 161803;
    struct feeder *root = make_feeders(%(feeders)d);
    int target = 100000;
    int price = 0;
    int total = 0;
    for (int it = 0; it < %(iters)d; it++) {
        total = 0;
        for (struct feeder *f = root; f; f = f->next) {
            total += compute_feeder(f, price);
        }
        price += (total - target) / 256;     // gradient step
    }
    print(total);
    print(price);
    return 0;
}
""" % {"feeders": FEEDERS, "laterals": LATERALS, "branches": BRANCHES,
       "leaves": LEAVES, "iters": ITERATIONS}
