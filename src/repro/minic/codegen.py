"""MiniC code generation to assembler text.

Register convention (see :mod:`repro.isa.opcodes`):

* ``r0`` — return value;
* ``r1``–``r9`` — expression temporaries, allocated as a stack and
  caller-saved around calls;
* ``sp``/``fp``/``ra`` — the usual roles.  Like the paper's x86
  target, ``sp``/``fp`` are *not* bounded pointers: frame-relative
  accesses are compiler-owned direct accesses, and every materialized
  address of a local gets an explicit ``setbound``.

HardBound instrumentation (``InstrumentMode.HARDBOUND``) implements
Section 3.2's compiler duties at the only three places pointers are
*created*:

* address-of / array decay of locals and globals → ``setbound`` with
  the object's static size;
* sub-object narrowing: decay of (or address-of) a struct member →
  ``setbound`` with the member's size; a zero-length trailing array
  gets bounds extending to the enclosing allocation via ``readbound``
  (the paper's footnote 3 idiom);
* string literals → ``setbound`` with ``strlen + 1``.

``&q[i]`` deliberately keeps the whole array's bounds (the paper's
conservative choice, Section 3.2 "programmer-specified sub-bounding").
Direct scalar accesses (``x = 5`` on a named local/global) use frame-
or absolute-addressed operands and need no ``setbound``, mirroring
statically-safe accesses in the paper's compiler.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.minic import ast
from repro.minic.errors import MiniCError
from repro.minic.sema import Symbol
from repro.minic.types import ArrayType, Type

WORD = 4
#: expression temporaries
_FIRST_TEMP, _LAST_TEMP = 1, 9


class InstrumentMode(enum.Enum):
    """How much bounds instrumentation the compiler inserts."""

    NONE = "none"            # plain baseline binary (intrinsics stripped)
    HEAP_ONLY = "heap-only"  # explicit __setbound intrinsics only
    #                          (legacy binary + instrumented malloc)
    HARDBOUND = "hardbound"  # + compiler setbound at pointer creation


class CodeGen:
    """Generates assembler text for an analyzed translation unit."""

    def __init__(self, unit: ast.TranslationUnit,
                 mode: InstrumentMode = InstrumentMode.HARDBOUND,
                 optimize_static: bool = False):
        self.unit = unit
        self.mode = mode
        #: Section 8's "unbound the pointer" optimization: a constant
        #: index into a named array that is provably in bounds needs
        #: no bounded pointer at all — it compiles to a direct
        #: frame/absolute access like any named scalar.  Off by
        #: default to keep the measured configuration identical to
        #: the paper's prototype (which bounds even constant-index
        #: references, Section 5.3).
        self.optimize_static = optimize_static
        self.lines: List[str] = []
        self.data_lines: List[str] = []
        self.strings: Dict[str, str] = {}
        self._label_n = 0
        self.depth = 0
        self._break_labels: List[str] = []
        self._continue_labels: List[str] = []
        self._ret_label = ""

    # -- infrastructure --------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("    " + text)

    def emit_label(self, label: str) -> None:
        self.lines.append(label + ":")

    def new_label(self, hint: str = "L") -> str:
        self._label_n += 1
        return ".%s%d" % (hint, self._label_n)

    def alloc(self) -> int:
        """Allocate the next expression temporary register."""
        if _FIRST_TEMP + self.depth > _LAST_TEMP:
            raise MiniCError("expression too complex (out of registers)")
        reg = _FIRST_TEMP + self.depth
        self.depth += 1
        return reg

    def release(self, reg: int) -> None:
        """Release the most recently allocated temporary (LIFO)."""
        expected = _FIRST_TEMP + self.depth - 1
        if reg != expected:
            raise MiniCError("temporary release out of order "
                             "(r%d, expected r%d)" % (reg, expected))
        self.depth -= 1

    @property
    def hardbound(self) -> bool:
        """Compiler-inserted instrumentation sites are active."""
        return self.mode is InstrumentMode.HARDBOUND

    @property
    def intrinsics(self) -> bool:
        """Explicit ``__setbound``-family intrinsics are emitted."""
        return self.mode is not InstrumentMode.NONE

    def string_label(self, text: str) -> str:
        if text not in self.strings:
            label = "str_%d" % len(self.strings)
            self.strings[text] = label
            escaped = (text.replace("\\", "\\\\").replace('"', '\\"')
                       .replace("\n", "\\n").replace("\t", "\\t")
                       .replace("\r", "\\r").replace("\0", "\\0"))
            self.data_lines.append('%s: .asciiz "%s"' % (label, escaped))
        return self.strings[text]

    # -- top level ----------------------------------------------------------

    def run(self) -> str:
        self.lines.append("    .text")
        self.emit_label("main")
        # statically initialized global pointers need their metadata
        # initialized at startup (the loader's job on real HardBound)
        if self.hardbound:
            for decl in self.unit.decls:
                if isinstance(decl, ast.VarDecl) and \
                        decl.symbol.init_string is not None:
                    label = self.string_label(decl.symbol.init_string)
                    length = len(decl.symbol.init_string) + 1
                    self.emit("mov r1, =%s" % label)
                    self.emit("setbound r1, r1, %d" % length)
                    self.emit("store [gv_%s], r1" % decl.symbol.name)
        self.emit("call fn_main")
        self.emit("halt r0")
        for decl in self.unit.decls:
            if isinstance(decl, ast.FuncDecl) and decl.body is not None:
                self.gen_function(decl)
        self._emit_globals()
        out = list(self.lines)
        if self.data_lines:
            out.append("    .data")
            out.extend("    " + line for line in self.data_lines)
        return "\n".join(out) + "\n"

    def _emit_globals(self) -> None:
        for decl in self.unit.decls:
            if not isinstance(decl, ast.VarDecl):
                continue
            sym = decl.symbol
            sym.data_label = "gv_" + sym.name
            self.data_lines.append(".align 4")
            ty = sym.type
            if sym.init_string is not None:
                slabel = self.string_label(sym.init_string)
                self.data_lines.append("%s: .word =%s"
                                       % (sym.data_label, slabel))
            elif ty.is_scalar() and ty.size == WORD:
                self.data_lines.append("%s: .word %d"
                                       % (sym.data_label, sym.init_value))
            elif ty.size == 1:
                self.data_lines.append("%s: .byte %d"
                                       % (sym.data_label,
                                          sym.init_value & 0xFF))
            else:
                self.data_lines.append("%s: .space %d"
                                       % (sym.data_label,
                                          max(ty.size, 1)))

    def gen_function(self, decl: ast.FuncDecl) -> None:
        sym = decl.symbol
        self.emit_label("fn_" + decl.name)
        self._ret_label = ".ret_" + decl.name
        self.emit("push ra")
        self.emit("push fp")
        self.emit("mov fp, sp")
        if sym.frame_size:
            self.emit("sub sp, sp, %d" % sym.frame_size)
        self.depth = 0
        self.gen_stmt(decl.body)
        self.emit_label(self._ret_label)
        self.emit("mov sp, fp")
        self.emit("pop fp")
        self.emit("pop ra")
        self.emit("ret")

    # -- statements --------------------------------------------------------------

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        method = getattr(self, "_stmt_" + type(stmt).__name__)
        method(stmt)
        if self.depth != 0:
            raise MiniCError("internal: temporaries leaked in statement "
                             "at line %d" % stmt.line)

    def _stmt_Block(self, stmt: ast.Block) -> None:
        for inner in stmt.stmts:
            self.gen_stmt(inner)

    def _stmt_DeclStmt(self, stmt: ast.DeclStmt) -> None:
        decl = stmt.decl
        if decl.init is not None:
            target = ast.Ident(decl.name, decl.line)
            target.symbol = decl.symbol
            target.ty = decl.symbol.type
            target.is_lvalue = True
            reg = self.gen_expr(decl.init)
            self._store_to_lvalue(target, reg)
            self.release(reg)

    def _stmt_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        reg = self.gen_expr(stmt.expr)
        if reg is not None:
            self.release(reg)

    def _stmt_If(self, stmt: ast.If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif")
        reg = self.gen_expr(stmt.cond)
        self.emit("beqz r%d, %s"
                  % (reg, else_label if stmt.els else end_label))
        self.release(reg)
        self.gen_stmt(stmt.then)
        if stmt.els is not None:
            self.emit("jmp %s" % end_label)
            self.emit_label(else_label)
            self.gen_stmt(stmt.els)
        self.emit_label(end_label)

    def _stmt_While(self, stmt: ast.While) -> None:
        top = self.new_label("while")
        end = self.new_label("endwhile")
        self.emit_label(top)
        reg = self.gen_expr(stmt.cond)
        self.emit("beqz r%d, %s" % (reg, end))
        self.release(reg)
        self._break_labels.append(end)
        self._continue_labels.append(top)
        self.gen_stmt(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self.emit("jmp %s" % top)
        self.emit_label(end)

    def _stmt_For(self, stmt: ast.For) -> None:
        top = self.new_label("for")
        step_label = self.new_label("forstep")
        end = self.new_label("endfor")
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        self.emit_label(top)
        if stmt.cond is not None:
            reg = self.gen_expr(stmt.cond)
            self.emit("beqz r%d, %s" % (reg, end))
            self.release(reg)
        self._break_labels.append(end)
        self._continue_labels.append(step_label)
        self.gen_stmt(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self.emit_label(step_label)
        if stmt.step is not None:
            reg = self.gen_expr(stmt.step)
            if reg is not None:
                self.release(reg)
        self.emit("jmp %s" % top)
        self.emit_label(end)

    def _stmt_Return(self, stmt: ast.Return) -> None:
        if stmt.value is not None:
            reg = self.gen_expr(stmt.value)
            self.emit("mov r0, r%d" % reg)
            self.release(reg)
        self.emit("jmp %s" % self._ret_label)

    def _stmt_Break(self, stmt: ast.Break) -> None:
        self.emit("jmp %s" % self._break_labels[-1])

    def _stmt_Continue(self, stmt: ast.Continue) -> None:
        self.emit("jmp %s" % self._continue_labels[-1])

    # -- expressions -----------------------------------------------------------

    def gen_expr(self, expr: ast.Expr) -> Optional[int]:
        """Generate code; returns the temp register or None for void."""
        method = getattr(self, "_expr_" + type(expr).__name__)
        return method(expr)

    def _expr_IntLit(self, expr: ast.IntLit) -> int:
        reg = self.alloc()
        self.emit("mov r%d, %d" % (reg, expr.value))
        return reg

    def _expr_CharLit(self, expr: ast.CharLit) -> int:
        reg = self.alloc()
        self.emit("mov r%d, %d" % (reg, expr.value))
        return reg

    def _expr_StrLit(self, expr: ast.StrLit) -> int:
        label = self.string_label(expr.value)
        reg = self.alloc()
        self.emit("mov r%d, =%s" % (reg, label))
        if self.hardbound:
            self.emit("setbound r%d, r%d, %d"
                      % (reg, reg, len(expr.value) + 1))
        return reg

    def _expr_SizeofType(self, expr: ast.SizeofType) -> int:
        reg = self.alloc()
        self.emit("mov r%d, %d" % (reg, expr.target_type.size))
        return reg

    def _expr_SizeofExpr(self, expr: ast.SizeofExpr) -> int:
        ty = expr.operand.ty
        size = ty.size if not ty.is_array() else ty.size
        reg = self.alloc()
        self.emit("mov r%d, %d" % (reg, size))
        return reg

    def _expr_Ident(self, expr: ast.Ident) -> int:
        sym = expr.symbol
        ty = sym.type
        if ty.is_array():
            # array decay: materialize a (narrowed) pointer
            return self._addr_of_symbol(sym, narrow=True)
        if ty.is_struct():
            raise MiniCError("struct used as a value", expr.line)
        reg = self.alloc()
        self.emit("load%s r%d, %s"
                  % (_suffix(ty), reg, self._sym_operand(sym)))
        return reg

    def _sym_operand(self, sym: Symbol) -> str:
        """Direct-addressing operand for a named scalar."""
        if sym.kind == "global":
            return "[gv_%s]" % sym.name
        if sym.kind == "param":
            return "[fp + %d]" % sym.offset
        return "[fp - %d]" % sym.offset

    def _addr_of_symbol(self, sym: Symbol, narrow: bool) -> int:
        """Materialize the address of a named object into a register."""
        reg = self.alloc()
        if sym.kind == "global":
            self.emit("mov r%d, =gv_%s" % (reg, sym.name))
        elif sym.kind == "param":
            self.emit("lea r%d, [fp + %d]" % (reg, sym.offset))
        else:
            self.emit("lea r%d, [fp - %d]" % (reg, sym.offset))
        if self.hardbound and narrow:
            self.emit("setbound r%d, r%d, %d"
                      % (reg, reg, max(sym.type.size, 1)))
        return reg

    # .. addresses ..........................................................

    def gen_addr(self, expr: ast.Expr, narrow: bool) -> int:
        """Address of an lvalue (or array) expression.

        ``narrow`` requests sub-object tightening per Section 3.2 —
        used when the address escapes (decay, ``&``), not for plain
        load/store addressing of named variables.
        """
        if isinstance(expr, ast.Ident):
            # a materialized address must carry bounds in HB mode:
            # the frame/absolute fast paths don't reach here, so this
            # register will be dereferenced as a pointer
            return self._addr_of_symbol(expr.symbol, narrow=True)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            reg = self.gen_expr(expr.operand)
            return reg
        if isinstance(expr, ast.Index):
            return self._index_addr(expr)
        if isinstance(expr, ast.Member):
            return self._member_addr(expr, narrow)
        raise MiniCError("cannot take the address of this expression "
                         "(line %d)" % expr.line, expr.line)

    def _static_index_operand(self, expr: ast.Expr) -> Optional[str]:
        """Direct operand for a provably-in-bounds constant index.

        Returns ``None`` unless ``optimize_static`` is on and ``expr``
        is ``name[const]`` on a named array with ``0 <= const < len``.
        """
        if not self.optimize_static:
            return None
        if not (isinstance(expr, ast.Index)
                and isinstance(expr.base, ast.Ident)
                and isinstance(expr.index, ast.IntLit)):
            return None
        sym = expr.base.symbol
        if sym is None or not isinstance(sym.type, ArrayType):
            return None
        idx = expr.index.value
        if not 0 <= idx < sym.type.length:
            return None
        offset = idx * max(sym.type.element.size, 1)
        if sym.kind == "global":
            return "[gv_%s + %d]" % (sym.name, offset)
        if sym.kind == "param":
            return None  # params are pointers, not arrays
        return "[fp - %d]" % (sym.offset - offset)

    def _index_addr(self, expr: ast.Index) -> int:
        base_ty = expr.base.ty
        if isinstance(base_ty, ArrayType):
            base = self.gen_addr(expr.base, narrow=True)
            elem = base_ty.element
        else:
            base = self.gen_expr(expr.base)
            elem = base_ty.target
        if isinstance(expr.index, ast.IntLit):
            off = expr.index.value * max(elem.size, 1)
            if off:
                self.emit("add r%d, r%d, %d" % (base, base, off))
            return base
        idx = self.gen_expr(expr.index)
        esz = max(elem.size, 1)
        if esz != 1:
            self.emit("mul r%d, r%d, %d" % (idx, idx, esz))
        # add pointer-first so bounds propagate from the base
        self.emit("add r%d, r%d, r%d" % (base, base, idx))
        self.release(idx)
        return base

    def _member_addr(self, expr: ast.Member, narrow: bool) -> int:
        if expr.arrow:
            base = self.gen_expr(expr.base)
        else:
            base = self.gen_addr(expr.base, narrow=False)
        field = expr.field
        if field.offset:
            self.emit("add r%d, r%d, %d" % (base, base, field.offset))
        if self.hardbound and narrow:
            fty = field.type
            if isinstance(fty, ArrayType) and fty.length == 0 and \
                    expr.arrow:
                # footnote 3: zero-sized trailing array extends to the
                # end of the allocation -> bound from the base pointer
                tmp = self.alloc()
                self.emit("readbound r%d, r%d" % (tmp, base))
                self.emit("sub r%d, r%d, r%d" % (tmp, tmp, base))
                self.emit("setbound r%d, r%d, r%d" % (base, base, tmp))
                self.release(tmp)
            else:
                self.emit("setbound r%d, r%d, %d"
                          % (base, base, max(fty.size, 1)))
        return base

    # .. loads and stores ....................................................

    def _load_from_lvalue(self, expr: ast.Expr) -> int:
        """Load the value of an lvalue expression."""
        if isinstance(expr, ast.Ident) and expr.symbol.type.is_scalar():
            return self._expr_Ident(expr)
        addr = self.gen_addr(expr, narrow=False)
        self.emit("load%s r%d, [r%d]" % (_suffix(expr.ty), addr, addr))
        return addr

    def _store_to_lvalue(self, expr: ast.Expr, value_reg: int) -> None:
        """Store ``value_reg`` into the lvalue (value_reg preserved)."""
        if isinstance(expr, ast.Ident) and expr.symbol.type.is_scalar():
            self.emit("store%s %s, r%d"
                      % (_suffix(expr.symbol.type),
                         self._sym_operand(expr.symbol), value_reg))
            return
        operand = self._static_index_operand(expr)
        if operand is not None:
            self.emit("store%s %s, r%d" % (_suffix(expr.ty), operand,
                                           value_reg))
            return
        addr = self.gen_addr(expr, narrow=False)
        self.emit("store%s [r%d], r%d"
                  % (_suffix(expr.ty), addr, value_reg))
        self.release(addr)

    # .. operators ...............................................................

    def _expr_Unary(self, expr: ast.Unary) -> int:
        op = expr.op
        if op == "&":
            return self.gen_addr(expr.operand, narrow=True)
        if op == "*":
            reg = self.gen_expr(expr.operand)
            self.emit("load%s r%d, [r%d]" % (_suffix(expr.ty), reg, reg))
            return reg
        if op in ("++", "--"):
            return self._incdec(expr.operand, op, want_old=False)
        reg = self.gen_expr(expr.operand)
        if op == "-":
            self.emit("neg r%d, r%d" % (reg, reg))
        elif op == "~":
            self.emit("not r%d, r%d" % (reg, reg))
        elif op == "!":
            self.emit("seq r%d, r%d, 0" % (reg, reg))
        return reg

    def _expr_Postfix(self, expr: ast.Postfix) -> int:
        return self._incdec(expr.operand, expr.op, want_old=True)

    def _incdec(self, target: ast.Expr, op: str, want_old: bool) -> int:
        step = 1
        if target.ty.is_pointer():
            step = max(target.ty.target.size, 1)
        insn = "add" if op == "++" else "sub"
        if isinstance(target, ast.Ident) and \
                target.symbol.type.is_scalar():
            reg = self._load_from_lvalue(target)
            if want_old:
                new = self.alloc()
                self.emit("%s r%d, r%d, %d" % (insn, new, reg, step))
                self.emit("store%s %s, r%d"
                          % (_suffix(target.symbol.type),
                             self._sym_operand(target.symbol), new))
                self.release(new)
            else:
                self.emit("%s r%d, r%d, %d" % (insn, reg, reg, step))
                self.emit("store%s %s, r%d"
                          % (_suffix(target.symbol.type),
                             self._sym_operand(target.symbol), reg))
            return reg
        addr = self.gen_addr(target, narrow=False)
        val = self.alloc()
        self.emit("load%s r%d, [r%d]" % (_suffix(target.ty), val, addr))
        if want_old:
            new = self.alloc()
            self.emit("%s r%d, r%d, %d" % (insn, new, val, step))
            self.emit("store%s [r%d], r%d"
                      % (_suffix(target.ty), addr, new))
            self.release(new)
        else:
            self.emit("%s r%d, r%d, %d" % (insn, val, val, step))
            self.emit("store%s [r%d], r%d"
                      % (_suffix(target.ty), addr, val))
        # keep the value, drop the address: swap into addr's slot
        self.emit("mov r%d, r%d" % (addr, val))
        self.release(val)
        return addr

    _CMP = {"==": "seq", "!=": "sne", "<": "slt", "<=": "sle",
            ">": "sgt", ">=": "sge"}
    #: pointer comparisons are unsigned: mnemonic + operand swap
    _CMP_U = {"<": ("sltu", False), ">": ("sltu", True),
              ">=": ("sgeu", False), "<=": ("sgeu", True),
              "==": ("seq", False), "!=": ("sne", False)}
    _ARITH = {"+": "add", "-": "sub", "*": "mul", "/": "div",
              "%": "mod", "&": "and", "|": "or", "^": "xor",
              "<<": "shl", ">>": "sra"}

    def _expr_Binary(self, expr: ast.Binary) -> Optional[int]:
        op = expr.op
        if op == ",":
            left = self.gen_expr(expr.left)
            if left is not None:
                self.release(left)
            return self.gen_expr(expr.right)
        if op in ("&&", "||"):
            return self._shortcircuit(expr)
        lty, rty = expr.left.ty, expr.right.ty
        left = self.gen_expr(expr.left)
        # pointer +/- integer scaling
        if op in ("+", "-") and lty.is_pointer() and rty.is_integer():
            right = self.gen_expr(expr.right)
            esz = max(lty.target.size, 1)
            if esz != 1:
                self.emit("mul r%d, r%d, %d" % (right, right, esz))
            self.emit("%s r%d, r%d, r%d"
                      % (self._ARITH[op], left, left, right))
            self.release(right)
            return left
        if op == "+" and lty.is_integer() and rty.is_pointer():
            right = self.gen_expr(expr.right)
            esz = max(rty.target.size, 1)
            if esz != 1:
                self.emit("mul r%d, r%d, %d" % (left, left, esz))
            # pointer operand first so its bounds propagate
            self.emit("add r%d, r%d, r%d" % (left, right, left))
            self.release(right)
            return left
        if op == "-" and lty.is_pointer() and rty.is_pointer():
            right = self.gen_expr(expr.right)
            self.emit("sub r%d, r%d, r%d" % (left, left, right))
            esz = max(lty.target.size, 1)
            if esz != 1:
                self.emit("div r%d, r%d, %d" % (left, left, esz))
            else:
                self.emit("clrbnd r%d, r%d" % (left, left))
            self.release(right)
            return left
        right = self.gen_expr(expr.right)
        if op in self._CMP:
            if lty.is_pointer() or rty.is_pointer():
                mnem, swap = self._CMP_U[op]
                a, b = (right, left) if swap else (left, right)
                self.emit("%s r%d, r%d, r%d" % (mnem, left, a, b))
            else:
                self.emit("%s r%d, r%d, r%d"
                          % (self._CMP[op], left, left, right))
        else:
            self.emit("%s r%d, r%d, r%d"
                      % (self._ARITH[op], left, left, right))
        self.release(right)
        return left

    def _shortcircuit(self, expr: ast.Binary) -> int:
        end = self.new_label("sc")
        result = self.alloc()
        self.emit("mov r%d, %d" % (result, 0 if expr.op == "&&" else 1))
        branch = "beqz" if expr.op == "&&" else "bnez"
        left = self.gen_expr(expr.left)
        self.emit("%s r%d, %s" % (branch, left, end))
        self.release(left)
        right = self.gen_expr(expr.right)
        self.emit("%s r%d, %s" % (branch, right, end))
        self.release(right)
        self.emit("mov r%d, %d" % (result, 1 if expr.op == "&&" else 0))
        self.emit_label(end)
        return result

    def _expr_Assign(self, expr: ast.Assign) -> int:
        if expr.op == "=":
            value = self.gen_expr(expr.value)
            self._store_to_lvalue(expr.target, value)
            return value
        # compound assignment: compute address once
        base_op = expr.op[:-1]
        target = expr.target
        tty = target.ty
        if isinstance(target, ast.Ident) and \
                target.symbol.type.is_scalar():
            current = self._load_from_lvalue(target)
            self._apply_compound(current, base_op, expr.value, tty)
            self.emit("store%s %s, r%d"
                      % (_suffix(target.symbol.type),
                         self._sym_operand(target.symbol), current))
            return current
        addr = self.gen_addr(target, narrow=False)
        current = self.alloc()
        self.emit("load%s r%d, [r%d]" % (_suffix(tty), current, addr))
        self._apply_compound(current, base_op, expr.value, tty)
        self.emit("store%s [r%d], r%d" % (_suffix(tty), addr, current))
        # keep the value, drop the address
        self.emit("mov r%d, r%d" % (addr, current))
        self.release(current)
        return addr

    def _apply_compound(self, current: int, op: str, value: ast.Expr,
                        tty: Type) -> None:
        rhs = self.gen_expr(value)
        if tty.is_pointer():
            esz = max(tty.target.size, 1)
            if esz != 1:
                self.emit("mul r%d, r%d, %d" % (rhs, rhs, esz))
        self.emit("%s r%d, r%d, r%d"
                  % (self._ARITH[op], current, current, rhs))
        self.release(rhs)

    def _expr_Cond(self, expr: ast.Cond) -> int:
        else_label = self.new_label("celse")
        end = self.new_label("cend")
        result = self.alloc()
        cond = self.gen_expr(expr.cond)
        self.emit("beqz r%d, %s" % (cond, else_label))
        self.release(cond)
        then = self.gen_expr(expr.then)
        self.emit("mov r%d, r%d" % (result, then))
        self.release(then)
        self.emit("jmp %s" % end)
        self.emit_label(else_label)
        els = self.gen_expr(expr.els)
        self.emit("mov r%d, r%d" % (result, els))
        self.release(els)
        self.emit_label(end)
        return result

    def _expr_Cast(self, expr: ast.Cast) -> Optional[int]:
        reg = self.gen_expr(expr.operand)
        target = expr.target_type
        if target.is_void():
            if reg is not None:
                self.release(reg)
            return None
        # casts are metadata no-ops (Section 6.1); only a narrowing
        # integer cast generates code
        if target.size == 1 and expr.operand.ty.size == WORD and \
                target.is_integer():
            self.emit("and r%d, r%d, 255" % (reg, reg))
        return reg

    def _expr_Index(self, expr: ast.Index) -> int:
        if expr.ty.is_array():
            # multi-dimensional: the element is itself an array
            return self._index_addr(expr)
        operand = self._static_index_operand(expr)
        if operand is not None:
            reg = self.alloc()
            self.emit("load%s r%d, %s" % (_suffix(expr.ty), reg,
                                          operand))
            return reg
        addr = self._index_addr(expr)
        self.emit("load%s r%d, [r%d]" % (_suffix(expr.ty), addr, addr))
        return addr

    def _expr_Member(self, expr: ast.Member) -> int:
        if expr.field.type.is_array():
            return self._member_addr(expr, narrow=True)
        addr = self._member_addr(expr, narrow=False)
        self.emit("load%s r%d, [r%d]" % (_suffix(expr.ty), addr, addr))
        return addr

    # .. calls ....................................................................

    _BUILTIN_INSNS = {"print": "print", "printc": "printc",
                      "prints": "prints"}

    def _expr_Call(self, expr: ast.Call) -> Optional[int]:
        name = expr.name
        if name == "__setbound":
            return self._builtin_setbound(expr)
        if name in ("__setunsafe", "__clrbnd"):
            reg = self.gen_expr(expr.args[0])
            if self.intrinsics:
                insn = "setunsafe" if name == "__setunsafe" else "clrbnd"
                self.emit("%s r%d, r%d" % (insn, reg, reg))
            return reg
        if name == "__markfree":
            ptr = self.gen_expr(expr.args[0])
            size = self.gen_expr(expr.args[1])
            if self.intrinsics:
                self.emit("markfree r%d, r%d" % (ptr, size))
            self.release(size)
            self.release(ptr)
            return None
        if name in ("__readbase", "__readbound"):
            reg = self.gen_expr(expr.args[0])
            self.emit("%s r%d, r%d" % (name[2:], reg, reg))
            return reg
        if name == "sbrk":
            reg = self.gen_expr(expr.args[0])
            self.emit("sbrk r%d" % reg)
            return reg
        if name in self._BUILTIN_INSNS:
            reg = self.gen_expr(expr.args[0])
            self.emit("%s r%d" % (self._BUILTIN_INSNS[name], reg))
            self.release(reg)
            return None
        if name == "abort":
            reg = self.gen_expr(expr.args[0])
            self.emit("abort r%d" % reg)
            self.release(reg)
            return None
        return self._user_call(expr)

    def _builtin_setbound(self, expr: ast.Call) -> int:
        ptr = self.gen_expr(expr.args[0])
        size_arg = expr.args[1]
        if not self.intrinsics:
            # evaluate a possibly effectful size operand, else skip it
            if not isinstance(size_arg, (ast.IntLit, ast.CharLit,
                                         ast.Ident, ast.SizeofType)):
                size = self.gen_expr(size_arg)
                self.release(size)
            return ptr
        if isinstance(size_arg, ast.IntLit):
            self.emit("setbound r%d, r%d, %d"
                      % (ptr, ptr, size_arg.value))
            return ptr
        if isinstance(size_arg, ast.SizeofType):
            self.emit("setbound r%d, r%d, %d"
                      % (ptr, ptr, size_arg.target_type.size))
            return ptr
        size = self.gen_expr(size_arg)
        self.emit("setbound r%d, r%d, r%d" % (ptr, ptr, size))
        self.release(size)
        return ptr

    def _user_call(self, expr: ast.Call) -> Optional[int]:
        saved = self.depth
        for i in range(_FIRST_TEMP, _FIRST_TEMP + saved):
            self.emit("push r%d" % i)
        self.depth = 0
        for arg in reversed(expr.args):
            reg = self.gen_expr(arg)
            self.emit("push r%d" % reg)
            self.release(reg)
        self.emit("call fn_%s" % expr.name)
        if expr.args:
            self.emit("add sp, sp, %d" % (WORD * len(expr.args)))
        for i in range(_FIRST_TEMP + saved - 1, _FIRST_TEMP - 1, -1):
            self.emit("pop r%d" % i)
        self.depth = saved
        if expr.symbol.type.is_void():
            return None
        result = self.alloc()
        self.emit("mov r%d, r0" % result)
        return result


def _suffix(ty: Type) -> str:
    """Load/store width suffix for a scalar type."""
    return "b" if ty.size == 1 else ""


def generate(unit: ast.TranslationUnit,
             mode: InstrumentMode = InstrumentMode.HARDBOUND,
             optimize_static: bool = False) -> str:
    """Generate assembler text from an analyzed unit."""
    return CodeGen(unit, mode, optimize_static).run()
