"""The report CLI module (corpus path only; figures are benchmarked)."""

import io
import sys

from repro.harness import report


def test_report_corpus_prints_clean_summary(capsys):
    report.report_corpus()
    out = capsys.readouterr().out
    assert "288 pairs" in out
    assert "0 false positives" in out
    assert "MISSED" not in out


def test_main_rejects_unknown_topic(capsys):
    assert report.main(["report", "nonsense"]) == 2
    assert "Usage" in capsys.readouterr().out


def test_main_corpus_topic(capsys):
    assert report.main(["report", "corpus"]) == 0
    assert "288" in capsys.readouterr().out
