"""Olden workloads: each runs clean on the plain core AND under full
HardBound with identical output (instrumentation must not change
semantics), which is the paper's correctness requirement for its
performance runs.
"""

import pytest

from repro.machine import MachineConfig
from repro.minic import compile_and_run
from repro.workloads import WORKLOADS
from repro.workloads.registry import MST_UNTIGHTENED

PLAIN = MachineConfig.plain(timing=False)
HB = MachineConfig.hardbound(timing=False)

_cache = {}


def run_both(name, source):
    """Run a workload on both cores (memoized); return both results."""
    if name not in _cache:
        _cache[name] = (compile_and_run(source, PLAIN),
                        compile_and_run(source, HB))
    return _cache[name]


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_workload_runs_and_is_instrumentation_invariant(name):
    wl = WORKLOADS[name]
    plain, hb = run_both(name, wl.source)
    assert plain.exit_code == 0
    assert hb.exit_code == 0
    assert plain.output == hb.output, \
        "HardBound instrumentation changed %s's semantics" % name
    assert plain.output.strip(), "workload %s produced no checksum" % name
    if wl.expected_output is not None:
        assert plain.output == wl.expected_output


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_workload_is_pointer_intensive(name):
    """Sanity: the HardBound run actually performs bounds checks."""
    _plain, hb = run_both(name, WORKLOADS[name].source)
    checks = hb.hb_stats.checks
    assert checks > 100, "%s: only %d checks" % (name, checks)
    assert hb.hb_stats.setbound_uops > 0


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_workload_fits_simulation_budget(name):
    """Keep the suite fast: each benchmark under ~2M instructions."""
    plain, _hb = run_both(name, WORKLOADS[name].source)
    assert plain.instructions < 2_000_000


def test_mst_untightened_variant_matches_output():
    tight_plain, _ = run_both("mst", WORKLOADS["mst"].source)
    loose = compile_and_run(MST_UNTIGHTENED.source, HB)
    assert loose.output == tight_plain.output


def test_mst_tightening_reduces_incompressible_traffic():
    """Section 5.3: tightening makes bucket pointers compressible."""
    _, tight = run_both("mst", WORKLOADS["mst"].source)
    loose = compile_and_run(MST_UNTIGHTENED.source, HB)
    assert tight.hb_stats.compression_ratio() >= \
        loose.hb_stats.compression_ratio()
