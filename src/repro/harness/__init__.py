"""Experiment harness: violation corpus, runners and figure tables.

The names in ``__all__`` are the harness's stable public surface
(documented in docs/SERVICE.md and README; guarded by
``tests/service/test_public_api.py`` so it cannot silently shrink):
serial running (:func:`run_workload`, :func:`run_benchmark_matrix`),
sharded/cached running (:func:`map_jobs`, :class:`ResultCache`,
:func:`run_benchmark_matrix_parallel`), declarative sweeps
(:class:`SweepSpec`, :func:`run_sweep`) and the figure tables.  The
old per-sweep entry points (``sweep_*_parallel``) remain importable
but are deprecated wrappers over :func:`run_sweep`.
"""

from repro.harness.violations import (
    ViolationCase,
    generate_corpus,
    run_corpus,
    CorpusResult,
)
from repro.harness.runner import (
    BenchmarkRun,
    run_workload,
    run_benchmark_matrix,
)
from repro.harness.parallel import (
    ResultCache,
    map_jobs,
    run_benchmark_matrix_parallel,
)
from repro.harness.sweep_api import (
    SweepSpec,
    run_sweep,
)
from repro.harness.figures import (
    figure5_table,
    figure6_table,
    figure7_table,
    check_uop_ablation_table,
    format_table,
)

__all__ = [
    "ViolationCase",
    "generate_corpus",
    "run_corpus",
    "CorpusResult",
    "BenchmarkRun",
    "run_workload",
    "run_benchmark_matrix",
    "ResultCache",
    "map_jobs",
    "run_benchmark_matrix_parallel",
    "SweepSpec",
    "run_sweep",
    "figure5_table",
    "figure6_table",
    "figure7_table",
    "check_uop_ablation_table",
    "format_table",
]
