"""bisort: bitonic sort over a binary tree (Olden).

The authentic Olden algorithm: a complete binary tree holds random
values; ``bisort`` recursively sorts the two halves in opposite
directions and ``bimerge`` merges them by swapping values and whole
subtrees while walking two cursors down the tree.  Heavy on pointer
swaps and value/pointer mixing.
"""

LEVELS = 7  # 2**7 - 1 = 127 in-tree values + the spare value

SOURCE = """
struct node {
    int value;
    struct node *left;
    struct node *right;
};

int __nextval;

int nextval() {
    __nextval = __nextval * 1103515245 + 12345;
    return (__nextval >> 8) & 16383;
}

struct node *build(int level) {
    if (level == 0) { return (struct node*)0; }
    struct node *n = (struct node*)malloc(sizeof(struct node));
    n->value = nextval();
    n->left = build(level - 1);
    n->right = build(level - 1);
    return n;
}

int bimerge(struct node *root, int sprval, int dir) {
    int rightexchange;
    int elementexchange;
    int temp;
    struct node *pl;
    struct node *pr;
    struct node *tmpn;
    rightexchange = ((root->value > sprval) != dir);
    if (rightexchange) {
        temp = root->value;
        root->value = sprval;
        sprval = temp;
    }
    pl = root->left;
    pr = root->right;
    while (pl) {
        elementexchange = ((pl->value > pr->value) != dir);
        if (rightexchange) {
            if (elementexchange) {
                temp = pl->value;
                pl->value = pr->value;
                pr->value = temp;
                tmpn = pl->right;
                pl->right = pr->right;
                pr->right = tmpn;
                pl = pl->left;
                pr = pr->left;
            } else {
                pl = pl->right;
                pr = pr->right;
            }
        } else {
            if (elementexchange) {
                temp = pl->value;
                pl->value = pr->value;
                pr->value = temp;
                tmpn = pl->left;
                pl->left = pr->left;
                pr->left = tmpn;
                pl = pl->right;
                pr = pr->right;
            } else {
                pl = pl->left;
                pr = pr->left;
            }
        }
    }
    if (root->left) {
        root->value = bimerge(root->left, root->value, dir);
        sprval = bimerge(root->right, sprval, dir);
    }
    return sprval;
}

int bisort(struct node *root, int sprval, int dir) {
    int temp;
    if (!root->left) {
        if ((root->value > sprval) != dir) {
            temp = root->value;
            root->value = sprval;
            sprval = temp;
        }
    } else {
        root->value = bisort(root->left, root->value, dir);
        sprval = bisort(root->right, sprval, !dir);
        sprval = bimerge(root, sprval, dir);
    }
    return sprval;
}

int __pos;
int __checksum;
int __sorted;
int __prev;

void walk(struct node *t) {
    if (!t) { return; }
    walk(t->left);
    __pos = __pos + 1;
    __checksum = (__checksum + t->value * __pos) %% 1000003;
    if (t->value < __prev) { __sorted = 0; }
    __prev = t->value;
    walk(t->right);
}

int main() {
    __nextval = 12345;
    struct node *root = build(%(levels)d);
    int spare = nextval();
    spare = bisort(root, spare, 0);
    __pos = 0;
    __checksum = 0;
    __sorted = 1;
    __prev = -1;
    walk(root);
    if (spare < __prev) { __sorted = 0; }
    print(__sorted);
    print(__checksum);
    return 0;
}
""" % {"levels": LEVELS}

#: first line asserts sortedness; checksum validated cross-config
EXPECTED_FIRST_LINE = "1"
