"""Shared content-addressed result store for the simulation service.

:class:`ResultStore` generalizes the harness's
:class:`~repro.harness.parallel.ResultCache` — same on-disk format
(``<sha256-of-descriptor>.pkl`` pickles), same content-hash keys —
into a store that several long-lived worker processes publish into
*concurrently*:

* **atomic publish** — every ``put`` writes a per-pid temp file and
  ``os.replace``\\ s it into place, so a reader can never observe a
  half-written entry regardless of how many workers race on the same
  key (last writer wins, and both wrote the same content-addressed
  result anyway);
* **lock-free reads** — ``get`` is a plain ``open``; there is no
  lock file, no shared mutex, nothing a crashed process can leave
  held.  An entry that fails to unpickle (torn write from a killed
  worker, damage at rest) is counted under ``corrupt`` and deleted
  so the next writer repairs it;
* **an index file** (``index.jsonl``) — every publish appends one
  JSON line (key, pid, optional metadata) in a single ``O_APPEND``
  ``write(2)``, the same concurrent-append idiom as the obs event
  log.  The index makes the store *enumerable* (which cells exist,
  who produced them) without stat'ing thousands of pickles; the
  directory listing stays the ground truth (:meth:`keys`), since
  index lines survive entry deletion.

Because the format is identical, a service pointed at the harness's
``.repro-cache`` directory serves every cell any previous sweep ever
cached — and sweeps run *without* the service keep hitting cells the
service's workers published.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Set

from repro.harness.parallel import ResultCache

#: enumeration sidecar appended on every publish
INDEX_NAME = "index.jsonl"


class ResultStore(ResultCache):
    """Concurrent-writer-safe, enumerable result store (see module)."""

    def __init__(self, path: str):
        super().__init__(path)
        self.index_path = os.path.join(path, INDEX_NAME)

    # -- publication ---------------------------------------------------------

    def put(self, key: str, result, meta: Optional[dict] = None) -> None:
        """Publish one entry atomically and append its index line."""
        super().put(key, result)
        record: Dict = {"key": key, "pid": os.getpid()}
        if meta:
            record["meta"] = meta
        line = (json.dumps(record, sort_keys=True, default=str)
                + "\n").encode("utf-8")
        fd = os.open(self.index_path,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    # -- enumeration ---------------------------------------------------------

    def keys(self) -> Set[str]:
        """Every published key, from the directory (ground truth)."""
        try:
            names = os.listdir(self.path)
        except OSError:
            return set()
        return {name[:-4] for name in names if name.endswith(".pkl")}

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._file(key))

    def index(self) -> Iterator[dict]:
        """Yield every index record in publish order.

        Tolerates a torn final line (a writer killed mid-append) the
        same way the obs event reader does; keys may repeat when
        several workers published the same cell.
        """
        try:
            fh = open(self.index_path, "r", encoding="utf-8")
        except OSError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    continue

    def entries(self) -> List[dict]:
        """Deduplicated index records (last publish per key wins),
        restricted to keys whose pickle still exists on disk."""
        latest: Dict[str, dict] = {}
        for record in self.index():
            key = record.get("key")
            if key:
                latest[key] = record
        live = self.keys()
        return [record for key, record in sorted(latest.items())
                if key in live]
