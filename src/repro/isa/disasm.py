"""Single-instruction disassembler (debugging and round-trip tests)."""

from __future__ import annotations

from repro.isa.opcodes import Op, reg_name
from repro.layout import to_signed

_SIZE_SUFFIX = {1: "b", 2: "h", 4: ""}


def disassemble(instr) -> str:
    """Render ``instr`` back to assembler syntax.

    The output re-assembles to an equal instruction (module branch
    targets, which print as resolved indices via an ``@N`` comment).
    """
    op = instr.op
    rd = reg_name(instr.rd) if instr.rd is not None else None
    rs = reg_name(instr.rs) if instr.rs is not None else None
    rt = reg_name(instr.rt) if instr.rt is not None else None

    def src2():
        return rt if rt is not None else str(to_signed(instr.imm or 0))

    if op is Op.MOV:
        return "mov %s, %s" % (rd, rs if rs is not None else
                               str(to_signed(instr.imm or 0)))
    if op in (Op.NEG, Op.NOT, Op.XCHG, Op.READBASE, Op.READBOUND,
              Op.SETUNSAFE, Op.CLRBND):
        return "%s %s, %s" % (op.value, rd, rs)
    if op is Op.LEA:
        return "lea %s, %s" % (rd, instr.mem_operand_str())
    if op is Op.LOAD:
        return "load%s %s, %s" % (_SIZE_SUFFIX[instr.size], rd,
                                  instr.mem_operand_str())
    if op is Op.STORE:
        return "store%s %s, %s" % (_SIZE_SUFFIX[instr.size],
                                   instr.mem_operand_str(), rd)
    if op is Op.SETBOUND:
        return "setbound %s, %s, %s" % (rd, rs, src2())
    if op is Op.SETCODE:
        if rs is not None:
            return "setcode %s, %s" % (rd, rs)
        return "setcode %s, %s" % (rd, instr.label or "@%d" % instr.target)
    if op is Op.JMP:
        return "jmp %s" % (instr.label or "@%d" % instr.target)
    if op in (Op.BEQZ, Op.BNEZ):
        return "%s %s, %s" % (op.value, rs,
                              instr.label or "@%d" % instr.target)
    if op is Op.CALL:
        return "call %s" % (instr.label or "@%d" % instr.target)
    if op is Op.CALLR:
        return "callr %s" % rs
    if op is Op.RET:
        return "ret"
    if op is Op.MARKFREE:
        return "markfree %s, %s" % (rs, src2())
    if op in (Op.SBRK, Op.PRINT, Op.PRINTC, Op.PRINTS):
        return "%s %s" % (op.value, rs)
    if op in (Op.HALT, Op.ABORT):
        if rs is not None:
            return "%s %s" % (op.value, rs)
        return "%s %d" % (op.value, instr.imm or 0)
    # generic three-operand ALU
    return "%s %s, %s, %s" % (op.value, rd, rs, src2())
