"""Workload registry metadata."""

from repro.workloads import WORKLOADS, get_workload, workload_names
from repro.workloads.registry import MST_UNTIGHTENED

import pytest


def test_nine_benchmarks_in_figure_order():
    assert workload_names() == [
        "bh", "bisort", "em3d", "health", "mst", "perimeter",
        "power", "treeadd", "tsp"]


def test_every_workload_has_source_and_description():
    for name, wl in WORKLOADS.items():
        assert wl.name == name
        assert "int main()" in wl.source
        assert len(wl.description) > 10


def test_get_workload():
    assert get_workload("mst") is WORKLOADS["mst"]
    with pytest.raises(KeyError, match="unknown workload"):
        get_workload("specint")


def test_mst_variants_differ_only_in_bucket_pointers():
    tight = WORKLOADS["mst"].source
    loose = MST_UNTIGHTENED.source
    assert tight != loose
    assert "__setbound" in tight
    assert "__setbound" not in loose


def test_treeadd_expected_output_matches_formula():
    wl = WORKLOADS["treeadd"]
    assert wl.expected_output is not None
    assert wl.expected_output.strip().isdigit()


def test_workload_repr():
    assert repr(WORKLOADS["bh"]) == "<Workload bh>"
