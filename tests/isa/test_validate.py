"""Program validator, including a sweep over all compiled artifacts."""

import pytest

from repro.isa import Instruction, Op, assemble
from repro.isa.validate import (
    ValidationError,
    validate_instruction,
    validate_program,
)
from repro.minic import InstrumentMode, compile_program
from repro.workloads import WORKLOADS


def test_valid_program_passes():
    prog = assemble("""
    main:
        mov r1, 5
        setbound r2, r1, 4
        load r3, [r2]
        beqz r3, done
    done:
        halt 0
    """)
    assert validate_program(prog) == []


def test_bad_register_index():
    instr = Instruction(Op.ADD, rd=99, rs=1, imm=0)
    with pytest.raises(ValidationError, match="bad rd"):
        validate_instruction(0, instr, 10)


def test_missing_operand():
    with pytest.raises(ValidationError, match="needs rt or imm"):
        validate_instruction(0, Instruction(Op.ADD, rd=1, rs=2), 10)
    with pytest.raises(ValidationError, match="mov needs"):
        validate_instruction(0, Instruction(Op.MOV, rd=1), 10)


def test_unresolved_branch():
    with pytest.raises(ValidationError, match="unresolved"):
        validate_instruction(0, Instruction(Op.JMP), 10)


def test_branch_out_of_range():
    with pytest.raises(ValidationError, match="out of range"):
        validate_instruction(0, Instruction(Op.JMP, target=50), 10)


def test_bad_size_and_scale():
    with pytest.raises(ValidationError, match="bad access size"):
        validate_instruction(
            0, Instruction(Op.LOAD, rd=1, rs=2, size=3), 10)
    with pytest.raises(ValidationError, match="bad scale"):
        validate_instruction(
            0, Instruction(Op.LOAD, rd=1, rs=2, rt=3, scale=5), 10)


def test_fall_off_warning():
    prog = assemble("main:\n  mov r1, 1\n")
    warnings = validate_program(prog)
    assert any("fall off" in w for w in warnings)


def test_empty_program_rejected():
    from repro.isa.program import Program
    with pytest.raises(ValidationError, match="empty"):
        validate_program(Program([], {}))


@pytest.mark.parametrize("name", list(WORKLOADS))
@pytest.mark.parametrize("mode", list(InstrumentMode))
def test_all_workload_binaries_validate(name, mode):
    """Every compiler output for every mode is structurally sound."""
    program = compile_program(WORKLOADS[name].source, mode)
    assert validate_program(program) == []
