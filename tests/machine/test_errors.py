"""Trap classes: messages, pc attachment, kinds."""

import pytest

from repro.machine import (
    AbortError,
    BoundsError,
    DoubleFreeError,
    MemoryFault,
    NonPointerError,
    SimError,
    Trap,
    UseAfterFreeError,
)
from repro.machine.errors import DivideByZeroError, HaltSignal


def test_hierarchy():
    for cls in (BoundsError, NonPointerError, MemoryFault,
                UseAfterFreeError, DoubleFreeError, AbortError,
                DivideByZeroError):
        assert issubclass(cls, Trap)
        assert issubclass(cls, SimError)
    assert not issubclass(HaltSignal, SimError)


def test_bounds_error_fields_and_message():
    err = BoundsError(0x1005, 0x1000, 0x1004, "read")
    assert err.addr == 0x1005
    assert err.base == 0x1000
    assert err.bound == 0x1004
    assert "read" in str(err)
    assert "0x00001005" in str(err)
    assert err.kind == "bounds"


def test_at_is_idempotent():
    err = BoundsError(5, 0, 4, "write")
    err.at(17)
    message = str(err)
    err.at(99)
    assert str(err) == message
    assert err.pc == 17
    assert "pc=17" in str(err)


def test_kinds_are_distinct():
    kinds = {cls.kind for cls in (BoundsError, NonPointerError,
                                  MemoryFault, UseAfterFreeError,
                                  DoubleFreeError, AbortError)}
    assert len(kinds) == 6


def test_abort_carries_code():
    with pytest.raises(AbortError) as exc:
        raise AbortError(42)
    assert exc.value.code == 42
