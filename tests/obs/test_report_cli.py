"""The obs report CLI over synthetic and real event streams."""

import json

import pytest

from repro.harness.runner import run_workload
from repro.machine.config import MachineConfig
from repro.obs.events import EventLog
from repro.obs import report
from repro.obs.report import (
    RunSummary,
    diff_bench,
    diff_events,
    hot_traces_table,
    load_artifact,
    phase_table,
    render_summary,
    runs_table,
    side_exit_table,
    summarize,
)


def synthetic_run(label, cycles=1000, dispatches=50, exits=5):
    """One run's worth of events, in emission order."""
    return [
        {"ev": "run_start",
         "manifest": {"label": label, "engine": "superblocks",
                      "mode": "off"}},
        {"ev": "trace_formed", "head": 10, "blocks": 4, "instrs": 20,
         "has_call": True, "source": "profile"},
        {"ev": "trace_profile", "head": 10, "pc_lo": 10, "pc_hi": 40,
         "blocks": 4, "instrs": 20, "dispatches": dispatches,
         "side_exits": exits, "has_call": True},
        {"ev": "trace_profile", "head": 50, "pc_lo": 50, "pc_hi": 60,
         "blocks": 2, "instrs": 8, "dispatches": dispatches // 2,
         "side_exits": 0, "has_call": False},
        {"ev": "side_exit_profile", "head": 10, "branch_pc": 23,
         "count": exits},
        {"ev": "demotions", "count": 0},
        {"ev": "run_end", "exit_code": 0, "instructions": 5000,
         "uops": 5100, "stall_cycles": 10, "cycles": cycles,
         "phases": {"decode": 0.01, "cfg_fusion": 0.02,
                    "trace_formation": 0.1, "execute": 0.5},
         "engine_stats": {"traces_formed": 2,
                          "trace_dispatches": dispatches * 3 // 2,
                          "side_exit_rate": 0.1}},
    ]


def synthetic_bench(seconds, speedup, ratio=1.01):
    return {
        "seconds": {"functional": {"blocks": seconds},
                    "timed": {"blocks": seconds * 2,
                              "superblocks": seconds}},
        "speedups": {"timed": {"superblocks_vs_decoded": speedup}},
        "trace_stats": {"traces_formed": 100,
                        "mean_trace_blocks": 6.5},
        "obs_overhead": {"ratio": ratio},
    }


class TestSummaries:
    def test_summarize_groups_and_labels(self):
        events = synthetic_run("treeadd") + synthetic_run("bisort")
        runs = summarize(events)
        assert [r.label for r in runs] == ["treeadd/superblocks/off",
                                           "bisort/superblocks/off"]
        assert runs[0].stats["cycles"] == 1000
        assert len(runs[0].trace_profiles) == 2
        assert len(runs[0].side_exit_profiles) == 1
        assert not runs[0].aborted

    def test_summarize_ignores_leading_noise(self):
        events = [{"ev": "sweep_summary", "hits": 3}] \
            + synthetic_run("treeadd")
        assert len(summarize(events)) == 1

    def test_aborted_run(self):
        events = [
            {"ev": "run_start", "manifest": {"engine": "blocks"}},
            {"ev": "run_abort", "error": "TrapError", "pc": 99,
             "instructions": 12, "phases": {"execute": 0.1}},
        ]
        [run] = summarize(events)
        assert run.aborted
        text = runs_table([run])
        assert "abort" in text


class TestTables:
    def test_runs_table_shows_engine_stats(self):
        runs = summarize(synthetic_run("treeadd"))
        text = runs_table(runs)
        assert "treeadd/superblocks" in text
        assert "75" in text       # trace dispatches
        assert "0.100" in text    # side-exit rate

    def test_phase_table_nets_out_trace_formation(self):
        runs = summarize(synthetic_run("treeadd"))
        text = phase_table(runs)
        # execute 0.5s minus nested formation 0.1s
        assert "0.4000s" in text
        assert "0.1000s" in text

    def test_phase_table_totals_across_runs(self):
        runs = summarize(synthetic_run("a") + synthetic_run("b"))
        text = phase_table(runs)
        assert "TOTAL" in text

    def test_hot_traces_sorted_and_capped(self):
        runs = summarize(synthetic_run("a", dispatches=50)
                         + synthetic_run("b", dispatches=80))
        text = hot_traces_table(runs, top=2)
        lines = text.splitlines()
        # top-2: b's head-10 trace (80) then a's head-10 trace (50)
        # title + rule + header + header-rule + two trace rows
        assert len(lines) == 6
        assert lines[-2].startswith("b/superblocks")
        assert "10..40" in lines[-2]
        assert lines[-1].startswith("a/superblocks")

    def test_side_exit_heatmap_bars_scale_to_peak(self):
        runs = summarize(synthetic_run("a", exits=8)
                         + synthetic_run("b", exits=2))
        text = side_exit_table(runs, width=8)
        assert "########" in text
        assert "##" in text

    def test_render_summary_empty_stream(self):
        assert "no runs recorded" in render_summary([])

    def test_render_summary_has_all_sections(self):
        text = render_summary(synthetic_run("treeadd"))
        assert "Runs" in text
        assert "Phase times" in text
        assert "Hot traces" in text
        assert "Side-exit heatmap" in text


class TestDiffs:
    def test_diff_events_matches_by_label(self):
        a = synthetic_run("treeadd", cycles=1000)
        b = synthetic_run("treeadd", cycles=1100) \
            + synthetic_run("bisort")
        text = diff_events(a, b)
        assert "+10.0%" in text
        # bisort exists only in B: dashed row, not a crash
        assert "bisort/superblocks" in text

    def test_diff_bench_tables(self):
        a = synthetic_bench(2.0, 2.5, ratio=1.00)
        b = synthetic_bench(1.0, 2.6, ratio=1.02)
        text = diff_bench(a, b)
        assert "timed sweep seconds" in text
        assert "-50.0%" in text
        assert "2.50x" in text
        assert "2.60x" in text
        assert "Instrumentation overhead" in text
        assert "1.02" in text


class TestLoadArtifact:
    def test_classifies_bench_record(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(synthetic_bench(1.0, 2.5)))
        kind, data = load_artifact(str(path))
        assert kind == "bench"
        assert "speedups" in data

    def test_classifies_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("".join(json.dumps(e) + "\n"
                                for e in synthetic_run("t")))
        kind, data = load_artifact(str(path))
        assert kind == "events"
        assert data[0]["ev"] == "run_start"


def write_jsonl(path, events):
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return str(path)


class TestCli:
    def test_summary_command(self, tmp_path, capsys):
        path = write_jsonl(tmp_path / "run.jsonl",
                           synthetic_run("treeadd"))
        assert report.main(["summary", path]) == 0
        out = capsys.readouterr().out
        assert "treeadd/superblocks" in out
        assert "Hot traces" in out

    def test_bare_path_shorthand(self, tmp_path, capsys):
        path = write_jsonl(tmp_path / "run.jsonl",
                           synthetic_run("treeadd"))
        assert report.main([path]) == 0
        assert "treeadd/superblocks" in capsys.readouterr().out

    def test_top_flag_limits_hot_traces(self, tmp_path, capsys):
        path = write_jsonl(tmp_path / "run.jsonl",
                           synthetic_run("treeadd"))
        assert report.main(["summary", path, "--top", "1"]) == 0
        assert "top 1" in capsys.readouterr().out

    def test_diff_command_events(self, tmp_path, capsys):
        a = write_jsonl(tmp_path / "a.jsonl",
                        synthetic_run("t", cycles=1000))
        b = write_jsonl(tmp_path / "b.jsonl",
                        synthetic_run("t", cycles=1200))
        assert report.main(["diff", a, b]) == 0
        assert "+20.0%" in capsys.readouterr().out

    def test_diff_command_bench(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(synthetic_bench(2.0, 2.5)))
        b.write_text(json.dumps(synthetic_bench(1.9, 2.55)))
        assert report.main(["diff", str(a), str(b)]) == 0
        assert "timed speedups" in capsys.readouterr().out

    def test_diff_rejects_mixed_kinds(self, tmp_path, capsys):
        a = write_jsonl(tmp_path / "a.jsonl", synthetic_run("t"))
        b = tmp_path / "b.json"
        b.write_text(json.dumps(synthetic_bench(1.0, 2.5)))
        with pytest.raises(SystemExit):
            report.main(["diff", a, str(b)])

    def test_summary_rejects_bench_record(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps(synthetic_bench(1.0, 2.5)))
        with pytest.raises(SystemExit):
            report.main(["summary", str(path)])

    def test_summary_wants_exactly_one_path(self):
        with pytest.raises(SystemExit):
            report.main(["summary"])
        with pytest.raises(SystemExit):
            report.main(["diff", "only-one"])


class TestRealRun:
    """The CLI renders a real engine's event stream end to end."""

    def test_real_superblocks_trace_renders(self, tmp_path, capsys):
        path = str(tmp_path / "real.jsonl")
        run_workload("treeadd",
                     MachineConfig.plain(timing=False,
                                         engine="superblocks",
                                         obs_events=path))
        assert report.main(["summary", path]) == 0
        out = capsys.readouterr().out
        assert "treeadd/superblocks" in out
        assert "Hot traces" in out
