"""E9 (extension) — tag-metadata-cache size sensitivity.

Section 4.2 sizes the tag cache at 2KB (1-bit tags) / 8KB (4-bit
tags) on the argument that a 2KB tag cache covers a 64KB L1's worth
of data.  This ablation sweeps the tag cache size and shows the
knee: halving below the paper's choice costs cycles, growing beyond
it buys little.
"""

from conftest import write_result

from repro.caches.hierarchy import CacheParams
from repro.harness.runner import run_workload
from repro.machine.config import MachineConfig
from repro.harness.figures import format_table

SIZES = (512, 1024, 2048, 8192, 32768)
BENCHES = ("em3d", "health", "treeadd")


def test_tag_cache_sweep(benchmark):
    def sweep():
        rows = []
        results = {}
        for name in BENCHES:
            cycles_by_size = {}
            for size in SIZES:
                params = CacheParams(tag_cache_size=size)
                # retain_cpu: this sweep inspects the tag cache itself
                run = run_workload(
                    name, MachineConfig.hardbound(encoding="extern4",
                                                  retain_cpu=True),
                    cache_params=params)
                cycles_by_size[size] = run.cycles
                rows.append([name, "%dB" % size, "%d" % run.cycles,
                             "%.4f" % run.cpu.memsys.tag_cache
                             .miss_rate()])
            results[name] = cycles_by_size
        return rows, results

    rows, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(["benchmark", "tag-cache", "cycles",
                          "tag-miss-rate"], rows,
                         "E9: tag cache size sensitivity (extern4)")
    print("\n" + table)
    write_result("tagcache_sweep.txt", table)

    for name, by_size in results.items():
        # a larger tag cache never makes things slower
        assert by_size[32768] <= by_size[512], name
        # the paper's 8KB choice (for 4-bit tags) captures most of the
        # benefit: growing 4x further changes cycles by < 2%
        assert abs(by_size[32768] - by_size[8192]) \
            <= 0.02 * by_size[8192], name
