"""Sensitivity sweeps (``repro.harness.sweeps``): direct coverage.

The sweeps defend the Figure-7 conclusion across the calibration
range; until now they were only exercised indirectly through the
benchmark harness.  One small workload keeps every sweep fast while
still asserting the *shape* of each result — overheads above 1.0,
monotone in the knob — plus parity between the serial and sharded
code paths.
"""

import pytest

from repro.baselines.fatptr import SoftBoundEngine
from repro.harness.sweeps import (
    _engine_factory,
    hardbound_average,
    sweep_ccured_safe_fraction,
    sweep_objtable_elision,
    sweep_rows,
)

WORKLOAD = ["treeadd"]


@pytest.fixture(scope="module")
def ccured_sweep():
    return sweep_ccured_safe_fraction(WORKLOAD, (0.1, 0.9))


@pytest.fixture(scope="module")
def objtable_sweep():
    return sweep_objtable_elision(WORKLOAD, (0.0, 0.95))


class TestCcuredSweep:
    def test_returns_one_overhead_per_fraction(self, ccured_sweep):
        assert set(ccured_sweep) == {0.1, 0.9}

    def test_overheads_exceed_baseline(self, ccured_sweep):
        assert all(value > 1.0 for value in ccured_sweep.values())

    def test_more_safe_pointers_means_less_overhead(self,
                                                    ccured_sweep):
        assert ccured_sweep[0.9] < ccured_sweep[0.1]


class TestObjtableSweep:
    def test_returns_one_overhead_per_fraction(self, objtable_sweep):
        assert set(objtable_sweep) == {0.0, 0.95}

    def test_overheads_exceed_baseline(self, objtable_sweep):
        assert all(value > 1.0 for value in objtable_sweep.values())

    def test_more_elision_means_less_overhead(self, objtable_sweep):
        assert objtable_sweep[0.95] < objtable_sweep[0.0]

    def test_sharded_path_matches_serial(self, objtable_sweep):
        sharded = sweep_objtable_elision(WORKLOAD, (0.0, 0.95),
                                         workers=2)
        for fraction, value in objtable_sweep.items():
            assert sharded[fraction] == pytest.approx(value)


class TestHardboundAverage:
    def test_between_one_and_the_software_schemes(self, ccured_sweep,
                                                  objtable_sweep):
        hb = hardbound_average(WORKLOAD)
        assert 1.0 < hb
        # the paper's conclusion at the calibrated points: hardware
        # bounds checking beats both software baselines
        assert hb < ccured_sweep[0.1]
        assert hb < objtable_sweep[0.0]


class TestPlumbing:
    def test_sweep_rows_shape(self):
        rows = sweep_rows({0.5: 1.25, 0.1: 2.0}, "ccured")
        assert rows == [["ccured", "0.10", "2.000"],
                        ["ccured", "0.50", "1.250"]]

    def test_engine_factory_binds_safe_fraction(self):
        factory = _engine_factory(0.37)
        engine = factory("uncompressed", None, False, False)
        assert isinstance(engine, SoftBoundEngine)
        assert engine.safe_fraction == 0.37
