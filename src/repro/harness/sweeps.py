"""Sensitivity analysis for the software-baseline calibration.

The CCured and JK/RL/DA baselines embed two constants standing in for
whole-program analyses we do not reimplement (DESIGN.md): the CCured
SAFE/SEQ inference rate and the object table's static elision rate.
These sweeps quantify how the Figure-7 *conclusion* — HardBound beats
the software schemes — depends on them: it must hold over the entire
plausible range, not just at the calibrated point.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.baselines.fatptr import SoftBoundEngine
from repro.baselines.objtable import ObjectTableModel
from repro.machine.config import MachineConfig, SafetyMode
from repro.machine.cpu import CPU
from repro.harness.runner import compile_cached, run_workload
from repro.minic.driver import mode_for_config
from repro.workloads.registry import WORKLOADS


def _engine_factory(safe_fraction: float):
    def factory(encoding, memsys, check_uop, check_access_extent):
        return SoftBoundEngine(encoding, memsys, check_uop,
                               check_access_extent,
                               safe_fraction=safe_fraction)
    return factory


def sweep_ccured_safe_fraction(
        workloads: Iterable[str],
        fractions: Iterable[float],
        workers: Optional[int] = None) -> Dict[float, float]:
    """Average CCured-sim runtime overhead per SAFE fraction.

    With ``workers``, the (workload × fraction) grid is sharded
    across processes by the parallel harness.
    """
    if workers is not None and workers > 1:
        from repro.harness.sweep_api import SweepSpec, run_sweep
        return run_sweep(
            SweepSpec(kind="ccured", workloads=tuple(workloads),
                      grid=tuple(fractions)), workers=workers)
    out: Dict[float, float] = {}
    names = list(workloads)
    bases = {name: run_workload(name, MachineConfig.plain())
             for name in names}
    for fraction in fractions:
        config = MachineConfig(
            mode=SafetyMode.FULL, encoding="uncompressed",
            engine_factory=_engine_factory(fraction))
        total = 0.0
        for name in names:
            program = compile_cached(WORKLOADS[name].source,
                                     mode_for_config(config))
            run = CPU(program, config).run()
            total += run.cycles / bases[name].cycles
        out[fraction] = total / len(names)
    return out


def sweep_objtable_elision(
        workloads: Iterable[str],
        fractions: Iterable[float],
        workers: Optional[int] = None) -> Dict[float, float]:
    """Average object-table runtime overhead per elision fraction.

    With ``workers``, the (workload × fraction) grid is sharded
    across processes by the parallel harness.
    """
    if workers is not None and workers > 1:
        from repro.harness.sweep_api import SweepSpec, run_sweep
        return run_sweep(
            SweepSpec(kind="objtable", workloads=tuple(workloads),
                      grid=tuple(fractions)), workers=workers)
    out: Dict[float, float] = {}
    names = list(workloads)
    bases = {name: run_workload(name, MachineConfig.plain())
             for name in names}
    for fraction in fractions:
        total = 0.0
        for name in names:
            model = ObjectTableModel(elide_fraction=fraction)
            run_workload(name, MachineConfig.hardbound(timing=False),
                         observer=model)
            total += (bases[name].cycles + model.extra_uops) \
                / bases[name].cycles
        out[fraction] = total / len(names)
    return out


def hardbound_average(workloads: Iterable[str],
                      encoding: str = "intern11") -> float:
    """Average HardBound overhead on the same workload subset."""
    names = list(workloads)
    total = 0.0
    for name in names:
        base = run_workload(name, MachineConfig.plain())
        run = run_workload(
            name, MachineConfig.hardbound(encoding=encoding))
        total += run.cycles / base.cycles
    return total / len(names)


def sweep_rows(sweep: Dict[float, float],
               label: str) -> List[List[str]]:
    """Format a sweep as table rows."""
    return [[label, "%.2f" % fraction, "%.3f" % overhead]
            for fraction, overhead in sorted(sweep.items())]
