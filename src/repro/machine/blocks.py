"""Basic-block fusion execution engine.

The decoded engine (:mod:`repro.machine.decode`) pays a fixed
dispatch tax per *instruction*: a list index, an instruction-limit
compare, a faulting-pc bookkeeping store, a closure call and a
next-pc select.  This module amortizes that tax over straight-line
runs:

1. **Block discovery** — a linear pass over the linked program finds
   block leaders (the entry point, branch/call targets, fallthrough
   points after control transfers, and ``setcode`` immediates, which
   are the ISA's function-pointer constants) and grows each leader
   into a maximal straight-line block, giving a CFG of
   :class:`BasicBlock` nodes.

2. **Superinstruction fusion** — each block is compiled into one
   *block closure*: a generated function executing the whole block
   in a single call.  Hot handler shapes (``mov``, ``add``/``sub``,
   compares, non-propagating ALU, branches, ``call``/``callr``/
   ``ret``, and word ``load``/``store``) are inlined as source
   templates with their operands passed in as closure cells;
   everything else (sub-word memory operations, ablated or
   substituted metadata engines, HardBound primitives, environment
   calls) calls the instruction's decoded closure from
   :func:`repro.machine.decode.decode_program` unchanged.  Generated
   code objects are cached by the block's *shape signature*, so two
   blocks with the same instruction shapes share one compilation.

   The fused memory templates inline the whole load/store body:
   effective-address arithmetic, the HardBound bounds check, the
   flat-heap segment check (which doubles as arena routing — see
   :mod:`repro.machine.memory`), the word-view access, the
   :class:`~repro.caches.fast.FastMemorySystem` word+tag probe with
   its composite-MRU short circuit, and the pointer-metadata
   load/store.  **Template invariant:** every template is a
   source-level copy of the corresponding decoded closure body —
   same statement order, same counter increments, same trap types
   and messages — so fused and single-stepped execution are
   indistinguishable; the engine differential suite enforces this.
   Memory templates are only emitted when the decoded engine would
   take its own inline fast path (stock HardBound engine and
   encoding, word access, no temporal tracker, no observer, timing
   either off or on the fast memory model); every other
   configuration falls back to the decoded closure, which keeps the
   equivalence contract trivially.

3. **Block-threaded dispatch** — the run loop executes one block per
   iteration: one table lookup, one limit compare against the whole
   block length, one call.

4. **Superblock traces** (``engine="superblocks"``) — the trace tier
   profiles block-entry counts in its run loop and, when a block
   crosses the hotness threshold
   (``MachineConfig.superblock_threshold``), chains it with its
   dominant successors — fallthrough edges, unconditional jumps,
   the majority side of profiled conditional edges, and direct
   ``call``/``ret`` edges up to ``superblock_call_depth`` inlined
   frames (whole-function traces; indirect calls, returns without an
   inlined matching call and back-edges — including direct
   recursion — still stop the chain) — into one generated *trace
   closure* holding the fused templates of every constituent block.
   An inlined call keeps its full link-register write; the matching
   inlined return performs the stock code-pointer checks and then
   guards the *predicted* return address, side-exiting through the
   fuser's ``_xpc`` cell when the live link register disagrees.
   Off-trace branch directions compile to early returns carrying an
   encoded side-exit index; the dispatch loop maps the index to the
   exit pc and refunds the unexecuted tail of the up-front
   instruction-count charge.  A hot loop body spanning
   several blocks thus pays the table-lookup/limit-check/call tax
   once per iteration instead of once per block.  The tier also
   turns on the *full-coverage* instruction templates: sub-word and
   generic-form load/store bodies and the ``setbound``/``sbrk``
   environment ops fuse into the generated source (mirroring the
   decoded closures statement for statement), so hot code no longer
   leaves the generated code for those shapes.  Traces that could
   bust the instruction limit mid-flight demote to their underlying
   basic block for that dispatch; entries into the middle of a trace
   simply dispatch the interior block (the block table is never
   displaced).  Per-run introspection (traces formed, mean trace
   length, side-exit rate, fallback single-steps, closure-fallback
   shapes) lands in ``cpu.engine_stats`` and travels on
   :class:`~repro.machine.cpu.RunResult`.

Trap semantics stay **bit-identical** to the other engines without
slowing the happy path: the generator records which source line
belongs to which instruction offset, so when something raises, the
faulting offset is recovered from the exception traceback's line
number in the block frame and the instruction count is rewound to
exactly what the per-instruction engines would report.  Control
transfers into the middle of a block (a computed ``callr`` into a
non-leader pc) fall back to single-instruction stepping on the same
decoded closures, as does any block that could bust the instruction
limit mid-flight.
"""

from __future__ import annotations

import re
import types
import weakref
from time import perf_counter
from types import SimpleNamespace
from typing import Dict, List, Optional, Tuple

from repro.caches.fast import (
    FastMemorySystem,
    data_probe_lines,
    word_probe_lines,
)
from repro.isa.opcodes import Op, REG_FP, REG_RA, REG_SP
from repro.isa.program import Program
from repro.layout import (
    GLOBAL_BASE,
    HEAP_BASE,
    MASK32,
    MAXINT,
    STACK_TOP,
    to_signed,
)
from repro.machine.errors import (
    BoundsError,
    DivideByZeroError,
    HaltSignal,
    InstructionLimitExceeded,
    InvalidCodePointerError,
    MemoryFault,
    NonPointerError,
    Trap,
)

#: opcodes that end a basic block (transfer or stop control)
TERMINATORS = frozenset({
    Op.JMP, Op.BEQZ, Op.BNEZ, Op.CALL, Op.CALLR, Op.RET,
    Op.HALT, Op.ABORT,
})

#: opcodes with a static branch/call target
_TARGETED = frozenset({Op.JMP, Op.BEQZ, Op.BNEZ, Op.CALL})

#: cap on fused block length; the capped tail simply becomes the next
#: block, entered by fallthrough
MAX_BLOCK_LEN = 64

#: bias multiple for growing a trace through a conditional branch:
#: the chain continues along the hotter side only when its entry
#: count is at least this multiple of the colder side's (a cold side
#: counts as 1).  ``1`` is simple-majority growth — the minority
#: direction becomes a side exit; both sides cold stops the chain.
#: The Olden knob sweep picked majority growth + a minimum formation
#: length over stronger bias requirements: long traces amortize the
#: trace entry cost even at higher side-exit rates.
TRACE_BIAS = 1

#: minimum chain length (in basic blocks) worth fusing into a trace:
#: shorter chains stay on the block tier, where per-dispatch cost is
#: lower than a trace's entry/refund overhead.  Formation runs once
#: per head (at the threshold crossing), so a declined head is a
#: permanent block-tier resident.  Also the lever that keeps the
#: formed-trace population long: declining 2-block chains lifts the
#: Olden aggregate ``mean_trace_blocks`` from ~5 to ~6.7.
TRACE_MIN_BLOCKS = 3


class BasicBlock:
    """One CFG node: a maximal straight-line instruction run.

    ``succs`` holds the *static* successor pcs: branch targets and
    fallthrough points.  Indirect transfers (``callr``/``ret``) and
    program exit have no static successors.
    """

    __slots__ = ("start", "length", "succs")

    def __init__(self, start: int, length: int,
                 succs: Tuple[int, ...]):
        self.start = start
        self.length = length
        self.succs = succs

    @property
    def end(self) -> int:
        """pc one past the last instruction of the block."""
        return self.start + self.length

    def __repr__(self):
        return ("BasicBlock(%d..%d -> %s)"
                % (self.start, self.end - 1, list(self.succs)))


def find_leaders(program: Program) -> set:
    """Pcs where a basic block may begin.

    Leaders are the program entry, every static branch/call target,
    the instruction after every control transfer (branch fallthrough
    and call/``callr`` return point), and every in-range ``setcode``
    immediate — the only way this ISA materializes a code-pointer
    constant for an indirect call.
    """
    instrs = program.instrs
    n = len(instrs)
    leaders = set()
    if not n:
        return leaders
    leaders.add(program.entry)
    for i, instr in enumerate(instrs):
        op = instr.op
        if op in _TARGETED:
            target = instr.target
            if target is not None and 0 <= target < n:
                leaders.add(target)
            if i + 1 < n:
                leaders.add(i + 1)
        elif op in TERMINATORS:  # callr/ret/halt/abort
            if i + 1 < n:
                leaders.add(i + 1)
        elif op is Op.SETCODE and instr.rs is None:
            target = (instr.imm or 0) & MASK32
            if target < n:
                leaders.add(target)
    return leaders


def _static_succs(program: Program, start: int,
                  length: int) -> Tuple[int, ...]:
    instrs = program.instrs
    n = len(instrs)
    last = instrs[start + length - 1]
    op = last.op
    fall = start + length
    if op is Op.JMP:
        return (last.target,)
    if op in (Op.BEQZ, Op.BNEZ):
        succs = [last.target]
        if fall < n:
            succs.append(fall)
        return tuple(succs)
    if op is Op.CALL:
        return (last.target,)
    if op in (Op.CALLR, Op.RET, Op.HALT, Op.ABORT):
        return ()
    return (fall,) if fall < n else ()


def build_cfg(program: Program) -> List[BasicBlock]:
    """Discover the basic blocks of a linked program, in pc order.

    Every leader opens a block that extends to the first terminator,
    the instruction before the next leader, or the fusion cap,
    whichever comes first.  Capped tails open follow-on blocks at
    non-leader pcs (they are only ever entered by fallthrough).
    """
    instrs = program.instrs
    n = len(instrs)
    leaders = find_leaders(program)
    blocks: List[BasicBlock] = []
    starts = sorted(leaders)
    seen = set()
    while starts:
        next_starts: List[int] = []
        for start in starts:
            if start in seen:
                continue
            seen.add(start)
            j = start
            while True:
                if instrs[j].op in TERMINATORS:
                    break
                nxt = j + 1
                if nxt >= n or nxt in leaders or nxt in seen:
                    break
                if nxt - start >= MAX_BLOCK_LEN:
                    next_starts.append(nxt)
                    break
                j = nxt
            length = j - start + 1
            blocks.append(BasicBlock(
                start, length, _static_succs(program, start, length)))
        starts = sorted(next_starts)
    blocks.sort(key=lambda b: b.start)
    return blocks


# -- superinstruction templates ----------------------------------------------

# Each fused instruction is a *part*: a template id (the shape), the
# parameters it pulls into the generated function's closure, and its
# source lines.  Blocks with equal shape-id tuples share one compiled
# code object; operands travel as closure cells, never as literals.

_M32 = str(MASK32)
_MSB = str(0x80000000)
_MAX = str(MAXINT)
_RA = str(REG_RA)

#: comparison expression templates, mirrored from decode.build_cmp
_CMP_RR = {
    Op.SEQ: "value[rs{i}] == value[rt{i}]",
    Op.SNE: "value[rs{i}] != value[rt{i}]",
    Op.SLT: "(value[rs{i}] ^ %s) < (value[rt{i}] ^ %s)" % (_MSB, _MSB),
    Op.SLE: "(value[rs{i}] ^ %s) <= (value[rt{i}] ^ %s)" % (_MSB, _MSB),
    Op.SGT: "(value[rs{i}] ^ %s) > (value[rt{i}] ^ %s)" % (_MSB, _MSB),
    Op.SGE: "(value[rs{i}] ^ %s) >= (value[rt{i}] ^ %s)" % (_MSB, _MSB),
    Op.SLTU: "value[rs{i}] < value[rt{i}]",
    Op.SGEU: "value[rs{i}] >= value[rt{i}]",
}
_CMP_RI = {
    Op.SEQ: "value[rs{i}] == k{i}",
    Op.SNE: "value[rs{i}] != k{i}",
    Op.SLT: "(value[rs{i}] ^ %s) < k{i}" % _MSB,
    Op.SLE: "(value[rs{i}] ^ %s) <= k{i}" % _MSB,
    Op.SGT: "(value[rs{i}] ^ %s) > k{i}" % _MSB,
    Op.SGE: "(value[rs{i}] ^ %s) >= k{i}" % _MSB,
    Op.SLTU: "value[rs{i}] < k{i}",
    Op.SGEU: "value[rs{i}] >= k{i}",
}
_SIGNED_CMPS = frozenset({Op.SLT, Op.SLE, Op.SGT, Op.SGE})
_NONPROP = frozenset({Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
                      Op.SHL, Op.SHR, Op.SRA})

#: superblock-tier inline bodies for the non-propagating ALU ops
#: whose semantics are pure expressions (div/mod keep the closure —
#: they raise).  The register forms mirror the ``_NONPROP_FNS``
#: bodies over masked register values (``to_signed(a)`` is
#: ``(a ^ MSB) - MSB`` for masked ``a``); the immediate forms bake
#: the constant's transformation (sign-extension, shift masking) in
#: at template-build time.
_SGN = "((value[%s{i}] ^ " + _MSB + ") - " + _MSB + ")"
_NP_RR_EXPR = {
    Op.MUL: _SGN % "rs" + " * " + _SGN % "rt",
    Op.AND: "value[rs{i}] & value[rt{i}]",
    Op.OR: "value[rs{i}] | value[rt{i}]",
    Op.XOR: "value[rs{i}] ^ value[rt{i}]",
    Op.SHL: "value[rs{i}] << (value[rt{i}] & 31)",
    Op.SHR: "value[rs{i}] >> (value[rt{i}] & 31)",
    Op.SRA: _SGN % "rs" + " >> (value[rt{i}] & 31)",
}
_NP_RI_EXPR = {
    Op.MUL: _SGN % "rs" + " * k{i}",
    Op.AND: "value[rs{i}] & k{i}",
    Op.OR: "value[rs{i}] | k{i}",
    Op.XOR: "value[rs{i}] ^ k{i}",
    Op.SHL: "value[rs{i}] << k{i}",
    Op.SHR: "value[rs{i}] >> k{i}",
    Op.SRA: _SGN % "rs" + " >> k{i}",
}


def _np_imm(op, k: int) -> int:
    """The immediate exactly as the ``_NONPROP_FNS`` body consumes it."""
    if op is Op.MUL:
        return to_signed(k)
    if op in (Op.SHL, Op.SHR, Op.SRA):
        return k & 31
    return k


class _Part:
    """One fused instruction: shape id, closure params, source lines.

    ``closure_pc`` is set on decoded-closure fallback parts: the pc
    whose per-run closure is the part's first parameter value.  The
    fusion plan cache stores specs with those positions marked so a
    later run can re-bind its own closures (everything else — operand
    registers, immediates, shared helper functions — is
    program-stable).
    """

    __slots__ = ("shape", "params", "lines", "closure_pc")

    def __init__(self, shape: str, params: List[Tuple[str, object]],
                 lines: List[str], closure_pc: Optional[int] = None):
        self.shape = shape
        self.params = params
        self.lines = lines
        self.closure_pc = closure_pc


class _FuseCtx:
    """Build-time facts that select and specialize templates.

    ``fuse_hb_mem`` / ``fuse_plain_mem`` hold exactly when the
    decoded engine would take its own inline memory fast path, so a
    fused memory template never covers a configuration the decoded
    closures would route through generic engine calls.

    ``assoc_sig`` carries the fast model's associativity geometry
    (TLB, L1, tag cache, L2): the inlined probe bodies unroll their
    way scans over it, so it is part of the memory templates' shape
    identity.

    ``fuse_generic`` turns on the full-coverage templates of the
    superblock tier: generic-form/sub-word load/store bodies and the
    ``setbound``/``sbrk`` environment ops fuse as source-level
    mirrors of the decoded *generic* closures (which call the same
    env-bound engine entry points in the same order, so the
    equivalence holds for every configuration, ablations and
    substituted engines included).
    """

    __slots__ = ("observer_none", "full_mode", "fuse_hb_mem",
                 "hb_timing", "fuse_plain_mem", "plain_timing",
                 "assoc_sig", "assoc_tag", "fuse_generic",
                 "hb_present", "inline_check", "use_words",
                 "has_temporal", "timing", "comp_expr", "comp_tag")

    def __init__(self, env, fuse_generic=False):
        self.observer_none = env.observer is None
        self.full_mode = env.full_mode
        self.fuse_generic = fuse_generic
        self.hb_present = env.hb is not None
        self.inline_check = env.inline_check
        self.use_words = env.use_words
        self.has_temporal = env.temporal_check is not None
        # superblock tier: splice the stock encodings' compressibility
        # decision straight into the metadata templates (subclassed
        # encodings return None and keep the _isc call)
        self.comp_expr = None
        self.comp_tag = ""
        if fuse_generic and env.hb is not None:
            from repro.metadata.encodings import inline_compressible_expr
            expr = inline_compressible_expr(env.hb.encoding,
                                            "v", "mb", "mbd")
            if expr is not None:
                self.comp_expr = expr
                self.comp_tag = "_c" + type(env.hb.encoding).__name__
        mem_ok = (env.use_words and env.temporal_check is None
                  and self.observer_none)
        timing = env.memsys is not None
        self.timing = timing
        self.hb_timing = env.wprobe is not None
        self.fuse_hb_mem = (mem_ok and env.inline_check
                            and (not timing or self.hb_timing))
        self.plain_timing = env.dprobe is not None
        self.fuse_plain_mem = (mem_ok and env.hb is None
                               and (not timing or self.plain_timing))
        if isinstance(env.memsys, FastMemorySystem):
            p = env.memsys.params
            self.assoc_sig = (p.tlb_assoc, p.l1_assoc,
                              p.tag_cache_assoc, p.l2_assoc)
            self.assoc_tag = "_a" + "-".join(map(str, self.assoc_sig))
        else:
            self.assoc_sig = None
            self.assoc_tag = ""

    def key(self) -> tuple:
        """Everything template selection depends on (the plan key)."""
        return (self.observer_none, self.full_mode, self.fuse_hb_mem,
                self.hb_timing, self.fuse_plain_mem,
                self.plain_timing, self.assoc_sig, self.fuse_generic,
                self.hb_present, self.inline_check, self.use_words,
                self.has_temporal, self.timing, self.comp_tag)


# -- memory template fragments ----------------------------------------------

# Mirrored line for line from the decoded closures (load_s_word and
# friends in repro.machine.decode): same statement order, same counter
# increments, same trap types/messages.  The segment check doubles as
# flat-arena routing; unaligned words spill to the raw entry points.

_HEAP = str(HEAP_BASE)
_GLOB = str(GLOBAL_BASE)
_STOP = str(STACK_TOP)

# The fast memory-model charge bodies are emitted by
# repro.caches.fast's line emitters (word_probe_lines /
# data_probe_lines): the same source the closure probes are compiled
# from, parameterized by the associativity geometry (way scans are
# unrolled for assoc <= 4 over the flat recency-ordered way tables).
# The
# lines carry no per-instruction placeholders, so they are inlined
# into the memory templates verbatim; the assoc geometry becomes part
# of the template shape (``_FuseCtx.assoc_tag``) because it changes
# the generated source.


def _word_read_lines(acc: str, stack_first: bool = False) -> List[str]:
    """Merged segment check + flat-arena word read into ``v``.

    The three segment ranges are disjoint, so the check order is
    unobservable (same value, same ``MemoryFault`` otherwise); the
    superblock tier therefore probes the stack arena first for
    frame-register addressing (``stack_first``), where the heap and
    globals compares would almost always fail.
    """
    heap = [
        "if %s <= ea and end <= _mem.brk:" % _HEAP,
        "    v = _heap[1][(ea - %s) >> 2] if not ea & 3 "
        "else _rr(ea, 4)" % _HEAP,
    ]
    glob = [
        "if %s <= ea and end <= _gl:" % _GLOB,
        "    v = _glob[1][(ea - %s) >> 2] if not ea & 3 "
        "else _rr(ea, 4)" % _GLOB,
    ]
    stack = [
        "if _sb <= ea and end <= %s:" % _STOP,
        "    v = _stk[1][(ea - _sb) >> 2] if not ea & 3 "
        "else _rr(ea, 4)",
    ]
    order = (stack + heap + glob) if stack_first \
        else (heap + glob + stack)
    lines = ["end = ea + 4"] + order[:2]
    for branch in (order[2:4], order[4:6]):
        lines.append("el" + branch[0])
        lines.append(branch[1])
    lines += ["else:", "    raise _mf(ea, %r)" % acc]
    return lines


def _word_write_lines(acc: str, stack_first: bool = False) -> List[str]:
    """Merged segment check + flat-arena word write of ``v``."""
    heap = [
        "if %s <= ea and end <= _mem.brk:" % _HEAP,
        "    if ea & 3:",
        "        _rw(ea, 4, v)",
        "    else:",
        "        _heap[1][(ea - %s) >> 2] = v" % _HEAP,
    ]
    glob = [
        "if %s <= ea and end <= _gl:" % _GLOB,
        "    if ea & 3:",
        "        _rw(ea, 4, v)",
        "    else:",
        "        _glob[1][(ea - %s) >> 2] = v" % _GLOB,
    ]
    stack = [
        "if _sb <= ea and end <= %s:" % _STOP,
        "    if ea & 3:",
        "        _rw(ea, 4, v)",
        "    else:",
        "        _stk[1][(ea - _sb) >> 2] = v",
    ]
    order = (stack + heap + glob) if stack_first \
        else (heap + glob + stack)
    lines = ["end = ea + 4", "v = value[rd{i}]"] + order[:5]
    for branch in (order[5:10], order[10:15]):
        lines.append("el" + branch[0])
        lines.extend(branch[1:])
    lines += ["else:", "    raise _mf(ea, %r)" % acc]
    return lines


def _hb_check_lines(acc: str, si: bool, frame: bool,
                    full: bool) -> List[str]:
    """Figure 3C/D bounds check, specialized for the operand form."""
    lines = ["b = rbase[rs{i}]", "bd = rbound[rs{i}]"]
    if si:
        lines += [
            "if not (b or bd):",
            "    b = rbase[rt{i}]",
            "    bd = rbound[rt{i}]",
        ]
    lines += [
        "if b or bd:",
        "    _hbs.checks += 1",
        "    if ea < b or ea >= bd:",
        "        raise _be(ea, b, bd, %r)" % acc,
    ]
    # frame-register accesses without bounds are compiler-owned and
    # exempt; the branch is resolved at template-build time
    if not frame:
        if full:
            lines += ["else:",
                      "    raise _npe(value[rs{i}], %r)" % acc]
        else:
            lines += ["else:",
                      "    _hbs.nonpointer_derefs += 1"]
    return lines


def _load_meta_lines(timing: bool, comp: str) -> List[str]:
    """HardBound word-load metadata path (load_word_meta inlined).

    ``comp`` is the compressibility test: the ``_isc`` closure call,
    or (superblock tier, stock encodings) the decision spliced in as
    an inline expression.
    """
    lines = [
        "meta = _mg(ea & -4)",
        "if meta is None:",
        "    value[rd{i}] = v",
        "    rbase[rd{i}] = 0",
        "    rbound[rd{i}] = 0",
        "else:",
        "    mb, mbd = meta",
        "    _hbs.pointer_loads += 1",
        "    if %s:" % comp,
        "        _hbs.compressed_loads += 1",
        "    else:",
        "        _hbs.meta_uops += 1",
    ]
    if timing:
        lines.append("        _sp(ea & -4)")
    lines += [
        "    value[rd{i}] = v",
        "    rbase[rd{i}] = mb",
        "    rbound[rd{i}] = mbd",
    ]
    return lines


def _store_meta_lines(timing: bool, comp: str) -> List[str]:
    """HardBound word-store metadata path (store_word_meta inlined)."""
    lines = [
        "key = ea & -4",
        "mb = rbase[rd{i}]",
        "mbd = rbound[rd{i}]",
        "if mb == 0 and mbd == 0:",
        "    _mp(key, None)",
        "else:",
        "    _meta[key] = (mb, mbd)",
        "    _hbs.pointer_stores += 1",
        "    if %s:" % comp,
        "        _hbs.compressed_stores += 1",
        "    else:",
        "        _hbs.meta_uops += 1",
    ]
    if timing:
        lines.append("        _sp(key)")
    return lines


def _mem_part(instr, i: int, ctx: _FuseCtx) -> Optional[_Part]:
    """Fused word load/store template, or ``None`` for the closure.

    Emitted only for the shapes the decoded engine fast-paths itself
    (word size, base-register form present); the template body is a
    source-level copy of the matching decoded closure.
    """
    if instr.size != 4 or instr.rs is None:
        return None
    load = instr.op is Op.LOAD
    acc = "read" if load else "write"
    si = instr.rt is not None
    params = [("rd%d" % i, instr.rd), ("rs%d" % i, instr.rs)]
    if si:
        params += [("rt%d" % i, instr.rt), ("sc%d" % i, instr.scale)]
        ea_line = ("ea = (value[rs{i}] + value[rt{i}] * sc{i} + k{i})"
                   " & %s" % _M32)
    else:
        ea_line = "ea = (value[rs{i}] + k{i}) & %s" % _M32
    params.append(("k%d" % i, instr.disp))
    frame = instr.rs in (REG_SP, REG_FP)
    stack_first = frame and ctx.fuse_generic
    if ctx.fuse_hb_mem:
        timing = ctx.hb_timing
        comp = ctx.comp_expr or "_isc(v, mb, mbd)"
        shape = "%shb_%s%d%d%d%s%s" % ("ld" if load else "st",
                                       "si" if si else "s",
                                       frame, ctx.full_mode, timing,
                                       ctx.comp_tag,
                                       "sf" if stack_first else "")
        if timing:
            shape += ctx.assoc_tag
            wprobe = list(word_probe_lines(
                *ctx.assoc_sig, skip_cell=ctx.fuse_generic))
            if ctx.fuse_generic:
                shape += "_wsk"
        lines = [ea_line]
        lines += _hb_check_lines(acc, si, frame, ctx.full_mode)
        if load:
            lines += _word_read_lines(acc, stack_first)
            if timing:
                lines += wprobe
            lines += _load_meta_lines(timing, comp)
        else:
            lines += _word_write_lines(acc, stack_first)
            if timing:
                lines += wprobe
            lines += _store_meta_lines(timing, comp)
        return _Part(shape, params, lines)
    if ctx.fuse_plain_mem:
        timing = ctx.plain_timing
        shape = "%spl_%s%d%s" % ("ld" if load else "st",
                                 "si" if si else "s", timing,
                                 "sf" if stack_first else "")
        if timing:
            shape += ctx.assoc_tag
            sig = ctx.assoc_sig
            dprobe = list(data_probe_lines(sig[0], sig[1], sig[3]))
        lines = [ea_line]
        if load:
            lines += _word_read_lines(acc, stack_first)
            if timing:
                lines += dprobe
            lines += ["value[rd{i}] = v",
                      "rbase[rd{i}] = 0",
                      "rbound[rd{i}] = 0"]
        else:
            lines += _word_write_lines(acc, stack_first)
            if timing:
                lines += dprobe
        return _Part(shape, params, lines)
    return None


def _memgen_part(instr, i: int, ctx: _FuseCtx) -> Optional[_Part]:
    """Fused mirror of the decoded *generic* load/store closure.

    Covers every shape the decoded engine routes through
    ``load_generic``/``store_generic`` — sub-word sizes, index-only
    and absolute forms, ablated or substituted metadata engines,
    classic timing model, observers and the temporal tracker — by
    calling the same env-bound entry points (``mem_read``,
    ``data_access``, ``hb.check``, ``hb.load_sub_meta``, ...) in the
    same statement order, with the constant branches (is an engine
    attached? an observer? word or sub-word?) resolved at
    template-build time.  Shapes the decoded engine word-inlines are
    declined here; :func:`_mem_part` or the closure fallback owns
    them.
    """
    op_load = instr.op is Op.LOAD
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    size = instr.size
    if (ctx.hb_present and rs is not None and ctx.inline_check
            and size == 4 and ctx.use_words):
        return None  # decoded inlines these (load_s_word & friends)
    if (not ctx.hb_present and size == 4 and rs is not None
            and rt is None and ctx.use_words):
        return None  # decoded inlines these (load_s_word_plain)
    acc = "read" if op_load else "write"
    checked = ctx.hb_present and rs is not None
    params: List[Tuple[str, object]] = [("rd%d" % i, rd)]
    # effective address, mirroring decode's make_ea forms
    if rs is not None and rt is not None:
        params += [("rs%d" % i, rs), ("rt%d" % i, rt),
                   ("sc%d" % i, instr.scale), ("k%d" % i, instr.disp)]
        lines = ["ea = (value[rs{i}] + value[rt{i}] * sc{i} + k{i})"
                 " & %s" % _M32]
        form = "si"
    elif rs is not None:
        params += [("rs%d" % i, rs), ("k%d" % i, instr.disp)]
        lines = ["ea = (value[rs{i}] + k{i}) & %s" % _M32]
        form = "s"
    elif rt is not None:
        params += [("rt%d" % i, rt), ("sc%d" % i, instr.scale),
                   ("k%d" % i, instr.disp)]
        lines = ["ea = (value[rt{i}] * sc{i} + k{i}) & %s" % _M32]
        form = "i"
    else:
        params += [("k%d" % i, instr.disp & MASK32)]
        lines = ["ea = k{i}"]
        form = "a"
    frame = rs in (REG_SP, REG_FP)
    if checked:
        # make_mem_check inlined: pick the guarding register
        # (base preferred, index as fallback), exempt meta-less
        # frame accesses, hand everything else to the engine's check
        if rt is not None:
            lines += [
                "if rbase[rs{i}] or rbound[rs{i}]:",
                "    sv = value[rs{i}]",
                "    b = rbase[rs{i}]",
                "    bd = rbound[rs{i}]",
                "elif rbase[rt{i}] or rbound[rt{i}]:",
                "    sv = value[rt{i}]",
                "    b = rbase[rt{i}]",
                "    bd = rbound[rt{i}]",
                "else:",
                "    sv = value[rs{i}]",
                "    b = rbase[rs{i}]",
                "    bd = rbound[rs{i}]",
            ]
        else:
            lines += ["sv = value[rs{i}]",
                      "b = rbase[rs{i}]",
                      "bd = rbound[rs{i}]"]
        call = ("_hbc(sv, b, bd, ea, %d, %r, %s)"
                % (size, acc, ctx.full_mode))
        if frame:
            lines += ["if b or bd:", "    " + call]
        else:
            lines.append(call)
    if ctx.has_temporal:
        lines.append("_tc(ea, %d)" % size)
    if op_load:
        lines.append("v = _mr(ea, %d)" % size)
    else:
        lines += ["v = value[rd{i}]", "_mw(ea, %d, v)" % size]
    if ctx.timing:
        lines.append("_da(ea, %d, %s, 'data')" % (size, not op_load))
    if not ctx.observer_none:
        lines.append("_ob.on_mem(ea, %d, %s)" % (size, not op_load))
    if op_load:
        if ctx.hb_present and size == 4:
            lines += ["b, bd = _hblw(ea, v)",
                      "value[rd{i}] = v",
                      "rbase[rd{i}] = b",
                      "rbound[rd{i}] = bd"]
        else:
            if ctx.hb_present:
                lines.append("_hbls(ea)")
            lines += ["value[rd{i}] = v",
                      "rbase[rd{i}] = 0",
                      "rbound[rd{i}] = 0"]
    elif ctx.hb_present:
        if size == 4:
            lines.append("_hbsw(ea, v, rbase[rd{i}], rbound[rd{i}])")
        else:
            lines.append("_hbss(ea)")
    shape = "%sgen_%s%d%d%d%d%d%d%d" % (
        "ld" if op_load else "st", form, size, frame, checked,
        ctx.full_mode, ctx.has_temporal, ctx.timing,
        not ctx.observer_none)
    if ctx.hb_present:
        shape += "h"
    return _Part(shape, params, lines)


def _setbound_part(instr, i: int, ctx: _FuseCtx) -> _Part:
    """Fused ``setbound`` (build_setbound mirrored line for line)."""
    params = [("rd%d" % i, instr.rd), ("rs%d" % i, instr.rs)]
    lines = ["v = value[rs{i}]"]
    if instr.rt is not None:
        params.append(("rt%d" % i, instr.rt))
        lines.append("sz = value[rt{i}]")
        form = "r"
    else:
        params.append(("k%d" % i, instr.imm or 0))
        lines.append("sz = k{i}")
        form = "i"
    lines += [
        "value[rd{i}] = v",
        "rbase[rd{i}] = v",
        "rbound[rd{i}] = (v + sz) & %s" % _M32,
        "_cpu.setbound_count += 1",
    ]
    if ctx.hb_present:
        lines.append("_hbs.setbound_uops += 1")
    if ctx.has_temporal:
        lines.append("_tmp.mark_allocated(v, (v + sz) & %s)" % _M32)
    if not ctx.observer_none:
        lines.append("_ob.on_setbound(v, sz)")
    shape = "setbound_%s%d%d%d" % (form, ctx.hb_present,
                                   ctx.has_temporal,
                                   not ctx.observer_none)
    return _Part(shape, params, lines)


def _sbrk_part(instr, i: int) -> _Part:
    """Fused ``sbrk`` (build_sbrk mirrored line for line)."""
    return _Part("sbrk",
                 [("rd%d" % i, instr.rd), ("rs%d" % i, instr.rs)],
                 ["v = _sbrk(_tsg(value[rs{i}]))",
                  "value[rd{i}] = v",
                  "rbase[rd{i}] = 0",
                  "rbound[rd{i}] = 0"])


def _closure_part(i: int, fn, terminator: bool,
                  term_pc: int) -> _Part:
    if terminator:
        return _Part("ft", [("f%d" % i, fn), ("t%d" % i, term_pc)],
                     ["return f{i}(t{i})".format(i=i)],
                     closure_pc=term_pc)
    return _Part("f", [("f%d" % i, fn)], ["f{i}(0)".format(i=i)],
                 closure_pc=term_pc)


def _template_part(instr, i: int, pc: int,
                   ctx: _FuseCtx) -> Optional[_Part]:
    """Template for one instruction, or ``None`` to use its closure.

    Every template is a source-level copy of the corresponding
    decoded closure body (same statement order, same trap types);
    the engine differential suite enforces the equivalence.
    """
    op = instr.op
    observer_none = ctx.observer_none
    full_mode = ctx.full_mode
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    if op in (Op.LOAD, Op.STORE):
        part = _mem_part(instr, i, ctx)
        if part is None and ctx.fuse_generic:
            part = _memgen_part(instr, i, ctx)
        return part
    if ctx.fuse_generic:
        if op is Op.SETBOUND:
            return _setbound_part(instr, i, ctx)
        if op is Op.SBRK:
            return _sbrk_part(instr, i)
    if op is Op.MOV:
        if rs is not None:
            return _Part("movrr", [("rd%d" % i, rd), ("rs%d" % i, rs)],
                         ["value[rd{i}] = value[rs{i}]",
                          "rbase[rd{i}] = rbase[rs{i}]",
                          "rbound[rd{i}] = rbound[rs{i}]"])
        return _Part("movri",
                     [("rd%d" % i, rd),
                      ("k%d" % i, (instr.imm or 0) & MASK32)],
                     ["value[rd{i}] = k{i}",
                      "rbase[rd{i}] = 0",
                      "rbound[rd{i}] = 0"])
    if op in (Op.ADD, Op.SUB) and observer_none:
        if rt is not None:
            sign = "-" if op is Op.SUB else "+"
            return _Part("addsubrr" + sign,
                         [("rd%d" % i, rd), ("rs%d" % i, rs),
                          ("rt%d" % i, rt)],
                         ["v = (value[rs{i}] %s value[rt{i}]) & %s"
                          % (sign, _M32),
                          "if rbase[rs{i}] or rbound[rs{i}]:",
                          "    value[rd{i}] = v",
                          "    rbase[rd{i}] = rbase[rs{i}]",
                          "    rbound[rd{i}] = rbound[rs{i}]",
                          "else:",
                          "    value[rd{i}] = v",
                          "    rbase[rd{i}] = rbase[rt{i}]",
                          "    rbound[rd{i}] = rbound[rt{i}]"])
        k = instr.imm or 0
        if op is Op.SUB:
            k = -k
        return _Part("addsubri",
                     [("rd%d" % i, rd), ("rs%d" % i, rs),
                      ("k%d" % i, k)],
                     ["v = (value[rs{i}] + k{i}) & %s" % _M32,
                      "if rbase[rs{i}] or rbound[rs{i}]:",
                      "    value[rd{i}] = v",
                      "    rbase[rd{i}] = rbase[rs{i}]",
                      "    rbound[rd{i}] = rbound[rs{i}]",
                      "else:",
                      "    value[rd{i}] = v",
                      "    rbase[rd{i}] = 0",
                      "    rbound[rd{i}] = 0"])
    if op in _CMP_RR:
        if rt is not None:
            expr = _CMP_RR[op]
            shape = "cmp_rr_" + op.value
            params = [("rd%d" % i, rd), ("rs%d" % i, rs),
                      ("rt%d" % i, rt)]
        else:
            # mirror build_cmp's immediate pre-transformations
            k = instr.imm or 0
            if op in (Op.SEQ, Op.SNE):
                k &= MASK32
            elif op in _SIGNED_CMPS:
                k = (k & MASK32) ^ 0x80000000
            expr = _CMP_RI[op]
            shape = "cmp_ri_" + op.value
            params = [("rd%d" % i, rd), ("rs%d" % i, rs),
                      ("k%d" % i, k)]
        return _Part(shape, params,
                     ["value[rd{i}] = 1 if " + expr + " else 0",
                      "rbase[rd{i}] = 0",
                      "rbound[rd{i}] = 0"])
    if op in _NONPROP:
        if ctx.fuse_generic and op in _NP_RR_EXPR:
            if rt is not None:
                expr = _NP_RR_EXPR[op]
                params = [("rd%d" % i, rd), ("rs%d" % i, rs),
                          ("rt%d" % i, rt)]
                shape = "npx_rr_" + op.value
            else:
                expr = _NP_RI_EXPR[op]
                params = [("rd%d" % i, rd), ("rs%d" % i, rs),
                          ("k%d" % i, _np_imm(op, instr.imm or 0))]
                shape = "npx_ri_" + op.value
            return _Part(shape, params,
                         ["value[rd{i}] = (" + expr + ") & %s" % _M32,
                          "rbase[rd{i}] = 0",
                          "rbound[rd{i}] = 0"])
        if ctx.fuse_generic and op in (Op.DIV, Op.MOD):
            # inline C truncating division/remainder: a source-level
            # copy of decode._div/_mod (closure-call free).  Register
            # values are always in [0, 2**32), so the sign test is
            # the plain to_signed branch.
            is_div = op is Op.DIV
            compute = ("q = abs(sa) // abs(sb)" if is_div
                       else "q = abs(sa) % abs(sb)")
            result = ("(q if (sa < 0) == (sb < 0) else -q)" if is_div
                      else "(q if sa >= 0 else -q)")
            head = ["sa = value[rs{i}]",
                    "if sa >= 2147483648:",
                    "    sa -= 4294967296"]
            tail = [compute,
                    "value[rd{i}] = %s & %s" % (result, _M32),
                    "rbase[rd{i}] = 0",
                    "rbound[rd{i}] = 0"]
            if rt is not None:
                return _Part(
                    ("divrr" if is_div else "modrr"),
                    [("rd%d" % i, rd), ("rs%d" % i, rs),
                     ("rt%d" % i, rt)],
                    head + ["sb = value[rt{i}]",
                            "if sb >= 2147483648:",
                            "    sb -= 4294967296",
                            "if sb == 0:",
                            "    raise _dbz()"] + tail)
            sk = to_signed(instr.imm or 0)
            if sk != 0:
                # the immediate's sign and magnitude are bind-time
                # constants; a zero immediate keeps the closure
                # fallback (raises the identical trap every time)
                if is_div:
                    ri_lines = [
                        "q = abs(sa) // ka{i}",
                        "value[rd{i}] = (q if (sa < 0) == kn{i}"
                        " else -q) & %s" % _M32]
                else:
                    ri_lines = [
                        "q = abs(sa) % ka{i}",
                        "value[rd{i}] = (q if sa >= 0 else -q)"
                        " & %s" % _M32]
                return _Part(
                    ("divri" if is_div else "modri"),
                    [("rd%d" % i, rd), ("rs%d" % i, rs),
                     ("ka%d" % i, abs(sk)), ("kn%d" % i, sk < 0)],
                    head + ri_lines
                    + ["rbase[rd{i}] = 0", "rbound[rd{i}] = 0"])
        from repro.machine.decode import _NONPROP_FNS
        fn = _NONPROP_FNS[op]
        if rt is not None:
            return _Part("np_rr",
                         [("fn%d" % i, fn), ("rd%d" % i, rd),
                          ("rs%d" % i, rs), ("rt%d" % i, rt)],
                         ["value[rd{i}] = fn{i}(value[rs{i}], "
                          "value[rt{i}]) & %s" % _M32,
                          "rbase[rd{i}] = 0",
                          "rbound[rd{i}] = 0"])
        return _Part("np_ri",
                     [("fn%d" % i, fn), ("rd%d" % i, rd),
                      ("rs%d" % i, rs), ("k%d" % i, instr.imm or 0)],
                     ["value[rd{i}] = fn{i}(value[rs{i}], k{i}) & %s"
                      % _M32,
                      "rbase[rd{i}] = 0",
                      "rbound[rd{i}] = 0"])
    if op is Op.JMP:
        return _Part("jmp", [("t%d" % i, instr.target)],
                     ["return t{i}"])
    if op is Op.BEQZ:
        return _Part("beqz", [("t%d" % i, instr.target),
                              ("rs%d" % i, rs)],
                     ["return t{i} if value[rs{i}] == 0 else None"])
    if op is Op.BNEZ:
        return _Part("bnez", [("t%d" % i, instr.target),
                              ("rs%d" % i, rs)],
                     ["return t{i} if value[rs{i}] != 0 else None"])
    if op is Op.CALL:
        return _Part("call", [("t%d" % i, instr.target),
                              ("r%d" % i, (pc + 1) & MASK32)],
                     ["value[%s] = r{i}" % _RA,
                      "rbase[%s] = %s" % (_RA, _MAX),
                      "rbound[%s] = %s" % (_RA, _MAX),
                      "return t{i}"])
    if op is Op.RET:
        lines = ["t = value[%s]" % _RA]
        if full_mode:
            lines += ["if rbase[%s] != %s or rbound[%s] != %s:"
                      % (_RA, _MAX, _RA, _MAX),
                      "    raise _icpe(t)"]
        lines += ["if t >= _n:",
                  "    raise _icpe(t)",
                  "return t"]
        return _Part("ret%d" % full_mode, [], lines)
    if op is Op.CALLR:
        lines = ["t = value[rs{i}]"]
        if full_mode:
            lines += ["if rbase[rs{i}] != %s or rbound[rs{i}] != %s:"
                      % (_MAX, _MAX),
                      "    raise _icpe(t)"]
        lines += ["if t >= _n:",
                  "    raise _icpe(t)",
                  "value[%s] = r{i}" % _RA,
                  "rbase[%s] = %s" % (_RA, _MAX),
                  "rbound[%s] = %s" % (_RA, _MAX),
                  "return t"]
        return _Part("callr%d" % full_mode,
                     [("rs%d" % i, rs), ("r%d" % i, (pc + 1) & MASK32)],
                     lines)
    return None


#: pseudo-filename of the generated fuser source (shows in tracebacks)
_FUSE_FILENAME = "<repro-block-fuse>"

#: shape signature -> (fuse function, block code object)
_fuse_cache: Dict[Tuple[str, ...], tuple] = {}
#: block code object -> {line number -> instruction offset}
_line_maps: Dict[object, Dict[int, int]] = {}


class _CodeRef:
    """Spec marker: 'this argument is the run's closure for ``pc``'."""

    __slots__ = ("pc",)

    def __init__(self, pc: int):
        self.pc = pc


class _Plan:
    """Program-keyed fusion plan (superblock tier).

    The expensive parts of fusing a program — CFG discovery,
    template selection, source assembly, chain growth — depend only
    on the program and the template-selection context, not on the
    run.  A plan records their outcome as ``(signature, spec)``
    pairs: the signature keys the compiled fuser in ``_fuse_cache``,
    the spec is the flat closure-argument vector with per-run decoded
    closures marked by :class:`_CodeRef`.  Re-running the same
    program (the sharded harness and the benchmarks do, constantly)
    then reduces fusion to re-binding — and recorded traces install
    at table-build time, so warm runs start fully trace-covered with
    no profiling warm-up.
    """

    __slots__ = ("blocks", "traces", "fallback")

    def __init__(self):
        self.blocks = None
        self.traces: Dict[int, tuple] = {}
        self.fallback: Dict[str, int] = {}


#: Program -> {plan key: _Plan}; weak so plans die with their program
_plan_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _part_spec(parts: List[_Part]) -> list:
    """Flat closure-argument vector with closure slots marked."""
    spec: list = []
    for part in parts:
        values = [value for _, value in part.params]
        if part.closure_pc is not None:
            values[0] = _CodeRef(part.closure_pc)
        spec.extend(values)
    return spec

#: template parameter name -> FastMemorySystem.inline_env field.
#: Single source of truth for the fast memory-model inline
#: environment (geometry, per-kind records, way tables and composite
#: cells); the fuser signature and the per-block value vector are
#: both derived from it, so a field can only be added or renamed in
#: one place.
_MI_PARAMS = (
    ("_bs", "block_shift"), ("_ps", "page_shift"),
    ("_fs", "fig_shift"), ("_tlm", "tlb_mask"),
    ("_l2k", "l2_keys"), ("_l2m", "l2_mask"),
    ("_tpen", "tlb_pen"), ("_1pen", "l1_pen"), ("_2pen", "l2_pen"),
    ("_dct", "dctr"), ("_dpg", "dpages_add"),
    ("_dtlk", "dtlb_keys"), ("_dtm", "dtlb_mru"),
    ("_l1k", "dkeys"), ("_dma", "dmask"), ("_dmr", "dmru"),
    ("_dfg", "dfig_mru"),
    ("_tct", "tctr"), ("_tpg", "tpages_add"),
    ("_ttlk", "ttlb_keys"), ("_ttm", "ttlb_mru"),
    ("_tck", "tkeys"), ("_tma", "tmask"), ("_tmr", "tmru"),
    ("_tfg", "tfig_mru"),
    ("_tb", "tag_base"), ("_ts", "tag_shift"),
    ("_wpm", "wp_mru"), ("_wps", "wp_shift"), ("_cmpw", "wp_composite"),
    ("_dpm", "dp_mru"), ("_cmpd", "dp_composite"),
    ("_wsk", "wp_skip"),
)

#: shared environment parameters appended to every fuser signature:
#: the register arrays, program length and code-pointer trap, then
#: the memory environment (arena cells, segment bounds, raw spill
#: entry points), the HardBound metadata environment, the fast
#: memory-model inline environment, the trap constructors the
#: memory templates raise, and the generic entry points the
#: full-coverage templates of the superblock tier call (the cpu,
#: ``to_signed``, ``sbrk``, the byte-level memory accessors, the
#: timing/temporal/observer hooks and the metadata-engine methods)
_ENV_PARAMS = (
    "value", "rbase", "rbound", "_n", "_icpe", "_xpc",
    "_mem", "_heap", "_glob", "_stk", "_gl", "_sb", "_rr", "_rw",
    "_hbs", "_meta", "_mg", "_mp", "_isc", "_sp",
) + tuple(name for name, _ in _MI_PARAMS) + (
    "_be", "_npe", "_mf", "_dbz",
    "_cpu", "_tsg", "_sbrk", "_mr", "_mw", "_da", "_tc", "_ob",
    "_tmp", "_hbc", "_hblw", "_hbls", "_hbsw", "_hbss",
)


def _compile_fuser(signature: Tuple[str, ...],
                   parts: List[_Part]):
    """Compile (or fetch) the fuser for a block shape signature.

    Every bound name the body references is re-bound as a
    default-valued parameter of the generated function: CPython then
    reads it as a fast local instead of a closure cell on every
    access, at the cost of one default copy per call.  PR 5 measured
    the trick on the superblock tier only; it now covers both tiers,
    whose cache keys carry distinct version markers (``"SB"`` /
    ``"BL"``) so the tiers never share a code object and stale
    unlocalized shapes can't alias the localized ones.
    """
    cached = _fuse_cache.get(signature)
    if cached is not None:
        return cached
    names: List[str] = []
    for part in parts:
        names.extend(name for name, _ in part.params)
    header = "def _fuse(%s):" % ", ".join(list(names) + list(_ENV_PARAMS))
    lines = [header, "    def _block(pc):"]
    line_of: Dict[int, int] = {}
    for offset, part in enumerate(parts):
        fmt = {"i": offset}
        for raw in part.lines:
            lines.append("        " + raw.format(**fmt))
            line_of[len(lines)] = offset
    lines.append("    return _block")
    referenced = set(re.findall(r"[A-Za-z_]\w*",
                                "\n".join(lines[2:-1])))
    bound = [name for name in names + list(_ENV_PARAMS)
             if name in referenced]
    lines[1] = ("    def _block(pc%s):"
                % "".join(", %s=%s" % (name, name)
                          for name in bound))
    namespace: dict = {}
    exec(compile("\n".join(lines), _FUSE_FILENAME, "exec"), namespace)
    fuse = namespace["_fuse"]
    block_code = next(const for const in fuse.__code__.co_consts
                      if isinstance(const, types.CodeType)
                      and const.co_name == "_block")
    entry = (fuse, block_code)
    _fuse_cache[signature] = entry
    _line_maps[block_code] = line_of
    return entry


class _Fuser:
    """Per-run fusion state shared by the block and superblock tiers.

    Holds the decoded closures, the template-selection context and
    the bound environment value vector, and turns pc ranges into
    parts and parts into compiled, bound closures.  The superblock
    tier enables the full-coverage templates (``fuse_generic``) and
    counts the instruction shapes that still fall back to decoded
    closures in ``fallback_ops``.
    """

    __slots__ = ("cpu", "code", "instrs", "ctx", "env_vals",
                 "fallback_ops", "cfg", "xpc")

    def __init__(self, cpu, code: list, env, fuse_generic=False,
                 fallback_ops: Optional[Dict[str, int]] = None):
        self.cpu = cpu
        self.code = code
        self.instrs = cpu.program.instrs
        self.ctx = _FuseCtx(env, fuse_generic)
        self.fallback_ops = fallback_ops
        #: CFG blocks, retained by a cold block_table() build so
        #: trace formation reuses them instead of re-discovering
        self.cfg: Optional[List[BasicBlock]] = None
        if isinstance(env.memsys, FastMemorySystem):
            mi = env.memsys.inline_env(env.tag_base, env.tag_shift)
        else:
            mi = SimpleNamespace(**{field: None
                                    for _, field in _MI_PARAMS})
        #: one-slot cell through which an inlined-``ret`` guard hands
        #: the mispredicted return target back to the dispatch loop
        self.xpc = [0]
        env_map = {
            "value": env.value, "rbase": env.rbase,
            "rbound": env.rbound, "_xpc": self.xpc,
            "_n": len(self.instrs), "_icpe": InvalidCodePointerError,
            "_mem": env.memory, "_heap": env.heap_cell,
            "_glob": env.glob_cell, "_stk": env.stack_cell,
            "_gl": env.globals_limit, "_sb": env.stack_base,
            "_rr": env.raw_read, "_rw": env.raw_write,
            "_hbs": env.hb_stats, "_meta": env.meta_map,
            "_mg": env.meta_get, "_mp": env.meta_pop,
            "_isc": env.is_comp, "_sp": env.sprobe,
            "_be": BoundsError, "_npe": NonPointerError,
            "_mf": MemoryFault, "_dbz": DivideByZeroError,
            "_cpu": cpu, "_tsg": to_signed, "_sbrk": env.mem_sbrk,
            "_mr": env.mem_read, "_mw": env.mem_write,
            "_da": env.data_access, "_tc": env.temporal_check,
            "_ob": env.observer, "_tmp": env.temporal,
            "_hbc": env.hb_check, "_hblw": env.hb_load_word,
            "_hbls": env.hb_load_sub, "_hbsw": env.hb_store_word,
            "_hbss": env.hb_store_sub,
        }
        for name, field in _MI_PARAMS:
            env_map[name] = getattr(mi, field)
        self.env_vals = tuple(env_map[name] for name in _ENV_PARAMS)

    def make_parts(self, start: int, count: int, base: int,
                   last_is_term: bool,
                   count_fallbacks: bool = True) -> List[_Part]:
        """Parts for ``count`` instructions from ``start``.

        ``base`` offsets the closure-parameter indices so parts of
        several blocks can concatenate into one trace;
        ``last_is_term`` marks whether the final instruction's
        closure fallback may transfer control (block/trace tails do,
        mid-trace bodies never).  Trace formation re-fuses pcs the
        block table already counted, so it disables
        ``count_fallbacks`` — the tally stays one entry per static
        instruction site.
        """
        instrs, code, ctx = self.instrs, self.code, self.ctx
        fallback = self.fallback_ops if count_fallbacks else None
        parts: List[_Part] = []
        for off in range(count):
            pc = start + off
            instr = instrs[pc]
            i = base + off
            part = _template_part(instr, i, pc, ctx)
            if part is None:
                if fallback is not None:
                    key = instr.op.value
                    fallback[key] = fallback.get(key, 0) + 1
                part = _closure_part(
                    i, code[pc], last_is_term and off == count - 1, pc)
            parts.append(part)
        return parts

    def signature(self, parts: List[_Part]) -> Tuple[str, ...]:
        """Fuser cache key; versioned per tier (``"SB"``: superblock
        full-coverage templates, ``"BL"``: localized block tier) so
        the tiers never share a code object (see
        :func:`_compile_fuser`)."""
        shapes = tuple(part.shape for part in parts)
        return (("SB",) if self.ctx.fuse_generic else ("BL",)) + shapes

    def bind(self, parts: List[_Part]):
        """Compile (or fetch) the parts' fuser and bind the operands."""
        fuse, _block_code = _compile_fuser(self.signature(parts), parts)
        args = [value for part in parts for _, value in part.params]
        return fuse(*(args + list(self.env_vals)))

    def bind_spec(self, signature: Tuple[str, ...], spec: list):
        """Re-bind a recorded ``(signature, spec)`` plan entry.

        Only valid for signatures this process already compiled
        (plans are only recorded after successful compilation, and
        both caches live for the process); returns ``None`` if the
        fuser is somehow absent so the caller can rebuild from
        scratch.
        """
        cached = _fuse_cache.get(signature)
        if cached is None:
            return None
        code = self.code
        args = [code[value.pc] if type(value) is _CodeRef else value
                for value in spec]
        return cached[0](*(args + list(self.env_vals)))

    def block_table(self, plan: Optional[_Plan] = None) -> list:
        """Fuse every CFG block; pc-indexed ``(fn, len, fall, last)``
        table (``None`` at non-block pcs).  With a ``plan``, re-bind
        its recorded entries when present, else build from the CFG
        and record."""
        n = len(self.code)
        if plan is not None and plan.blocks is not None:
            table = [None] * n
            for start, length, signature, spec in plan.blocks:
                fn = self.bind_spec(signature, spec)
                if fn is None:
                    break
                table[start] = (fn, length, start + length,
                                start + length - 1)
            else:
                return table
        table = [None] * n
        records = [] if plan is not None else None
        if self.fallback_ops is not None:
            # a (re)build recounts every closure-fallback site from
            # scratch; without this a shared plan tally would inflate
            self.fallback_ops.clear()
        self.cfg = build_cfg(self.cpu.program)
        for block in self.cfg:
            start, length = block.start, block.length
            parts = self.make_parts(start, length, 0, True)
            fn = self.bind(parts)
            table[start] = (fn, length, start + length,
                            start + length - 1)
            if records is not None:
                records.append((start, length, self.signature(parts),
                                _part_spec(parts)))
        if plan is not None:
            plan.blocks = records
        return table


def build_block_table(cpu, code: list, env=None) -> list:
    """Fuse every CFG block of the cpu's program over its closures.

    Returns a pc-indexed table: ``None`` at non-block pcs, else
    ``(block_closure, length, fallthrough_pc, last_pc)``.  Pass the
    ``env`` the closures were decoded with (see
    :func:`repro.machine.decode.bind_env`) so fused memory templates
    share the decoded closures' probe and counter state.
    """
    from repro.machine.decode import bind_env

    if env is None:
        env = bind_env(cpu)
    return _Fuser(cpu, code, env).block_table()


def _trap_offset(exc: BaseException) -> Optional[int]:
    """Instruction offset within the dispatched block, if any.

    Walks the exception's traceback for a generated block frame and
    maps its line number through the block's line table to the
    instruction offset that raised.  Returns ``None`` when the
    exception did not pass through a block closure (single-step
    dispatch, or a fault in the driver itself).
    """
    tb = exc.__traceback__
    offset = None
    while tb is not None:
        line_of = _line_maps.get(tb.tb_frame.f_code)
        if line_of is not None:
            offset = line_of.get(tb.tb_lineno, offset)
        tb = tb.tb_next
    return offset


def _rewind(exc: BaseException, icount: int, lpc: int, blen: int,
            tpcs: Optional[tuple]):
    """Map a mid-dispatch exception to ``(icount, pc)``.

    The dispatch loops charge a whole block or trace up front; when
    an exception maps to an instruction offset inside the generated
    frame, the unexecuted tail is refunded and the faulting pc
    recovered — positionally for contiguous blocks, through the
    trace's offset→pc table (``tpcs``) otherwise.  Returns ``None``
    when the exception did not pass through a generated frame
    (single-step dispatch or the driver itself); both run loops
    share this so the attribution arithmetic exists exactly once.
    """
    offset = _trap_offset(exc)
    if offset is None:
        return None
    pc = tpcs[offset] if tpcs is not None else lpc - blen + 1 + offset
    return icount - (blen - offset - 1), pc


# -- block-threaded run loop -------------------------------------------------

def execute_blocks(cpu):
    """Run ``cpu`` to halt on fused basic blocks.

    Observable behaviour is bit-identical to the legacy and decoded
    engines: the same statistics, the same trap types/messages, the
    same faulting pc and instruction count on every exit path.  The
    fast path dispatches whole blocks; control transfers into
    non-leader pcs and blocks that could cross the instruction limit
    are single-stepped on the underlying decoded closures.
    """
    from repro.machine.cpu import RunResult
    from repro.machine.decode import bind_env, decode_program

    env = bind_env(cpu)
    code = decode_program(cpu, env)
    t0 = perf_counter()
    table = build_block_table(cpu, code, env)
    cpu.timers.add("cfg_fusion", perf_counter() - t0)
    n = len(code)
    limit = cpu.config.max_instructions
    pc = cpu.pc
    lpc = pc
    icount = cpu.icount
    blen = 1
    t0 = perf_counter()
    timed = False
    try:
        while True:
            entry = table[pc]
            if entry is not None:
                fn, blen, fall, last = entry
                nic = icount + blen
                if nic <= limit:
                    icount = nic
                    lpc = last
                    npc = fn(pc)
                    pc = fall if npc is None else npc
                    continue
            # single-step: mid-block entry, or the limit may fire
            # within the block — mirror the decoded loop exactly
            lpc = pc
            icount += 1
            if icount > limit:
                raise InstructionLimitExceeded(limit)
            npc = code[pc](pc)
            pc = pc + 1 if npc is None else npc
    except HaltSignal as halt:
        # the phase must land before RunResult snapshots it
        cpu.timers.add("execute", perf_counter() - t0)
        timed = True
        state = _rewind(halt, icount, lpc, blen, None)
        if state is None:
            cpu.icount = icount
            cpu.pc = pc
        else:
            cpu.icount, cpu.pc = state
        return RunResult(cpu, halt.code)
    except IndexError as exc:
        state = _rewind(exc, icount, lpc, blen, None)
        if state is not None:
            # genuine IndexError inside a fused instruction
            cpu.icount, cpu.pc = state
            raise
        if 0 <= pc < n:
            # genuine IndexError in a single-stepped closure
            cpu.icount = icount
            cpu.pc = lpc
            raise
        # ``pc`` can never go negative (branch targets are label
        # indices, indirect targets masked-unsigned), so this is the
        # out-of-range fetch of the legacy loop
        cpu.icount = icount
        cpu.pc = lpc
        raise MemoryFault(pc, "fetch").at(lpc)
    except Trap as trap:
        state = _rewind(trap, icount, lpc, blen, None)
        if state is None:
            cpu.icount = icount
            cpu.pc = lpc
            raise trap.at(lpc)
        cpu.icount, cpu.pc = state
        raise trap.at(cpu.pc)
    except BaseException as exc:
        state = _rewind(exc, icount, lpc, blen, None)
        if state is None:
            cpu.icount = icount
            cpu.pc = lpc
        else:
            cpu.icount, cpu.pc = state
        raise
    finally:
        if not timed:
            cpu.timers.add("execute", perf_counter() - t0)


# -- superblock traces --------------------------------------------------------

#: trace-extension stoppers: control leaves the trace through an
#: indirect edge or the program ends.  Direct ``call``/``ret`` edges
#: are no longer unconditional stoppers — ``_chain_blocks`` follows
#: them up to the configured inline depth (whole-function traces).
_TRACE_STOPS = frozenset({Op.CALLR, Op.HALT, Op.ABORT})


def _chain_blocks(head: int, blocks_by_start: Dict[int, BasicBlock],
                  counts: List[int], instrs, max_blocks: int,
                  n: int, call_depth: int = 0) -> List[BasicBlock]:
    """Grow the superblock chain from a hot head block.

    Follows fallthrough edges, unconditional jumps and the
    majority side of profiled conditional edges (the minority
    direction becomes a side exit).  Direct ``call`` edges are
    followed into
    the callee up to ``call_depth`` frames, pushing the static
    return pc; a ``ret`` whose matching call was inlined in the same
    chain continues at that predicted return pc (the trace emission
    guards the prediction with a side exit).  Stops at indirect
    transfers, returns without an inlined matching call, calls past
    the depth cap, program exit, the trace-length cap and any block
    already in the chain (back-edges — including direct recursion —
    close loops at the dispatch level, one trace per iteration).
    """
    chain = [blocks_by_start[head]]
    seen = {head}
    ret_stack: List[int] = []
    while len(chain) < max_blocks:
        block = chain[-1]
        term = instrs[block.end - 1]
        op = term.op
        if op in _TRACE_STOPS:
            break
        if op is Op.JMP:
            nxt = term.target
        elif op is Op.CALL:
            if len(ret_stack) >= call_depth:
                break
            nxt = term.target
        elif op is Op.RET:
            if not ret_stack:
                break
            nxt = ret_stack[-1]
        elif op in (Op.BEQZ, Op.BNEZ):
            target = term.target
            fall = block.end
            if target == fall:
                break
            taken = counts[target] if 0 <= target < n else 0
            fallc = counts[fall] if fall < n else 0
            hot, cold = ((target, fallc) if taken > fallc
                         else (fall, taken))
            # continue only along a strongly biased side (the other
            # direction becomes a side exit): a weakly biased branch
            # would side-exit so often the trace loses money on its
            # refund path, so it terminates the chain instead
            if max(taken, fallc) < TRACE_BIAS * max(cold, 1):
                break
            nxt = hot
        else:
            nxt = block.end  # leader-split or capped fallthrough
        if nxt is None or not 0 <= nxt < n or nxt in seen:
            break
        nxt_block = blocks_by_start.get(nxt)
        if nxt_block is None:
            break
        if op is Op.CALL:
            ret_stack.append(block.end)
        elif op is Op.RET:
            ret_stack.pop()
        chain.append(nxt_block)
        seen.add(nxt)
    return chain


def _form_trace(head: int, blocks_by_start: Dict[int, BasicBlock],
                counts: List[int], fuser: _Fuser, max_blocks: int,
                call_depth: int, base_entry: tuple,
                plan: Optional[_Plan] = None):
    """Fuse the hot chain from ``head`` into one trace closure.

    Returns ``(entry, n_blocks, has_call)`` where ``entry`` is a
    5-slot dispatch tuple ``(fn, tlen, fall, last, (pcs, exits,
    base_entry))`` — or ``None`` when no chain longer than one block
    exists.  ``pcs`` maps trace instruction offsets back to
    program pcs (trap attribution); each exit is ``(exit_pc,
    remaining, branch_pc)``: the pc execution leaves to, the
    unexecuted instruction count to refund, and the branch that took
    the exit (the new last-executed pc).  Mid-trace branches whose
    biased direction stays on-trace compile to ``if <off-trace
    cond>: return -(k+1)``; on-trace unconditional jumps compile to
    nothing (their instruction slot is still charged and mapped).

    A ``call`` followed into its callee keeps the full link-register
    write (value and metadata) but falls through into the callee's
    templates instead of returning; the matching inlined ``ret``
    performs the same code-pointer checks as the stock template, then
    *guards* the return-address prediction: when the link register
    disagrees with the recorded return pc the actual target is
    parked in the fuser's ``_xpc`` cell and the trace side-exits
    (``exit_pc is None`` marks these dynamic exits in the exit
    table), refunding the unexecuted tail like any other side exit.
    """
    instrs = fuser.instrs
    n = len(instrs)
    chain = _chain_blocks(head, blocks_by_start, counts, instrs,
                          max_blocks, n, call_depth)
    # an explicit low max_blocks knob caps the minimum too, so tiny
    # length caps still form (knob tests pin max_blocks=2)
    if len(chain) < max(2, min(TRACE_MIN_BLOCKS, max_blocks)):
        return None
    parts: List[_Part] = []
    pcs: List[int] = []
    raw_exits: List[tuple] = []
    ret_stack: List[int] = []
    has_call = False
    last_index = len(chain) - 1
    full_mode = fuser.ctx.full_mode
    for bi, block in enumerate(chain):
        if bi == last_index:
            # the trace tail keeps its full block semantics: the
            # terminator template (or closure) returns the next pc
            parts += fuser.make_parts(block.start, block.length,
                                      len(pcs), True,
                                      count_fallbacks=False)
            pcs.extend(range(block.start, block.end))
            continue
        term = instrs[block.end - 1]
        op = term.op
        body = (block.length - 1
                if op in (Op.JMP, Op.BEQZ, Op.BNEZ, Op.CALL, Op.RET)
                else block.length)
        parts += fuser.make_parts(block.start, body, len(pcs), False,
                                  count_fallbacks=False)
        pcs.extend(range(block.start, block.start + body))
        if body == block.length:
            continue  # pure fallthrough into the next chained block
        i = len(pcs)
        if op is Op.JMP:
            # on-trace unconditional jump: charged and pc-mapped but
            # emits no code (it cannot trap, and control simply runs
            # on into the next chained block's templates)
            parts.append(_Part("jel", [], []))
        elif op is Op.CALL:
            # inlined call: the link-register write is the full
            # template, but control falls through into the callee's
            # templates (the chain continues at term.target)
            has_call = True
            ret_stack.append(block.end)
            parts.append(_Part(
                "icall", [("r%d" % i, block.end & MASK32)],
                ["value[%s] = r{i}" % _RA,
                 "rbase[%s] = %s" % (_RA, _MAX),
                 "rbound[%s] = %s" % (_RA, _MAX)]))
        elif op is Op.RET:
            # inlined return: stock code-pointer checks, then the
            # return-address prediction guard with a dynamic side
            # exit (exit_pc None; the target travels through _xpc)
            predicted = ret_stack.pop()
            encoded = -(len(raw_exits) + 1)
            raw_exits.append((None, block.end - 1, i))
            lines = ["t = value[%s]" % _RA]
            if full_mode:
                lines += ["if rbase[%s] != %s or rbound[%s] != %s:"
                          % (_RA, _MAX, _RA, _MAX),
                          "    raise _icpe(t)"]
            lines += ["if t >= _n:",
                      "    raise _icpe(t)",
                      "if t != p{i}:",
                      "    _xpc[0] = t",
                      "    return x{i}"]
            parts.append(_Part(
                "iret%d" % full_mode,
                [("p%d" % i, predicted), ("x%d" % i, encoded)],
                lines))
        else:
            taken_biased = chain[bi + 1].start == term.target
            exit_pc = block.end if taken_biased else term.target
            if op is Op.BEQZ:
                cond = "!=" if taken_biased else "=="
            else:
                cond = "==" if taken_biased else "!="
            encoded = -(len(raw_exits) + 1)
            raw_exits.append((exit_pc, block.end - 1, i))
            parts.append(_Part(
                "sx" + cond,
                [("rs%d" % i, term.rs), ("x%d" % i, encoded)],
                ["if value[rs{i}] %s 0:" % cond,
                 "    return x{i}"]))
        pcs.append(block.end - 1)
    tlen = len(pcs)
    exits = tuple((exit_pc, tlen - offset - 1, branch_pc)
                  for exit_pc, branch_pc, offset in raw_exits)
    fn = fuser.bind(parts)
    tail = chain[-1]
    if plan is not None:
        plan.traces[head] = (fuser.signature(parts),
                             _part_spec(parts), tlen, tail.end,
                             tail.end - 1, tuple(pcs), exits,
                             len(chain), has_call)
    return ((fn, tlen, tail.end, tail.end - 1,
             (tuple(pcs), exits, base_entry)), len(chain), has_call)


def _introspection(trace_sizes, trace_dispatches, side_exits,
                   single_steps, fallback_ops, counts,
                   cross_call_traces, ret_mispredicts,
                   limit_demotions) -> dict:
    """The ``cpu.engine_stats`` record of a superblocks run.

    The key set is frozen in :mod:`repro.obs.schema` and documented
    in ``docs/OBSERVABILITY.md``; change all three together.
    """
    formed = len(trace_sizes)
    return {
        "engine": "superblocks",
        "traces_formed": formed,
        "mean_trace_blocks": (sum(trace_sizes) / formed
                              if formed else 0.0),
        "trace_dispatches": trace_dispatches,
        # the entry-count profile doubles as the block-tier tally:
        # every direct block-tier entry bumps its head pc (the last
        # few entries of a limit-bound run may re-count as fallback
        # single-steps when the whole-block charge no longer fits)
        "block_dispatches": sum(counts),
        "side_exits": side_exits,
        "side_exit_rate": (side_exits / trace_dispatches
                           if trace_dispatches else 0.0),
        "fallback_steps": single_steps,
        "closure_fallback_ops": dict(fallback_ops),
        # whole-function traces: how many formed traces inlined at
        # least one call, and how often an inlined ret's predicted
        # return address disagreed with the live link register
        "cross_call_traces": cross_call_traces,
        "ret_mispredicts": ret_mispredicts,
        "ret_mispredict_rate": (ret_mispredicts / trace_dispatches
                                if trace_dispatches else 0.0),
        # trace dispatches demoted to the base block because the
        # whole-trace charge would overrun the instruction limit
        "limit_demotions": limit_demotions,
    }


def execute_superblocks(cpu):
    """Run ``cpu`` to halt on the superblock trace tier.

    Starts from the same fused block table as
    :func:`execute_blocks` (with the full-coverage templates turned
    on), profiles block-entry counts, and promotes hot blocks to
    cross-block trace closures.  Observable behaviour is
    bit-identical to every other engine: statistics, trap
    types/messages, faulting pc and instruction count on every exit
    path.  Traces that could cross the instruction limit demote to
    their underlying block for that dispatch (and blocks to
    single-stepping, exactly like the blocks engine); control
    transfers into the middle of a trace dispatch the interior block
    or single-step.  Engine introspection is left in
    ``cpu.engine_stats``.
    """
    from repro.machine.cpu import RunResult
    from repro.machine.decode import bind_env, decode_program

    env = bind_env(cpu)
    code = decode_program(cpu, env, lazy=True)
    config = cpu.config
    threshold = config.superblock_threshold
    max_blocks = config.superblock_max_blocks
    call_depth = getattr(config, "superblock_call_depth", 0)
    t0 = perf_counter()
    fuser = _Fuser(cpu, code, env, fuse_generic=True)
    program = cpu.program
    plans = _plan_cache.get(program)
    if plans is None:
        plans = _plan_cache[program] = {}
    plan_key = fuser.ctx.key() + (threshold, max_blocks, call_depth)
    plan = plans.get(plan_key)
    if plan is None:
        plan = plans[plan_key] = _Plan()
    fallback_ops = plan.fallback
    fuser.fallback_ops = fallback_ops
    n = len(code)
    table: list = [None] * n
    for entry_pc, base in enumerate(fuser.block_table(plan)):
        if base is not None:
            table[entry_pc] = base + (None,)
    counts = [0] * n
    #: per-trace-head dispatch counts — always on; one list-index
    #: increment per trace entry is the entire hot-path cost, and
    #: ``sum(tcounts)`` replaces the old scalar dispatch counter
    tcounts = [0] * n
    #: (head, branch_pc) → off-trace exits taken, bumped on the
    #: already-slow side-exit path; ``sum`` of it replaces the old
    #: scalar side-exit counter
    sxcounts: Dict[tuple, int] = {}
    #: head → (n_blocks, has_call, trace_len) for run-end profiles
    trace_meta: Dict[int, tuple] = {}
    trace_sizes: List[int] = []
    cross_call_traces = 0
    ret_mispredicts = 0
    limit_demotions = 0
    obs = cpu.obs
    xpc = fuser.xpc
    # recorded traces from earlier runs of this program install at
    # build time: warm runs start fully trace-covered
    for head, rec in plan.traces.items():
        base = table[head]
        if base is None:
            continue
        (signature, spec, tlen, fall, last, pcs, exits,
         n_blocks, has_call) = rec
        fn = fuser.bind_spec(signature, spec)
        if fn is None:
            continue
        table[head] = (fn, tlen, fall, last, (pcs, exits, base))
        trace_sizes.append(n_blocks)
        trace_meta[head] = (n_blocks, has_call, tlen)
        if has_call:
            cross_call_traces += 1
        if obs is not None:
            obs.emit("trace_formed", head=head, blocks=n_blocks,
                     instrs=tlen, has_call=has_call, source="plan")
    cpu.timers.add("cfg_fusion", perf_counter() - t0)
    #: CFG nodes for chain growth, built on the first formation
    blocks_by_start: Optional[Dict[int, BasicBlock]] = None
    limit = config.max_instructions
    pc = cpu.pc
    lpc = pc
    icount = cpu.icount
    blen = 1
    tpcs = None
    single_steps = 0
    stats_done = False
    timers_add = cpu.timers.add
    t0 = perf_counter()
    try:
        while True:
            entry = table[pc]
            if entry is not None:
                fn, blen, fall, last, extra = entry
                if extra is not None:
                    nic = icount + blen
                    if nic <= limit:
                        icount = nic
                        lpc = last
                        tpcs = extra[0]
                        tcounts[pc] += 1
                        npc = fn(pc)
                        if npc is None:
                            pc = fall
                        elif npc >= 0:
                            pc = npc
                        else:
                            exit_pc, rem, bpc = extra[1][-1 - npc]
                            icount -= rem
                            lpc = bpc
                            sxkey = (pc, bpc)
                            sxcounts[sxkey] = sxcounts.get(sxkey,
                                                           0) + 1
                            if exit_pc is None:
                                # inlined-ret prediction guard: the
                                # actual target travels via _xpc
                                ret_mispredicts += 1
                                pc = xpc[0]
                            else:
                                pc = exit_pc
                        continue
                    # the whole-trace charge would overrun the
                    # instruction limit: demote to the underlying
                    # block for this dispatch
                    limit_demotions += 1
                    fn, blen, fall, last, extra = extra[2]
                else:
                    c = counts[pc] + 1
                    counts[pc] = c
                    if c == threshold and max_blocks > 1:
                        tf0 = perf_counter()
                        if blocks_by_start is None:
                            cfg = (fuser.cfg
                                   if fuser.cfg is not None
                                   else build_cfg(program))
                            blocks_by_start = {block.start: block
                                               for block in cfg}
                        formed = _form_trace(pc, blocks_by_start,
                                             counts, fuser,
                                             max_blocks, call_depth,
                                             entry, plan)
                        if formed is not None:
                            table[pc] = formed[0]
                            trace_sizes.append(formed[1])
                            trace_meta[pc] = (formed[1], formed[2],
                                              formed[0][1])
                            if formed[2]:
                                cross_call_traces += 1
                            if obs is not None:
                                obs.emit("trace_formed", head=pc,
                                         blocks=formed[1],
                                         instrs=formed[0][1],
                                         has_call=formed[2],
                                         source="profile")
                        # formation nests inside the execute phase;
                        # reports show execute net of this
                        timers_add("trace_formation",
                                   perf_counter() - tf0)
                nic = icount + blen
                if nic <= limit:
                    icount = nic
                    lpc = last
                    tpcs = None
                    npc = fn(pc)
                    pc = fall if npc is None else npc
                    continue
            # single-step: mid-block entry, or the limit may fire
            # within the block — mirror the decoded loop exactly
            lpc = pc
            tpcs = None
            single_steps += 1
            icount += 1
            if icount > limit:
                raise InstructionLimitExceeded(limit)
            npc = code[pc](pc)
            pc = pc + 1 if npc is None else npc
    except HaltSignal as halt:
        # phase and stats must land before RunResult snapshots them
        timers_add("execute", perf_counter() - t0)
        state = _rewind(halt, icount, lpc, blen, tpcs)
        if state is None:
            cpu.icount = icount
            cpu.pc = pc
        else:
            cpu.icount, cpu.pc = state
        cpu.engine_stats = _introspection(
            trace_sizes, sum(tcounts), sum(sxcounts.values()),
            single_steps, fallback_ops, counts, cross_call_traces,
            ret_mispredicts, limit_demotions)
        stats_done = True
        return RunResult(cpu, halt.code)
    except IndexError as exc:
        state = _rewind(exc, icount, lpc, blen, tpcs)
        if state is not None:
            # genuine IndexError inside a fused instruction
            cpu.icount, cpu.pc = state
            raise
        if 0 <= pc < n:
            # genuine IndexError in a single-stepped closure
            cpu.icount = icount
            cpu.pc = lpc
            raise
        cpu.icount = icount
        cpu.pc = lpc
        raise MemoryFault(pc, "fetch").at(lpc)
    except Trap as trap:
        state = _rewind(trap, icount, lpc, blen, tpcs)
        if state is None:
            cpu.icount = icount
            cpu.pc = lpc
            raise trap.at(lpc)
        cpu.icount, cpu.pc = state
        raise trap.at(cpu.pc)
    except BaseException as exc:
        state = _rewind(exc, icount, lpc, blen, tpcs)
        if state is None:
            cpu.icount = icount
            cpu.pc = lpc
        else:
            cpu.icount, cpu.pc = state
        raise
    finally:
        # the halt path snapshots before building its RunResult (the
        # result captures engine_stats and phases at construction);
        # only the trap paths still need the snapshot here
        if not stats_done:
            timers_add("execute", perf_counter() - t0)
            cpu.engine_stats = _introspection(
                trace_sizes, sum(tcounts), sum(sxcounts.values()),
                single_steps, fallback_ops, counts,
                cross_call_traces, ret_mispredicts,
                limit_demotions)
        if obs is not None:
            sx_by_head: Dict[int, int] = {}
            for (head, _bpc), cnt in sxcounts.items():
                sx_by_head[head] = sx_by_head.get(head, 0) + cnt
            for head in sorted(trace_meta):
                n_blocks, has_call, tlen = trace_meta[head]
                entry = table[head]
                head_pcs = (entry[4][0]
                            if entry is not None and entry[4]
                            else None)
                obs.emit("trace_profile", head=head,
                         pc_lo=min(head_pcs) if head_pcs else head,
                         pc_hi=max(head_pcs) if head_pcs else head,
                         blocks=n_blocks, instrs=tlen,
                         dispatches=tcounts[head],
                         side_exits=sx_by_head.get(head, 0),
                         has_call=has_call)
            for (head, bpc), cnt in sorted(sxcounts.items()):
                obs.emit("side_exit_profile", head=head,
                         branch_pc=bpc, count=cnt)
            obs.emit("demotions", count=limit_demotions)
