"""tsp: travelling-salesman tour construction (Olden).

Cities live in a circular doubly linked list; each new city is
inserted at the position minimizing the tour-length increase
(cheapest-insertion, the pointer-churning heart of Olden's tsp).
Distances use an integer Newton square root.
"""

N_CITIES = 22

SOURCE = """
struct city {
    int x;
    int y;
    struct city *next;
    struct city *prev;
};

int __seed;

int nextrand() {
    __seed = __seed * 1103515245 + 12345;
    return (__seed >> 8) & 32767;
}

int isqrt(int v) {
    if (v <= 0) { return 0; }
    int r = v;
    int last = 0;
    while (r != last) {
        last = r;
        r = (r + v / r) / 2;
    }
    return r;
}

int dist(struct city *a, struct city *b) {
    int dx = a->x - b->x;
    int dy = a->y - b->y;
    return isqrt(dx * dx + dy * dy);
}

struct city *make_city() {
    struct city *c = (struct city*)malloc(sizeof(struct city));
    c->x = nextrand() & 1023;
    c->y = nextrand() & 1023;
    c->next = c;
    c->prev = c;
    return c;
}

void insert_after(struct city *pos, struct city *c) {
    c->next = pos->next;
    c->prev = pos;
    pos->next->prev = c;
    pos->next = c;
}

int tour_length(struct city *start) {
    int len = dist(start, start->next);
    for (struct city *c = start->next; c != start; c = c->next) {
        len += dist(c, c->next);
    }
    return len;
}

int main() {
    __seed = 271828;
    struct city *tour = make_city();
    for (int i = 1; i < %(n)d; i++) {
        struct city *c = make_city();
        struct city *best = tour;
        int best_delta = dist(tour, c) + dist(c, tour->next)
                       - dist(tour, tour->next);
        for (struct city *p = tour->next; p != tour; p = p->next) {
            int delta = dist(p, c) + dist(c, p->next)
                      - dist(p, p->next);
            if (delta < best_delta) {
                best_delta = delta;
                best = p;
            }
        }
        insert_after(best, c);
    }
    print(tour_length(tour));
    return 0;
}
""" % {"n": N_CITIES}
