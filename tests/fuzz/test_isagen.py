"""ISA generator: well-formedness, determinism, guaranteed termination."""

import pytest

from repro.fuzz.isagen import BUF, DEFAULT_FUEL, generate_isa_program
from repro.fuzz.rng import FUZZ_SEED_ENV
from repro.isa.assembler import assemble
from repro.machine.config import MachineConfig
from repro.machine.cpu import CPU
from repro.machine.errors import InstructionLimitExceeded, Trap

SEEDS = range(20)


def test_deterministic(monkeypatch):
    monkeypatch.delenv(FUZZ_SEED_ENV, raising=False)
    assert generate_isa_program(3) == generate_isa_program(3)
    assert generate_isa_program(3) != generate_isa_program(4)


def test_env_seed_override(monkeypatch):
    monkeypatch.setenv(FUZZ_SEED_ENV, "3")
    override = generate_isa_program(999)
    monkeypatch.delenv(FUZZ_SEED_ENV)
    assert override == generate_isa_program(3)
    assert "seed=3" in override.splitlines()[0]


@pytest.mark.parametrize("seed", SEEDS)
def test_assembles(seed):
    program = assemble(generate_isa_program(seed))
    assert len(program.instrs) > 10


@pytest.mark.parametrize("seed", SEEDS)
def test_runs_under_full_hardbound(seed):
    """Generated programs are memory-safe by construction: under the
    strictest mode they either exit or hit the deliberate trap
    finale — never a limit overrun (fuel guarantees termination)."""
    program = assemble(generate_isa_program(seed))
    config = MachineConfig.hardbound(timing=False, engine="legacy",
                                     max_instructions=2_000_000)
    cpu = CPU(program, config)
    try:
        cpu.run()
    except InstructionLimitExceeded:
        pytest.fail("fuel counter failed to bound seed %d" % seed)
    except Trap:
        pass  # the ~15% deliberate out-of-bounds finale


def test_fuel_bounds_dynamic_length():
    """Dynamic instruction count stays proportional to the fuel
    budget (structural termination, not the instruction limit)."""
    for seed in range(8):
        program = assemble(generate_isa_program(seed,
                                                fuel=DEFAULT_FUEL))
        cpu = CPU(program, MachineConfig.plain(timing=False,
                                               engine="legacy"))
        try:
            cpu.run()
        except Trap:
            pass
        assert cpu.icount < 100_000


def test_trap_finale_appears_across_seeds():
    """~15% of seeds end with the deliberate out-of-bounds load."""
    finales = sum("[r10 + %d]" % BUF in generate_isa_program(seed)
                  for seed in range(60))
    assert 1 <= finales <= 30


def test_registry_breadth():
    """The generator must keep exercising the whole registry: every
    one of these mnemonics appears somewhere in a 40-seed corpus."""
    corpus = "\n".join(generate_isa_program(seed)
                       for seed in range(40))
    for mnemonic in ("add ", "sub ", "mul ", "div ", "mod ", "and ",
                     "or ", "xor ", "shl ", "shr ", "sra ", "neg ",
                     "not ", "xchg ", "mov ", "lea ", "load ",
                     "loadh ", "loadb ", "store ", "storeh ",
                     "storeb ", "setbound ", "sbrk ", "readbase ",
                     "readbound ", "setunsafe ", "clrbnd ", "call ",
                     "callr ", "setcode ", "ret", "jmp ", "beqz ",
                     "bnez ", "print ", "printc ", "halt "):
        assert mnemonic in corpus, "never generated: %s" % mnemonic
