"""Property tests for the Figure 3 propagation invariants.

Random instruction sequences over a bounded pointer must preserve the
invariants the paper's hardware maintains: propagating ops never
change a pointer's bounds, non-propagating ops always clear them, and
value arithmetic is exact.
"""

from hypothesis import given, strategies as st

from repro.isa import assemble
from repro.layout import MASK32
from repro.machine import CPU, MachineConfig

CFG = MachineConfig.hardbound(timing=False)

BASE = 0x0100_0000

#: (mnemonic, propagates?) — word-sized register ops on a pointer
#: in the destination-also-source position
_OPS = [
    ("add", True), ("sub", True),
    ("mul", False), ("and", False), ("or", False),
    ("xor", False), ("shl", False), ("shr", False),
]


@given(steps=st.lists(
    st.tuples(st.sampled_from(_OPS), st.integers(0, 7)),
    min_size=1, max_size=12))
def test_bounds_survive_exactly_the_propagating_ops(steps):
    lines = ["main:",
             "mov r1, %d" % BASE,
             "setbound r2, r1, 64"]
    value = BASE
    bounded = True
    for (mnem, propagates), operand in steps:
        lines.append("%s r2, r2, %d" % (mnem, operand))
        if mnem == "add":
            value = (value + operand) & MASK32
        elif mnem == "sub":
            value = (value - operand) & MASK32
        elif mnem == "mul":
            value = (value * operand) & MASK32
        elif mnem == "and":
            value &= operand
        elif mnem == "or":
            value |= operand
        elif mnem == "xor":
            value ^= operand
        elif mnem == "shl":
            value = (value << (operand & 31)) & MASK32
        elif mnem == "shr":
            value >>= (operand & 31)
        if not propagates:
            bounded = False
    lines.append("halt 0")
    cpu = CPU(assemble("\n".join(lines)), CFG)
    cpu.run()
    assert cpu.regs.value[2] == value
    if bounded:
        assert cpu.regs.base[2] == BASE
        assert cpu.regs.bound[2] == BASE + 64
    else:
        assert not cpu.regs.is_pointer(2)


@given(offsets=st.lists(st.integers(-64, 64), min_size=1,
                        max_size=10))
def test_walking_a_pointer_keeps_bounds_constant(offsets):
    """Any add/sub walk leaves base/bound untouched (Figure 2)."""
    lines = ["main:",
             "mov r1, %d" % BASE,
             "setbound r2, r1, 128"]
    for off in offsets:
        if off >= 0:
            lines.append("add r2, r2, %d" % off)
        else:
            lines.append("sub r2, r2, %d" % -off)
    lines.append("halt 0")
    cpu = CPU(assemble("\n".join(lines)), CFG)
    cpu.run()
    assert cpu.regs.base[2] == BASE
    assert cpu.regs.bound[2] == BASE + 128
    assert cpu.regs.value[2] == (BASE + sum(offsets)) & MASK32


@given(size=st.integers(1, 4096),
       offset=st.integers(-4096, 8192))
def test_check_oracle(size, offset):
    """The hardware check agrees with the mathematical definition."""
    program = assemble("""
    main:
        mov r1, %d
        sbrk r1
        mov r1, %d
        setbound r2, r1, %d
        loadb r3, [r2 + %d]
        halt 0
    """ % (16384, BASE, size, offset))
    cpu = CPU(program, CFG)
    from repro.machine import BoundsError, MemoryFault
    in_bounds = 0 <= offset < size
    if in_bounds:
        cpu.run()
    else:
        try:
            cpu.run()
            raised = False
        except (BoundsError, MemoryFault):
            raised = True
        assert raised
