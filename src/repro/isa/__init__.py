"""Instruction-set architecture for the HardBound reproduction.

The ISA is a 32-bit, byte-addressable, load/store architecture with
x86-flavoured addressing modes (``base + index*scale + disp``) so that
the bounds-propagation rules of the paper's Figure 3 (which are stated
for x86 ``add``/``lea``/``mov``/memory operations) map one-to-one onto
our instructions.  Every instruction is a single micro-operation on the
simulated in-order core, matching the paper's PTLSim-derived µop
accounting (Section 5.1).

Public surface:

* :class:`~repro.isa.instructions.Instruction` — the decoded form.
* :class:`~repro.isa.opcodes.Op` — the opcode enumeration.
* :func:`~repro.isa.assembler.assemble` — text assembler.
* :class:`~repro.isa.program.Program` — linked code + data image.
* :func:`~repro.isa.disasm.disassemble` — one-instruction printer.
"""

from repro.isa.opcodes import Op, REG_NAMES, REG_ALIASES, NUM_REGS
from repro.isa.instructions import Instruction
from repro.isa.program import Program, DataItem
from repro.isa.assembler import assemble, AssemblerError
from repro.isa.disasm import disassemble

__all__ = [
    "Op",
    "REG_NAMES",
    "REG_ALIASES",
    "NUM_REGS",
    "Instruction",
    "Program",
    "DataItem",
    "assemble",
    "AssemblerError",
    "disassemble",
]
