#!/usr/bin/env python
"""CI perf-regression gate over the freshly emitted benchmark record.

``bench_engine.py`` writes ``results/BENCH_engine.json`` on every CI
run; this script is the step right after it and fails the build when

* the record's ``timed.blocks_vs_decoded`` speedup falls below the
  committed floor (``FLOOR_TIMED_BLOCKS_VS_DECODED``, the PR 2
  acceptance line — the ratio is host-independent because both
  engines run on the same machine in the same process), or
* the record's ``timed.superblocks_vs_blocks`` speedup falls below
  ``FLOOR_TIMED_SUPERBLOCKS_VS_BLOCKS`` (the PR 5 acceptance line
  for the superblock trace tier, host-independent for the same
  reason), or
* the record's ``timed.superblocks_vs_decoded`` speedup falls below
  ``FLOOR_TIMED_SUPERBLOCKS_VS_DECODED``, or the Olden-aggregate
  ``trace_stats.mean_trace_blocks`` falls below
  ``FLOOR_MEAN_TRACE_BLOCKS`` (the PR 6 whole-function-trace
  acceptance lines; see the floor constants for why the speedup
  floor sits below the issue's aspirational 3.0x), or
* the record's ``obs_overhead.ratio`` (timed superblocks sweep,
  events-off seconds over events-on seconds) falls below
  ``FLOOR_OBS_OVERHEAD_RATIO`` — event tracing must stay under ~2%
  overhead (the PR 7 observability acceptance line), or
* the engine differential / fast-model counter-identity suite did
  not actually run and pass: the gate demands the junit record the
  suite step emits (``--junitxml``), and checks every required test
  module is present with zero failures, errors or skips.  A build
  that silently dropped the equivalence proof must not be green, or
* (when ``--fuzz-junit`` is given) the differential fuzz smoke
  (``pytest -m fuzz``, fixed seeds, >= 200 programs through all four
  engines x both memory models) did not run and pass — same
  present/zero-failure/zero-skip demands against the smoke's junit
  record, or
* the record's ``service_warm_vs_cold.ratio`` (timed Olden sweep
  through a warm persistent worker fleet vs. a freshly spawned one)
  falls below ``FLOOR_SERVICE_WARM_VS_COLD`` — the PR 9
  simulation-as-a-service acceptance line: warm workers holding the
  program/fusion-plan caches resident must actually pay off, or
* (when ``--service-junit`` is given) the end-to-end daemon
  lifecycle smoke (``tests/service/test_smoke.py``: CLI start,
  socket submissions, store-served second pass, drain, stop) did not
  run and pass.

The same-host baseline ratios (``blocks_vs_pr2_blocks`` /
``blocks_vs_pr3_blocks`` / ``superblocks_vs_pr4_blocks`` /
``superblocks_vs_pr5_superblocks``) are *not* gated here: they
compare against numbers measured on the record host, so
cloud-runner noise would flake PRs.  The record host arms
``REPRO_ASSERT_PR2`` / ``REPRO_ASSERT_PR3`` / ``REPRO_ASSERT_PR4``
/ ``REPRO_ASSERT_PR5``, which turn the hard assertions on inside
``bench_engine.py`` itself.

Freshness: ``results/BENCH_engine.json`` is tracked in git, so the
workflow deletes it (and any stale junit) before the suites run —
a build that silently skips the benchmark or the differential step
therefore presents *missing* artifacts here, not yesterday's
passing ones.

``bench_engine.py`` imports :data:`FLOOR_TIMED_BLOCKS_VS_DECODED`
for its own in-process assertion, so the floor has exactly one
committed definition.

Exit status: 0 when every gate holds, 1 otherwise (with one line per
violation on stderr).  Stdlib only — runs before any dependency
install if need be.
"""

import argparse
import json
import sys
import xml.etree.ElementTree as ET

#: committed floor for the timed blocks-vs-decoded speedup.  Start at
#: the PR 2 acceptance line; raise it as the engine gets faster (the
#: measured value is printed on every run to make drift visible).
FLOOR_TIMED_BLOCKS_VS_DECODED = 1.5

#: committed floor for the timed superblocks-vs-blocks speedup — the
#: PR 5 acceptance line for the trace tier + full-coverage templates.
#: Host-independent: both engines run in the same process on the same
#: machine.  Lowered from 1.15 in PR 6: the blocks-tier default-arg
#: localization sped up the *denominator* ~10%, compressing the
#: measured ratio from ~1.24 to ~1.11 while the superblock tier
#: itself stayed flat (``superblocks_vs_pr5_superblocks`` ~0.98,
#: within the ≥0.95 no-regression bar).  The absolute trace-tier
#: level is gated by ``FLOOR_TIMED_SUPERBLOCKS_VS_DECODED`` below.
FLOOR_TIMED_SUPERBLOCKS_VS_BLOCKS = 1.05

#: committed floor for the timed superblocks-vs-decoded speedup —
#: the PR 6 whole-function-trace acceptance line.  The issue's
#: aspirational 3.0x target was NOT reached: on the record host the
#: superblock sweep is dominated by per-access timing-model work both
#: engines share (the trace tier's dispatch overhead was already
#: mostly gone by PR 5), so cross-call chaining moves the measured
#: ratio from ~2.4x to ~2.5x, not to 3x.  The floor locks in the
#: measured level with a noise margin; the trace-length target below
#: (which cross-call chaining *does* control) is gated at full
#: strength.
FLOOR_TIMED_SUPERBLOCKS_VS_DECODED = 2.2

#: committed floor for the Olden-aggregate mean trace length (in
#: basic blocks) of the whole-function trace tier — deterministic,
#: so no noise margin is needed below the measured ~6.7.
FLOOR_MEAN_TRACE_BLOCKS = 6.0

#: committed floor for the instrumentation-overhead ratio of the
#: observability layer (PR 7): timed superblocks sweep seconds with
#: events off divided by the same sweep with ``obs_events`` on.
#: Host-independent (both sweeps run in the same process,
#: interleaved).  0.98 means event tracing may cost at most ~2%;
#: the always-on counters are covered by the engine-ladder floors
#: above, which run events-off.
FLOOR_OBS_OVERHEAD_RATIO = 0.98

#: committed floor for the service warm-over-cold ratio (PR 9):
#: seconds of a timed Olden sweep mapped through a *fresh* spawned
#: worker fleet, divided by the same sweep through an already-warm
#: fleet whose workers hold the program and fusion-plan caches
#: resident.  Host-independent: both passes run the same jobs on the
#: same machine back to back.  The measured ratio is far above this
#: (cold pays process spawn + compile + plan formation; warm pays
#: only the simulation), but CI-runner noise on sub-second sweeps
#: argues for a conservative committed line.
FLOOR_SERVICE_WARM_VS_COLD = 1.2

#: test modules whose presence in the junit record proves the
#: four-way engine differential, fast-model counter-identity and
#: optimizer-differential suites ran in this build
REQUIRED_SUITES = (
    "tests.machine.test_engine_differential",
    "tests.machine.test_blocks",
    "tests.machine.test_superblocks",
    "tests.caches.test_fast",
    "tests.minic.test_optimizer",
)

#: test modules whose presence in the fuzz junit record proves the
#: differential fuzz smoke (``pytest -m fuzz``) ran in this build
REQUIRED_FUZZ = (
    "tests.fuzz.test_smoke",
)

#: test modules whose presence in the service junit record proves
#: the end-to-end daemon lifecycle smoke ran in this build
REQUIRED_SERVICE = (
    "tests.service.test_smoke",
)


def check_record(path: str, floor: float, errors: list) -> None:
    try:
        with open(path) as fh:
            record = json.load(fh)
    except (OSError, ValueError) as exc:
        errors.append("cannot read benchmark record %s: %s"
                      % (path, exc))
        return
    try:
        ratio = record["speedups"]["timed"]["blocks_vs_decoded"]
    except (KeyError, TypeError):
        errors.append("%s has no speedups.timed.blocks_vs_decoded"
                      % path)
        return
    print("bench-gate: timed blocks_vs_decoded = %.2fx (floor %.2fx)"
          % (ratio, floor))
    if ratio < floor:
        errors.append(
            "timed blocks_vs_decoded %.3fx is below the committed "
            "floor %.2fx — the blocks engine regressed past the PR 2 "
            "acceptance line" % (ratio, floor))
    try:
        sb = record["speedups"]["timed"]["superblocks_vs_blocks"]
    except (KeyError, TypeError):
        errors.append("%s has no speedups.timed.superblocks_vs_blocks"
                      % path)
        return
    print("bench-gate: timed superblocks_vs_blocks = %.2fx "
          "(floor %.2fx)" % (sb, FLOOR_TIMED_SUPERBLOCKS_VS_BLOCKS))
    if sb < FLOOR_TIMED_SUPERBLOCKS_VS_BLOCKS:
        errors.append(
            "timed superblocks_vs_blocks %.3fx is below the "
            "committed floor %.2fx — the superblock trace tier "
            "regressed past the PR 5 acceptance line"
            % (sb, FLOOR_TIMED_SUPERBLOCKS_VS_BLOCKS))
    sbd = record["speedups"]["timed"].get("superblocks_vs_decoded")
    if sbd is None:
        errors.append("%s has no speedups.timed."
                      "superblocks_vs_decoded" % path)
    else:
        print("bench-gate: timed superblocks_vs_decoded = %.2fx "
              "(floor %.2fx)"
              % (sbd, FLOOR_TIMED_SUPERBLOCKS_VS_DECODED))
        if sbd < FLOOR_TIMED_SUPERBLOCKS_VS_DECODED:
            errors.append(
                "timed superblocks_vs_decoded %.3fx is below the "
                "committed floor %.2fx — the whole-function trace "
                "tier regressed past the PR 6 acceptance line"
                % (sbd, FLOOR_TIMED_SUPERBLOCKS_VS_DECODED))
    mean = (record.get("trace_stats") or {}).get("mean_trace_blocks")
    if mean is None:
        errors.append("%s has no trace_stats.mean_trace_blocks"
                      % path)
    else:
        print("bench-gate: olden mean_trace_blocks = %.2f "
              "(floor %.2f)" % (mean, FLOOR_MEAN_TRACE_BLOCKS))
        if mean < FLOOR_MEAN_TRACE_BLOCKS:
            errors.append(
                "olden mean_trace_blocks %.2f is below the "
                "committed floor %.2f — whole-function traces "
                "stopped spanning calls" % (mean,
                                            FLOOR_MEAN_TRACE_BLOCKS))
    ratio = (record.get("obs_overhead") or {}).get("ratio")
    if ratio is None:
        errors.append("%s has no obs_overhead.ratio — the "
                      "instrumentation-overhead sweep did not run"
                      % path)
    else:
        print("bench-gate: obs events-off/on ratio = %.3f "
              "(floor %.2f)" % (ratio, FLOOR_OBS_OVERHEAD_RATIO))
        if ratio < FLOOR_OBS_OVERHEAD_RATIO:
            errors.append(
                "obs overhead ratio %.3f is below the committed "
                "floor %.2f — event tracing costs more than ~2%% "
                "on the timed superblocks sweep"
                % (ratio, FLOOR_OBS_OVERHEAD_RATIO))
    service = (record.get("service_warm_vs_cold") or {}).get("ratio")
    if service is None:
        errors.append("%s has no service_warm_vs_cold.ratio — the "
                      "service warm-fleet sweep did not run" % path)
    else:
        print("bench-gate: service warm-vs-cold ratio = %.2fx "
              "(floor %.2fx)" % (service,
                                 FLOOR_SERVICE_WARM_VS_COLD))
        if service < FLOOR_SERVICE_WARM_VS_COLD:
            errors.append(
                "service warm_vs_cold %.3fx is below the committed "
                "floor %.2fx — warm daemon workers no longer beat a "
                "fresh pool on the timed Olden sweep (the PR 9 "
                "acceptance line)"
                % (service, FLOOR_SERVICE_WARM_VS_COLD))
    for extra in ("blocks_vs_pr2_blocks", "blocks_vs_pr3_blocks",
                  "superblocks_vs_pr4_blocks",
                  "superblocks_vs_pr5_superblocks"):
        value = record["speedups"]["timed"].get(extra)
        if value is not None:
            print("bench-gate: timed %s = %.2fx (informational)"
                  % (extra, value))


def check_junit(path: str, errors: list,
                label: str = "differential suite",
                required: tuple = REQUIRED_SUITES) -> None:
    try:
        root = ET.parse(path).getroot()
    except (OSError, ET.ParseError) as exc:
        errors.append("%s junit record %s missing or "
                      "unreadable (%s) — the suite did "
                      "not run" % (label, path, exc))
        return
    suites = ([root] if root.tag == "testsuite"
              else root.findall("testsuite"))
    tests = failures = skipped = 0
    classnames = set()
    for suite in suites:
        tests += int(suite.get("tests", 0))
        failures += (int(suite.get("failures", 0))
                     + int(suite.get("errors", 0)))
        skipped += int(suite.get("skipped", 0))
        for case in suite.iter("testcase"):
            classnames.add(case.get("classname") or "")
    print("bench-gate: %s ran %d tests "
          "(%d failed, %d skipped)" % (label, tests, failures, skipped))
    if tests == 0:
        errors.append("%s junit records zero tests" % label)
    if failures:
        errors.append("%s junit records %d "
                      "failures/errors" % (label, failures))
    if skipped:
        errors.append("%s junit records %d skipped "
                      "tests — the suite must run in "
                      "full" % (label, skipped))
    for module in required:
        if not any(name == module or name.startswith(module + ".")
                   for name in classnames):
            errors.append("required suite %s is absent from the "
                          "%s junit record" % (module, label))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--record", default="results/BENCH_engine.json",
                        help="BENCH_engine.json emitted by this build")
    parser.add_argument("--junit", default="results/diff_suite.xml",
                        help="junit xml emitted by the differential "
                             "suite step of this build")
    parser.add_argument("--fuzz-junit", default=None, metavar="PATH",
                        help="junit xml emitted by the fuzz smoke "
                             "step; when given, the smoke must have "
                             "run in full with zero failures")
    parser.add_argument("--service-junit", default=None,
                        metavar="PATH",
                        help="junit xml emitted by the service smoke "
                             "step; when given, the daemon lifecycle "
                             "smoke must have run in full with zero "
                             "failures")
    parser.add_argument("--floor", type=float,
                        default=FLOOR_TIMED_BLOCKS_VS_DECODED,
                        help="minimum timed blocks_vs_decoded speedup")
    args = parser.parse_args(argv)
    errors: list = []
    check_record(args.record, args.floor, errors)
    check_junit(args.junit, errors)
    if args.fuzz_junit:
        check_junit(args.fuzz_junit, errors, label="fuzz smoke",
                    required=REQUIRED_FUZZ)
    if args.service_junit:
        check_junit(args.service_junit, errors,
                    label="service smoke",
                    required=REQUIRED_SERVICE)
    for message in errors:
        print("bench-gate: FAIL: %s" % message, file=sys.stderr)
    if not errors:
        print("bench-gate: OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
