"""End-to-end MiniC execution tests (compile + run on the simulator).

Each test compiles a small program with full HardBound instrumentation
and checks its output / exit code — the ``77 additional programs``
style of functional validation from Section 5.2.
"""

import pytest

from repro.machine import MachineConfig
from repro.minic import compile_and_run

CFG = MachineConfig.hardbound(timing=False)


def run(source, config=CFG):
    return compile_and_run(source, config)


def outputs(source, config=CFG):
    return run(source, config).output


def exit_code(source, config=CFG):
    return run(source, config).exit_code


class TestBasics:
    def test_return_value_is_exit_code(self):
        assert exit_code("int main() { return 42; }") == 42

    def test_arithmetic(self):
        assert exit_code("""
        int main() { return (2 + 3 * 4 - 5) / 3 % 4; }
        """) == 3

    def test_negative_numbers(self):
        assert exit_code("int main() { return -7 / 2; }") == -3

    def test_modulo_negative(self):
        assert exit_code("int main() { return -7 % 3; }") == -1

    def test_bitwise(self):
        assert exit_code("""
        int main() { return (12 & 10) | (1 ^ 3) | (1 << 4) | (32 >> 2); }
        """) == ((12 & 10) | (1 ^ 3) | (1 << 4) | (32 >> 2))

    def test_comparisons(self):
        assert exit_code("""
        int main() {
            return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1)
                 + (1 != 1);
        }""") == 4

    def test_logical_short_circuit(self):
        assert outputs("""
        int side(int x) { print(x); return x; }
        int main() {
            int r;
            r = side(0) && side(1);
            r = side(2) || side(3);
            return 0;
        }""") == "0\n2\n"

    def test_ternary(self):
        assert exit_code("int main() { return 1 ? 10 : 20; }") == 10
        assert exit_code("int main() { return 0 ? 10 : 20; }") == 20

    def test_print(self):
        assert outputs("int main() { print(123); return 0; }") == "123\n"

    def test_char_literals_and_printc(self):
        assert outputs("""
        int main() { printc('h'); printc('i'); printc('\\n'); return 0; }
        """) == "hi\n"

    def test_unary_ops(self):
        assert exit_code("int main() { return -(-5) + ~0 + !0 + !7; }") \
            == 5 - 1 + 1 + 0


class TestControlFlow:
    def test_if_else_chain(self):
        src = """
        int classify(int x) {
            if (x < 0) { return -1; }
            else if (x == 0) { return 0; }
            else { return 1; }
        }
        int main() { return classify(%d) + 1; }
        """
        assert exit_code(src % -5) == 0
        assert exit_code(src % 0) == 1
        assert exit_code(src % 9) == 2

    def test_while_loop(self):
        assert exit_code("""
        int main() {
            int i = 0; int sum = 0;
            while (i < 10) { sum += i; i++; }
            return sum;
        }""") == 45

    def test_for_loop_with_decl(self):
        assert exit_code("""
        int main() {
            int sum = 0;
            for (int i = 1; i <= 5; i++) { sum += i * i; }
            return sum;
        }""") == 55

    def test_break_continue(self):
        assert exit_code("""
        int main() {
            int sum = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2) { continue; }
                if (i > 10) { break; }
                sum += i;
            }
            return sum;
        }""") == 0 + 2 + 4 + 6 + 8 + 10

    def test_nested_loops(self):
        assert exit_code("""
        int main() {
            int count = 0;
            for (int i = 0; i < 4; i++) {
                for (int j = 0; j < 4; j++) {
                    if (j > i) { break; }
                    count++;
                }
            }
            return count;
        }""") == 1 + 2 + 3 + 4


class TestFunctions:
    def test_recursion_factorial(self):
        assert exit_code("""
        int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
        int main() { return fact(6) % 251; }
        """) == 720 % 251

    def test_fibonacci_recursive(self):
        assert exit_code("""
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
        """) == 55

    def test_many_arguments(self):
        assert exit_code("""
        int f(int a, int b, int c, int d, int e) {
            return a + 2*b + 3*c + 4*d + 5*e;
        }
        int main() { return f(1, 2, 3, 4, 5); }
        """) == 1 + 4 + 9 + 16 + 25

    def test_mutual_recursion(self):
        assert exit_code("""
        int is_odd(int n);
        int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
        int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
        int main() { return is_even(10) * 10 + is_odd(7); }
        """) == 11

    def test_void_function(self):
        assert outputs("""
        void greet(int n) { print(n); }
        int main() { greet(7); return 0; }
        """) == "7\n"

    def test_call_preserves_live_temporaries(self):
        # the caller-save discipline around calls
        assert exit_code("""
        int g(int x) { return x * 2; }
        int main() { return 100 + g(3) + g(4); }
        """) == 114


class TestPointersAndArrays:
    def test_local_array_sum(self):
        assert exit_code("""
        int main() {
            int a[5];
            for (int i = 0; i < 5; i++) { a[i] = i * i; }
            int sum = 0;
            for (int i = 0; i < 5; i++) { sum += a[i]; }
            return sum;
        }""") == 30

    def test_pointer_walk(self):
        assert exit_code("""
        int main() {
            int a[4];
            int *p = a;
            for (int i = 0; i < 4; i++) { *p = i + 1; p++; }
            int *q = a;
            int sum = 0;
            while (q < a + 4) { sum += *q; q++; }
            return sum;
        }""") == 10

    def test_address_of_and_deref(self):
        assert exit_code("""
        int main() {
            int x = 3;
            int *p = &x;
            *p = 17;
            return x;
        }""") == 17

    def test_pointer_to_pointer(self):
        assert exit_code("""
        int main() {
            int x = 1;
            int *p = &x;
            int **pp = &p;
            **pp = 9;
            return x;
        }""") == 9

    def test_pointer_difference(self):
        assert exit_code("""
        int main() {
            int a[10];
            int *p = &a[2];
            int *q = &a[7];
            return q - p;
        }""") == 5

    def test_char_array_and_strings(self):
        assert outputs("""
        int main() {
            char buf[16];
            strcpy(buf, "hello");
            puts(buf);
            return strlen(buf);
        }""") == "hello\n"

    def test_strcmp(self):
        assert exit_code("""
        int main() {
            return (strcmp("abc", "abc") == 0)
                 + 2 * (strcmp("abc", "abd") < 0)
                 + 4 * (strcmp("b", "a") > 0);
        }""") == 7

    def test_global_array(self):
        assert exit_code("""
        int table[8];
        int main() {
            for (int i = 0; i < 8; i++) { table[i] = i; }
            return table[3] + table[7];
        }""") == 10

    def test_global_scalar_init(self):
        assert exit_code("""
        int counter = 5;
        int step = -2;
        int main() { counter += step; return counter; }
        """) == 3

    def test_global_string_pointer(self):
        assert outputs("""
        char *msg = "boot";
        int main() { puts(msg); return 0; }
        """) == "boot\n"

    def test_array_passed_to_function(self):
        assert exit_code("""
        int sum(int *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += a[i]; }
            return s;
        }
        int main() {
            int data[6];
            for (int i = 0; i < 6; i++) { data[i] = i + 1; }
            return sum(data, 6);
        }""") == 21

    def test_two_dimensional_array(self):
        assert exit_code("""
        int main() {
            int m[3][4];
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 4; j++) { m[i][j] = i * 4 + j; }
            }
            return m[2][3];
        }""") == 11


class TestStructs:
    def test_struct_fields(self):
        assert exit_code("""
        struct point { int x; int y; };
        int main() {
            struct point p;
            p.x = 3;
            p.y = 4;
            return p.x * p.x + p.y * p.y;
        }""") == 25

    def test_struct_pointer_arrow(self):
        assert exit_code("""
        struct point { int x; int y; };
        int main() {
            struct point p;
            struct point *q = &p;
            q->x = 10;
            q->y = 20;
            return p.x + p.y;
        }""") == 30

    def test_heap_struct_linked_list(self):
        assert exit_code("""
        struct node { int val; struct node *next; };
        int main() {
            struct node *head = (struct node*)0;
            for (int i = 1; i <= 5; i++) {
                struct node *n = (struct node*)
                    malloc(sizeof(struct node));
                n->val = i;
                n->next = head;
                head = n;
            }
            int sum = 0;
            while (head) { sum += head->val; head = head->next; }
            return sum;
        }""") == 15

    def test_struct_with_char_array(self):
        assert outputs("""
        struct rec { char name[8]; int id; };
        int main() {
            struct rec r;
            strcpy(r.name, "abc");
            r.id = 7;
            puts(r.name);
            print(r.id);
            return 0;
        }""") == "abc\n7\n"

    def test_nested_struct_member(self):
        assert exit_code("""
        struct inner { int a; int b; };
        struct outer { int tag; struct inner in; };
        int main() {
            struct outer o;
            o.tag = 1;
            o.in.a = 2;
            o.in.b = 3;
            return o.tag + o.in.a + o.in.b;
        }""") == 6

    def test_sizeof_struct_alignment(self):
        assert exit_code("""
        struct s { char c; int x; };
        int main() { return sizeof(struct s); }
        """) == 8

    def test_array_of_structs(self):
        assert exit_code("""
        struct pair { int a; int b; };
        int main() {
            struct pair ps[4];
            for (int i = 0; i < 4; i++) {
                ps[i].a = i;
                ps[i].b = i * 10;
            }
            return ps[3].a + ps[2].b;
        }""") == 23


class TestHeap:
    def test_malloc_roundtrip(self):
        assert exit_code("""
        int main() {
            int *p = (int*)malloc(4 * sizeof(int));
            for (int i = 0; i < 4; i++) { p[i] = i + 10; }
            return p[0] + p[3];
        }""") == 23

    def test_free_and_reuse(self):
        assert exit_code("""
        int main() {
            int *a = (int*)malloc(16);
            free((void*)a);
            int *b = (int*)malloc(16);
            b[0] = 5;
            return (a == b) + b[0];
        }""") == 6

    def test_calloc_zeroes(self):
        assert exit_code("""
        int main() {
            int *p = (int*)calloc(8, sizeof(int));
            int sum = 0;
            for (int i = 0; i < 8; i++) { sum += p[i]; }
            return sum;
        }""") == 0

    def test_memcpy_memset(self):
        assert exit_code("""
        int main() {
            char a[8];
            char b[8];
            memset((void*)a, 7, 8);
            memcpy((void*)b, (void*)a, 8);
            return b[0] + b[7];
        }""") == 14

    def test_rand_deterministic(self):
        out = outputs("""
        int main() {
            srand(42);
            print(rand());
            print(rand());
            return 0;
        }""")
        lines = out.strip().split("\n")
        assert len(lines) == 2
        assert all(0 <= int(x) <= 32767 for x in lines)


class TestCasts:
    def test_char_truncation(self):
        assert exit_code("int main() { return (char)(256 + 65); }") == 65

    def test_pointer_int_roundtrip_keeps_bounds(self):
        """Section 6.1's example: cast to int and back still works."""
        assert exit_code("""
        int main() {
            int x = 17;
            char *z = (char*)&x;
            int a = (int)z;
            *(int*)a = 42;
            return x;
        }""") == 42

    def test_void_pointer_passthrough(self):
        assert exit_code("""
        int main() {
            int x = 5;
            void *v = (void*)&x;
            int *p = (int*)v;
            return *p;
        }""") == 5

    def test_sizeof_expressions(self):
        assert exit_code("""
        int main() {
            int a[10];
            char c;
            return sizeof(a) + sizeof(c) + sizeof(int*);
        }""") == 40 + 1 + 4
