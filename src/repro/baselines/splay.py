"""Interval splay tree — the object-table data structure.

Jones & Kelly's object table "is typically implemented as a splay
tree in which objects are identified with their locations in memory"
(Section 2.2).  This is a classic bottom-up splay tree over
non-overlapping [start, end) intervals, instrumented to report how
many nodes each operation touches so the object-table baseline can
charge realistic µop costs.
"""

from __future__ import annotations

from typing import Optional, Tuple


class SplayNode:
    __slots__ = ("start", "end", "left", "right", "parent")

    def __init__(self, start: int, end: int):
        self.start = start
        self.end = end
        self.left: Optional[SplayNode] = None
        self.right: Optional[SplayNode] = None
        self.parent: Optional[SplayNode] = None

    def __repr__(self):
        return "SplayNode([0x%x, 0x%x))" % (self.start, self.end)


class SplayTree:
    """Splay tree keyed by interval start; lookup by containment."""

    def __init__(self):
        self.root: Optional[SplayNode] = None
        self.size = 0
        # lifetime statistics
        self.lookups = 0
        self.inserts = 0
        self.removes = 0
        self.nodes_touched = 0

    # -- rotations ----------------------------------------------------------

    def _rotate(self, x: SplayNode) -> None:
        p = x.parent
        g = p.parent
        if p.left is x:
            p.left = x.right
            if x.right:
                x.right.parent = p
            x.right = p
        else:
            p.right = x.left
            if x.left:
                x.left.parent = p
            x.left = p
        p.parent = x
        x.parent = g
        if g is None:
            self.root = x
        elif g.left is p:
            g.left = x
        else:
            g.right = x

    def _splay(self, x: SplayNode) -> None:
        while x.parent is not None:
            p = x.parent
            g = p.parent
            if g is None:
                self._rotate(x)                       # zig
            elif (g.left is p) == (p.left is x):
                self._rotate(p)                       # zig-zig
                self._rotate(x)
            else:
                self._rotate(x)                       # zig-zag
                self._rotate(x)

    # -- operations ---------------------------------------------------------

    def insert(self, start: int, end: int) -> int:
        """Insert [start, end); returns nodes touched on the way down."""
        self.inserts += 1
        touched = 1
        node = SplayNode(start, end)
        if self.root is None:
            self.root = node
            self.size += 1
            self.nodes_touched += touched
            return touched
        cur = self.root
        while True:
            touched += 1
            if start < cur.start:
                if cur.left is None:
                    cur.left = node
                    node.parent = cur
                    break
                cur = cur.left
            else:
                if cur.right is None:
                    cur.right = node
                    node.parent = cur
                    break
                cur = cur.right
        self._splay(node)
        self.size += 1
        self.nodes_touched += touched
        return touched

    def lookup(self, addr: int) -> Tuple[Optional[SplayNode], int]:
        """Find the interval containing ``addr``; splay it to the root.

        Returns (node-or-None, nodes touched).  Repeated lookups of
        the same hot object are cheap — the behaviour responsible for
        the object-table approach's cache-like cost profile.
        """
        self.lookups += 1
        touched = 0
        cur = self.root
        best = None
        while cur is not None:
            touched += 1
            if addr < cur.start:
                cur = cur.left
            elif addr >= cur.end:
                best = cur  # candidate predecessor
                cur = cur.right
            else:
                self._splay(cur)
                self.nodes_touched += touched
                return cur, touched
        if best is not None:
            self._splay(best)
        self.nodes_touched += touched
        return None, touched

    def remove(self, start: int) -> bool:
        """Remove the interval starting exactly at ``start``."""
        self.removes += 1
        node, touched = self._find_exact(start)
        self.nodes_touched += touched
        if node is None:
            return False
        self._splay(node)
        left, right = node.left, node.right
        if left:
            left.parent = None
        if right:
            right.parent = None
        if left is None:
            self.root = right
        else:
            # splay the maximum of the left subtree, hang right on it
            cur = left
            while cur.right is not None:
                cur = cur.right
            self.root = left
            self._splay(cur)
            cur.right = right
            if right:
                right.parent = cur
        self.size -= 1
        return True

    def _find_exact(self, start: int) -> Tuple[Optional[SplayNode], int]:
        cur = self.root
        touched = 0
        while cur is not None:
            touched += 1
            if start == cur.start:
                return cur, touched
            cur = cur.left if start < cur.start else cur.right
        return None, touched

    # -- validation helpers (tests) -----------------------------------------

    def in_order(self):
        """Yield (start, end) in key order (iterative, no recursion cap)."""
        stack, cur = [], self.root
        while stack or cur:
            while cur:
                stack.append(cur)
                cur = cur.left
            cur = stack.pop()
            yield cur.start, cur.end
            cur = cur.right

    def check_invariants(self) -> None:
        """Raise AssertionError if BST/parent links are inconsistent."""
        seen = 0
        prev_start = None
        for start, _end in self.in_order():
            if prev_start is not None:
                assert start >= prev_start, "BST order violated"
            prev_start = start
            seen += 1
        assert seen == self.size, "size mismatch: %d != %d" % (seen,
                                                               self.size)
        self._check_parents(self.root, None)

    def _check_parents(self, node, parent) -> None:
        if node is None:
            return
        assert node.parent is parent, "broken parent link at %r" % node
        self._check_parents(node.left, node)
        self._check_parents(node.right, node)
