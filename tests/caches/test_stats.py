"""AccessStats / KindStats bookkeeping."""

from repro.caches import AccessStats
from repro.caches.stats import FIG_PAGE_SHIFT, KINDS


def test_kinds():
    assert KINDS == ("data", "shadow", "tag", "soft")
    stats = AccessStats()
    for kind in KINDS:
        assert stats[kind].accesses == 0


def test_micro_page_tracking():
    stats = AccessStats()
    page_bytes = 1 << FIG_PAGE_SHIFT
    stats["data"].touch_page(0)
    stats["data"].touch_page(page_bytes - 1)
    stats["data"].touch_page(page_bytes)
    assert stats.distinct_pages("data") == 2


def test_aggregates():
    stats = AccessStats()
    stats["tag"].stall_cycles = 5
    stats["shadow"].stall_cycles = 7
    stats["data"].stall_cycles = 100
    assert stats.metadata_stall_cycles() == 12
    assert stats.total_stall_cycles() == 112


def test_as_dict_shape():
    stats = AccessStats()
    stats["soft"].accesses = 3
    d = stats.as_dict()
    assert d["soft"]["accesses"] == 3
    assert set(d) == set(KINDS)
    assert "distinct_pages" in d["data"]
