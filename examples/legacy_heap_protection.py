#!/usr/bin/env python3
"""Malloc-only mode: protecting legacy binaries (Section 3.2, fn. 2).

One of HardBound's modes needs *no compiler support at all*: only
``malloc`` is instrumented with ``setbound``, and existing binaries
get per-allocation heap protection.  This example compiles a program
with heap-only instrumentation (the compiler inserts nothing) and
shows what that mode does and does not catch.

Run:  python examples/legacy_heap_protection.py
"""

from repro import BoundsError, MachineConfig, compile_and_run

CFG = MachineConfig.malloc_only()

HEAP_OVERFLOW = """
int main() {
    char *name = (char*)malloc(8);
    strcpy(name, "too long for 8b");   // heap overflow
    return 0;
}
"""

STACK_OVERFLOW = """
int main() {
    int canary = 7;
    int buf[2];
    buf[2] = 99;                // off the end of a stack array
    return canary;
}
"""


def main():
    print("malloc-only HardBound: legacy binary, instrumented malloc\n")

    print("heap overflow through strcpy:")
    try:
        compile_and_run(HEAP_OVERFLOW, CFG)
        print("  NOT DETECTED (unexpected!)")
    except BoundsError as err:
        print("  caught: %s" % err)

    print("\nstack overflow (no compiler instrumentation in this mode):")
    result = compile_and_run(STACK_OVERFLOW, CFG)
    print("  ran silently, exit=%d -- stack objects are unprotected;"
          % result.exit_code)
    print("  full protection needs the compiler pass "
          "(MachineConfig.hardbound()).")

    print("\nand with full instrumentation:")
    try:
        compile_and_run(STACK_OVERFLOW, MachineConfig.hardbound())
    except BoundsError as err:
        print("  caught: %s" % err)


if __name__ == "__main__":
    main()
