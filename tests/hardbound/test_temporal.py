"""Section 6.2 temporal-safety extension: use-after-free tracking."""

import pytest

from repro.hardbound.temporal import TemporalTracker
from repro.machine import (
    DoubleFreeError,
    MachineConfig,
    UseAfterFreeError,
)
from repro.minic import compile_and_run

CFG = MachineConfig.hardbound(timing=False, temporal=True)


class TestTracker:
    def test_freed_access_traps(self):
        tracker = TemporalTracker()
        tracker.mark_freed(0x1000, 0x1010)
        with pytest.raises(UseAfterFreeError):
            tracker.check(0x1004, 4)

    def test_allocated_access_passes(self):
        tracker = TemporalTracker()
        tracker.mark_freed(0x1000, 0x1010)
        tracker.mark_allocated(0x1000, 0x1010)
        tracker.check(0x1004, 4)
        assert tracker.reuses == 4

    def test_straddling_access_caught(self):
        tracker = TemporalTracker()
        tracker.mark_freed(0x1004, 0x1008)
        with pytest.raises(UseAfterFreeError):
            tracker.check(0x1002, 4)   # touches the freed word

    def test_double_free(self):
        tracker = TemporalTracker()
        tracker.mark_freed(0x1000, 0x1010)
        with pytest.raises(DoubleFreeError):
            tracker.mark_freed(0x1000, 0x1010)

    def test_partial_refree_is_not_double_free(self):
        tracker = TemporalTracker()
        tracker.mark_freed(0x1000, 0x1008)
        tracker.mark_freed(0x1000, 0x1010)  # extends: legal
        assert tracker.freed_words() == 4


class TestEndToEnd:
    def test_use_after_free_read(self):
        with pytest.raises(UseAfterFreeError):
            compile_and_run("""
            int main() {
                int *p = (int*)malloc(4 * sizeof(int));
                p[1] = 7;
                free((void*)p);
                return p[1];             // dangling read
            }""", CFG)

    def test_use_after_free_write(self):
        with pytest.raises(UseAfterFreeError):
            compile_and_run("""
            int main() {
                int *p = (int*)malloc(16);
                free((void*)p);
                p[2] = 1;                // dangling write
                return 0;
            }""", CFG)

    def test_double_free_end_to_end(self):
        with pytest.raises(DoubleFreeError):
            compile_and_run("""
            int main() {
                void *p = malloc(32);
                free(p);
                free(p);
                return 0;
            }""", CFG)

    def test_reuse_after_realloc_is_legal(self):
        result = compile_and_run("""
        int main() {
            int *a = (int*)malloc(16);
            free((void*)a);
            int *b = (int*)malloc(16);   // reuses the chunk
            b[1] = 5;
            b[3] = 6;
            return b[1] + b[3] + (a == b);
        }""", CFG)
        assert result.exit_code == 12

    def test_allocator_itself_never_trips(self):
        """malloc/free walk their own free list without tripping the
        tracker (the link word stays live)."""
        result = compile_and_run("""
        int main() {
            int i;
            void *chunks[8];
            for (i = 0; i < 8; i++) { chunks[i] = malloc(24); }
            for (i = 0; i < 8; i++) { free(chunks[i]); }
            for (i = 0; i < 8; i++) { chunks[i] = malloc(24); }
            return 0;
        }""", CFG)
        assert result.exit_code == 0

    def test_disabled_by_default(self):
        """Without the extension, the dangling read is silent (the
        paper's baseline HardBound is spatial-only)."""
        result = compile_and_run("""
        int main() {
            int *p = (int*)malloc(16);
            p[1] = 7;
            free((void*)p);
            return p[1];
        }""", MachineConfig.hardbound(timing=False))
        assert result.exit_code in (0, 7)   # silent (value undefined)

    def test_forward_compatibility_markfree_is_noop_when_off(self):
        """Binaries with markfree run unchanged on spatial-only and
        plain cores (Section 4.5's forward-compatibility story)."""
        src = """
        int main() {
            int *p = (int*)malloc(16);
            free((void*)p);
            return 0;
        }"""
        for cfg in (MachineConfig.hardbound(timing=False),
                    MachineConfig.plain(timing=False)):
            assert compile_and_run(src, cfg).exit_code == 0

    def test_workload_clean_under_temporal(self):
        """health allocates and frees nothing stale: no false alarms."""
        from repro.workloads import WORKLOADS
        result = compile_and_run(WORKLOADS["treeadd"].source, CFG)
        assert result.exit_code == 0
