"""Disassembler round-trip: text -> Instruction -> text -> Instruction."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Instruction, Op, assemble, disassemble

ROUNDTRIP_SOURCES = [
    "mov r1, r2",
    "mov r3, -17",
    "add r1, r2, r3",
    "sub r1, r2, 42",
    "mul r4, r5, r6",
    "div r4, r5, -3",
    "neg r1, r2",
    "not r1, r2",
    "xchg r1, r2",
    "sltu r1, r2, r3",
    "lea r1, [r2 + r3*4 + 8]",
    "load r1, [r2 + 4]",
    "loadb r1, [r2]",
    "loadh r1, [r2 - 2]",
    "store [r2 + r3*2], r1",
    "storeb [r2], r1",
    "setbound r1, r2, 16",
    "setbound r1, r2, r3",
    "readbase r1, r2",
    "readbound r1, r2",
    "setunsafe r1, r2",
    "clrbnd r1, r2",
    "setcode r1, r2",
    "markfree r1, 16",
    "markfree r1, r2",
    "sbrk r1",
    "print r2",
    "printc r2",
    "prints r2",
    "halt 3",
    "halt r0",
    "abort 7",
    "ret",
    "callr r5",
]


@pytest.mark.parametrize("source", ROUNDTRIP_SOURCES)
def test_roundtrip(source):
    instr = assemble(source).instrs[0]
    text = disassemble(instr)
    again = assemble(text).instrs[0]
    assert instr == again, "%r -> %r -> %r" % (source, text, again)


def test_branch_disassembly_uses_labels():
    prog = assemble("top:\n  bnez r1, top\n  jmp top\n  call top\n")
    assert disassemble(prog.instrs[0]) == "bnez r1, top"
    assert disassemble(prog.instrs[1]) == "jmp top"
    assert disassemble(prog.instrs[2]) == "call top"


_ALU_MNEMONICS = ["add", "sub", "mul", "div", "mod", "and", "or",
                  "xor", "shl", "shr", "sra", "seq", "sne", "slt",
                  "sle", "sgt", "sge", "sltu", "sgeu"]


@given(mnem=st.sampled_from(_ALU_MNEMONICS),
       rd=st.integers(0, 15), rs=st.integers(0, 15),
       imm=st.integers(-2**31, 2**31 - 1))
def test_alu_immediate_roundtrip(mnem, rd, rs, imm):
    source = "%s r%d, r%d, %d" % (mnem, rd, rs, imm)
    instr = assemble(source).instrs[0]
    again = assemble(disassemble(instr)).instrs[0]
    assert instr == again


@given(rd=st.integers(0, 15),
       rs=st.integers(0, 15), rt=st.integers(0, 15),
       scale=st.sampled_from([1, 2, 4, 8]),
       disp=st.integers(-4096, 4096),
       size=st.sampled_from([1, 2, 4]))
def test_load_roundtrip(rd, rs, rt, scale, disp, size):
    suffix = {1: "b", 2: "h", 4: ""}[size]
    source = "load%s r%d, [r%d + r%d*%d + %d]" % (
        suffix, rd, rs, rt, scale, disp)
    instr = assemble(source).instrs[0]
    again = assemble(disassemble(instr)).instrs[0]
    assert instr == again
    assert instr.size == size


def test_instruction_repr_is_disassembly():
    instr = Instruction(Op.ADD, rd=1, rs=2, rt=3)
    assert "add r1, r2, r3" in repr(instr)
