"""Opcode definitions and register naming for the simulated ISA.

The opcode set is deliberately small: a RISC-style register file with
x86-flavoured memory operands.  HardBound-specific opcodes
(``setbound``, ``readbase``, ``readbound``, ``setunsafe``, ``setcode``,
``clrbnd``) follow Section 3.1 of the paper; everything else is the
conventional substrate those primitives ride on.
"""

from __future__ import annotations

import enum


class Op(enum.Enum):
    """Every opcode executable by the simulated core.

    Naming convention: plain three-operand ALU ops take ``rd, rs, rt``
    where ``rt`` may be replaced by an immediate; memory ops carry an
    x86-style operand ``[rs + rt*scale + disp]``.
    """

    # --- data movement -------------------------------------------------
    MOV = "mov"          # rd <- rs | imm        (propagates bounds, Fig 3)
    LEA = "lea"          # rd <- effective addr  (propagates base reg bounds)
    XCHG = "xchg"        # swap rd <-> rs, metadata included (Section 3.1)

    # --- integer ALU (bounds-propagating per Fig 3A/B) -----------------
    ADD = "add"
    SUB = "sub"

    # --- integer ALU (non-propagating, Section 3.1) ---------------------
    MUL = "mul"
    DIV = "div"          # signed; traps on divide-by-zero
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"          # logical
    SRA = "sra"          # arithmetic
    NEG = "neg"          # rd <- -rs
    NOT = "not"          # rd <- ~rs

    # --- comparisons (set rd to 0/1; non-propagating) -------------------
    SEQ = "seq"
    SNE = "sne"
    SLT = "slt"          # signed
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"
    SLTU = "sltu"        # unsigned (pointer comparisons)
    SGEU = "sgeu"

    # --- memory --------------------------------------------------------
    LOAD = "load"        # rd <- Mem[ea]; size in .size (1, 2 or 4)
    STORE = "store"      # Mem[ea] <- rd; size in .size

    # --- control flow ----------------------------------------------------
    JMP = "jmp"          # unconditional, target is an instruction index
    BEQZ = "beqz"        # branch if rs.value == 0
    BNEZ = "bnez"        # branch if rs.value != 0
    CALL = "call"        # ra <- return pc (code-pointer metadata); jump
    CALLR = "callr"      # indirect call through rs (checked, Section 6.1)
    RET = "ret"          # pc <- ra.value

    # --- HardBound primitives (Section 3.1 / 6.1) -----------------------
    SETBOUND = "setbound"    # rd <- {rs.value; rs.value; rs.value+size}
    READBASE = "readbase"    # rd <- rs.base   (plain integer)
    READBOUND = "readbound"  # rd <- rs.bound  (plain integer)
    SETUNSAFE = "setunsafe"  # rd <- {rs.value; 0; MAXINT}  escape hatch
    SETCODE = "setcode"      # rd <- {rs|imm; MAXINT; MAXINT} code pointer
    CLRBND = "clrbnd"        # rd <- {rs.value; 0; 0}  strip metadata
    MARKFREE = "markfree"    # deallocation hint: poison
    #                          [rs.value, rs.value + size), where size
    #                          is rt or an immediate (temporal
    #                          extension, Section 6.2)

    # --- environment calls ------------------------------------------------
    SBRK = "sbrk"        # rd <- old program break; extend heap by rs bytes
    PRINT = "print"      # print rs.value as signed decimal + newline
    PRINTC = "printc"    # print chr(rs.value & 0xFF)
    PRINTS = "prints"    # print NUL-terminated string at rs (debug only)
    HALT = "halt"        # stop; exit code = imm or rs
    ABORT = "abort"      # deliberate failure (test harness), code = imm


#: ALU opcodes whose result inherits bounds from a pointer input, per the
#: paper: "add, sub, lea, mov, and xchg" propagate; multiply, divide,
#: shift, rotate and logical operations do not.
PROPAGATING_OPS = frozenset({Op.MOV, Op.LEA, Op.ADD, Op.SUB, Op.XCHG})

#: Opcodes that read memory / write memory.
MEMORY_OPS = frozenset({Op.LOAD, Op.STORE})

NUM_REGS = 16

#: Canonical register names r0..r15.
REG_NAMES = tuple("r%d" % i for i in range(NUM_REGS))

#: ABI aliases: stack pointer, frame pointer, return address.
REG_ALIASES = {"sp": 13, "fp": 14, "ra": 15}

#: ABI register assignments used by the MiniC compiler.  r0..r3 hold
#: arguments and r0 the return value; r4..r9 are scratch; r10..r12 are
#: callee-saved temporaries.
REG_ARG0, REG_ARG1, REG_ARG2, REG_ARG3 = 0, 1, 2, 3
REG_RET = 0
REG_SP, REG_FP, REG_RA = 13, 14, 15


def reg_index(name: str) -> int:
    """Translate a register name (``r4``, ``sp``) to its index.

    Raises :class:`KeyError` for unknown names.
    """
    name = name.lower()
    if name in REG_ALIASES:
        return REG_ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        idx = int(name[1:])
        if 0 <= idx < NUM_REGS:
            return idx
    raise KeyError("unknown register %r" % name)


def reg_name(index: int) -> str:
    """Preferred printable name for a register index."""
    for alias, idx in REG_ALIASES.items():
        if idx == index:
            return alias
    return REG_NAMES[index]
