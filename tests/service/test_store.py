"""ResultStore: concurrent publication, enumeration, corruption."""

import os
import pickle

from repro.harness.parallel import ResultCache, map_jobs
from repro.service.store import INDEX_NAME, ResultStore


def publish_one(job):
    """Pool worker: publish one keyed entry into a shared store."""
    store_dir, key, value = job
    store = ResultStore(store_dir)
    store.put(key, value, meta={"writer": os.getpid()})
    return key


class TestResultStore:
    def test_put_get_roundtrip_and_index(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        key = ResultStore.key_of({"cell": 1})
        store.put(key, {"cycles": 99}, meta={"worker": 7})
        assert store.get(key) == {"cycles": 99}
        assert key in store
        assert store.keys() == {key}
        assert len(store) == 1
        records = list(store.index())
        assert len(records) == 1
        assert records[0]["key"] == key
        assert records[0]["meta"] == {"worker": 7}

    def test_concurrent_writers_all_entries_land(self, tmp_path):
        store_dir = str(tmp_path / "store")
        jobs = [(store_dir, ResultStore.key_of({"cell": i}),
                 {"value": i}) for i in range(24)]
        done = map_jobs(publish_one, jobs, workers=4)
        store = ResultStore(store_dir)
        assert set(done) == store.keys()
        assert len(store) == len(jobs)
        for _dir, key, value in jobs:
            assert store.get(key) == value
        # the O_APPEND index never tore a line
        assert len(list(store.index())) == len(jobs)
        entries = store.entries()
        assert {record["key"] for record in entries} == store.keys()

    def test_racing_writers_on_one_key_last_wins_clean(self,
                                                      tmp_path):
        store_dir = str(tmp_path / "store")
        key = ResultStore.key_of({"cell": "contended"})
        jobs = [(store_dir, key, {"value": i}) for i in range(8)]
        map_jobs(publish_one, jobs, workers=4)
        store = ResultStore(store_dir)
        got = store.get(key)
        # atomic publish: some complete value, never a torn read
        assert got in [{"value": i} for i in range(8)]
        assert len(list(store.index())) == len(jobs)
        assert [record["key"] for record in store.entries()] == [key]

    def test_corrupt_entry_deleted_and_dropped_from_entries(
            self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        good = ResultStore.key_of({"cell": "good"})
        bad = ResultStore.key_of({"cell": "bad"})
        store.put(good, 1)
        store.put(bad, 2)
        with open(store._file(bad), "wb") as fh:
            fh.write(b"\x80garbage")
        assert store.get(bad) is None
        assert store.stats()["corrupt"] == 1
        assert not os.path.exists(store._file(bad))
        # entries() follows the directory ground truth, not the index
        assert [r["key"] for r in store.entries()] == [good]

    def test_index_tolerates_torn_final_line(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        key = ResultStore.key_of({"cell": 1})
        store.put(key, "x")
        with open(os.path.join(store.path, INDEX_NAME), "a",
                  encoding="utf-8") as fh:
            fh.write('{"key": "trunc')  # writer killed mid-append
        records = list(store.index())
        assert len(records) == 1
        assert records[0]["key"] == key

    def test_same_format_as_result_cache(self, tmp_path):
        """A service store serves harness-cached cells and vice versa."""
        path = str(tmp_path / "shared")
        cache = ResultCache(path)
        key_a = ResultCache.key_of({"cell": "a"})
        cache.put(key_a, {"from": "cache"})
        store = ResultStore(path)
        assert store.get(key_a) == {"from": "cache"}
        key_b = ResultStore.key_of({"cell": "b"})
        store.put(key_b, {"from": "store"})
        assert cache.get(key_b) == {"from": "store"}
        # identical descriptors hash identically across both classes
        assert ResultCache.key_of({"d": 1}) \
            == ResultStore.key_of({"d": 1})

    def test_entries_survive_process_restart(self, tmp_path):
        path = str(tmp_path / "store")
        first = ResultStore(path)
        key = ResultStore.key_of({"cell": 1})
        first.put(key, list(range(10)), meta={"worker": 1})
        second = ResultStore(path)  # fresh instance, same dir
        assert second.get(key) == list(range(10))
        assert pickle.loads(
            open(second._file(key), "rb").read()) == list(range(10))
        assert [r["key"] for r in second.entries()] == [key]
