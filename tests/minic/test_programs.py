"""A battery of realistic MiniC programs with verified outputs.

The paper validated its simulator on "77 additional programs" beyond
the violation corpus; this module is our equivalent: classic
algorithms exercising every language feature under full HardBound
instrumentation, each checked against a Python-computed expectation
and (for a sample) against the uninstrumented core.
"""

import pytest

from repro.machine import CPU, MachineConfig
from repro.minic import InstrumentMode, compile_program, compile_and_run

HB = MachineConfig.hardbound(timing=False)


def run(source):
    return compile_and_run(source, HB)


class TestSorting:
    def test_bubble_sort(self):
        result = run("""
        int main() {
            int a[8];
            int seed = 7;
            for (int i = 0; i < 8; i++) {
                seed = seed * 75 + 74;
                a[i] = seed % 100;
            }
            for (int i = 0; i < 8; i++) {
                for (int j = 0; j + 1 < 8 - i; j++) {
                    if (a[j] > a[j + 1]) {
                        int t = a[j];
                        a[j] = a[j + 1];
                        a[j + 1] = t;
                    }
                }
            }
            for (int i = 0; i + 1 < 8; i++) {
                if (a[i] > a[i + 1]) { return 1; }
            }
            return 0;
        }""")
        assert result.exit_code == 0

    def test_insertion_sort_prints_sorted(self):
        values = [42, 7, 19, 3, 88, 23]
        result = run("""
        int main() {
            int a[6];
            %s
            for (int i = 1; i < 6; i++) {
                int key = a[i];
                int j = i - 1;
                while (j >= 0 && a[j] > key) {
                    a[j + 1] = a[j];
                    j--;
                }
                a[j + 1] = key;
            }
            for (int i = 0; i < 6; i++) { print(a[i]); }
            return 0;
        }""" % "".join("a[%d] = %d; " % (i, v)
                       for i, v in enumerate(values)))
        assert result.output == "".join("%d\n" % v
                                        for v in sorted(values))

    def test_quicksort_recursive(self):
        values = [5, 2, 9, 1, 7, 3, 8, 6, 4, 0]
        result = run("""
        void qsort_(int *a, int lo, int hi) {
            if (lo >= hi) { return; }
            int pivot = a[hi];
            int i = lo - 1;
            for (int j = lo; j < hi; j++) {
                if (a[j] < pivot) {
                    i++;
                    int t = a[i]; a[i] = a[j]; a[j] = t;
                }
            }
            int t = a[i + 1]; a[i + 1] = a[hi]; a[hi] = t;
            qsort_(a, lo, i);
            qsort_(a, i + 2, hi);
        }
        int main() {
            int a[10];
            %s
            qsort_(a, 0, 9);
            for (int i = 0; i < 10; i++) { print(a[i]); }
            return 0;
        }""" % "".join("a[%d] = %d; " % (i, v)
                       for i, v in enumerate(values)))
        assert result.output == "".join("%d\n" % v
                                        for v in sorted(values))


class TestDataStructures:
    def test_binary_search(self):
        result = run("""
        int bsearch_(int *a, int n, int key) {
            int lo = 0;
            int hi = n - 1;
            while (lo <= hi) {
                int mid = (lo + hi) / 2;
                if (a[mid] == key) { return mid; }
                if (a[mid] < key) { lo = mid + 1; }
                else { hi = mid - 1; }
            }
            return -1;
        }
        int main() {
            int a[16];
            for (int i = 0; i < 16; i++) { a[i] = i * 3; }
            return bsearch_(a, 16, 27) * 10 + (bsearch_(a, 16, 28) + 1);
        }""")
        assert result.exit_code == 90  # index 9, miss -> -1+1 = 0

    def test_fifo_queue_on_heap(self):
        result = run("""
        struct q { int data[8]; int head; int tail; };
        void enqueue(struct q *qp, int v) {
            qp->data[qp->tail % 8] = v;
            qp->tail++;
        }
        int dequeue(struct q *qp) {
            int v = qp->data[qp->head % 8];
            qp->head++;
            return v;
        }
        int main() {
            struct q *qp = (struct q*)malloc(sizeof(struct q));
            qp->head = 0;
            qp->tail = 0;
            for (int i = 1; i <= 5; i++) { enqueue(qp, i * i); }
            int sum = 0;
            while (qp->head != qp->tail) { sum += dequeue(qp); }
            return sum;
        }""")
        assert result.exit_code == 1 + 4 + 9 + 16 + 25

    def test_open_addressing_hash_map(self):
        result = run("""
        int keys[32];
        int vals[32];
        int used[32];
        void put(int k, int v) {
            int i = (k * 2654435761) % 32;
            if (i < 0) { i += 32; }
            while (used[i] && keys[i] != k) { i = (i + 1) % 32; }
            used[i] = 1;
            keys[i] = k;
            vals[i] = v;
        }
        int get(int k) {
            int i = (k * 2654435761) % 32;
            if (i < 0) { i += 32; }
            while (used[i]) {
                if (keys[i] == k) { return vals[i]; }
                i = (i + 1) % 32;
            }
            return -1;
        }
        int main() {
            for (int k = 0; k < 20; k++) { put(k * 7, k); }
            return get(7 * 13) * 10 + (get(999) + 1);
        }""")
        assert result.exit_code == 130

    def test_doubly_linked_list_reversal(self):
        result = run("""
        struct node { int v; struct node *prev; struct node *next; };
        int main() {
            struct node *head = (struct node*)0;
            struct node *tail = (struct node*)0;
            for (int i = 1; i <= 6; i++) {
                struct node *n = (struct node*)
                    malloc(sizeof(struct node));
                n->v = i;
                n->next = (struct node*)0;
                n->prev = tail;
                if (tail) { tail->next = n; } else { head = n; }
                tail = n;
            }
            // walk backwards
            int acc = 0;
            for (struct node *n = tail; n; n = n->prev) {
                acc = acc * 10 + n->v;
            }
            return acc %% 251;
        }""".replace("%%", "%"))
        assert result.exit_code == 654321 % 251

    def test_binary_tree_height_and_count(self):
        result = run("""
        struct t { struct t *l; struct t *r; };
        struct t *build(int depth) {
            if (depth == 0) { return (struct t*)0; }
            struct t *n = (struct t*)malloc(sizeof(struct t));
            n->l = build(depth - 1);
            n->r = depth > 2 ? build(depth - 2) : (struct t*)0;
            return n;
        }
        int count(struct t *n) {
            if (!n) { return 0; }
            return 1 + count(n->l) + count(n->r);
        }
        int height(struct t *n) {
            if (!n) { return 0; }
            int hl = height(n->l);
            int hr = height(n->r);
            return 1 + (hl > hr ? hl : hr);
        }
        int main() {
            struct t *root = build(6);
            return count(root) * 10 + height(root);
        }""")
        # fibonacci-ish tree: verified against the same recurrence
        def build_count(d):
            if d == 0:
                return 0, 0
            cl, hl = build_count(d - 1)
            cr, hr = build_count(d - 2) if d > 2 else (0, 0)
            return 1 + cl + cr, 1 + max(hl, hr)
        count, height = build_count(6)
        assert result.exit_code == count * 10 + height


class TestStringsAndMisc:
    def test_string_reverse_in_place(self):
        result = run("""
        int main() {
            char buf[16];
            strcpy(buf, "hardbound");
            int n = strlen(buf);
            for (int i = 0; i < n / 2; i++) {
                char t = buf[i];
                buf[i] = buf[n - 1 - i];
                buf[n - 1 - i] = t;
            }
            puts(buf);
            return 0;
        }""")
        assert result.output == "dnuobdrah\n"

    def test_atoi_and_itoa(self):
        result = run("""
        int atoi_(char *s) {
            int v = 0;
            int neg = 0;
            int i = 0;
            if (s[0] == '-') { neg = 1; i = 1; }
            while (s[i]) { v = v * 10 + ((int)s[i] - '0'); i++; }
            return neg ? -v : v;
        }
        int main() {
            print(atoi_("12345"));
            print(atoi_("-678"));
            return 0;
        }""")
        assert result.output == "12345\n-678\n"

    def test_sieve_of_eratosthenes(self):
        result = run("""
        int main() {
            char sieve[100];
            memset((void*)sieve, 1, 100);
            sieve[0] = 0;
            sieve[1] = 0;
            for (int i = 2; i * i < 100; i++) {
                if (sieve[i]) {
                    for (int j = i * i; j < 100; j += i) {
                        sieve[j] = 0;
                    }
                }
            }
            int count = 0;
            for (int i = 0; i < 100; i++) { count += (int)sieve[i]; }
            return count;
        }""")
        assert result.exit_code == 25  # primes below 100

    def test_matrix_multiply(self):
        result = run("""
        int main() {
            int a[3][3];
            int b[3][3];
            int c[3][3];
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 3; j++) {
                    a[i][j] = i + j;
                    b[i][j] = i * 3 + j;
                    c[i][j] = 0;
                }
            }
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 3; j++) {
                    for (int k = 0; k < 3; k++) {
                        c[i][j] += a[i][k] * b[k][j];
                    }
                }
            }
            return c[2][2];
        }""")
        a = [[i + j for j in range(3)] for i in range(3)]
        b = [[i * 3 + j for j in range(3)] for i in range(3)]
        expected = sum(a[2][k] * b[k][2] for k in range(3))
        assert result.exit_code == expected

    def test_gcd_and_collatz(self):
        result = run("""
        int gcd(int a, int b) { return b ? gcd(b, a % b) : a; }
        int collatz(int n) {
            int steps = 0;
            while (n != 1) {
                n = n % 2 ? 3 * n + 1 : n / 2;
                steps++;
            }
            return steps;
        }
        int main() { return gcd(48, 36) * 10 + collatz(27) % 10; }
        """)
        def collatz(n):
            steps = 0
            while n != 1:
                n = 3 * n + 1 if n % 2 else n // 2
                steps += 1
            return steps
        assert result.exit_code == 12 * 10 + collatz(27) % 10


class TestCrossCoreAgreement:
    """Every battery program must behave identically uninstrumented."""

    SOURCES = [
        """
        int main() {
            int *p = (int*)calloc(6, sizeof(int));
            for (int i = 0; i < 6; i++) { p[i] = i * i; }
            int s = 0;
            for (int i = 0; i < 6; i++) { s += p[i]; }
            print(s);
            return 0;
        }""",
        """
        struct pt { int x; int y; };
        int main() {
            struct pt ring[5];
            for (int i = 0; i < 5; i++) {
                ring[i].x = i;
                ring[i].y = (i * i) %% 7;
            }
            int acc = 0;
            for (int i = 0; i < 5; i++) {
                acc += ring[i].x * ring[(i + 1) %% 5].y;
            }
            print(acc);
            return 0;
        }""".replace("%%", "%"),
        """
        int main() {
            char *words[3];
            words[0] = "alpha";
            words[1] = "beta";
            words[2] = "gamma";
            for (int i = 0; i < 3; i++) { puts(words[i]); }
            print(strcmp(words[0], words[2]) < 0);
            return 0;
        }""",
    ]

    @pytest.mark.parametrize("idx", range(len(SOURCES)))
    def test_agreement(self, idx):
        source = self.SOURCES[idx]
        hb = compile_and_run(source, HB)
        plain = CPU(compile_program(source, InstrumentMode.NONE),
                    MachineConfig.plain(timing=False)).run()
        assert hb.output == plain.output
        assert hb.exit_code == plain.exit_code
