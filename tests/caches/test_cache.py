"""Set-associative LRU cache model."""

import pytest
from hypothesis import given, strategies as st

from repro.caches import Cache


def test_parameters_validated():
    with pytest.raises(ValueError):
        Cache("bad", 1000, 4, 32)      # not a multiple of assoc*block
    with pytest.raises(ValueError):
        Cache("bad", 192, 2, 32)       # 3 sets: not a power of two
    assert Cache("ok", 96, 3, 32).num_sets == 1  # one set is fine


def test_first_access_misses_second_hits():
    cache = Cache("t", 1024, 2, 32)
    assert cache.access(0x100) is False
    assert cache.access(0x100) is True
    assert cache.access(0x11F) is True   # same 32B block
    assert cache.access(0x120) is False  # next block
    assert cache.misses == 2
    assert cache.hits == 2


def test_lru_eviction_within_set():
    cache = Cache("t", 2 * 2 * 32, 2, 32)  # 2 sets, 2 ways
    # three blocks mapping to set 0: block addresses stride num_sets*32
    a, b, c = 0x000, 0x040, 0x080
    cache.access(a)
    cache.access(b)
    cache.access(a)          # a is now MRU
    cache.access(c)          # evicts b (LRU)
    assert cache.contains(a)
    assert not cache.contains(b)
    assert cache.contains(c)
    assert cache.evictions == 1


def test_direct_mapped_conflicts():
    cache = Cache("dm", 4 * 32, 1, 32)
    cache.access(0x000)
    cache.access(0x080)      # 4 sets -> same set as 0x000? 0x80/32=4 -> set 0
    assert not cache.contains(0x000)


def test_reset_stats_keeps_contents():
    cache = Cache("t", 1024, 4, 32)
    cache.access(0x40)
    cache.reset_stats()
    assert cache.accesses == 0
    assert cache.access(0x40) is True


@given(addrs=st.lists(st.integers(0, 1 << 20), min_size=1,
                      max_size=300))
def test_counters_are_consistent(addrs):
    cache = Cache("t", 512, 2, 32)
    for addr in addrs:
        cache.access(addr)
    assert cache.accesses == len(addrs)
    assert 0 <= cache.misses <= cache.accesses
    assert cache.hits == cache.accesses - cache.misses
    assert cache.evictions <= cache.misses
    assert 0.0 <= cache.miss_rate() <= 1.0


@given(addrs=st.lists(st.integers(0, 1 << 14), min_size=1,
                      max_size=200))
def test_capacity_bound(addrs):
    """The cache never tracks more blocks than it has capacity for."""
    cache = Cache("t", 256, 2, 32)
    for addr in addrs:
        cache.access(addr)
    tracked = sum(len(s) for s in cache._sets)
    assert tracked <= cache.num_sets * cache.assoc


@given(addr=st.integers(0, 1 << 30))
def test_repeated_access_always_hits(addr):
    cache = Cache("t", 1024, 4, 32)
    cache.access(addr)
    for _ in range(3):
        assert cache.access(addr) is True
