"""The frozen ``RunResult.engine_stats`` key schema, all tiers.

``engine_stats`` is the cross-layer introspection contract: the
superblock engine writes it, the harness caches and pickles it, the
bench record embeds it, and the report CLI renders it.  A key that
appears or disappears silently would desynchronize all of those —
so the schema is frozen *here*, documented in
``docs/OBSERVABILITY.md``, and enforced by
``tests/obs/test_schema.py``: adding, renaming or dropping a key
without updating this module (and the doc) fails the build.

Per tier:

* ``superblocks`` — the full trace-introspection record
  (:data:`SUPERBLOCKS_KEYS`);
* ``blocks`` / ``decoded`` / ``legacy`` — record no engine stats;
  ``RunResult.engine_stats`` is ``None`` (the dispatch loops carry
  no per-engine state worth snapshotting, and keeping them
  stat-free keeps their loops minimal).
"""

from __future__ import annotations

from typing import Optional

#: every key of a superblocks-tier ``engine_stats`` dict, frozen.
SUPERBLOCKS_KEYS = frozenset({
    "engine",               # literal "superblocks"
    "traces_formed",        # traces built this run (plan-cache
                            # installs included)
    "mean_trace_blocks",    # mean basic blocks per formed trace
    "trace_dispatches",     # trace-closure entries
    "block_dispatches",     # block-tier entries (profiling tallies)
    "side_exits",           # off-trace branch directions taken
    "side_exit_rate",       # side_exits / trace_dispatches
    "fallback_steps",       # single-stepped instructions
    "closure_fallback_ops", # {op_name: count} residual closure calls
    "cross_call_traces",    # formed traces that inlined >= 1 call
    "ret_mispredicts",      # inlined-ret prediction guard misses
    "ret_mispredict_rate",  # ret_mispredicts / trace_dispatches
    "limit_demotions",      # trace dispatches demoted to the base
                            # block because the whole-trace charge
                            # would overrun the instruction limit
})

#: tier name → frozen key set (``None`` = the tier records no stats)
ENGINE_STATS_KEYS = {
    "superblocks": SUPERBLOCKS_KEYS,
    "blocks": None,
    "decoded": None,
    "legacy": None,
}


def validate_engine_stats(engine: str,
                          stats: Optional[dict]) -> None:
    """Raise ``ValueError`` when ``stats`` violates the frozen schema.

    The check is *exact*: missing keys and unexpected keys both
    fail, so a renamed counter cannot slip through as one of each.
    """
    if engine not in ENGINE_STATS_KEYS:
        raise ValueError("unknown engine tier %r" % (engine,))
    expected = ENGINE_STATS_KEYS[engine]
    if expected is None:
        if stats is not None:
            raise ValueError(
                "engine %r must record no engine_stats, got keys %s"
                % (engine, sorted(stats)))
        return
    if stats is None:
        raise ValueError("engine %r recorded no engine_stats"
                         % (engine,))
    keys = set(stats)
    missing = expected - keys
    extra = keys - expected
    if missing or extra:
        raise ValueError(
            "engine_stats schema violation for %r: missing=%s "
            "extra=%s — update repro/obs/schema.py and "
            "docs/OBSERVABILITY.md together with the engine"
            % (engine, sorted(missing), sorted(extra)))
