"""Codegen unit tests: instrumentation sites and mode differences.

Checks the *generated assembly* for the Section 3.2 instrumentation
contract: where ``setbound`` appears, what each mode strips, and the
calling convention.
"""

import re

from repro.minic import InstrumentMode, compile_to_asm


def asm(source, mode=InstrumentMode.HARDBOUND):
    return compile_to_asm(source, mode, include_stdlib=False)


def count_setbounds(text):
    return len(re.findall(r"\bsetbound\b", text))


class TestInstrumentationSites:
    def test_address_of_local_is_bounded(self):
        text = asm("""
        int main() {
            int x;
            int *p = &x;
            return *p;
        }""")
        assert "setbound" in text
        assert re.search(r"lea r\d+, \[fp - \d+\]\n"
                         r"    setbound r\d+, r\d+, 4", text)

    def test_array_decay_narrows_to_array_size(self):
        text = asm("""
        int main() {
            int a[10];
            int *p = a;
            return 0;
        }""")
        assert re.search(r"setbound r\d+, r\d+, 40", text)

    def test_member_array_decay_narrows_to_member(self):
        text = asm("""
        struct s { char pre[4]; char buf[6]; int post; };
        int main() {
            struct s v;
            char *p = v.buf;
            return 0;
        }""")
        assert re.search(r"setbound r\d+, r\d+, 6", text)

    def test_string_literal_bounded_to_length_plus_nul(self):
        text = asm("""
        int main() {
            char *s = "hello";
            return 0;
        }""")
        assert re.search(r"setbound r\d+, r\d+, 6", text)

    def test_global_scalar_access_is_direct(self):
        """Named-scalar accesses use absolute operands, no setbound."""
        text = asm("""
        int g;
        int main() { g = 5; return g; }
        """)
        assert "[gv_g]" in text
        assert count_setbounds(text) == 0

    def test_local_scalar_access_is_frame_relative(self):
        text = asm("""
        int main() { int x; x = 5; return x; }
        """)
        assert re.search(r"store \[fp - \d+\]", text)
        assert count_setbounds(text) == 0

    def test_conservative_index_addressof(self):
        """&q[i] keeps whole-array bounds: only the decay setbound."""
        text = asm("""
        int main() {
            int q[8];
            int *p = &q[3];
            return 0;
        }""")
        assert re.search(r"setbound r\d+, r\d+, 32", text)
        assert not re.search(r"setbound r\d+, r\d+, 4\b", text)


class TestModes:
    SRC = """
    int main() {
        int a[4];
        int *p = (int*)__setbound((void*)a, 16);
        return p[1];
    }"""

    def test_none_strips_everything(self):
        text = asm(self.SRC, InstrumentMode.NONE)
        assert count_setbounds(text) == 0

    def test_heap_only_keeps_intrinsics_only(self):
        text = asm(self.SRC, InstrumentMode.HEAP_ONLY)
        # exactly the explicit __setbound; no decay instrumentation
        assert count_setbounds(text) == 1

    def test_hardbound_adds_compiler_sites(self):
        text = asm(self.SRC, InstrumentMode.HARDBOUND)
        assert count_setbounds(text) >= 2

    def test_setunsafe_and_clrbnd_follow_intrinsic_gating(self):
        src = """
        int main() {
            int x;
            int *p = (int*)__setunsafe((void*)&x);
            int *q = (int*)__clrbnd((void*)&x);
            return 0;
        }"""
        assert "setunsafe" in asm(src, InstrumentMode.HEAP_ONLY)
        assert "setunsafe" not in asm(src, InstrumentMode.NONE)
        assert "clrbnd" not in asm(src, InstrumentMode.NONE)


class TestCallingConvention:
    def test_prologue_epilogue(self):
        text = asm("int f(int x) { return x; } "
                   "int main() { return f(1); }")
        assert "fn_f:" in text
        body = text.split("fn_f:")[1].split("fn_main:")[0]
        assert "push ra" in body and "push fp" in body
        assert "mov fp, sp" in body
        assert body.index("pop fp") < body.index("pop ra")
        assert "ret" in body

    def test_args_pushed_and_popped(self):
        text = asm("""
        int add3(int a, int b, int c) { return a + b + c; }
        int main() { return add3(1, 2, 3); }
        """)
        main_body = text.split("fn_main:")[1]
        assert main_body.count("push") >= 3
        assert "add sp, sp, 12" in main_body

    def test_entry_calls_main_and_halts_with_r0(self):
        text = asm("int main() { return 3; }")
        head = text.split("fn_main:")[0]
        assert "call fn_main" in head
        assert "halt r0" in head

    def test_void_function_call_discards_result(self):
        text = asm("""
        void noop() { }
        int main() { noop(); return 0; }
        """)
        assert "call fn_noop" in text


class TestGlobalsEmission:
    def test_initialized_scalar(self):
        text = asm("int counter = -3;\nint main() { return counter; }")
        assert "gv_counter: .word -3" in text

    def test_char_global(self):
        text = asm("char flag = 'y';\nint main() { return flag; }")
        assert "gv_flag: .byte %d" % ord("y") in text

    def test_aggregate_reserves_space(self):
        text = asm("""
        struct s { int a; int b; };
        struct s pair;
        int tbl[16];
        int main() { return 0; }
        """)
        assert "gv_pair: .space 8" in text
        assert "gv_tbl: .space 64" in text

    def test_string_pointer_global_gets_metadata_init(self):
        text = asm('char *msg = "mc";\nint main() { return 0; }')
        assert re.search(r"setbound r1, r1, 3", text)
        assert "store [gv_msg], r1" in text
