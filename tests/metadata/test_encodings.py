"""Compressed-encoding rules of Sections 4.2-4.3."""

import pytest
from hypothesis import given, strategies as st

from repro.layout import TAG1_BASE, TAG4_BASE
from repro.metadata import (
    ENCODINGS,
    External4Encoding,
    Internal4Encoding,
    Internal11Encoding,
    UncompressedEncoding,
    get_encoding,
)

ptrs = st.integers(0, (1 << 32) - 1)
sizes = st.integers(1, 1 << 14)


def test_registry():
    assert set(ENCODINGS) == {"uncompressed", "extern4", "intern4",
                              "intern11"}
    for name in ENCODINGS:
        assert get_encoding(name).name == name
    with pytest.raises(ValueError, match="unknown encoding"):
        get_encoding("zlib")


def test_tag_geometry():
    e1 = get_encoding("intern4")
    e4 = get_encoding("extern4")
    assert e1.tag_bits == 1 and e1.tag_cache_size == 2 * 1024
    assert e4.tag_bits == 4 and e4.tag_cache_size == 8 * 1024
    # one tag byte covers 32 data bytes (1-bit) / 8 data bytes (4-bit)
    assert e1.tag_addr(0) == TAG1_BASE
    assert e1.tag_addr(31) == TAG1_BASE
    assert e1.tag_addr(32) == TAG1_BASE + 1
    assert e4.tag_addr(0) == TAG4_BASE
    assert e4.tag_addr(7) == TAG4_BASE
    assert e4.tag_addr(8) == TAG4_BASE + 1


class TestExternal4:
    enc = External4Encoding()

    def test_small_objects_compress(self):
        for size in range(4, 57, 4):
            assert self.enc.is_compressible(0x1000, 0x1000,
                                            0x1000 + size)

    def test_size_limits(self):
        assert not self.enc.is_compressible(0x1000, 0x1000, 0x1000 + 60)
        assert not self.enc.is_compressible(0x1000, 0x1000, 0x1000 + 6)

    def test_interior_pointer_not_compressible(self):
        assert not self.enc.is_compressible(0x1004, 0x1000, 0x1010)

    def test_tag_values(self):
        assert self.enc.compressed_tag(0x1000, 0x1000, 0x1000 + 8) == 2
        assert self.enc.compressed_tag(0x1000, 0x1000, 0x1000 + 56) == 14
        assert self.enc.compressed_tag(0x1004, 0x1000, 0x1010) == 15


class TestInternal4:
    enc = Internal4Encoding()

    def test_window_restriction(self):
        """Only the lowest/highest 128MB are eligible (Section 4.3)."""
        low = 0x0100_0000
        mid = 0x1000_0000
        high = 0xF900_0000
        assert self.enc.is_compressible(low, low, low + 8)
        assert not self.enc.is_compressible(mid, mid, mid + 8)
        assert self.enc.is_compressible(high, high, high + 8)

    @given(value=ptrs, size=sizes)
    def test_subset_of_external4(self, value, size):
        ext = External4Encoding()
        if self.enc.is_compressible(value, value, value + size):
            assert ext.is_compressible(value, value, value + size)


class TestInternal11:
    enc = Internal11Encoding()

    def test_larger_objects_compress(self):
        base = 0x0100_0000
        assert self.enc.is_compressible(base, base, base + 4096)
        assert self.enc.is_compressible(base, base, base + 8192)
        assert not self.enc.is_compressible(base, base, base + 8196)

    @given(value=ptrs, size=sizes)
    def test_superset_of_internal4(self, value, size):
        int4 = Internal4Encoding()
        if int4.is_compressible(value, value, value + size):
            assert self.enc.is_compressible(value, value, value + size)

    def test_interior_pointer_not_compressible(self):
        base = 0x0100_0000
        assert not self.enc.is_compressible(base + 4, base, base + 64)


@given(value=ptrs, base=ptrs, size=sizes)
def test_uncompressed_never_compresses(value, base, size):
    assert not UncompressedEncoding().is_compressible(
        value, base, base + size)


@given(value=ptrs, size=sizes)
def test_nonmultiple_of_four_never_compresses(value, size):
    if size % 4:
        for name in ("extern4", "intern4", "intern11"):
            assert not get_encoding(name).is_compressible(
                value, value, value + size)


class TestInlineCompressible:
    """The flat closures must agree with the methods everywhere."""

    def test_matches_method_on_random_triples(self):
        import random

        from repro.metadata.encodings import (
            ENCODINGS,
            get_encoding,
            make_inline_compressible,
        )
        rng = random.Random(7)
        triples = []
        for _ in range(500):
            base = rng.randrange(1 << 32)
            size = rng.choice((0, 4, 8, 56, 60, 8192, 8196,
                               rng.randrange(1 << 16) & ~3 | rng.randrange(4)))
            value = rng.choice((base, base + 4, rng.randrange(1 << 32)))
            triples.append((value, base, (base + size) & 0xFFFFFFFF))
        # the window edges and zero-metadata cases
        triples += [(0, 0, 0), (0x07FFFFFC, 0x07FFFFFC, 0x08000000),
                    (0xF8000000, 0xF8000000, 0xF8000020)]
        for name in ENCODINGS:
            enc = get_encoding(name)
            inline = make_inline_compressible(enc)
            assert inline is not None, name
            for value, base, bound in triples:
                assert inline(value, base, bound) == \
                    enc.is_compressible(value, base, bound), \
                    (name, value, base, bound)

    def test_subclass_falls_back_to_method(self):
        from repro.metadata.encodings import (
            Internal11Encoding,
            make_inline_compressible,
        )

        class Custom(Internal11Encoding):
            def is_compressible(self, value, base, bound):
                return True

        assert make_inline_compressible(Custom()) is None
