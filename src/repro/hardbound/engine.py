"""The HardBound metadata engine.

Implements the hardware side of the division of labour (Section 3):
given software-initialized bounds, the engine

* performs the implicit bounds check on every load/store effective
  address (Figure 3C/D), raising :class:`~repro.machine.errors.
  BoundsError` / :class:`~repro.machine.errors.NonPointerError`;
* propagates metadata to and from memory, maintaining the functional
  tag (pointer/non-pointer) and base/bound state per memory word;
* charges the *timing* of metadata traffic: a tag-space probe for
  every memory operation, plus — only for pointers the active
  encoding cannot compress — a shadow-space double-word access that
  also costs one extra µop (Section 5.1).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.caches.hierarchy import MemorySystem
from repro.layout import WORD, shadow_base_addr
from repro.machine.errors import BoundsError, NonPointerError
from repro.metadata.encodings import Encoding
from repro.metadata.store import MetadataStore


class HardBoundStats:
    """Counters reported in Figure 5's stacked bars."""

    __slots__ = ("setbound_uops", "meta_uops", "check_uops",
                 "pointer_loads", "pointer_stores",
                 "compressed_loads", "compressed_stores",
                 "checks", "nonpointer_derefs")

    def __init__(self):
        self.setbound_uops = 0        # extra setbound instructions
        self.meta_uops = 0            # µops for uncompressed metadata
        self.check_uops = 0           # Section 5.4 check-as-µop ablation
        self.pointer_loads = 0
        self.pointer_stores = 0
        self.compressed_loads = 0
        self.compressed_stores = 0
        self.checks = 0
        self.nonpointer_derefs = 0    # unchecked accesses (malloc-only)

    def extra_uops(self) -> int:
        """Total µops beyond the instruction stream."""
        return self.meta_uops + self.check_uops

    def compression_ratio(self) -> float:
        """Fraction of pointer memory traffic that compressed."""
        total = (self.pointer_loads + self.pointer_stores)
        if not total:
            return 1.0
        return (self.compressed_loads + self.compressed_stores) / total

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


class HardBoundEngine:
    """Hardware metadata machinery attached to a CPU."""

    def __init__(self, encoding: Encoding,
                 memsys: Optional[MemorySystem] = None,
                 check_uop: bool = False,
                 check_access_extent: bool = False):
        self.encoding = encoding
        self.memsys = memsys
        self.check_uop = check_uop
        self.check_access_extent = check_access_extent
        self.meta = MetadataStore()
        self.stats = HardBoundStats()

    # -- checking (Figure 3C/D) ---------------------------------------------

    def check(self, value: int, base: int, bound: int, ea: int,
              size: int, access: str, full_mode: bool) -> int:
        """Implicit bounds check; returns extra µops consumed.

        ``full_mode`` selects between Figure 3C's non-pointer
        exception and the malloc-only mode of footnote 2 (accesses
        without bounds information are not checked).
        """
        if base == 0 and bound == 0:
            if full_mode:
                raise NonPointerError(value, access)
            self.stats.nonpointer_derefs += 1
            return 0
        self.stats.checks += 1
        if ea < base or ea >= bound:
            raise BoundsError(ea, base, bound, access)
        if self.check_access_extent and ea + size > bound:
            raise BoundsError(ea, base, bound, access)
        if self.check_uop and \
                not self.encoding.is_compressible(value, base, bound):
            self.stats.check_uops += 1
            return 1
        return 0

    # -- metadata movement (Figure 3C/D, Section 4.4) ----------------------------

    def load_word_meta(self, addr: int, value: int) -> Tuple[int, int]:
        """Metadata for a word loaded from ``addr``; charges timing.

        The tag space is probed for every load; only an uncompressed
        pointer needs the additional shadow-space double word, which
        costs one extra µop (Section 5.1).
        """
        self._tag_access(addr, write=False)
        meta = self.meta.lookup(addr)
        if meta is None:
            return 0, 0
        base, bound = meta
        self.stats.pointer_loads += 1
        if self.encoding.is_compressible(value, base, bound):
            self.stats.compressed_loads += 1
        else:
            self.stats.meta_uops += 1
            self._shadow_access(addr, write=False)
        return base, bound

    def load_sub_meta(self, addr: int) -> None:
        """Tag probe for a sub-word load (result is a non-pointer)."""
        self._tag_access(addr, write=False)

    def store_word_meta(self, addr: int, value: int, base: int,
                        bound: int) -> None:
        """Record metadata for a word stored to ``addr``; charge timing."""
        self._tag_access(addr, write=True)
        if base == 0 and bound == 0:
            self.meta.clear(addr)
            return
        self.meta.set_pointer(addr, base, bound)
        self.stats.pointer_stores += 1
        if self.encoding.is_compressible(value, base, bound):
            self.stats.compressed_stores += 1
        else:
            self.stats.meta_uops += 1
            self._shadow_access(addr, write=True)

    def store_sub_meta(self, addr: int) -> None:
        """A sub-word store destroys any pointer in the covering word."""
        self._tag_access(addr, write=True)
        self.meta.clear(addr)

    # -- timing helpers -----------------------------------------------------------

    def _tag_access(self, addr: int, write: bool) -> None:
        if self.memsys is not None:
            self.memsys.access(self.encoding.tag_addr(addr), 1, write,
                               "tag")

    def _shadow_access(self, addr: int, write: bool) -> None:
        if self.memsys is not None:
            # interleaved base/bound: one double-word access
            self.memsys.access(shadow_base_addr(addr), 2 * WORD, write,
                               "shadow")
