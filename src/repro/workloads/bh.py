"""bh: Barnes-Hut hierarchical N-body simulation (Olden).

Bodies are inserted into a region quadtree (2-D instead of Olden's
3-D octree; same pointer structure per level); centres of mass are
computed bottom-up; forces use the Barnes-Hut opening criterion
(cell treated as a point mass when ``size**2 < theta**2 * dist**2``).
Olden's floating-point vectors become plain integers with an integer
square root.
"""

N_BODIES = 14
TIME_STEPS = 2
SPACE = 1 << 10

SOURCE = """
struct body {
    int x;
    int y;
    int vx;
    int vy;
    int mass;
    struct body *next;
};

struct cell {
    struct cell *child[4];
    struct body *b;            // set for leaf cells
    struct cell *parent;
    int mass;
    int cx;
    int cy;
    int x;
    int y;
    int size;
    int depth;
    int nbody;
};

int __seed;

int nextrand() {
    __seed = __seed * 1103515245 + 12345;
    return (__seed >> 8) & 32767;
}

int isqrt(int v) {
    if (v <= 0) { return 0; }
    int r = v;
    int last = 0;
    while (r != last) {
        last = r;
        r = (r + v / r) / 2;
    }
    return r;
}

struct cell *make_cell(int x, int y, int size) {
    struct cell *c = (struct cell*)malloc(sizeof(struct cell));
    for (int i = 0; i < 4; i++) { c->child[i] = (struct cell*)0; }
    c->b = (struct body*)0;
    c->parent = (struct cell*)0;
    c->mass = 0;
    c->cx = 0;
    c->cy = 0;
    c->x = x;
    c->y = y;
    c->size = size;
    c->depth = 0;
    c->nbody = 0;
    return c;
}

int quadrant(struct cell *c, struct body *b) {
    int h = c->size / 2;
    int q = 0;
    if (b->x >= c->x + h) { q += 1; }
    if (b->y >= c->y + h) { q += 2; }
    return q;
}

void insert(struct cell *c, struct body *b) {
    c->nbody++;
    if (c->size <= 1) {            // degenerate: merge masses
        c->mass += b->mass;
        return;
    }
    if (!c->b && !c->child[0] && !c->child[1] && !c->child[2]
            && !c->child[3]) {
        c->b = b;                  // empty leaf takes the body
        return;
    }
    if (c->b) {                    // split: push the old body down
        struct body *old = c->b;
        c->b = (struct body*)0;
        int q = quadrant(c, old);
        int h = c->size / 2;
        c->child[q] = make_cell(c->x + (q & 1) * h,
                                c->y + (q / 2) * h, h);
        c->child[q]->parent = c;
        c->child[q]->depth = c->depth + 1;
        insert(c->child[q], old);
    }
    int q = quadrant(c, b);
    int h = c->size / 2;
    if (!c->child[q]) {
        c->child[q] = make_cell(c->x + (q & 1) * h,
                                c->y + (q / 2) * h, h);
        c->child[q]->parent = c;
        c->child[q]->depth = c->depth + 1;
    }
    insert(c->child[q], b);
}

void center_of_mass(struct cell *c) {
    if (c->b) {
        c->mass = c->b->mass;
        c->cx = c->b->x;
        c->cy = c->b->y;
        return;
    }
    int m = c->mass;               // degenerate merged mass (if any)
    int sx = c->cx * m;
    int sy = c->cy * m;
    for (int i = 0; i < 4; i++) {
        if (c->child[i]) {
            center_of_mass(c->child[i]);
            m += c->child[i]->mass;
            sx += c->child[i]->cx * c->child[i]->mass;
            sy += c->child[i]->cy * c->child[i]->mass;
        }
    }
    c->mass = m;
    if (m > 0) {
        c->cx = sx / m;
        c->cy = sy / m;
    }
}

int __ax;
int __ay;

void force_walk(struct cell *c, struct body *b) {
    if (!c || c->mass == 0) { return; }
    if (c->b == b) { return; }
    int dx = c->cx - b->x;
    int dy = c->cy - b->y;
    int d2 = dx * dx + dy * dy + 16;     // softening
    // opening criterion: size^2 < theta^2 * d2 with theta = 1/2
    if (c->b || c->size * c->size * 4 < d2) {
        int d = isqrt(d2);
        int f = (c->mass << 10) / d2;    // G*m / d^2, fixed point
        __ax += f * dx / d;
        __ay += f * dy / d;
        return;
    }
    for (int i = 0; i < 4; i++) { force_walk(c->child[i], b); }
}

int main() {
    __seed = 31415;
    struct body *bodies = (struct body*)0;
    for (int i = 0; i < %(n)d; i++) {
        struct body *b = (struct body*)malloc(sizeof(struct body));
        b->x = nextrand() %% %(space)d;
        b->y = nextrand() %% %(space)d;
        b->vx = 0;
        b->vy = 0;
        b->mass = (nextrand() & 63) + 16;
        b->next = bodies;
        bodies = b;
    }
    for (int step = 0; step < %(steps)d; step++) {
        struct cell *root = make_cell(0, 0, %(space)d);
        for (struct body *b = bodies; b; b = b->next) {
            if (b->x >= 0 && b->x < %(space)d && b->y >= 0
                    && b->y < %(space)d) {
                insert(root, b);
            }
        }
        center_of_mass(root);
        for (struct body *b = bodies; b; b = b->next) {
            __ax = 0;
            __ay = 0;
            force_walk(root, b);
            b->vx += __ax >> 6;
            b->vy += __ay >> 6;
            b->x += b->vx >> 4;
            b->y += b->vy >> 4;
        }
    }
    int chk = 0;
    for (struct body *b = bodies; b; b = b->next) {
        chk = (chk * 31 + (b->x & 1023) * 7 + (b->y & 1023))
              %% 1000003;
    }
    print(chk);
    return 0;
}
""" % {"n": N_BODIES, "steps": TIME_STEPS, "space": SPACE}
