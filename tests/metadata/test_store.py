"""Functional metadata store."""

from hypothesis import given, strategies as st

from repro.metadata import MetadataStore


def test_basic_roundtrip():
    store = MetadataStore()
    assert store.get(0x1000) == (0, 0)
    store.set_pointer(0x1000, 0x1000, 0x1010)
    assert store.get(0x1000) == (0x1000, 0x1010)
    assert store.is_pointer(0x1000)
    store.clear(0x1000)
    assert store.get(0x1000) == (0, 0)
    assert not store.is_pointer(0x1000)


def test_word_granularity():
    """Any byte address within a word maps to the same entry."""
    store = MetadataStore()
    store.set_pointer(0x1001, 5, 9)
    for offset in range(4):
        assert store.get(0x1000 + offset) == (5, 9)
    store.clear(0x1003)
    assert store.get(0x1000) == (0, 0)


def test_lookup_distinguishes_missing():
    store = MetadataStore()
    assert store.lookup(0x2000) is None
    store.set_pointer(0x2000, 1, 2)
    assert store.lookup(0x2000) == (1, 2)


@given(ops=st.lists(st.tuples(st.integers(0, 1 << 16),
                              st.booleans()), max_size=200))
def test_matches_dict_model(ops):
    """The store behaves like a dict keyed by word address."""
    store = MetadataStore()
    model = {}
    for addr, is_set in ops:
        key = addr & ~3
        if is_set:
            store.set_pointer(addr, addr, addr + 4)
            model[key] = (addr, addr + 4)
        else:
            store.clear(addr)
            model.pop(key, None)
    assert store.pointer_count() == len(model)
    for key, meta in model.items():
        assert store.get(key) == meta
