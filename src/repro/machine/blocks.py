"""Basic-block fusion execution engine.

The decoded engine (:mod:`repro.machine.decode`) pays a fixed
dispatch tax per *instruction*: a list index, an instruction-limit
compare, a faulting-pc bookkeeping store, a closure call and a
next-pc select.  This module amortizes that tax over straight-line
runs:

1. **Block discovery** — a linear pass over the linked program finds
   block leaders (the entry point, branch/call targets, fallthrough
   points after control transfers, and ``setcode`` immediates, which
   are the ISA's function-pointer constants) and grows each leader
   into a maximal straight-line block, giving a CFG of
   :class:`BasicBlock` nodes.

2. **Superinstruction fusion** — each block is compiled into one
   *block closure*: a generated function executing the whole block
   in a single call.  Hot handler shapes (``mov``, ``add``/``sub``,
   compares, non-propagating ALU, branches, ``call``/``callr``/
   ``ret``, and word ``load``/``store``) are inlined as source
   templates with their operands passed in as closure cells;
   everything else (sub-word memory operations, ablated or
   substituted metadata engines, HardBound primitives, environment
   calls) calls the instruction's decoded closure from
   :func:`repro.machine.decode.decode_program` unchanged.  Generated
   code objects are cached by the block's *shape signature*, so two
   blocks with the same instruction shapes share one compilation.

   The fused memory templates inline the whole load/store body:
   effective-address arithmetic, the HardBound bounds check, the
   flat-heap segment check (which doubles as arena routing — see
   :mod:`repro.machine.memory`), the word-view access, the
   :class:`~repro.caches.fast.FastMemorySystem` word+tag probe with
   its composite-MRU short circuit, and the pointer-metadata
   load/store.  **Template invariant:** every template is a
   source-level copy of the corresponding decoded closure body —
   same statement order, same counter increments, same trap types
   and messages — so fused and single-stepped execution are
   indistinguishable; the engine differential suite enforces this.
   Memory templates are only emitted when the decoded engine would
   take its own inline fast path (stock HardBound engine and
   encoding, word access, no temporal tracker, no observer, timing
   either off or on the fast memory model); every other
   configuration falls back to the decoded closure, which keeps the
   equivalence contract trivially.

3. **Block-threaded dispatch** — the run loop executes one block per
   iteration: one table lookup, one limit compare against the whole
   block length, one call.

Trap semantics stay **bit-identical** to the other engines without
slowing the happy path: the generator records which source line
belongs to which instruction offset, so when something raises, the
faulting offset is recovered from the exception traceback's line
number in the block frame and the instruction count is rewound to
exactly what the per-instruction engines would report.  Control
transfers into the middle of a block (a computed ``callr`` into a
non-leader pc) fall back to single-instruction stepping on the same
decoded closures, as does any block that could bust the instruction
limit mid-flight.
"""

from __future__ import annotations

import types
from types import SimpleNamespace
from typing import Dict, List, Optional, Tuple

from repro.caches.fast import (
    FastMemorySystem,
    data_probe_lines,
    word_probe_lines,
)
from repro.isa.opcodes import Op, REG_FP, REG_RA, REG_SP
from repro.isa.program import Program
from repro.layout import GLOBAL_BASE, HEAP_BASE, MASK32, MAXINT, STACK_TOP
from repro.machine.errors import (
    BoundsError,
    HaltSignal,
    InstructionLimitExceeded,
    InvalidCodePointerError,
    MemoryFault,
    NonPointerError,
    Trap,
)

#: opcodes that end a basic block (transfer or stop control)
TERMINATORS = frozenset({
    Op.JMP, Op.BEQZ, Op.BNEZ, Op.CALL, Op.CALLR, Op.RET,
    Op.HALT, Op.ABORT,
})

#: opcodes with a static branch/call target
_TARGETED = frozenset({Op.JMP, Op.BEQZ, Op.BNEZ, Op.CALL})

#: cap on fused block length; the capped tail simply becomes the next
#: block, entered by fallthrough
MAX_BLOCK_LEN = 64


class BasicBlock:
    """One CFG node: a maximal straight-line instruction run.

    ``succs`` holds the *static* successor pcs: branch targets and
    fallthrough points.  Indirect transfers (``callr``/``ret``) and
    program exit have no static successors.
    """

    __slots__ = ("start", "length", "succs")

    def __init__(self, start: int, length: int,
                 succs: Tuple[int, ...]):
        self.start = start
        self.length = length
        self.succs = succs

    @property
    def end(self) -> int:
        """pc one past the last instruction of the block."""
        return self.start + self.length

    def __repr__(self):
        return ("BasicBlock(%d..%d -> %s)"
                % (self.start, self.end - 1, list(self.succs)))


def find_leaders(program: Program) -> set:
    """Pcs where a basic block may begin.

    Leaders are the program entry, every static branch/call target,
    the instruction after every control transfer (branch fallthrough
    and call/``callr`` return point), and every in-range ``setcode``
    immediate — the only way this ISA materializes a code-pointer
    constant for an indirect call.
    """
    instrs = program.instrs
    n = len(instrs)
    leaders = set()
    if not n:
        return leaders
    leaders.add(program.entry)
    for i, instr in enumerate(instrs):
        op = instr.op
        if op in _TARGETED:
            target = instr.target
            if target is not None and 0 <= target < n:
                leaders.add(target)
            if i + 1 < n:
                leaders.add(i + 1)
        elif op in TERMINATORS:  # callr/ret/halt/abort
            if i + 1 < n:
                leaders.add(i + 1)
        elif op is Op.SETCODE and instr.rs is None:
            target = (instr.imm or 0) & MASK32
            if target < n:
                leaders.add(target)
    return leaders


def _static_succs(program: Program, start: int,
                  length: int) -> Tuple[int, ...]:
    instrs = program.instrs
    n = len(instrs)
    last = instrs[start + length - 1]
    op = last.op
    fall = start + length
    if op is Op.JMP:
        return (last.target,)
    if op in (Op.BEQZ, Op.BNEZ):
        succs = [last.target]
        if fall < n:
            succs.append(fall)
        return tuple(succs)
    if op is Op.CALL:
        return (last.target,)
    if op in (Op.CALLR, Op.RET, Op.HALT, Op.ABORT):
        return ()
    return (fall,) if fall < n else ()


def build_cfg(program: Program) -> List[BasicBlock]:
    """Discover the basic blocks of a linked program, in pc order.

    Every leader opens a block that extends to the first terminator,
    the instruction before the next leader, or the fusion cap,
    whichever comes first.  Capped tails open follow-on blocks at
    non-leader pcs (they are only ever entered by fallthrough).
    """
    instrs = program.instrs
    n = len(instrs)
    leaders = find_leaders(program)
    blocks: List[BasicBlock] = []
    starts = sorted(leaders)
    seen = set()
    while starts:
        next_starts: List[int] = []
        for start in starts:
            if start in seen:
                continue
            seen.add(start)
            j = start
            while True:
                if instrs[j].op in TERMINATORS:
                    break
                nxt = j + 1
                if nxt >= n or nxt in leaders or nxt in seen:
                    break
                if nxt - start >= MAX_BLOCK_LEN:
                    next_starts.append(nxt)
                    break
                j = nxt
            length = j - start + 1
            blocks.append(BasicBlock(
                start, length, _static_succs(program, start, length)))
        starts = sorted(next_starts)
    blocks.sort(key=lambda b: b.start)
    return blocks


# -- superinstruction templates ----------------------------------------------

# Each fused instruction is a *part*: a template id (the shape), the
# parameters it pulls into the generated function's closure, and its
# source lines.  Blocks with equal shape-id tuples share one compiled
# code object; operands travel as closure cells, never as literals.

_M32 = str(MASK32)
_MSB = str(0x80000000)
_MAX = str(MAXINT)
_RA = str(REG_RA)

#: comparison expression templates, mirrored from decode.build_cmp
_CMP_RR = {
    Op.SEQ: "value[rs{i}] == value[rt{i}]",
    Op.SNE: "value[rs{i}] != value[rt{i}]",
    Op.SLT: "(value[rs{i}] ^ %s) < (value[rt{i}] ^ %s)" % (_MSB, _MSB),
    Op.SLE: "(value[rs{i}] ^ %s) <= (value[rt{i}] ^ %s)" % (_MSB, _MSB),
    Op.SGT: "(value[rs{i}] ^ %s) > (value[rt{i}] ^ %s)" % (_MSB, _MSB),
    Op.SGE: "(value[rs{i}] ^ %s) >= (value[rt{i}] ^ %s)" % (_MSB, _MSB),
    Op.SLTU: "value[rs{i}] < value[rt{i}]",
    Op.SGEU: "value[rs{i}] >= value[rt{i}]",
}
_CMP_RI = {
    Op.SEQ: "value[rs{i}] == k{i}",
    Op.SNE: "value[rs{i}] != k{i}",
    Op.SLT: "(value[rs{i}] ^ %s) < k{i}" % _MSB,
    Op.SLE: "(value[rs{i}] ^ %s) <= k{i}" % _MSB,
    Op.SGT: "(value[rs{i}] ^ %s) > k{i}" % _MSB,
    Op.SGE: "(value[rs{i}] ^ %s) >= k{i}" % _MSB,
    Op.SLTU: "value[rs{i}] < k{i}",
    Op.SGEU: "value[rs{i}] >= k{i}",
}
_SIGNED_CMPS = frozenset({Op.SLT, Op.SLE, Op.SGT, Op.SGE})
_NONPROP = frozenset({Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
                      Op.SHL, Op.SHR, Op.SRA})


class _Part:
    """One fused instruction: shape id, closure params, source lines."""

    __slots__ = ("shape", "params", "lines")

    def __init__(self, shape: str, params: List[Tuple[str, object]],
                 lines: List[str]):
        self.shape = shape
        self.params = params
        self.lines = lines


class _FuseCtx:
    """Build-time facts that select and specialize templates.

    ``fuse_hb_mem`` / ``fuse_plain_mem`` hold exactly when the
    decoded engine would take its own inline memory fast path, so a
    fused memory template never covers a configuration the decoded
    closures would route through generic engine calls.

    ``assoc_sig`` carries the fast model's associativity geometry
    (TLB, L1, tag cache, L2): the inlined probe bodies unroll their
    way scans over it, so it is part of the memory templates' shape
    identity.
    """

    __slots__ = ("observer_none", "full_mode", "fuse_hb_mem",
                 "hb_timing", "fuse_plain_mem", "plain_timing",
                 "assoc_sig", "assoc_tag")

    def __init__(self, env):
        self.observer_none = env.observer is None
        self.full_mode = env.full_mode
        mem_ok = (env.use_words and env.temporal_check is None
                  and self.observer_none)
        timing = env.memsys is not None
        self.hb_timing = env.wprobe is not None
        self.fuse_hb_mem = (mem_ok and env.inline_check
                            and (not timing or self.hb_timing))
        self.plain_timing = env.dprobe is not None
        self.fuse_plain_mem = (mem_ok and env.hb is None
                               and (not timing or self.plain_timing))
        if isinstance(env.memsys, FastMemorySystem):
            p = env.memsys.params
            self.assoc_sig = (p.tlb_assoc, p.l1_assoc,
                              p.tag_cache_assoc, p.l2_assoc)
            self.assoc_tag = "_a" + "-".join(map(str, self.assoc_sig))
        else:
            self.assoc_sig = None
            self.assoc_tag = ""


# -- memory template fragments ----------------------------------------------

# Mirrored line for line from the decoded closures (load_s_word and
# friends in repro.machine.decode): same statement order, same counter
# increments, same trap types/messages.  The segment check doubles as
# flat-arena routing; unaligned words spill to the raw entry points.

_HEAP = str(HEAP_BASE)
_GLOB = str(GLOBAL_BASE)
_STOP = str(STACK_TOP)

# The fast memory-model charge bodies are emitted by
# repro.caches.fast's line emitters (word_probe_lines /
# data_probe_lines): the same source the closure probes are compiled
# from, parameterized by the associativity geometry (way scans are
# unrolled for assoc <= 4 over the flat recency-ordered way tables).
# The
# lines carry no per-instruction placeholders, so they are inlined
# into the memory templates verbatim; the assoc geometry becomes part
# of the template shape (``_FuseCtx.assoc_tag``) because it changes
# the generated source.


def _word_read_lines(acc: str) -> List[str]:
    """Merged segment check + flat-arena word read into ``v``."""
    return [
        "end = ea + 4",
        "if %s <= ea and end <= _mem.brk:" % _HEAP,
        "    v = _heap[1][(ea - %s) >> 2] if not ea & 3 "
        "else _rr(ea, 4)" % _HEAP,
        "elif %s <= ea and end <= _gl:" % _GLOB,
        "    v = _glob[1][(ea - %s) >> 2] if not ea & 3 "
        "else _rr(ea, 4)" % _GLOB,
        "elif _sb <= ea and end <= %s:" % _STOP,
        "    v = _stk[1][(ea - _sb) >> 2] if not ea & 3 "
        "else _rr(ea, 4)",
        "else:",
        "    raise _mf(ea, %r)" % acc,
    ]


def _word_write_lines(acc: str) -> List[str]:
    """Merged segment check + flat-arena word write of ``v``."""
    return [
        "end = ea + 4",
        "v = value[rd{i}]",
        "if %s <= ea and end <= _mem.brk:" % _HEAP,
        "    if ea & 3:",
        "        _rw(ea, 4, v)",
        "    else:",
        "        _heap[1][(ea - %s) >> 2] = v" % _HEAP,
        "elif %s <= ea and end <= _gl:" % _GLOB,
        "    if ea & 3:",
        "        _rw(ea, 4, v)",
        "    else:",
        "        _glob[1][(ea - %s) >> 2] = v" % _GLOB,
        "elif _sb <= ea and end <= %s:" % _STOP,
        "    if ea & 3:",
        "        _rw(ea, 4, v)",
        "    else:",
        "        _stk[1][(ea - _sb) >> 2] = v",
        "else:",
        "    raise _mf(ea, %r)" % acc,
    ]


def _hb_check_lines(acc: str, si: bool, frame: bool,
                    full: bool) -> List[str]:
    """Figure 3C/D bounds check, specialized for the operand form."""
    lines = ["b = rbase[rs{i}]", "bd = rbound[rs{i}]"]
    if si:
        lines += [
            "if not (b or bd):",
            "    b = rbase[rt{i}]",
            "    bd = rbound[rt{i}]",
        ]
    lines += [
        "if b or bd:",
        "    _hbs.checks += 1",
        "    if ea < b or ea >= bd:",
        "        raise _be(ea, b, bd, %r)" % acc,
    ]
    # frame-register accesses without bounds are compiler-owned and
    # exempt; the branch is resolved at template-build time
    if not frame:
        if full:
            lines += ["else:",
                      "    raise _npe(value[rs{i}], %r)" % acc]
        else:
            lines += ["else:",
                      "    _hbs.nonpointer_derefs += 1"]
    return lines


def _load_meta_lines(timing: bool) -> List[str]:
    """HardBound word-load metadata path (load_word_meta inlined)."""
    lines = [
        "meta = _mg(ea & -4)",
        "if meta is None:",
        "    value[rd{i}] = v",
        "    rbase[rd{i}] = 0",
        "    rbound[rd{i}] = 0",
        "else:",
        "    mb, mbd = meta",
        "    _hbs.pointer_loads += 1",
        "    if _isc(v, mb, mbd):",
        "        _hbs.compressed_loads += 1",
        "    else:",
        "        _hbs.meta_uops += 1",
    ]
    if timing:
        lines.append("        _sp(ea & -4)")
    lines += [
        "    value[rd{i}] = v",
        "    rbase[rd{i}] = mb",
        "    rbound[rd{i}] = mbd",
    ]
    return lines


def _store_meta_lines(timing: bool) -> List[str]:
    """HardBound word-store metadata path (store_word_meta inlined)."""
    lines = [
        "key = ea & -4",
        "mb = rbase[rd{i}]",
        "mbd = rbound[rd{i}]",
        "if mb == 0 and mbd == 0:",
        "    _mp(key, None)",
        "else:",
        "    _meta[key] = (mb, mbd)",
        "    _hbs.pointer_stores += 1",
        "    if _isc(v, mb, mbd):",
        "        _hbs.compressed_stores += 1",
        "    else:",
        "        _hbs.meta_uops += 1",
    ]
    if timing:
        lines.append("        _sp(key)")
    return lines


def _mem_part(instr, i: int, ctx: _FuseCtx) -> Optional[_Part]:
    """Fused word load/store template, or ``None`` for the closure.

    Emitted only for the shapes the decoded engine fast-paths itself
    (word size, base-register form present); the template body is a
    source-level copy of the matching decoded closure.
    """
    if instr.size != 4 or instr.rs is None:
        return None
    load = instr.op is Op.LOAD
    acc = "read" if load else "write"
    si = instr.rt is not None
    params = [("rd%d" % i, instr.rd), ("rs%d" % i, instr.rs)]
    if si:
        params += [("rt%d" % i, instr.rt), ("sc%d" % i, instr.scale)]
        ea_line = ("ea = (value[rs{i}] + value[rt{i}] * sc{i} + k{i})"
                   " & %s" % _M32)
    else:
        ea_line = "ea = (value[rs{i}] + k{i}) & %s" % _M32
    params.append(("k%d" % i, instr.disp))
    if ctx.fuse_hb_mem:
        frame = instr.rs in (REG_SP, REG_FP)
        timing = ctx.hb_timing
        shape = "%shb_%s%d%d%d" % ("ld" if load else "st",
                                   "si" if si else "s",
                                   frame, ctx.full_mode, timing)
        if timing:
            shape += ctx.assoc_tag
            wprobe = list(word_probe_lines(*ctx.assoc_sig))
        lines = [ea_line]
        lines += _hb_check_lines(acc, si, frame, ctx.full_mode)
        if load:
            lines += _word_read_lines(acc)
            if timing:
                lines += wprobe
            lines += _load_meta_lines(timing)
        else:
            lines += _word_write_lines(acc)
            if timing:
                lines += wprobe
            lines += _store_meta_lines(timing)
        return _Part(shape, params, lines)
    if ctx.fuse_plain_mem:
        timing = ctx.plain_timing
        shape = "%spl_%s%d" % ("ld" if load else "st",
                               "si" if si else "s", timing)
        if timing:
            shape += ctx.assoc_tag
            sig = ctx.assoc_sig
            dprobe = list(data_probe_lines(sig[0], sig[1], sig[3]))
        lines = [ea_line]
        if load:
            lines += _word_read_lines(acc)
            if timing:
                lines += dprobe
            lines += ["value[rd{i}] = v",
                      "rbase[rd{i}] = 0",
                      "rbound[rd{i}] = 0"]
        else:
            lines += _word_write_lines(acc)
            if timing:
                lines += dprobe
        return _Part(shape, params, lines)
    return None


def _closure_part(i: int, fn, terminator: bool,
                  term_pc: int) -> _Part:
    if terminator:
        return _Part("ft", [("f%d" % i, fn), ("t%d" % i, term_pc)],
                     ["return f{i}(t{i})".format(i=i)])
    return _Part("f", [("f%d" % i, fn)], ["f{i}(0)".format(i=i)])


def _template_part(instr, i: int, pc: int,
                   ctx: _FuseCtx) -> Optional[_Part]:
    """Template for one instruction, or ``None`` to use its closure.

    Every template is a source-level copy of the corresponding
    decoded closure body (same statement order, same trap types);
    the engine differential suite enforces the equivalence.
    """
    op = instr.op
    observer_none = ctx.observer_none
    full_mode = ctx.full_mode
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    if op in (Op.LOAD, Op.STORE):
        return _mem_part(instr, i, ctx)
    if op is Op.MOV:
        if rs is not None:
            return _Part("movrr", [("rd%d" % i, rd), ("rs%d" % i, rs)],
                         ["value[rd{i}] = value[rs{i}]",
                          "rbase[rd{i}] = rbase[rs{i}]",
                          "rbound[rd{i}] = rbound[rs{i}]"])
        return _Part("movri",
                     [("rd%d" % i, rd),
                      ("k%d" % i, (instr.imm or 0) & MASK32)],
                     ["value[rd{i}] = k{i}",
                      "rbase[rd{i}] = 0",
                      "rbound[rd{i}] = 0"])
    if op in (Op.ADD, Op.SUB) and observer_none:
        if rt is not None:
            sign = "-" if op is Op.SUB else "+"
            return _Part("addsubrr" + sign,
                         [("rd%d" % i, rd), ("rs%d" % i, rs),
                          ("rt%d" % i, rt)],
                         ["v = (value[rs{i}] %s value[rt{i}]) & %s"
                          % (sign, _M32),
                          "if rbase[rs{i}] or rbound[rs{i}]:",
                          "    value[rd{i}] = v",
                          "    rbase[rd{i}] = rbase[rs{i}]",
                          "    rbound[rd{i}] = rbound[rs{i}]",
                          "else:",
                          "    value[rd{i}] = v",
                          "    rbase[rd{i}] = rbase[rt{i}]",
                          "    rbound[rd{i}] = rbound[rt{i}]"])
        k = instr.imm or 0
        if op is Op.SUB:
            k = -k
        return _Part("addsubri",
                     [("rd%d" % i, rd), ("rs%d" % i, rs),
                      ("k%d" % i, k)],
                     ["v = (value[rs{i}] + k{i}) & %s" % _M32,
                      "if rbase[rs{i}] or rbound[rs{i}]:",
                      "    value[rd{i}] = v",
                      "    rbase[rd{i}] = rbase[rs{i}]",
                      "    rbound[rd{i}] = rbound[rs{i}]",
                      "else:",
                      "    value[rd{i}] = v",
                      "    rbase[rd{i}] = 0",
                      "    rbound[rd{i}] = 0"])
    if op in _CMP_RR:
        if rt is not None:
            expr = _CMP_RR[op]
            shape = "cmp_rr_" + op.value
            params = [("rd%d" % i, rd), ("rs%d" % i, rs),
                      ("rt%d" % i, rt)]
        else:
            # mirror build_cmp's immediate pre-transformations
            k = instr.imm or 0
            if op in (Op.SEQ, Op.SNE):
                k &= MASK32
            elif op in _SIGNED_CMPS:
                k = (k & MASK32) ^ 0x80000000
            expr = _CMP_RI[op]
            shape = "cmp_ri_" + op.value
            params = [("rd%d" % i, rd), ("rs%d" % i, rs),
                      ("k%d" % i, k)]
        return _Part(shape, params,
                     ["value[rd{i}] = 1 if " + expr + " else 0",
                      "rbase[rd{i}] = 0",
                      "rbound[rd{i}] = 0"])
    if op in _NONPROP:
        from repro.machine.decode import _NONPROP_FNS
        fn = _NONPROP_FNS[op]
        if rt is not None:
            return _Part("np_rr",
                         [("fn%d" % i, fn), ("rd%d" % i, rd),
                          ("rs%d" % i, rs), ("rt%d" % i, rt)],
                         ["value[rd{i}] = fn{i}(value[rs{i}], "
                          "value[rt{i}]) & %s" % _M32,
                          "rbase[rd{i}] = 0",
                          "rbound[rd{i}] = 0"])
        return _Part("np_ri",
                     [("fn%d" % i, fn), ("rd%d" % i, rd),
                      ("rs%d" % i, rs), ("k%d" % i, instr.imm or 0)],
                     ["value[rd{i}] = fn{i}(value[rs{i}], k{i}) & %s"
                      % _M32,
                      "rbase[rd{i}] = 0",
                      "rbound[rd{i}] = 0"])
    if op is Op.JMP:
        return _Part("jmp", [("t%d" % i, instr.target)],
                     ["return t{i}"])
    if op is Op.BEQZ:
        return _Part("beqz", [("t%d" % i, instr.target),
                              ("rs%d" % i, rs)],
                     ["return t{i} if value[rs{i}] == 0 else None"])
    if op is Op.BNEZ:
        return _Part("bnez", [("t%d" % i, instr.target),
                              ("rs%d" % i, rs)],
                     ["return t{i} if value[rs{i}] != 0 else None"])
    if op is Op.CALL:
        return _Part("call", [("t%d" % i, instr.target),
                              ("r%d" % i, (pc + 1) & MASK32)],
                     ["value[%s] = r{i}" % _RA,
                      "rbase[%s] = %s" % (_RA, _MAX),
                      "rbound[%s] = %s" % (_RA, _MAX),
                      "return t{i}"])
    if op is Op.RET:
        lines = ["t = value[%s]" % _RA]
        if full_mode:
            lines += ["if rbase[%s] != %s or rbound[%s] != %s:"
                      % (_RA, _MAX, _RA, _MAX),
                      "    raise _icpe(t)"]
        lines += ["if t >= _n:",
                  "    raise _icpe(t)",
                  "return t"]
        return _Part("ret%d" % full_mode, [], lines)
    if op is Op.CALLR:
        lines = ["t = value[rs{i}]"]
        if full_mode:
            lines += ["if rbase[rs{i}] != %s or rbound[rs{i}] != %s:"
                      % (_MAX, _MAX),
                      "    raise _icpe(t)"]
        lines += ["if t >= _n:",
                  "    raise _icpe(t)",
                  "value[%s] = r{i}" % _RA,
                  "rbase[%s] = %s" % (_RA, _MAX),
                  "rbound[%s] = %s" % (_RA, _MAX),
                  "return t"]
        return _Part("callr%d" % full_mode,
                     [("rs%d" % i, rs), ("r%d" % i, (pc + 1) & MASK32)],
                     lines)
    return None


#: pseudo-filename of the generated fuser source (shows in tracebacks)
_FUSE_FILENAME = "<repro-block-fuse>"

#: shape signature -> (fuse function, block code object)
_fuse_cache: Dict[Tuple[str, ...], tuple] = {}
#: block code object -> {line number -> instruction offset}
_line_maps: Dict[object, Dict[int, int]] = {}

#: template parameter name -> FastMemorySystem.inline_env field.
#: Single source of truth for the fast memory-model inline
#: environment (geometry, per-kind records, way tables and composite
#: cells); the fuser signature and the per-block value vector are
#: both derived from it, so a field can only be added or renamed in
#: one place.
_MI_PARAMS = (
    ("_bs", "block_shift"), ("_ps", "page_shift"),
    ("_fs", "fig_shift"), ("_tlm", "tlb_mask"),
    ("_l2k", "l2_keys"), ("_l2m", "l2_mask"),
    ("_tpen", "tlb_pen"), ("_1pen", "l1_pen"), ("_2pen", "l2_pen"),
    ("_dct", "dctr"), ("_dpg", "dpages_add"),
    ("_dtlk", "dtlb_keys"), ("_dtm", "dtlb_mru"),
    ("_l1k", "dkeys"), ("_dma", "dmask"), ("_dmr", "dmru"),
    ("_dfg", "dfig_mru"),
    ("_tct", "tctr"), ("_tpg", "tpages_add"),
    ("_ttlk", "ttlb_keys"), ("_ttm", "ttlb_mru"),
    ("_tck", "tkeys"), ("_tma", "tmask"), ("_tmr", "tmru"),
    ("_tfg", "tfig_mru"),
    ("_tb", "tag_base"), ("_ts", "tag_shift"),
    ("_wpm", "wp_mru"), ("_wps", "wp_shift"), ("_cmpw", "wp_composite"),
    ("_dpm", "dp_mru"), ("_cmpd", "dp_composite"),
)

#: shared environment parameters appended to every fuser signature:
#: the register arrays, program length and code-pointer trap, then
#: the memory environment (arena cells, segment bounds, raw spill
#: entry points), the HardBound metadata environment, the fast
#: memory-model inline environment, and the trap constructors the
#: memory templates raise
_ENV_PARAMS = (
    "value", "rbase", "rbound", "_n", "_icpe",
    "_mem", "_heap", "_glob", "_stk", "_gl", "_sb", "_rr", "_rw",
    "_hbs", "_meta", "_mg", "_mp", "_isc", "_sp",
) + tuple(name for name, _ in _MI_PARAMS) + (
    "_be", "_npe", "_mf",
)


def _compile_fuser(signature: Tuple[str, ...],
                   parts: List[_Part]):
    """Compile (or fetch) the fuser for a block shape signature."""
    cached = _fuse_cache.get(signature)
    if cached is not None:
        return cached
    names: List[str] = []
    for part in parts:
        names.extend(name for name, _ in part.params)
    header = "def _fuse(%s):" % ", ".join(list(names) + list(_ENV_PARAMS))
    lines = [header, "    def _block(pc):"]
    line_of: Dict[int, int] = {}
    for offset, part in enumerate(parts):
        fmt = {"i": offset}
        for raw in part.lines:
            lines.append("        " + raw.format(**fmt))
            line_of[len(lines)] = offset
    lines.append("    return _block")
    namespace: dict = {}
    exec(compile("\n".join(lines), _FUSE_FILENAME, "exec"), namespace)
    fuse = namespace["_fuse"]
    block_code = next(const for const in fuse.__code__.co_consts
                      if isinstance(const, types.CodeType)
                      and const.co_name == "_block")
    entry = (fuse, block_code)
    _fuse_cache[signature] = entry
    _line_maps[block_code] = line_of
    return entry


def build_block_table(cpu, code: list, env=None) -> list:
    """Fuse every CFG block of the cpu's program over its closures.

    Returns a pc-indexed table: ``None`` at non-block pcs, else
    ``(block_closure, length, fallthrough_pc, last_pc)``.  Pass the
    ``env`` the closures were decoded with (see
    :func:`repro.machine.decode.bind_env`) so fused memory templates
    share the decoded closures' probe and counter state.
    """
    from repro.machine.decode import bind_env

    if env is None:
        env = bind_env(cpu)
    program = cpu.program
    instrs = program.instrs
    ctx = _FuseCtx(env)
    if isinstance(env.memsys, FastMemorySystem):
        mi = env.memsys.inline_env(env.tag_base, env.tag_shift)
    else:
        mi = SimpleNamespace(**{field: None for _, field in _MI_PARAMS})
    env_map = {
        "value": env.value, "rbase": env.rbase, "rbound": env.rbound,
        "_n": len(instrs), "_icpe": InvalidCodePointerError,
        "_mem": env.memory, "_heap": env.heap_cell,
        "_glob": env.glob_cell, "_stk": env.stack_cell,
        "_gl": env.globals_limit, "_sb": env.stack_base,
        "_rr": env.raw_read, "_rw": env.raw_write,
        "_hbs": env.hb_stats, "_meta": env.meta_map,
        "_mg": env.meta_get, "_mp": env.meta_pop,
        "_isc": env.is_comp, "_sp": env.sprobe,
        "_be": BoundsError, "_npe": NonPointerError,
        "_mf": MemoryFault,
    }
    for name, field in _MI_PARAMS:
        env_map[name] = getattr(mi, field)
    env_vals = tuple(env_map[name] for name in _ENV_PARAMS)
    table: list = [None] * len(code)
    for block in build_cfg(program):
        start, length = block.start, block.length
        parts: List[_Part] = []
        for offset in range(length):
            pc = start + offset
            part = _template_part(instrs[pc], offset, pc, ctx)
            if part is None:
                part = _closure_part(offset, code[pc],
                                     offset == length - 1, pc)
            parts.append(part)
        signature = tuple(part.shape for part in parts)
        fuse, _block_code = _compile_fuser(signature, parts)
        args = [value for part in parts for _, value in part.params]
        fn = fuse(*(args + list(env_vals)))
        table[start] = (fn, length, start + length, start + length - 1)
    return table


def _trap_offset(exc: BaseException) -> Optional[int]:
    """Instruction offset within the dispatched block, if any.

    Walks the exception's traceback for a generated block frame and
    maps its line number through the block's line table to the
    instruction offset that raised.  Returns ``None`` when the
    exception did not pass through a block closure (single-step
    dispatch, or a fault in the driver itself).
    """
    tb = exc.__traceback__
    offset = None
    while tb is not None:
        line_of = _line_maps.get(tb.tb_frame.f_code)
        if line_of is not None:
            offset = line_of.get(tb.tb_lineno, offset)
        tb = tb.tb_next
    return offset


# -- block-threaded run loop -------------------------------------------------

def execute_blocks(cpu):
    """Run ``cpu`` to halt on fused basic blocks.

    Observable behaviour is bit-identical to the legacy and decoded
    engines: the same statistics, the same trap types/messages, the
    same faulting pc and instruction count on every exit path.  The
    fast path dispatches whole blocks; control transfers into
    non-leader pcs and blocks that could cross the instruction limit
    are single-stepped on the underlying decoded closures.
    """
    from repro.machine.cpu import RunResult
    from repro.machine.decode import bind_env, decode_program

    env = bind_env(cpu)
    code = decode_program(cpu, env)
    table = build_block_table(cpu, code, env)
    n = len(code)
    limit = cpu.config.max_instructions
    pc = cpu.pc
    lpc = pc
    icount = cpu.icount
    blen = 1
    try:
        while True:
            entry = table[pc]
            if entry is not None:
                fn, blen, fall, last = entry
                nic = icount + blen
                if nic <= limit:
                    icount = nic
                    lpc = last
                    npc = fn(pc)
                    pc = fall if npc is None else npc
                    continue
            # single-step: mid-block entry, or the limit may fire
            # within the block — mirror the decoded loop exactly
            lpc = pc
            icount += 1
            if icount > limit:
                raise InstructionLimitExceeded(limit)
            npc = code[pc](pc)
            pc = pc + 1 if npc is None else npc
    except HaltSignal as halt:
        offset = _trap_offset(halt)
        if offset is None:
            cpu.icount = icount
            cpu.pc = pc
        else:
            cpu.icount = icount - (blen - offset - 1)
            cpu.pc = lpc - blen + 1 + offset
        return RunResult(cpu, halt.code)
    except IndexError as exc:
        offset = _trap_offset(exc)
        if offset is not None:
            # genuine IndexError inside a fused instruction
            cpu.icount = icount - (blen - offset - 1)
            cpu.pc = lpc - blen + 1 + offset
            raise
        if 0 <= pc < n:
            # genuine IndexError in a single-stepped closure
            cpu.icount = icount
            cpu.pc = lpc
            raise
        # ``pc`` can never go negative (branch targets are label
        # indices, indirect targets masked-unsigned), so this is the
        # out-of-range fetch of the legacy loop
        cpu.icount = icount
        cpu.pc = lpc
        raise MemoryFault(pc, "fetch").at(lpc)
    except Trap as trap:
        offset = _trap_offset(trap)
        if offset is None:
            cpu.icount = icount
            cpu.pc = lpc
            raise trap.at(lpc)
        cpu.icount = icount - (blen - offset - 1)
        cpu.pc = lpc - blen + 1 + offset
        raise trap.at(cpu.pc)
    except BaseException as exc:
        offset = _trap_offset(exc)
        if offset is None:
            cpu.icount = icount
            cpu.pc = lpc
        else:
            cpu.icount = icount - (blen - offset - 1)
            cpu.pc = lpc - blen + 1 + offset
        raise
