"""Fast memory-system timing model for the block-fusion engine.

:class:`~repro.caches.hierarchy.MemorySystem` spends most of every
access in Python plumbing: a dict lookup into the per-kind stats, a
``touch_page`` method call, and two or three nested
:meth:`~repro.caches.cache.Cache.access` calls, each with its own
attribute loads and ``OrderedDict`` bookkeeping.  With timing enabled
that call chain dominates the whole simulation (ROADMAP "Interpreter
follow-ons").

:class:`FastMemorySystem` charges the *same* model — TLB probe, L1 (or
tag-cache) probe, L2 on miss, two block touches on a spanning access —
from flat closures with every shift, mask, penalty and set table bound
as a local:

* set-index masks and block shifts are precomputed per structure;
* the TLB/L1/L2 sets are plain dicts mapping key -> *recency stamp*
  drawn from one shared monotone counter: a hit refreshes the stamp
  with a single dict store (no del/reinsert move-to-end), a miss
  evicts the minimum-stamp way — the same victim the ``OrderedDict``
  LRU sets of :class:`~repro.caches.cache.Cache` would choose, so
  the hit/miss streams are identical;
* a most-recently-used short circuit skips the dict work entirely
  when an access touches the same block (or page) as the previous
  probe of that structure — then the block is guaranteed present
  *and* already most recent, so hit/miss/LRU state cannot change
  and only the access counters advance;
* per-kind statistics accumulate into flat counter lists and are
  materialized into an :class:`~repro.caches.stats.AccessStats` only
  when :attr:`stats` is read — **counter-batching invariant**: every
  code path that charges an access, wherever it lives, must bump the
  same shared counter lists, page sets and MRU cells, which is why
  :meth:`inline_env` hands out the records themselves rather than
  copies;
* :meth:`make_word_probe` / :meth:`make_shadow_probe` /
  :meth:`make_data_probe` hand the execution engines single-call
  probes for their hottest access shapes (a word access fused with
  its tag-byte probe, the shadow double word, a plain word), and
  :meth:`inline_env` exposes the geometry, per-kind records, stamp
  and composite-MRU cells so the block-fusion engine can generate
  the whole charge inline — called and inlined charges update the
  same state and are therefore interchangeable mid-run (fused blocks
  inline, the single-step fallback calls the probes).

Counters are **bit-identical** to :class:`MemorySystem`: the same
accesses, TLB/L1/L2 misses, stall cycles and distinct pages per kind
for any access stream (``tests/caches/test_fast.py`` runs both models
on random streams; the engine differential suite runs them on whole
workloads).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.caches.cache import _ilog2
from repro.caches.hierarchy import CacheParams
from repro.caches.stats import AccessStats, FIG_PAGE_SHIFT, KINDS
from repro.layout import PAGE_SIZE, SHADOW_SPACE_BASE

#: indices into the per-kind counter list
_ACC, _TLB_M, _L1_M, _L2_M, _STALL, _SPANS = range(6)

#: indices into a per-kind record
_R_CTR, _R_PAGES, _R_TLB, _R_TLB_MRU, _R_SETS, _R_MASK, _R_ASSOC, \
    _R_MRU = range(8)


class _CacheView:
    """Read-only stand-in for a :class:`~repro.caches.cache.Cache`.

    Derives probe counts from the per-kind counters so diagnostics
    (e.g. ``memsys.tag_cache.miss_rate()``) work against the fast
    model too.  A structure's probes are the accesses of every kind
    routed to it plus one extra probe per block-spanning access; its
    misses are those kinds' per-level miss counters.
    """

    __slots__ = ("name", "accesses", "misses")

    def __init__(self, name: str, accesses: int, misses: int):
        self.name = name
        self.accesses = accesses
        self.misses = misses

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self):
        return ("_CacheView(%s: %d acc, %.1f%% miss)"
                % (self.name, self.accesses, 100.0 * self.miss_rate()))


class FastMemorySystem:
    """Drop-in fast replacement for :class:`MemorySystem`.

    Same constructor, same ``access(addr, size, write, kind)``
    signature and return value (the stall cycles charged), same
    statistics; only the implementation differs.  The model — like
    :class:`MemorySystem` — is write-agnostic: the ``write`` flag is
    accepted for interface parity and ignored.  Used by the
    ``blocks`` execution engine.
    """

    def __init__(self, params: CacheParams = None):
        self.params = params or CacheParams()
        p = self.params
        # LRU sets as plain dicts mapping key -> recency stamp: a hit
        # overwrites the stamp (one dict store, no del/reinsert), and
        # eviction removes the minimum-stamp key.  Stamps come from
        # one shared monotone counter, so min-stamp == least recently
        # touched — the same victim the OrderedDict sets of
        # :class:`~repro.caches.cache.Cache` evict.
        self._seq = [0]
        self._l1_sets = self._make_sets(p.l1_size, p.l1_assoc, p.block)
        self._l2_sets = self._make_sets(p.l2_size, p.l2_assoc, p.block)
        self._tag_sets = self._make_sets(p.tag_cache_size,
                                         p.tag_cache_assoc, p.block)
        tlb_size = p.tlb_entries * PAGE_SIZE
        self._dtlb_sets = self._make_sets(tlb_size, p.tlb_assoc,
                                          PAGE_SIZE)
        self._tag_tlb_sets = self._make_sets(tlb_size, p.tlb_assoc,
                                             PAGE_SIZE)
        # one MRU cell per structure, shared by every probe of that
        # structure (the short-circuit invariant demands it)
        l1_mru, tag_mru = [-1], [-1]
        dtlb_mru, tag_tlb_mru = [-1], [-1]
        # composite MRU cells: a probe may skip its whole structure
        # walk when it repeats the previous probe's block granule AND
        # no other probe touched the shared structures since; every
        # other probe therefore invalidates these on its full path
        self._wp_mru = [-1]
        self._dp_mru = [-1]
        # every cell whose skip path can elide a distinct-page add;
        # reset_stats() must invalidate them so cleared page sets
        # repopulate (probes register their private fig cells here)
        self._reset_cells: List[list] = [self._wp_mru, self._dp_mru]
        #: kind -> record, layout per the ``_R_*`` indices above
        self._kinds: Dict[str, tuple] = {}
        for kind in KINDS:
            if kind == "tag":
                rec = ([0] * 6, set(), self._tag_tlb_sets, tag_tlb_mru,
                       self._tag_sets, len(self._tag_sets) - 1,
                       p.tag_cache_assoc, tag_mru)
            else:
                rec = ([0] * 6, set(), self._dtlb_sets, dtlb_mru,
                       self._l1_sets, len(self._l1_sets) - 1,
                       p.l1_assoc, l1_mru)
            self._kinds[kind] = rec
        self.access = self._build_access()

    @staticmethod
    def _make_sets(size: int, assoc: int, block: int) -> List[dict]:
        if size % (assoc * block):
            raise ValueError("size must be a multiple of assoc*block")
        num_sets = size // (assoc * block)
        _ilog2(num_sets)  # validate power of two
        return [{} for _ in range(num_sets)]

    def _geometry(self):
        """Shared constants bound into every probe closure."""
        p = self.params
        return (_ilog2(p.block), _ilog2(PAGE_SIZE),
                len(self._dtlb_sets) - 1, p.tlb_assoc,
                self._l2_sets, len(self._l2_sets) - 1, p.l2_assoc,
                p.tlb_miss_penalty, p.l1_miss_penalty,
                p.l2_miss_penalty, FIG_PAGE_SHIFT)

    # -- hot paths ---------------------------------------------------------

    def _build_access(self):
        """Generic probe with all parameters bound as locals."""
        kinds = self._kinds
        (block_shift, page_shift, tlb_mask, tlb_assoc, l2_sets,
         l2_mask, l2_assoc, tlb_pen, l1_pen, l2_pen,
         fig_shift) = self._geometry()
        wp_mru = self._wp_mru
        dp_mru = self._dp_mru
        seq = self._seq

        def access(addr, size, write, kind):
            (ctr, pages, tlb_sets, tlb_mru, csets, cmask, cassoc,
             cmru) = kinds[kind]
            wp_mru[0] = -1
            dp_mru[0] = -1
            ctr[0] += 1
            pages.add(addr >> fig_shift)
            page_no = addr >> page_shift
            if page_no == tlb_mru[0]:
                stall = 0
            else:
                s = tlb_sets[page_no & tlb_mask]
                if page_no in s:
                    s[page_no] = seq[0] = seq[0] + 1
                    stall = 0
                else:
                    ctr[1] += 1
                    stall = tlb_pen
                    if len(s) >= tlb_assoc:
                        del s[min(s, key=s.get)]
                    s[page_no] = seq[0] = seq[0] + 1
                tlb_mru[0] = page_no
            bno = addr >> block_shift
            last_bno = (addr + size - 1) >> block_shift
            if bno == last_bno == cmru[0]:
                ctr[4] += stall
                return stall
            while True:
                s = csets[bno & cmask]
                if bno in s:
                    s[bno] = seq[0] = seq[0] + 1
                else:
                    ctr[2] += 1
                    stall += l1_pen
                    s2 = l2_sets[bno & l2_mask]
                    if bno in s2:
                        s2[bno] = seq[0] = seq[0] + 1
                    else:
                        ctr[3] += 1
                        stall += l2_pen
                        if len(s2) >= l2_assoc:
                            del s2[min(s2, key=s2.get)]
                        s2[bno] = seq[0] = seq[0] + 1
                    if len(s) >= cassoc:
                        del s[min(s, key=s.get)]
                    s[bno] = seq[0] = seq[0] + 1
                cmru[0] = bno
                if bno == last_bno:
                    break
                ctr[5] += 1
                bno = last_bno
            ctr[4] += stall
            return stall

        return access

    def make_word_probe(self, tag_base: int, tag_shift: int):
        """Single-call probe for a word access plus its tag byte.

        Charges a 4-byte ``"data"`` access at the given address
        followed by a 1-byte ``"tag"`` access at ``tag_base + (addr
        >> tag_shift)`` — the exact sequence every HardBound word
        load/store performs.  A tag byte never spans blocks, so the
        tag leg drops the span handling entirely.
        """
        (block_shift, page_shift, tlb_mask, tlb_assoc, l2_sets,
         l2_mask, l2_assoc, tlb_pen, l1_pen, l2_pen,
         fig_shift) = self._geometry()
        (dctr, dpages, dtlb_sets, dtlb_mru, dsets, dmask, dassoc,
         dmru) = self._kinds["data"]
        (tctr, tpages, ttlb_sets, ttlb_mru, tsets, tmask, tassoc,
         tmru) = self._kinds["tag"]
        dpages_add = dpages.add
        tpages_add = tpages.add
        # distinct-page sets are idempotent, so a private
        # last-page-added cell can elide repeat adds safely
        dfig_mru = [-1]
        tfig_mru = [-1]
        self._reset_cells += [dfig_mru, tfig_mru]
        # composite short circuit: same key as the previous probe of
        # these structures means every level repeats an all-hit on a
        # recency tail — only the access counters can change.  The
        # key granule must pin the data block, the tag byte and both
        # figure pages, hence the min-shift (and the off-switch for
        # exotic geometries).
        wp_mru = self._wp_mru
        dp_mru = self._dp_mru
        seq = self._seq
        key_shift = min(tag_shift, block_shift)
        composite = key_shift <= fig_shift and block_shift < page_shift

        def word_probe(addr):
            # the key granule pins only the access's first block, so
            # the skip must also prove the word doesn't span out of
            # it (conservative: same key granule for both ends)
            key = addr >> key_shift
            if key == wp_mru[0] and (addr + 3) >> key_shift == key:
                dctr[0] += 1
                tctr[0] += 1
                return
            # -- data leg (4 bytes) --
            dctr[0] += 1
            fp = addr >> fig_shift
            if fp != dfig_mru[0]:
                dpages_add(fp)
                dfig_mru[0] = fp
            page_no = addr >> page_shift
            if page_no != dtlb_mru[0]:
                s = dtlb_sets[page_no & tlb_mask]
                if page_no in s:
                    s[page_no] = seq[0] = seq[0] + 1
                else:
                    dctr[1] += 1
                    dctr[4] += tlb_pen
                    if len(s) >= tlb_assoc:
                        del s[min(s, key=s.get)]
                    s[page_no] = seq[0] = seq[0] + 1
                dtlb_mru[0] = page_no
            first_bno = addr >> block_shift
            last_bno = (addr + 3) >> block_shift
            if first_bno == last_bno == dmru[0]:
                pass
            else:
                bno = first_bno
                stall = 0
                while True:
                    s = dsets[bno & dmask]
                    if bno in s:
                        s[bno] = seq[0] = seq[0] + 1
                    else:
                        dctr[2] += 1
                        stall += l1_pen
                        s2 = l2_sets[bno & l2_mask]
                        if bno in s2:
                            s2[bno] = seq[0] = seq[0] + 1
                        else:
                            dctr[3] += 1
                            stall += l2_pen
                            if len(s2) >= l2_assoc:
                                del s2[min(s2, key=s2.get)]
                            s2[bno] = seq[0] = seq[0] + 1
                        if len(s) >= dassoc:
                            del s[min(s, key=s.get)]
                        s[bno] = seq[0] = seq[0] + 1
                    dmru[0] = bno
                    if bno == last_bno:
                        break
                    dctr[5] += 1
                    bno = last_bno
                dctr[4] += stall
            # -- tag leg (1 byte, never spans) --
            taddr = tag_base + (addr >> tag_shift)
            tctr[0] += 1
            fp = taddr >> fig_shift
            if fp != tfig_mru[0]:
                tpages_add(fp)
                tfig_mru[0] = fp
            page_no = taddr >> page_shift
            if page_no != ttlb_mru[0]:
                s = ttlb_sets[page_no & tlb_mask]
                if page_no in s:
                    s[page_no] = seq[0] = seq[0] + 1
                else:
                    tctr[1] += 1
                    tctr[4] += tlb_pen
                    if len(s) >= tlb_assoc:
                        del s[min(s, key=s.get)]
                    s[page_no] = seq[0] = seq[0] + 1
                ttlb_mru[0] = page_no
            bno = taddr >> block_shift
            if bno != tmru[0]:
                s = tsets[bno & tmask]
                if bno in s:
                    s[bno] = seq[0] = seq[0] + 1
                else:
                    tctr[2] += 1
                    stall = l1_pen
                    s2 = l2_sets[bno & l2_mask]
                    if bno in s2:
                        s2[bno] = seq[0] = seq[0] + 1
                    else:
                        tctr[3] += 1
                        stall += l2_pen
                        if len(s2) >= l2_assoc:
                            del s2[min(s2, key=s2.get)]
                        s2[bno] = seq[0] = seq[0] + 1
                    if len(s) >= tassoc:
                        del s[min(s, key=s.get)]
                    s[bno] = seq[0] = seq[0] + 1
                    tctr[4] += stall
                tmru[0] = bno
            # a spanning data access leaves the recency tail at the
            # second block, so a future same-key probe could not skip
            wp_mru[0] = key if composite and first_bno == last_bno \
                else -1
            dp_mru[0] = -1

        return word_probe

    def _make_kind_probe(self, kind: str, size: int, base: int,
                         addr_scale: int):
        """Fixed-size single-kind probe: charges ``base + key *
        addr_scale`` for ``size`` bytes under ``kind``."""
        (block_shift, page_shift, tlb_mask, tlb_assoc, l2_sets,
         l2_mask, l2_assoc, tlb_pen, l1_pen, l2_pen,
         fig_shift) = self._geometry()
        (ctr, pages, tlb_sets, tlb_mru, csets, cmask, cassoc,
         cmru) = self._kinds[kind]
        span = size - 1
        identity = base == 0 and addr_scale == 1
        pages_add = pages.add
        fig_mru = [-1]
        self._reset_cells.append(fig_mru)
        wp_mru = self._wp_mru
        dp_mru = self._dp_mru
        seq = self._seq
        # only the data probe gets a composite cell; it shares the
        # dtlb/L1 with the word/shadow probes and the generic entry
        # point, so each of those invalidates it on their full paths
        is_data = kind == "data"
        composite = (is_data and block_shift <= fig_shift
                     and block_shift < page_shift)

        def kind_probe(key):
            addr = key if identity else base + key * addr_scale
            first_bno = addr >> block_shift
            last_bno = (addr + span) >> block_shift
            if first_bno == last_bno == dp_mru[0] and is_data:
                ctr[0] += 1
                return
            ctr[0] += 1
            fp = addr >> fig_shift
            if fp != fig_mru[0]:
                pages_add(fp)
                fig_mru[0] = fp
            page_no = addr >> page_shift
            if page_no != tlb_mru[0]:
                s = tlb_sets[page_no & tlb_mask]
                if page_no in s:
                    s[page_no] = seq[0] = seq[0] + 1
                else:
                    ctr[1] += 1
                    ctr[4] += tlb_pen
                    if len(s) >= tlb_assoc:
                        del s[min(s, key=s.get)]
                    s[page_no] = seq[0] = seq[0] + 1
                tlb_mru[0] = page_no
            if first_bno == last_bno == cmru[0]:
                pass
            else:
                bno = first_bno
                stall = 0
                while True:
                    s = csets[bno & cmask]
                    if bno in s:
                        s[bno] = seq[0] = seq[0] + 1
                    else:
                        ctr[2] += 1
                        stall += l1_pen
                        s2 = l2_sets[bno & l2_mask]
                        if bno in s2:
                            s2[bno] = seq[0] = seq[0] + 1
                        else:
                            ctr[3] += 1
                            stall += l2_pen
                            if len(s2) >= l2_assoc:
                                del s2[min(s2, key=s2.get)]
                            s2[bno] = seq[0] = seq[0] + 1
                        if len(s) >= cassoc:
                            del s[min(s, key=s.get)]
                        s[bno] = seq[0] = seq[0] + 1
                    cmru[0] = bno
                    if bno == last_bno:
                        break
                    ctr[5] += 1
                    bno = last_bno
                ctr[4] += stall
            if is_data:
                dp_mru[0] = first_bno \
                    if composite and first_bno == last_bno else -1
                wp_mru[0] = -1
            else:
                wp_mru[0] = -1
                dp_mru[0] = -1

        return kind_probe

    def make_shadow_probe(self):
        """Probe for the shadow double word of a data word ``key``
        (``key`` is the word-aligned data address)."""
        return self._make_kind_probe("shadow", 8, SHADOW_SPACE_BASE, 2)

    def make_data_probe(self):
        """Probe for a plain 4-byte ``"data"`` access at an address."""
        return self._make_kind_probe("data", 4, 0, 1)

    # callers hot enough to inline the composite-hit path themselves
    # (the decoded memory closures) get the probe plus the cells the
    # short circuit reads: on a hit only the access counters advance.

    def word_probe_parts(self, tag_base: int, tag_shift: int):
        """``(probe, wp_mru, data_ctr, tag_ctr, key_shift)`` for an
        inlined ``key == wp_mru[0]`` fast path around
        :meth:`make_word_probe`."""
        probe = self.make_word_probe(tag_base, tag_shift)
        key_shift = min(tag_shift, _ilog2(self.params.block))
        return (probe, self._wp_mru, self._kinds["data"][_R_CTR],
                self._kinds["tag"][_R_CTR], key_shift)

    def data_probe_parts(self):
        """``(probe, dp_mru, data_ctr, block_shift)`` for an inlined
        non-spanning ``bkey == dp_mru[0]`` fast path around
        :meth:`make_data_probe`."""
        return (self.make_data_probe(), self._dp_mru,
                self._kinds["data"][_R_CTR],
                _ilog2(self.params.block))

    def inline_env(self, tag_base, tag_shift):
        """Everything a code generator needs to inline the charges.

        The block-fusion engine's memory templates inline the whole
        word+tag probe (and the plain data probe) into generated
        source instead of calling a probe closure.  This returns the
        geometry constants, the per-kind records, the shared
        composite-MRU cells, the recency-stamp cell, and freshly
        registered fig-page MRU cells — the same state the closure
        probes close over, so inlined and called charges update
        identical structures and stay counter-identical.

        ``tag_base``/``tag_shift`` may be ``None`` (plain runs have
        no tag leg); the tag fields are then ``None`` too.
        """
        from types import SimpleNamespace

        (block_shift, page_shift, tlb_mask, tlb_assoc, l2_sets,
         l2_mask, l2_assoc, tlb_pen, l1_pen, l2_pen,
         fig_shift) = self._geometry()
        env = SimpleNamespace(
            block_shift=block_shift, page_shift=page_shift,
            fig_shift=fig_shift, tlb_mask=tlb_mask,
            tlb_assoc=tlb_assoc, l2_sets=l2_sets, l2_mask=l2_mask,
            l2_assoc=l2_assoc, tlb_pen=tlb_pen, l1_pen=l1_pen,
            l2_pen=l2_pen, seq=self._seq,
            wp_mru=self._wp_mru, dp_mru=self._dp_mru,
            tag_base=tag_base, tag_shift=tag_shift,
        )
        (dctr, dpages, dtlb_sets, dtlb_mru, dsets, dmask, dassoc,
         dmru) = self._kinds["data"]
        env.dctr = dctr
        env.dpages_add = dpages.add
        env.dtlb_sets = dtlb_sets
        env.dtlb_mru = dtlb_mru
        env.dsets = dsets
        env.dmask = dmask
        env.dassoc = dassoc
        env.dmru = dmru
        env.dfig_mru = [-1]
        self._reset_cells.append(env.dfig_mru)
        # data-probe composite validity (mirrors _make_kind_probe)
        env.dp_composite = (block_shift <= fig_shift
                            and block_shift < page_shift)
        if tag_base is not None:
            (tctr, tpages, ttlb_sets, ttlb_mru, tsets, tmask, tassoc,
             tmru) = self._kinds["tag"]
            env.tctr = tctr
            env.tpages_add = tpages.add
            env.ttlb_sets = ttlb_sets
            env.ttlb_mru = ttlb_mru
            env.tsets = tsets
            env.tmask = tmask
            env.tassoc = tassoc
            env.tmru = tmru
            env.tfig_mru = [-1]
            self._reset_cells.append(env.tfig_mru)
            # word-probe composite key/validity (mirrors
            # make_word_probe)
            env.wp_shift = min(tag_shift, block_shift)
            env.wp_composite = (env.wp_shift <= fig_shift
                                and block_shift < page_shift)
        else:
            env.tctr = env.tpages_add = env.ttlb_sets = None
            env.ttlb_mru = env.tsets = env.tmask = None
            env.tassoc = env.tmru = env.tfig_mru = None
            env.wp_shift = env.wp_composite = None
        return env

    # -- statistics --------------------------------------------------------

    @property
    def stats(self) -> AccessStats:
        """Materialize the batched counters as an ``AccessStats``."""
        out = AccessStats()
        for kind, rec in self._kinds.items():
            ctr, pages = rec[_R_CTR], rec[_R_PAGES]
            ks = out.kinds[kind]
            ks.accesses = ctr[_ACC]
            ks.tlb_misses = ctr[_TLB_M]
            ks.l1_misses = ctr[_L1_M]
            ks.l2_misses = ctr[_L2_M]
            ks.stall_cycles = ctr[_STALL]
            ks.pages = set(pages)
        return out

    def reset_stats(self) -> None:
        """Zero all counters (cache contents are kept warm)."""
        for rec in self._kinds.values():
            ctr, pages = rec[_R_CTR], rec[_R_PAGES]
            for i in range(len(ctr)):
                ctr[i] = 0
            pages.clear()
        # composite/fig-page shortcuts may elide page-set adds; after
        # clearing the sets they must repopulate from scratch
        for cell in self._reset_cells:
            cell[0] = -1

    # -- diagnostic views --------------------------------------------------

    def _probe_counts(self, kinds_subset: Tuple[str, ...],
                      miss_idx: int,
                      spanning: bool) -> Tuple[int, int]:
        acc = misses = 0
        for kind in kinds_subset:
            ctr = self._kinds[kind][_R_CTR]
            acc += ctr[_ACC] + (ctr[_SPANS] if spanning else 0)
            misses += ctr[miss_idx]
        return acc, misses

    @property
    def l1(self) -> _CacheView:
        acc, m = self._probe_counts(("data", "shadow", "soft"),
                                    _L1_M, True)
        return _CacheView("L1D", acc, m)

    @property
    def tag_cache(self) -> _CacheView:
        acc, m = self._probe_counts(("tag",), _L1_M, True)
        return _CacheView("TagCache", acc, m)

    @property
    def l2(self) -> _CacheView:
        acc = sum(self._kinds[k][_R_CTR][_L1_M] for k in KINDS)
        m = sum(self._kinds[k][_R_CTR][_L2_M] for k in KINDS)
        return _CacheView("L2", acc, m)

    @property
    def dtlb(self) -> _CacheView:
        acc, m = self._probe_counts(("data", "shadow", "soft"),
                                    _TLB_M, False)
        return _CacheView("DTLB", acc, m)

    @property
    def tag_tlb(self) -> _CacheView:
        acc, m = self._probe_counts(("tag",), _TLB_M, False)
        return _CacheView("TagTLB", acc, m)
