"""Delta-debugging shrinker: a divergent program becomes a tiny test.

Classic ddmin over the *instruction lines* of an assembly program:
labels, directives (``.data``/``.space``) and comments are structural
and never removed, so every candidate still assembles into the same
skeleton; the reducer drops ever-smaller chunks of instructions while
an *interestingness predicate* (e.g. "the oracle still reports a
divergence", or "the program still traps with this class") keeps
holding.  Predicates are evaluated failure-safely — a candidate that
no longer assembles or runs simply counts as uninteresting.

The output of a fuzzing session is meant to be committed:
:func:`write_corpus_entry` drops the minimized program plus a JSON
sidecar (seed, config, divergence fields) into
``tests/fuzz/corpus/``, where ``tests/fuzz/test_corpus.py`` replays
every entry through the full oracle forever after.
"""

from __future__ import annotations

import json
import os
from typing import Callable, List, Optional, Tuple


def split_lines(text: str) -> List[str]:
    return text.splitlines()


def is_instruction(line: str) -> bool:
    """True for removable instruction lines (not structure)."""
    s = line.strip()
    if not s or s.startswith(";") or s.startswith("//"):
        return False
    if s.startswith("."):           # .data / .space / directives
        return False
    head = s.split()[0]
    return not head.endswith(":")   # labels stay


def instruction_count(text: str) -> int:
    return sum(1 for line in split_lines(text) if is_instruction(line))


def _candidate(lines: List[str], removable: List[int],
               removed: set) -> str:
    drop = {removable[i] for i in removed}
    return "\n".join(line for i, line in enumerate(lines)
                     if i not in drop) + "\n"


def minimize_asm(text: str, predicate: Callable[[str], bool],
                 max_checks: int = 2000) -> str:
    """Shrink ``text`` while ``predicate`` stays true (ddmin).

    ``predicate`` receives candidate program text; any exception it
    raises counts as "not interesting".  The original text must
    satisfy the predicate.  Runs to a 1-line-granularity fixpoint or
    until ``max_checks`` predicate evaluations, whichever is first.
    """
    def safe(candidate: str) -> bool:
        try:
            return bool(predicate(candidate))
        except Exception:
            return False

    if not safe(text):
        raise ValueError("original program does not satisfy the "
                         "minimization predicate")
    checks = 0
    lines = split_lines(text)
    while True:
        removable = [i for i, line in enumerate(lines)
                     if is_instruction(line)]
        n = len(removable)
        if not n:
            break
        shrunk = False
        chunk = n // 2
        while chunk >= 1:
            start = 0
            while start < len(removable):
                if checks >= max_checks:
                    return "\n".join(lines) + "\n"
                removed = set(range(start,
                                    min(start + chunk, len(removable))))
                candidate = _candidate(lines, removable, removed)
                checks += 1
                if safe(candidate):
                    lines = split_lines(candidate)
                    removable = [i for i, line in enumerate(lines)
                                 if is_instruction(line)]
                    shrunk = True
                    # indices shifted: restart this chunk size
                    start = 0
                    continue
                start += chunk
            chunk //= 2
        if not shrunk:
            break
    return "\n".join(lines) + "\n"


def minimize_result(result, oracle: Optional[Callable] = None,
                    max_checks: int = 2000):
    """Minimize a divergent ISA :class:`~repro.fuzz.oracle.FuzzResult`.

    The predicate re-runs the differential oracle on the candidate
    under the result's own configuration and keeps any candidate
    that still diverges (not necessarily with the identical field
    list — any divergence is worth keeping).  Returns the minimized
    program text.  MiniC results are returned unchanged: source-level
    reduction is out of scope, the assembly of a divergent MiniC
    program can be minimized separately.
    """
    if result.level != "isa":
        return result.program
    from repro.isa.assembler import assemble
    from repro.fuzz.oracle import diff_engines

    if oracle is None:
        def oracle(text):
            return diff_engines(assemble(text), result.config)

    def predicate(text):
        return bool(oracle(text))

    return minimize_asm(result.program, predicate,
                        max_checks=max_checks)


def corpus_name(result) -> str:
    return "%s-seed%d" % (result.level, result.seed)


def write_corpus_entry(corpus_dir: str, name: str, program: str,
                       meta: dict) -> Tuple[str, str]:
    """Write ``<name>.s`` (or ``.c``) plus ``<name>.json`` sidecar."""
    os.makedirs(corpus_dir, exist_ok=True)
    ext = ".c" if meta.get("level") == "minic" else ".s"
    prog_path = os.path.join(corpus_dir, name + ext)
    meta_path = os.path.join(corpus_dir, name + ".json")
    with open(prog_path, "w") as fh:
        fh.write(program)
    with open(meta_path, "w") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return prog_path, meta_path


def load_corpus(corpus_dir: str) -> List[Tuple[str, str, dict]]:
    """Yield ``(name, program_text, meta)`` for every corpus entry."""
    out = []
    if not os.path.isdir(corpus_dir):
        return out
    for fname in sorted(os.listdir(corpus_dir)):
        if not fname.endswith(".json"):
            continue
        name = fname[:-5]
        with open(os.path.join(corpus_dir, fname)) as fh:
            meta = json.load(fh)
        for ext in (".s", ".c"):
            prog = os.path.join(corpus_dir, name + ext)
            if os.path.exists(prog):
                with open(prog) as fh:
                    out.append((name, fh.read(), meta))
                break
    return out
