"""MiniC type system.

Types are immutable-ish descriptor objects with size/alignment.  The
struct table lives in the semantic analyzer; :class:`StructType` is
completed (fields laid out) on definition and may be referenced before
completion for self-referential pointers (``struct node *next``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.minic.errors import TypeError_

WORD = 4


class Type:
    """Base type descriptor."""

    size = 0
    align = 1

    def is_integer(self) -> bool:
        return False

    def is_pointer(self) -> bool:
        return False

    def is_array(self) -> bool:
        return False

    def is_struct(self) -> bool:
        return False

    def is_void(self) -> bool:
        return False

    def is_scalar(self) -> bool:
        """Usable in arithmetic / conditions / assignment by value."""
        return self.is_integer() or self.is_pointer()

    def decayed(self) -> "Type":
        """Array-to-pointer decay; identity for non-arrays."""
        return self


class IntType(Type):
    size = WORD
    align = WORD

    def is_integer(self):
        return True

    def __repr__(self):
        return "int"

    def __eq__(self, other):
        return isinstance(other, IntType)

    def __hash__(self):
        return hash("int")


class CharType(Type):
    """Unsigned byte (documented divergence: C's char may be signed)."""

    size = 1
    align = 1

    def is_integer(self):
        return True

    def __repr__(self):
        return "char"

    def __eq__(self, other):
        return isinstance(other, CharType)

    def __hash__(self):
        return hash("char")


class VoidType(Type):
    size = 0
    align = 1

    def is_void(self):
        return True

    def __repr__(self):
        return "void"

    def __eq__(self, other):
        return isinstance(other, VoidType)

    def __hash__(self):
        return hash("void")


class PointerType(Type):
    size = WORD
    align = WORD

    def __init__(self, target: Type):
        self.target = target

    def is_pointer(self):
        return True

    def __repr__(self):
        return "%r*" % (self.target,)

    def __eq__(self, other):
        return isinstance(other, PointerType) and \
            self.target == other.target

    def __hash__(self):
        return hash(("ptr", self.target))


class ArrayType(Type):
    """Array; size is computed lazily because the element may be a
    struct that is completed only during semantic analysis."""

    def __init__(self, element: Type, length: int):
        self.element = element
        self.length = length

    @property
    def size(self) -> int:
        return self.element.size * self.length

    @property
    def align(self) -> int:
        return max(self.element.align, 1)

    def is_array(self):
        return True

    def decayed(self) -> Type:
        return PointerType(self.element)

    def __repr__(self):
        return "%r[%d]" % (self.element, self.length)

    def __eq__(self, other):
        return isinstance(other, ArrayType) and \
            self.element == other.element and self.length == other.length

    def __hash__(self):
        return hash(("arr", self.element, self.length))


class StructField:
    __slots__ = ("name", "type", "offset")

    def __init__(self, name: str, type_: Type, offset: int):
        self.name = name
        self.type = type_
        self.offset = offset


class StructType(Type):
    """A (possibly forward-declared) struct.

    ``complete()`` lays out fields with natural alignment and rounds
    the total size up to word alignment, like a conventional 32-bit
    C ABI.
    """

    def __init__(self, name: str):
        self.name = name
        self.fields: Dict[str, StructField] = {}
        self.size = 0
        self.align = 1
        self.is_complete = False

    def is_struct(self):
        return True

    def complete(self, members: List[Tuple[Type, str]],
                 line: Optional[int] = None) -> None:
        if self.is_complete:
            raise TypeError_("struct %s redefined" % self.name, line)
        offset = 0
        align = 1
        for ftype, fname in members:
            elem = ftype
            while isinstance(elem, ArrayType):
                elem = elem.element
            if isinstance(elem, StructType) and not elem.is_complete:
                raise TypeError_(
                    "field %s has incomplete type %r" % (fname, elem),
                    line)
            if ftype.size == 0 and not ftype.is_array():
                raise TypeError_(
                    "field %s has incomplete type %r" % (fname, ftype),
                    line)
            if fname in self.fields:
                raise TypeError_("duplicate field %s" % fname, line)
            offset = _round_up(offset, ftype.align)
            self.fields[fname] = StructField(fname, ftype, offset)
            offset += ftype.size
            align = max(align, ftype.align)
        self.align = max(align, 1)
        self.size = _round_up(max(offset, 1), max(align, WORD))
        self.is_complete = True

    def field(self, name: str, line: Optional[int] = None) -> StructField:
        if not self.is_complete:
            raise TypeError_("struct %s is incomplete" % self.name, line)
        if name not in self.fields:
            raise TypeError_("struct %s has no field %s"
                             % (self.name, name), line)
        return self.fields[name]

    def __repr__(self):
        return "struct %s" % self.name

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return id(self)


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


INT = IntType()
CHAR = CharType()
VOID = VoidType()


def compatible_assign(dst: Type, src: Type) -> bool:
    """Assignment compatibility (deliberately permissive, C-like).

    Integers interconvert; any pointer converts to/from ``void*``;
    identical pointers convert; integers do *not* silently convert to
    pointers (C would warn; we require an explicit cast so that the
    paper's "casting an int constant to an int*" example is an
    explicit, visible operation).
    """
    if dst.is_integer() and src.is_integer():
        return True
    if dst.is_pointer() and src.is_pointer():
        if isinstance(dst.target, VoidType) or \
                isinstance(src.target, VoidType):
            return True
        return dst == src
    if dst.is_integer() and src.is_pointer():
        return dst == INT
    return False
