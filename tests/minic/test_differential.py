"""Differential testing: MiniC programs vs. a Python oracle.

Hypothesis generates random integer expression trees; we compile and
run them on the simulator and evaluate the same tree in Python with
C-on-32-bit semantics.  Any disagreement is a compiler or simulator
bug.  This is the cheapest high-yield correctness net for the whole
MiniC → assembler → CPU pipeline.
"""

from hypothesis import given, settings, strategies as st

from repro.layout import MASK32, to_signed
from repro.machine import MachineConfig
from repro.minic import compile_and_run

CFG = MachineConfig.hardbound(timing=False)


class Expr:
    """A tiny expression AST with both C-source and Python views."""

    def __init__(self, text, value):
        self.text = text
        self.value = value & MASK32

    @property
    def signed(self):
        return to_signed(self.value)


def _lit(n):
    return Expr(str(n), n)


def _binop(op, a, b):
    sa, sb = a.signed, b.signed
    if op == "+":
        v = sa + sb
    elif op == "-":
        v = sa - sb
    elif op == "*":
        v = sa * sb
    elif op == "&":
        v = a.value & b.value
    elif op == "|":
        v = a.value | b.value
    elif op == "^":
        v = a.value ^ b.value
    elif op == "<<":
        v = a.value << (b.value & 31)
    elif op == ">>":
        v = sa >> (b.value & 31)
    elif op == "/":
        if sb == 0:
            return None
        q = abs(sa) // abs(sb)
        v = q if (sa < 0) == (sb < 0) else -q
    elif op == "%":
        if sb == 0:
            return None
        r = abs(sa) % abs(sb)
        v = r if sa >= 0 else -r
    else:  # comparison
        v = int({"<": sa < sb, ">": sa > sb, "==": sa == sb,
                 "!=": sa != sb, "<=": sa <= sb, ">=": sa >= sb}[op])
    return Expr("(%s %s %s)" % (a.text, op, b.text), v)


_OPS = ["+", "-", "*", "&", "|", "^", "<", ">", "==", "!=",
        "<=", ">=", "/", "%"]
_SHIFT_OPS = ["<<", ">>"]


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return _lit(draw(st.integers(-1000, 1000)))
    op = draw(st.sampled_from(_OPS + _SHIFT_OPS))
    left = draw(expressions(depth=depth + 1))
    if op in _SHIFT_OPS:
        right = _lit(draw(st.integers(0, 31)))
        # C shift semantics on negative left operands are
        # implementation-defined; keep the oracle honest
        if left.signed < 0:
            left = Expr("(%s & 0x7fffffff)" % left.text,
                        left.value & 0x7FFFFFFF)
    else:
        right = draw(expressions(depth=depth + 1))
    result = _binop(op, left, right)
    if result is None:           # division by zero: regenerate
        return _lit(draw(st.integers(-1000, 1000)))
    return result


@settings(max_examples=60, deadline=None)
@given(expr=expressions())
def test_expression_oracle(expr):
    result = compile_and_run(
        "int main() { print(%s); return 0; }" % expr.text, CFG)
    assert result.output.strip() == str(expr.signed), expr.text


@settings(max_examples=25, deadline=None)
@given(values=st.lists(st.integers(-10000, 10000), min_size=1,
                       max_size=12))
def test_array_sum_oracle(values):
    source = """
    int main() {
        int a[%d];
        %s
        int sum = 0;
        for (int i = 0; i < %d; i++) { sum += a[i]; }
        print(sum);
        return 0;
    }""" % (len(values),
            "\n        ".join("a[%d] = %d;" % (i, v)
                              for i, v in enumerate(values)),
            len(values))
    result = compile_and_run(source, CFG)
    assert result.output.strip() == str(sum(values))


@settings(max_examples=25, deadline=None)
@given(values=st.lists(st.integers(0, 255), min_size=1, max_size=16))
def test_heap_byte_buffer_oracle(values):
    writes = "\n        ".join("p[%d] = (char)%d;" % (i, v)
                               for i, v in enumerate(values))
    source = """
    int main() {
        char *p = (char*)malloc(%d);
        %s
        int acc = 0;
        for (int i = 0; i < %d; i++) { acc = acc * 31 + (int)p[i]; }
        print(acc);
        return 0;
    }""" % (len(values), writes, len(values))
    expected = 0
    for v in values:
        expected = to_signed(((expected * 31) + v) & MASK32)
    result = compile_and_run(source, CFG)
    assert result.output.strip() == str(expected)


@settings(max_examples=20, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 7)),
                    min_size=1, max_size=20))
def test_linked_stack_oracle(ops):
    """Random push/pop sequences on a heap linked list vs a Python
    list (exercises malloc/free churn under full instrumentation)."""
    lines = []
    model = []
    acc = []
    for is_push, value in ops:
        if is_push:
            lines.append("push(%d);" % value)
            model.append(value)
        else:
            lines.append("print(pop());")
            acc.append(model.pop() if model else -1)
    source = """
    struct node { int v; struct node *next; };
    struct node *top;
    void push(int v) {
        struct node *n = (struct node*)malloc(sizeof(struct node));
        n->v = v;
        n->next = top;
        top = n;
    }
    int pop() {
        if (!top) { return -1; }
        struct node *n = top;
        top = n->next;
        int v = n->v;
        free((void*)n);
        return v;
    }
    int main() {
        %s
        return 0;
    }""" % "\n        ".join(lines)
    result = compile_and_run(source, CFG)
    expected = "".join("%d\n" % v for v in acc)
    assert result.output == expected
