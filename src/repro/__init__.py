"""HardBound reproduction: architectural support for spatial safety of C.

Reproduces Devietti, Blundell, Martin & Zdancewic, *HardBound:
Architectural Support for Spatial Safety of the C Programming
Language*, ASPLOS 2008.

Quick tour (see ``examples/quickstart.py``)::

    from repro import MachineConfig, compile_and_run

    result = compile_and_run('''
        int main() {
            char *p = (char*)malloc(4);
            p[4] = 'x';              // spatial violation
            return 0;
        }
    ''', MachineConfig.hardbound())   # raises BoundsError

Layers, bottom-up:

* :mod:`repro.isa` / :mod:`repro.machine` — a 32-bit simulated core
  with HardBound's bounded-pointer primitives.
* :mod:`repro.metadata` / :mod:`repro.caches` /
  :mod:`repro.hardbound` — metadata encodings, the timing model and
  the checking/propagation engine (the paper's contribution).
* :mod:`repro.minic` — the instrumenting C-subset compiler.
* :mod:`repro.baselines` — CCured-style, object-table and red-zone
  comparison schemes.
* :mod:`repro.workloads` / :mod:`repro.harness` — the Olden suite and
  everything needed to regenerate the paper's figures.
"""

from repro.machine.config import MachineConfig, SafetyMode
from repro.machine.cpu import CPU, RunResult
from repro.machine.errors import (
    AbortError,
    BoundsError,
    InvalidCodePointerError,
    MemoryFault,
    NonPointerError,
    SimError,
    Trap,
)
from repro.isa.assembler import assemble
from repro.minic.driver import (
    compile_and_run,
    compile_program,
    compile_to_asm,
)
from repro.minic.codegen import InstrumentMode
from repro.hardbound.engine import HardBoundEngine, HardBoundStats
from repro.metadata.encodings import get_encoding
from repro.caches.hierarchy import CacheParams, MemorySystem

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "SafetyMode",
    "CPU",
    "RunResult",
    "SimError",
    "Trap",
    "BoundsError",
    "NonPointerError",
    "MemoryFault",
    "AbortError",
    "InvalidCodePointerError",
    "assemble",
    "compile_and_run",
    "compile_program",
    "compile_to_asm",
    "InstrumentMode",
    "HardBoundEngine",
    "HardBoundStats",
    "get_encoding",
    "CacheParams",
    "MemorySystem",
    "__version__",
]
