"""Service lifecycle: dispatch, dedup, crash requeue, timeouts,
drain, and the warm-cache contract."""

import os
import time

import pytest

from repro.harness.parallel import map_jobs, run_cell
from repro.obs.events import EventLog
from repro.service import (JobFailed, JobSpec, JobTimeout,
                           ResultStore, Service, ServiceClosed)


def square(x):
    return x * x


def slow_echo(job):
    """Append one execution line, sleep, echo (dedup witness)."""
    path, token, seconds = job
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("%s\n" % token)
    time.sleep(seconds)
    return token


def sleep_for(seconds):
    time.sleep(seconds)
    return seconds


def crash_once(marker):
    """Die hard on the first attempt, succeed on the retry."""
    if not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(13)
    return "recovered"


def always_crash(_):
    os._exit(13)


def raise_value_error(message):
    raise ValueError(message)


@pytest.fixture
def service():
    svc = Service(workers=2, context="fork")
    yield svc
    svc.shutdown(drain=False)


class TestDispatch:
    def test_map_preserves_order(self, service):
        jobs = list(range(17))
        assert service.map(square, jobs) == [x * x for x in jobs]

    def test_map_jobs_service_path_matches_pool(self, service):
        jobs = list(range(8))
        assert map_jobs(square, jobs, service=service) \
            == map_jobs(square, jobs, workers=2)

    def test_worker_exception_fails_future_not_fleet(self, service):
        future = service.submit(raise_value_error, "boom")
        with pytest.raises(JobFailed, match="ValueError: boom"):
            future.result(timeout=30)
        # the fleet survives a failing job
        assert service.map(square, [3]) == [9]

    def test_status_counts_fleet_and_traffic(self, service):
        service.map(square, list(range(5)))
        status = service.status()
        assert len(status["workers"]) == 2
        assert all(worker["alive"] for worker in status["workers"])
        assert status["counters"]["completed"] == 5
        assert status["counters"]["submitted"] == 5


class TestDedup:
    def test_identical_inflight_keys_coalesce(self, tmp_path):
        witness = str(tmp_path / "executions")
        with Service(workers=1, context="fork") as service:
            # occupy the single worker so the keyed jobs stay queued
            blocker = service.submit(sleep_for, 0.3)
            f1 = service.submit(slow_echo, (witness, "A", 0.0),
                                key="same-cell")
            f2 = service.submit(slow_echo, (witness, "A", 0.0),
                                key="same-cell")
            assert f1 is f2  # the in-flight future is shared
            assert f1.result(timeout=30) == "A"
            assert blocker.result(timeout=30) == 0.3
            assert service.status()["counters"]["deduped"] == 1
        with open(witness, encoding="utf-8") as fh:
            assert fh.read() == "A\n"  # one execution, not two

    def test_store_hit_short_circuits_submission(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put("cached-cell", {"cycles": 7})
        with Service(workers=1, context="fork",
                     store=store) as service:
            future = service.submit(square, 999, key="cached-cell")
            assert future.result(timeout=5) == {"cycles": 7}
            counters = service.status()["counters"]
            assert counters["store_hits"] == 1
            assert counters["dispatched"] == 0  # no worker touched


class TestCrashRecovery:
    def test_crash_mid_job_requeues_and_completes(self, tmp_path,
                                                  service):
        marker = str(tmp_path / "crashed-once")
        future = service.submit(crash_once, marker)
        assert future.result(timeout=60) == "recovered"
        counters = service.status()["counters"]
        assert counters["crashes"] == 1
        assert counters["requeued"] == 1
        # the dead worker was replaced: fleet is back to strength
        status = service.status()
        assert len(status["workers"]) == 2
        assert all(worker["alive"] for worker in status["workers"])

    def test_repeated_crash_fails_the_job(self, service):
        future = service.submit(always_crash, None)
        with pytest.raises(JobFailed, match="worker died"):
            future.result(timeout=60)
        # default max_attempts=2: one requeue, then give up
        assert service.status()["counters"]["requeued"] == 1
        assert service.map(square, [4]) == [16]

    def test_requeue_emits_obs_event(self, tmp_path):
        from repro.obs.events import read_events

        marker = str(tmp_path / "crashed-once")
        path = str(tmp_path / "events.jsonl")
        with Service(workers=2, context="fork",
                     obs=EventLog(path)) as service:
            service.submit(crash_once, marker).result(timeout=60)
        events = list(read_events(path))
        requeues = [e for e in events if e.get("ev") == "job_requeue"]
        assert len(requeues) == 1
        assert requeues[0]["reason"] == "crash"
        assert requeues[0]["exitcode"] == 13
        assert any(e.get("ev") == "job_dispatch" for e in events)
        assert any(e.get("ev") == "worker_warm" for e in events)
        assert any(e.get("ev") == "service_status" for e in events)


class TestTimeouts:
    def test_timeout_fails_job_and_recycles_worker(self):
        with Service(workers=1, context="fork") as service:
            future = service.submit(sleep_for, 30.0, timeout=0.2)
            with pytest.raises(JobTimeout):
                future.result(timeout=30)
            assert service.status()["counters"]["timeouts"] == 1
            # the stuck worker was terminated and replaced
            assert service.map(square, [6]) == [36]


class TestDrainAndShutdown:
    def test_graceful_shutdown_drains_the_queue(self):
        service = Service(workers=2, context="fork")
        futures = [service.submit(sleep_for, 0.05)
                   for _ in range(10)]
        service.shutdown(drain=True)
        assert all(f.result(timeout=0) == 0.05 for f in futures)

    def test_drain_is_sticky_submissions_refused(self, service):
        service.map(square, [1, 2])
        service.drain()
        with pytest.raises(ServiceClosed):
            service.submit(square, 3)

    def test_shutdown_without_drain_cancels_pending(self):
        service = Service(workers=1, context="fork")
        blocker = service.submit(sleep_for, 30.0)
        queued = service.submit(square, 5)
        service.shutdown(drain=False, timeout=10.0)
        with pytest.raises(ServiceClosed):
            queued.result(timeout=0)
        assert blocker.done()


class TestWarmContract:
    def test_second_request_runs_without_recompiling(self):
        # spawn context: workers start with cold program caches, so
        # the first request really pays compile + plan formation
        with Service(workers=1, context="spawn") as service:
            job = ("treeadd", "base", True, "superblocks")
            first = service.submit(JobSpec(run_cell, job)) \
                .result(timeout=120)
            second = service.submit(JobSpec(run_cell, job)) \
                .result(timeout=120)
            status = service.status()
        assert first.cycles == second.cycles
        # cold request built the CFG/fusion plan; the warm request is
        # served from the resident program/plan caches, so its
        # compile-side phase timers collapse to ~0
        cold_fusion = first.phases.get("cfg_fusion", 0.0)
        warm_fusion = second.phases.get("cfg_fusion", 0.0)
        assert cold_fusion > 0.0
        assert warm_fusion < cold_fusion / 10
        assert second.phases.get("probe_compile", 0.0) \
            + second.phases.get("decode", 0.0) < 0.01
        worker = status["workers"][0]
        assert worker["jobs_done"] == 2
        assert worker["warm_jobs"] >= 1
