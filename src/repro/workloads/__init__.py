"""The Olden benchmark suite, rewritten in MiniC (Section 5.1).

The paper evaluates on the nine pointer-intensive Olden benchmarks.
We reproduce each benchmark's *allocation and traversal structure* —
trees, lists, graphs, hash tables — at reduced problem sizes so the
Python-hosted simulator finishes in seconds, and with fixed-point
integer arithmetic where Olden uses floats (the bounds machinery never
sees float values, only pointers; see DESIGN.md substitutions).

Every workload prints a deterministic checksum, so the same binary
must produce identical output on the plain core and on every
HardBound configuration — a strong end-to-end check that
instrumentation never changes program semantics.
"""

from __future__ import annotations

from typing import List

from repro.workloads.registry import Workload, WORKLOADS, get_workload

__all__ = ["Workload", "WORKLOADS", "get_workload", "workload_names"]


def workload_names() -> List[str]:
    """The benchmark names in the paper's figure order."""
    return list(WORKLOADS)
