"""End-to-end daemon smoke: the CI service gate.

Starts a real background daemon through the CLI, submits a small
sweep twice over the socket, asserts the second pass is served
entirely from the shared store, drains, and stops — the lifecycle CI
runs with junit output required by ``check_bench_gate.py``.
"""

import os

import pytest

from repro.harness.parallel import (ResultCache, cell_descriptor,
                                    run_cell)
from repro.service import JobSpec, ServiceError
from repro.service.cli import main as service_cli
from repro.service.client import connect

JOBS = [("treeadd", "base", False, "superblocks"),
        ("treeadd", "intern11", False, "superblocks"),
        ("power", "base", False, "superblocks"),
        ("power", "intern11", False, "superblocks")]


def keyed_specs():
    return [JobSpec(run_cell, job,
                    key=ResultCache.key_of(cell_descriptor(*job)))
            for job in JOBS]


class TestDaemonSmoke:
    def test_full_lifecycle(self, tmp_path):
        state = str(tmp_path / "state")
        store = str(tmp_path / "store")
        assert service_cli(["--state-dir", state, "start",
                            "--workers", "2", "--store", store]) == 0
        try:
            with connect(state) as client:
                assert client.ping()
                first = [f.result(timeout=120)
                         for f in client.submit_many(keyed_specs())]
                second = [f.result(timeout=120)
                          for f in client.submit_many(keyed_specs())]
                status = client.status()
                client.drain()
            # identical cells, the second pass entirely from the
            # shared store — no worker ran anything twice
            assert [r.cycles for r in first] \
                == [r.cycles for r in second]
            counters = status["counters"]
            assert counters["completed"] == len(JOBS)
            assert counters["store_hits"] == len(JOBS)
            assert counters["failed"] == 0
            assert status["store"]["entries"] == len(JOBS)
            # status/stop still answer from a fresh connection
            assert service_cli(["--state-dir", state,
                                "status"]) == 0
        finally:
            assert service_cli(["--state-dir", state, "stop"]) == 0
        # stop cleaned the rendezvous: socket, authkey, pidfile gone
        for name in ("socket", "authkey", "daemon.pid"):
            assert not os.path.exists(os.path.join(state, name))
        with pytest.raises(ServiceError):
            connect(state)

    def test_connect_without_daemon_raises(self, tmp_path):
        with pytest.raises(ServiceError, match="no service daemon"):
            connect(str(tmp_path / "nowhere"))
