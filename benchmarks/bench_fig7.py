"""E4 — Figure 7: comparison against JK/RL/DA and CCured.

Regenerates the paper's comparison table with published columns
quoted and simulator columns measured.  Paper shape to preserve:

* HardBound's average overhead is below every software scheme;
* CCured's µop overhead is large (published 1.40) but an out-of-order
  machine hides part of it — our in-order core, like the paper's,
  does not (published sim runtime 1.29);
* intern-11 has the smallest worst-case of all schemes.
"""

from conftest import write_result

from repro.harness.figures import (
    FIGURE7_PUBLISHED_AVERAGE,
    figure7_table,
    format_table,
)


def _avg(values):
    values = list(values)
    return sum(values) / len(values)


def test_figure7(matrix, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: figure7_table(matrix), rounds=1, iterations=1)
    table = format_table(headers, rows,
                         "Figure 7: runtime overhead comparison")
    print("\n" + table)
    write_result("figure7.txt", table)

    hb11 = _avg(m.overhead("intern11") for m in matrix.values())
    hb4e = _avg(m.overhead("extern4") for m in matrix.values())
    cc_run = _avg(m.ccured_runtime_overhead() for m in matrix.values())
    cc_uops = _avg(m.ccured_uop_overhead() for m in matrix.values())
    jk = _avg(m.objtable_runtime_overhead() for m in matrix.values())

    # who wins: HardBound beats both software schemes on average
    assert hb11 < cc_run
    assert hb11 < jk
    assert hb4e < cc_uops
    # rough magnitudes against the published averages
    assert abs(cc_uops - FIGURE7_PUBLISHED_AVERAGE["cc_uops"]) < 0.35
    assert abs(jk - FIGURE7_PUBLISHED_AVERAGE["jkrlda"]) < 0.35
    assert hb11 < 1.20


def test_figure7_worst_case_is_tamed(matrix):
    """Paper: intern-11's max overhead (15%) is far below the software
    schemes' worst benchmarks (>50%)."""
    worst_hb11 = max(m.overhead("intern11") for m in matrix.values())
    worst_cc = max(m.ccured_runtime_overhead() for m in matrix.values())
    assert worst_hb11 < worst_cc
    assert worst_hb11 < 1.25
