"""perimeter: perimeter of a quadtree-encoded image (Olden).

Builds a region quadtree over a synthetic image (a disc), then
computes the total perimeter of the black region: each black leaf
contributes its four sides, minus twice the black-black contact
length along shared internal edges.  Contact lengths are computed by
recursive edge walks — the pointer-chasing pattern Olden's Samet
algorithm exercises.
"""

DEPTH = 5   # 32x32 image

SOURCE = """
struct quad {
    struct quad *child[4];     // 0:NW 1:NE 2:SW 3:SE
    int color;                 // 0 white, 1 black, 2 grey
    int size;
};

// image predicate: a disc centred in the 32x32 grid
int pixel(int x, int y) {
    int dx = x - 16;
    int dy = y - 16;
    return dx * dx + dy * dy <= 144;
}

int uniform(int x, int y, int size) {
    int first = pixel(x, y);
    for (int i = 0; i < size; i++) {
        for (int j = 0; j < size; j++) {
            if (pixel(x + i, y + j) != first) { return -1; }
        }
    }
    return first;
}

struct quad *build(int x, int y, int size) {
    struct quad *q = (struct quad*)malloc(sizeof(struct quad));
    q->size = size;
    int u = uniform(x, y, size);
    if (u >= 0 || size == 1) {
        q->color = u >= 0 ? u : pixel(x, y);
        for (int i = 0; i < 4; i++) { q->child[i] = (struct quad*)0; }
        return q;
    }
    q->color = 2;
    int h = size / 2;
    q->child[0] = build(x, y, h);
    q->child[1] = build(x + h, y, h);
    q->child[2] = build(x, y + h, h);
    q->child[3] = build(x + h, y + h, h);
    return q;
}

// length of black coverage along one side of a subtree
// side: 0 north, 1 south, 2 west, 3 east
int edge_black(struct quad *q, int side) {
    if (q->color == 0) { return 0; }
    if (q->color == 1) { return q->size; }
    if (side == 0) {
        return edge_black(q->child[0], 0) + edge_black(q->child[1], 0);
    }
    if (side == 1) {
        return edge_black(q->child[2], 1) + edge_black(q->child[3], 1);
    }
    if (side == 2) {
        return edge_black(q->child[0], 2) + edge_black(q->child[2], 2);
    }
    return edge_black(q->child[1], 3) + edge_black(q->child[3], 3);
}

// black-black contact length between two edge-adjacent subtrees;
// a is on the north/west side, b on the south/east side
int contact(struct quad *a, struct quad *b, int vertical) {
    if (a->color == 0 || b->color == 0) { return 0; }
    if (a->color == 1 && b->color == 1) {
        return a->size < b->size ? a->size : b->size;
    }
    if (vertical) {     // a above b: a's south edge meets b's north
        if (a->color == 1) {
            return edge_black(b, 0);
        }
        if (b->color == 1) {
            return edge_black(a, 1);
        }
        return contact(a->child[2], b->child[0], 1)
             + contact(a->child[3], b->child[1], 1);
    }
    if (a->color == 1) {
        return edge_black(b, 2);
    }
    if (b->color == 1) {
        return edge_black(a, 3);
    }
    return contact(a->child[1], b->child[0], 0)
         + contact(a->child[3], b->child[2], 0);
}

// sum of 4*size over black leaves, minus internal contacts
int perimeter(struct quad *q) {
    if (q->color == 0) { return 0; }
    if (q->color == 1) { return 4 * q->size; }
    int p = 0;
    for (int i = 0; i < 4; i++) { p += perimeter(q->child[i]); }
    p -= 2 * contact(q->child[0], q->child[1], 0);   // NW | NE
    p -= 2 * contact(q->child[2], q->child[3], 0);   // SW | SE
    p -= 2 * contact(q->child[0], q->child[2], 1);   // NW / SW
    p -= 2 * contact(q->child[1], q->child[3], 1);   // NE / SE
    return p;
}

int count_leaves(struct quad *q) {
    if (q->color != 2) { return 1; }
    int n = 0;
    for (int i = 0; i < 4; i++) { n += count_leaves(q->child[i]); }
    return n;
}

int main() {
    struct quad *root = build(0, 0, %(size)d);
    print(perimeter(root));
    print(count_leaves(root));
    return 0;
}
""" % {"size": 1 << DEPTH}
