"""Machine model: memory, registers, traps and the in-order core."""

from repro.machine.errors import (
    SimError,
    Trap,
    BoundsError,
    NonPointerError,
    MemoryFault,
    DivideByZeroError,
    InvalidCodePointerError,
    UseAfterFreeError,
    DoubleFreeError,
    AbortError,
    InstructionLimitExceeded,
    HaltSignal,
)
from repro.machine.config import (
    ENGINE_BLOCKS,
    ENGINE_DECODED,
    ENGINE_LEGACY,
    ENGINE_SUPERBLOCKS,
    ENGINES,
    MachineConfig,
    SafetyMode,
)
from repro.machine.memory import Memory
from repro.machine.registers import RegisterFile
from repro.machine.cpu import CPU, RunResult

__all__ = [
    "SimError",
    "Trap",
    "BoundsError",
    "NonPointerError",
    "MemoryFault",
    "DivideByZeroError",
    "InvalidCodePointerError",
    "UseAfterFreeError",
    "DoubleFreeError",
    "AbortError",
    "InstructionLimitExceeded",
    "HaltSignal",
    "ENGINE_BLOCKS",
    "ENGINE_DECODED",
    "ENGINE_LEGACY",
    "ENGINE_SUPERBLOCKS",
    "ENGINES",
    "MachineConfig",
    "SafetyMode",
    "Memory",
    "RegisterFile",
    "CPU",
    "RunResult",
]
