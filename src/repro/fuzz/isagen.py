"""Random well-formed assembly over the full instruction registry.

Programs are generated so that

* **termination is guaranteed**: every data-dependent loop decrements
  a dedicated *fuel* register (r11) on its back-edge and jumps to the
  exit label when it hits zero, and statically-bounded loops carry a
  masked trip count — no generated program can run away, with or
  without an instruction limit;
* **memory safety is by construction**: every dereference goes
  through a bounded pointer (``setbound`` over a stack, global or
  heap buffer) with the index masked into the buffer, so programs
  run to completion under ``SafetyMode.FULL`` — except for an
  optional deliberate out-of-bounds finale (it must trap identically
  under every engine, and is benign under the plain core);
* **the whole registry is exercised**: propagating and
  non-propagating ALU forms (register and immediate), ``xchg``,
  ``lea``, comparisons, sub-word and scaled load/store, pointer
  spill/reload through memory (tag paths), ``setbound`` narrowing,
  ``sbrk`` growth, ``readbase``/``readbound``/``setunsafe``/
  ``clrbnd``, direct and indirect (``setcode``/``callr``) calls,
  branches, bounded loops, ``print``/``printc`` output.

Register convention (fixed, so statements compose freely):

====  =====================================================
r1-4  scratch integer values
r5    short-lived derived/narrowed pointer
r6    load destination / guarded divisor / code pointer
r7    masked index
r8    stack buffer pointer   (bounded, 64 bytes)
r9    global buffer pointer  (bounded, 64 bytes)
r10   heap buffer pointer    (bounded, 64 bytes)
r11   fuel counter
r12   loop trip counter
====  =====================================================
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.fuzz.rng import fuzz_rng

#: bytes per generated buffer (stack, global and heap alike)
BUF = 64

#: back-edge budget: every loop iteration burns one unit and bails to
#: the exit label at zero, bounding dynamic instructions structurally
DEFAULT_FUEL = 96

_SCRATCH = ("r1", "r2", "r3", "r4")
_PTRS = ("r8", "r9", "r10")

#: (mnemonic, immediate-allowed) for the three-operand ALU statement;
#: div/mod are emitted separately with a guarded divisor
_ALU3 = (("add", True), ("sub", True), ("mul", True), ("and", True),
         ("or", True), ("xor", True), ("seq", True), ("sne", True),
         ("slt", True), ("sle", True), ("sgt", True), ("sge", True),
         ("sltu", True), ("sgeu", True))

_SHIFTS = ("shl", "shr", "sra")

#: (load mnemonic, store mnemonic, width, word-ish index mask)
_WIDTHS = (("load", "store", 4, 0x3C),
           ("loadh", "storeh", 2, 0x3E),
           ("loadb", "storeb", 1, 0x3F))


class _Emitter:
    """Accumulates lines and hands out unique labels."""

    def __init__(self):
        self.lines: List[str] = []
        self._label = 0

    def op(self, text: str) -> None:
        self.lines.append("    " + text)

    def label(self, name: str) -> None:
        self.lines.append(name + ":")

    def fresh(self, stem: str) -> str:
        self._label += 1
        return "L%s_%d" % (stem, self._label)


class _Gen:
    def __init__(self, rng: random.Random, fuel: int):
        self.rng = rng
        self.e = _Emitter()
        self.fuel = fuel
        self.helpers: List[str] = []
        self.exit_label = "Lexit"

    # -- small pieces -------------------------------------------------------

    def scratch(self) -> str:
        return self.rng.choice(_SCRATCH)

    def ptr(self) -> str:
        return self.rng.choice(_PTRS)

    def imm(self, lo: int = -64, hi: int = 64) -> int:
        return self.rng.randrange(lo, hi + 1)

    def mask_index(self, mask: int) -> None:
        """r7 <- scratch & mask (the bounded-index idiom)."""
        self.e.op("and r7, %s, %d" % (self.scratch(), mask))

    # -- statements ---------------------------------------------------------

    def stmt_alu3(self) -> None:
        mnem, imm_ok = self.rng.choice(_ALU3)
        rd, rs = self.scratch(), self.scratch()
        if imm_ok and self.rng.random() < 0.4:
            self.e.op("%s %s, %s, %d" % (mnem, rd, rs, self.imm()))
        else:
            self.e.op("%s %s, %s, %s" % (mnem, rd, rs, self.scratch()))

    def stmt_shift(self) -> None:
        mnem = self.rng.choice(_SHIFTS)
        self.e.op("%s %s, %s, %d" % (mnem, self.scratch(),
                                     self.scratch(),
                                     self.rng.randrange(0, 16)))

    def stmt_divmod(self) -> None:
        # the divisor is |scratch| forced odd via ``or``, so the
        # divide can never trap (deliberate traps are the finale's job)
        mnem = self.rng.choice(("div", "mod"))
        self.e.op("or r6, %s, 1" % self.scratch())
        self.e.op("%s %s, %s, r6" % (mnem, self.scratch(),
                                     self.scratch()))

    def stmt_alu2(self) -> None:
        mnem = self.rng.choice(("neg", "not"))
        self.e.op("%s %s, %s" % (mnem, self.scratch(), self.scratch()))

    def stmt_xchg(self) -> None:
        self.e.op("xchg %s, %s" % (self.scratch(), self.scratch()))

    def stmt_mov(self) -> None:
        if self.rng.random() < 0.5:
            self.e.op("mov %s, %d" % (self.scratch(),
                                      self.imm(-4096, 4096)))
        else:
            self.e.op("mov %s, %s" % (self.scratch(), self.scratch()))

    def stmt_meta(self) -> None:
        """Metadata-only registry coverage (never dereferenced)."""
        mnem = self.rng.choice(("readbase", "readbound", "setunsafe",
                                "clrbnd"))
        src = self.ptr() if mnem in ("readbase", "readbound") \
            else self.scratch()
        self.e.op("%s r6, %s" % (mnem, src))
        self.e.op("and %s, r6, 1023" % self.scratch())

    def stmt_mem(self) -> None:
        load, store, width, mask = self.rng.choice(_WIDTHS)
        ptr = self.ptr()
        self.mask_index(mask)
        if self.rng.random() < 0.3 and width == 4:
            # scaled form with headroom: idx<=15 scaled by 2 plus a
            # small displacement stays below BUF-4
            self.e.op("and r7, %s, 15" % self.scratch())
            operand = "[%s + r7*2 + %d]" % (ptr, self.rng.randrange(0, 25))
        else:
            operand = "[%s + r7]" % ptr
        if self.rng.random() < 0.5:
            self.e.op("%s r6, %s" % (load, operand))
            self.e.op("add %s, r6, %d" % (self.scratch(), self.imm(0, 8)))
        else:
            self.e.op("%s %s, %s" % (store, operand, self.scratch()))

    def stmt_lea_deref(self) -> None:
        """``lea`` propagates the base pointer's bounds (Fig 3)."""
        ptr = self.ptr()
        self.e.op("and r7, %s, 15" % self.scratch())
        self.e.op("lea r5, [%s + r7*2 + %d]"
                  % (ptr, self.rng.randrange(0, 17)))
        if self.rng.random() < 0.5:
            self.e.op("load r6, [r5 + %d]" % self.rng.randrange(0, 13))
        else:
            self.e.op("store [r5], %s" % self.scratch())

    def stmt_narrow(self) -> None:
        """setbound a 16-byte sub-object and access inside it."""
        ptr = self.ptr()
        off = self.rng.randrange(0, 9) * 4      # 16-byte window fits
        self.e.op("lea r5, [%s + %d]" % (ptr, off))
        self.e.op("setbound r5, r5, 16")
        self.e.op("and r7, %s, 12" % self.scratch())
        if self.rng.random() < 0.5:
            self.e.op("load r6, [r5 + r7]")
        else:
            self.e.op("store [r5 + r7], %s" % self.scratch())

    def stmt_spill(self) -> None:
        """Pointer store/reload through memory: tag-path coverage."""
        src = self.rng.choice(("r9", "r10"))
        slot = self.rng.choice((0, 4))
        self.e.op("store [r8 + %d], %s" % (slot, src))
        self.e.op("load r5, [r8 + %d]" % slot)
        _, _, _, mask = _WIDTHS[0]
        self.e.op("and r7, %s, %d" % (self.scratch(), mask))
        self.e.op("load r6, [r5 + r7]")

    def stmt_sbrk(self) -> None:
        self.e.op("and r4, %s, 28" % self.scratch())
        self.e.op("add r4, r4, 4")
        self.e.op("sbrk r4")
        self.e.op("and r4, r4, 2047")   # keep the raw break harmless

    def stmt_print(self) -> None:
        if self.rng.random() < 0.75:
            self.e.op("print %s" % self.scratch())
        else:
            self.e.op("and r6, %s, 63" % self.scratch())
            self.e.op("add r6, r6, 48")  # printable ASCII
            self.e.op("printc r6")

    def stmt_if(self, depth: int) -> None:
        r = self.scratch()
        l_else = self.e.fresh("else")
        l_end = self.e.fresh("end")
        mnem = self.rng.choice(("beqz", "bnez"))
        self.e.op("%s %s, %s" % (mnem, r, l_else))
        self.block(self.rng.randrange(1, 4), depth + 1, loops=False)
        self.e.op("jmp %s" % l_end)
        self.e.label(l_else)
        self.block(self.rng.randrange(1, 4), depth + 1, loops=False)
        self.e.label(l_end)

    def stmt_loop(self, depth: int) -> None:
        head = self.e.fresh("loop")
        self.e.op("and r12, %s, 7" % self.scratch())
        self.e.op("add r12, r12, 1")
        self.e.label(head)
        self.block(self.rng.randrange(1, 5), depth + 1, loops=False)
        # fuel first: the back-edge can never outlive the budget
        self.e.op("sub r11, r11, 1")
        self.e.op("beqz r11, %s" % self.exit_label)
        if self.rng.random() < 0.25:
            # data-dependent back-edge (terminates via fuel alone)
            self.e.op("and r6, %s, 3" % self.scratch())
            self.e.op("bnez r6, %s" % head)
        else:
            self.e.op("sub r12, r12, 1")
            self.e.op("bnez r12, %s" % head)

    def stmt_call(self) -> None:
        if not self.helpers:
            return self.stmt_alu3()
        fn = self.rng.choice(self.helpers)
        if self.rng.random() < 0.3:
            self.e.op("setcode r6, %s" % fn)
            self.e.op("callr r6")
        else:
            self.e.op("call %s" % fn)

    # -- composition --------------------------------------------------------

    def block(self, n: int, depth: int, loops: bool = True) -> None:
        simple = [self.stmt_alu3, self.stmt_alu3, self.stmt_shift,
                  self.stmt_divmod, self.stmt_alu2, self.stmt_xchg,
                  self.stmt_mov, self.stmt_mem, self.stmt_mem,
                  self.stmt_lea_deref, self.stmt_narrow,
                  self.stmt_spill, self.stmt_meta, self.stmt_sbrk,
                  self.stmt_print, self.stmt_call]
        for _ in range(n):
            roll = self.rng.random()
            if depth < 2 and loops and roll < 0.18:
                self.stmt_loop(depth)
            elif depth < 3 and roll < 0.30:
                self.stmt_if(depth)
            else:
                self.rng.choice(simple)()

    def helper_body(self, name: str) -> None:
        self.e.label(name)
        for _ in range(self.rng.randrange(2, 7)):
            self.rng.choice((self.stmt_alu3, self.stmt_shift,
                             self.stmt_mem, self.stmt_mov,
                             self.stmt_divmod, self.stmt_print))()
        self.e.op("ret")

    def generate(self, seed: int, stmts: int,
                 trap_finale: bool) -> str:
        e = self.e
        e.lines.append("; repro.fuzz isa program (seed=%d)" % seed)
        e.label("main")
        e.op("mov r11, %d" % self.fuel)
        for i, reg in enumerate(_SCRATCH):
            e.op("mov %s, %d" % (reg, self.rng.randrange(-99, 100)))
        e.op("mov r6, 0")
        e.op("mov r7, 0")
        # stack buffer
        e.op("sub sp, sp, %d" % BUF)
        e.op("mov r8, sp")
        e.op("setbound r8, r8, %d" % BUF)
        # global buffer
        e.op("mov r9, =gbuf")
        e.op("setbound r9, r9, %d" % BUF)
        # heap buffer
        e.op("mov r5, %d" % BUF)
        e.op("sbrk r5")
        e.op("setbound r10, r5, %d" % BUF)
        # deterministic nonzero seed data (statically bounded loop)
        e.op("mov r12, %d" % (BUF // 8))
        e.op("mov r7, 0")
        e.label("Linit")
        e.op("store [r10 + r7*4], r12")
        e.op("store [r9 + r7*4], r7")
        e.op("store [r8 + r7*4], r7")
        e.op("add r7, r7, 1")
        e.op("sub r12, r12, 1")
        e.op("bnez r12, Linit")

        # helper functions are declared up front so calls can target
        # them; bodies are appended after the exit block
        for i in range(self.rng.randrange(0, 3)):
            self.helpers.append("fn_%d" % i)

        self.block(stmts, depth=0)

        if trap_finale:
            # one past the bound: BoundsError under HardBound modes,
            # a benign in-arena read under the plain core — either
            # way every engine must agree exactly
            e.op("load r6, [r10 + %d]" % BUF)

        e.label(self.exit_label)
        e.op("print r1")
        e.op("and r1, r1, 255")
        e.op("halt r1")
        body_mark = len(e.lines)
        for fn in self.helpers:
            self.helper_body(fn)
        # helpers that ended up uncalled are still fine (dead code)
        del body_mark
        e.lines.append("    .data")
        e.lines.append("gbuf: .space %d" % BUF)
        return "\n".join(e.lines) + "\n"


def generate_isa_program(seed: int, stmts: Optional[int] = None,
                         fuel: int = DEFAULT_FUEL) -> str:
    """Generate one deterministic random assembly program.

    ``REPRO_FUZZ_SEED`` overrides ``seed`` (reproduction contract);
    the effective seed is stamped into the program's header comment.
    """
    rng, seed = fuzz_rng(seed)
    if stmts is None:
        stmts = rng.randrange(6, 18)
    trap_finale = rng.random() < 0.15
    return _Gen(rng, fuel).generate(seed, stmts, trap_finale)
