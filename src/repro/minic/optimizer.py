"""Conservative peephole optimizer over emitted assembler text.

The MiniC code generator is a straightforward stack machine: every
expression leaf materializes through ``mov``, every local round-trips
through its frame slot, and every ``return`` jumps to a label that is
usually the next line.  This pass cleans up exactly those patterns —
textually, on the generated assembler — in the shape of the Mini32
compiler's post-pass:

* **immediate substitution** — ``mov rT, imm`` feeding an ALU op as
  its right operand becomes the op's immediate form, and the ``mov``
  dies when ``rT`` is overwritten before any later read;
* **constant folding** — ``mov rX, a`` + ``op rX, rX, b`` collapses
  to ``mov rX, fold(op, a, b)`` (``div``/``mod`` are exempt: folding
  may not erase a divide-by-zero trap);
* **store→load forwarding** — a word load from the address just
  stored to becomes a register ``mov`` (or disappears when it targets
  the stored register); word-word only, sub-word loads re-extend;
* **dead code** — ``jmp`` to the next line, instructions between an
  unconditional transfer and the next label, ``add/sub rX, rX, 0``
  and ``mov rX, rX``;
* **branch chaining** — a branch whose target label starts with
  ``jmp L`` retargets to ``L`` (cycle-safe).

Safety is by construction, not analysis depth:

* Every rewrite preserves the machine's *observable* results — exit
  code, output, trap class and final ``[0, brk)`` memory — across
  all four engines; ``tests/minic/test_optimizer.py`` holds the
  randomized differential that enforces it.  Cycle/µop/cache
  counters legitimately differ: the optimized binary is a different
  (shorter) program.
* Immediate forms are exact replacements: every ``op rd, rs, imm``
  decoder reproduces the register form's semantics bit-for-bit
  (including HardBound metadata flow — an immediate ``mov`` carries
  empty bounds, which is what the register operand held).
* Folding never crosses a label or control transfer, and any opcode
  this module does not recognize is an optimization barrier.
* A forwarded load cannot change trapping: the adjacent store to the
  same effective address (same base register and displacement, word
  size) either already trapped or proved the access legal for both
  directions.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.layout import MASK32, to_signed

#: ALU mnemonics with an immediate right-operand form whose decoded
#: semantics (value and metadata) exactly mirror the register form.
_IMM_OPS = frozenset({
    "add", "sub", "mul", "div", "mod", "and", "or", "xor",
    "shl", "shr", "sra", "seq", "sne", "slt", "sgt", "sle", "sge",
})

#: subset that is safe to fold to a constant at compile time
#: (``div``/``mod`` stay runtime ops so a zero divisor still traps
#: at the original instruction).
_FOLD_OPS = {
    "add": lambda a, b: (a + b) & MASK32,
    "sub": lambda a, b: (a - b) & MASK32,
    "mul": lambda a, b: (to_signed(a) * to_signed(b)) & MASK32,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: (a << (b & 31)) & MASK32,
    "shr": lambda a, b: (a & MASK32) >> (b & 31),
    "sra": lambda a, b: (to_signed(a) >> (b & 31)) & MASK32,
    "seq": lambda a, b: 1 if a == b else 0,
    "sne": lambda a, b: 1 if a != b else 0,
    "slt": lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    "sgt": lambda a, b: 1 if to_signed(a) > to_signed(b) else 0,
    "sle": lambda a, b: 1 if to_signed(a) <= to_signed(b) else 0,
    "sge": lambda a, b: 1 if to_signed(a) >= to_signed(b) else 0,
}

#: opcodes that unconditionally leave the instruction: anything after
#: them up to the next label is unreachable
_TRANSFERS = frozenset({"jmp", "ret", "halt", "abort"})

#: opcodes ending a peephole window (control may leave or arrive)
_BLOCK_ENDS = _TRANSFERS | {"beqz", "bnez", "call", "callr"}

_REG = re.compile(r"\br(\d+)\b|\b(sp|fp|ra)\b")
_INT = re.compile(r"^-?\d+$")


class _Line:
    """One parsed assembler line.

    ``kind`` is ``"label"``, ``"instr"`` or ``"other"`` (directives,
    blanks, data).  Instructions keep their mnemonic and the operand
    field split on top-level commas; ``text`` always reproduces the
    emitted form.
    """

    __slots__ = ("kind", "op", "args", "label", "text")

    def __init__(self, raw: str):
        self.text = raw
        stripped = raw.strip()
        self.op = ""
        self.args: List[str] = []
        self.label = ""
        if stripped.endswith(":") and " " not in stripped:
            # dot-prefixed local labels (".L3:", ".ret_main:") must
            # classify as labels, not directives
            self.kind = "label"
            self.label = stripped[:-1]
        elif not stripped or stripped.startswith((".", "#", ";")) \
                or stripped.split()[0].endswith(":"):
            # directives, comments, and label-prefixed data lines
            # (``gv_x: .word 0``, ``str_0: .asciiz "..."``)
            self.kind = "other"
        else:
            self.kind = "instr"
            head, _, rest = stripped.partition(" ")
            self.op = head
            if rest:
                self.args = [a.strip() for a in rest.split(",")]

    def render(self) -> str:
        if self.kind != "instr":
            return self.text
        if not self.args:
            return "    " + self.op
        return "    %s %s" % (self.op, ", ".join(self.args))


def _regs(text: str) -> frozenset:
    """All register names appearing in an operand string."""
    found = []
    for m in _REG.finditer(text):
        found.append("r" + m.group(1) if m.group(1) else m.group(2))
    return frozenset(found)


def _reads_writes(line: _Line) -> Optional[Tuple[frozenset, frozenset]]:
    """``(reads, writes)`` register sets, or ``None`` for an opcode
    this pass does not model (treated as a full barrier)."""
    op, args = line.op, line.args
    if op in ("mov", "neg", "not", "setbound") or op in _IMM_OPS:
        reads = frozenset().union(*(_regs(a) for a in args[1:])) \
            if len(args) > 1 else frozenset()
        return reads, _regs(args[0])
    if op in ("load", "loadb", "loadh"):
        return _regs(args[1]), _regs(args[0])
    if op in ("store", "storeb", "storeh"):
        return _regs(args[0]) | _regs(args[1]), frozenset()
    if op in ("print", "printc", "halt", "markfree"):
        return _regs(args[0]) if args else frozenset(), frozenset()
    if op == "push":
        return _regs(args[0]) | {"sp"}, frozenset({"sp"})
    if op == "pop":
        return frozenset({"sp"}), _regs(args[0]) | {"sp"}
    if op in ("beqz", "bnez"):
        return _regs(args[0]), frozenset()
    if op in ("jmp", "ret", "abort", "call", "callr"):
        # block enders; liveness scans never cross them
        return frozenset(), frozenset()
    if op == "setcode":
        return frozenset(), _regs(args[0])
    return None


def _dead_after(lines: List[_Line], start: int, reg: str) -> bool:
    """True when ``reg`` is overwritten before any read, without an
    intervening label/branch/unknown op.  Conservative: reaching a
    window end means live."""
    for line in lines[start:]:
        if line.kind == "other":
            continue
        if line.kind == "label" or line.op in _BLOCK_ENDS:
            return False
        rw = _reads_writes(line)
        if rw is None:
            return False
        reads, writes = rw
        if reg in reads:
            return False
        if reg in writes:
            return True
    return False


def _mov_imm(line: _Line) -> Optional[int]:
    """The immediate of a ``mov rX, <int>`` line, else ``None``."""
    if line.op == "mov" and len(line.args) == 2 \
            and _INT.match(line.args[1]):
        return int(line.args[1])
    return None


def _next_instr(lines: List[_Line], i: int,
                same_block: bool = True) -> int:
    """Index of the next instruction after ``i`` (skipping blanks),
    or ``-1``; with ``same_block`` a label stops the scan."""
    for j in range(i + 1, len(lines)):
        kind = lines[j].kind
        if kind == "instr":
            return j
        if kind == "label" and same_block:
            return -1
    return -1


def _collapse_branches(lines: List[_Line],
                       labels: Dict[str, int]) -> bool:
    """Retarget ``jmp``/``beqz``/``bnez`` through ``jmp``-only labels
    and drop jumps to the immediately following line."""
    changed = False
    doomed: List[int] = []
    for i, line in enumerate(lines):
        if line.kind != "instr" or line.op not in ("jmp", "beqz",
                                                   "bnez"):
            continue
        target = line.args[-1]
        seen = set()
        while target in labels and target not in seen:
            seen.add(target)
            j = _next_instr(lines, labels[target], same_block=False)
            if j < 0 or lines[j].op != "jmp":
                break
            target = lines[j].args[0]
        if target != line.args[-1]:
            line.args[-1] = target
            changed = True
        if line.op == "jmp":
            # falls straight through to its own target?
            for j in range(i + 1, len(lines)):
                nxt = lines[j]
                if nxt.kind == "other":
                    continue
                if nxt.kind == "label":
                    if nxt.label == line.args[0]:
                        doomed.append(i)
                    else:
                        continue
                break
    for i in reversed(doomed):
        del lines[i]
    return changed or bool(doomed)


def _drop_unreachable(lines: List[_Line]) -> bool:
    """Delete instructions between an unconditional transfer and the
    next label."""
    doomed: List[int] = []
    dead = False
    for i, line in enumerate(lines):
        if line.kind == "label":
            dead = False
        elif line.kind == "instr":
            if dead:
                doomed.append(i)
            elif line.op in _TRANSFERS:
                dead = True
    for i in reversed(doomed):
        del lines[i]
    return bool(doomed)


def _peephole(lines: List[_Line]) -> bool:
    """One sweep of the adjacent-pair rewrites; True when changed.

    Local rewrites resume one instruction back so cascades (constant
    chains, freshly created ``mov``s) settle within the sweep.
    """
    changed = False
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.kind != "instr":
            i += 1
            continue
        op, args = line.op, line.args

        # mov rX, rX / add|sub rX, rX, 0: complete no-ops (the
        # immediate forms propagate rX's own metadata unchanged)
        if (op == "mov" and len(args) == 2 and args[0] == args[1]) \
                or (op in ("add", "sub") and len(args) == 3
                    and args[0] == args[1] and args[2] == "0"):
            del lines[i]
            changed = True
            i = max(i - 1, 0)
            continue

        j = _next_instr(lines, i)
        if j < 0:
            i += 1
            continue
        nxt = lines[j]

        imm = _mov_imm(line)
        if imm is not None:
            dst = args[0]
            # constant folding: mov rX, a ; op rX, rX, b
            if nxt.op in _FOLD_OPS and len(nxt.args) == 3 \
                    and nxt.args[0] == dst and nxt.args[1] == dst \
                    and _INT.match(nxt.args[2]):
                folded = _FOLD_OPS[nxt.op](imm & MASK32,
                                           int(nxt.args[2]) & MASK32)
                line.args = [dst, str(to_signed(folded))]
                del lines[j]
                changed = True
                i = max(i - 1, 0)
                continue
            # immediate substitution: mov rT, imm ; op rD, rS, rT
            # (the mov dies when rT is provably overwritten first —
            # the scan starts at the op itself, which no longer
            # reads rT after the substitution)
            if nxt.op in _IMM_OPS and len(nxt.args) == 3 \
                    and nxt.args[2] == dst and nxt.args[1] != dst:
                nxt.args[2] = str(to_signed(imm & MASK32))
                if _dead_after(lines, j, dst):
                    del lines[i]
                changed = True
                i = max(i - 1, 0)
                continue

        # store [X], rA ; load rB, [X]  (word-size both ways)
        if op == "store" and nxt.op == "load" \
                and nxt.args[1] == args[0]:
            src = args[1]
            dst = nxt.args[0]
            if not (_regs(args[0]) & _regs(dst)):
                if dst == src:
                    del lines[j]
                else:
                    nxt.op = "mov"
                    nxt.args = [dst, src]
                changed = True
                i = max(i - 1, 0)
                continue

        # load rA, [X] ; load rB, [X]  (second read forwards)
        if op == "load" and nxt.op == "load" \
                and nxt.args[1] == args[1] \
                and not (_regs(args[1]) & _regs(args[0])):
            if nxt.args[0] == args[0]:
                del lines[j]
            else:
                nxt.op = "mov"
                nxt.args = [nxt.args[0], args[0]]
            changed = True
            i = max(i - 1, 0)
            continue

        i += 1
    return changed


def optimize_asm(asm: str) -> str:
    """Run the peephole pipeline over assembler text to fixpoint."""
    lines = [_Line(raw) for raw in asm.splitlines()]
    for _ in range(100):
        labels = {line.label: i for i, line in enumerate(lines)
                  if line.kind == "label"}
        changed = _collapse_branches(lines, labels)
        changed |= _drop_unreachable(lines)
        changed |= _peephole(lines)
        if not changed:
            break
    return "\n".join(line.render() for line in lines) + "\n"
