"""Differential fuzzing at scale (the ROADMAP's crown-jewel item).

The four-way engine-equivalence contract — legacy / decoded / blocks /
superblocks, under both the functional and the timed memory model —
is this repo's strongest correctness property.  This package
weaponizes it:

* :mod:`repro.fuzz.isagen` — random well-formed assembly over the
  full instruction registry (ALU, branches, call/ret, sub-word
  load/store, ``setbound``/``sbrk``, bounded loops, fuel-guaranteed
  termination);
* :mod:`repro.fuzz.minicgen` — random typed, pointer-heavy MiniC
  source, so the compiler and its peephole optimizer are fuzzed too;
* :mod:`repro.fuzz.oracle` — runs one program through all four
  engines × both memory models (× ``optimize`` on/off for MiniC) and
  diffs everything observable;
* :mod:`repro.fuzz.attacks` — randomized violation corpus (sub-object,
  intra-allocation and temporal attacks HardBound must trap);
* :mod:`repro.fuzz.minimize` — delta-debugging shrinker that reduces
  a divergent program to a committable regression test;
* :mod:`repro.fuzz.cli` — ``python -m repro.fuzz``: seed-range
  sharded fuzzing over harness worker processes with JSONL results
  through the obs event log.

Every randomized entry point threads its seed through
:func:`repro.fuzz.rng.fuzz_rng`, so any failure reproduces with
``REPRO_FUZZ_SEED=<seed>``.
"""

from repro.fuzz.rng import FUZZ_SEED_ENV, fuzz_rng, resolve_seed
from repro.fuzz.oracle import (
    Divergence,
    Outcome,
    diff_engines,
    diff_minic,
    fuzz_one,
    run_once,
)
from repro.fuzz.isagen import generate_isa_program
from repro.fuzz.minicgen import generate_minic_program

__all__ = [
    "FUZZ_SEED_ENV",
    "Divergence",
    "Outcome",
    "diff_engines",
    "diff_minic",
    "fuzz_one",
    "fuzz_rng",
    "generate_isa_program",
    "generate_minic_program",
    "resolve_seed",
    "run_once",
]
