"""Static validation of linked programs.

A lightweight verifier run over assembler/codegen output in tests:
catches malformed instructions (bad register indices, missing
operands, unresolved branch targets) before they turn into confusing
runtime faults.  Deliberately strict — codegen bugs should fail here,
loudly.
"""

from __future__ import annotations

from typing import List

from repro.isa.instructions import Instruction
from repro.isa.opcodes import NUM_REGS, Op
from repro.isa.program import Program

#: operand requirements: op -> (needs_rd, needs_rs, rt_or_imm)
_THREE_OP = {
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
    Op.SHL, Op.SHR, Op.SRA, Op.SEQ, Op.SNE, Op.SLT, Op.SLE, Op.SGT,
    Op.SGE, Op.SLTU, Op.SGEU, Op.SETBOUND,
}
_TWO_OP = {
    Op.NEG, Op.NOT, Op.XCHG, Op.READBASE, Op.READBOUND, Op.SETUNSAFE,
    Op.CLRBND,
}
_BRANCHES = {Op.JMP, Op.BEQZ, Op.BNEZ, Op.CALL}


class ValidationError(Exception):
    """A structurally invalid instruction or program."""

    def __init__(self, pc: int, instr: Instruction, message: str):
        # note: malformed instructions may not disassemble, so the
        # message uses the bare opcode
        super().__init__("pc %d (%s): %s" % (pc, instr.op.value,
                                             message))
        self.pc = pc


def _check_reg(pc: int, instr: Instruction, field: str,
               required: bool) -> None:
    value = getattr(instr, field)
    if value is None:
        if required:
            raise ValidationError(pc, instr, "missing %s" % field)
        return
    if not (isinstance(value, int) and 0 <= value < NUM_REGS):
        raise ValidationError(pc, instr, "bad %s register %r"
                              % (field, value))


def validate_instruction(pc: int, instr: Instruction,
                         code_len: int) -> None:
    """Raise :class:`ValidationError` on a malformed instruction."""
    op = instr.op
    if op in _THREE_OP:
        _check_reg(pc, instr, "rd", required=True)
        _check_reg(pc, instr, "rs", required=True)
        if instr.rt is None and instr.imm is None:
            raise ValidationError(pc, instr, "needs rt or imm")
        _check_reg(pc, instr, "rt", required=False)
    elif op in _TWO_OP:
        _check_reg(pc, instr, "rd", required=True)
        _check_reg(pc, instr, "rs", required=True)
    elif op is Op.MOV:
        _check_reg(pc, instr, "rd", required=True)
        if instr.rs is None and instr.imm is None:
            raise ValidationError(pc, instr, "mov needs rs or imm")
        _check_reg(pc, instr, "rs", required=False)
    elif op in (Op.LOAD, Op.STORE, Op.LEA):
        _check_reg(pc, instr, "rd", required=True)
        _check_reg(pc, instr, "rs", required=False)
        _check_reg(pc, instr, "rt", required=False)
        if op is not Op.LEA and instr.size not in (1, 2, 4):
            raise ValidationError(pc, instr, "bad access size %r"
                                  % (instr.size,))
        if instr.scale not in (1, 2, 4, 8):
            raise ValidationError(pc, instr, "bad scale %r"
                                  % (instr.scale,))
    elif op in _BRANCHES:
        if instr.target is None:
            raise ValidationError(pc, instr, "unresolved target")
        if not 0 <= instr.target < code_len:
            raise ValidationError(pc, instr, "target %d out of range"
                                  % instr.target)
        if op in (Op.BEQZ, Op.BNEZ):
            _check_reg(pc, instr, "rs", required=True)
    elif op is Op.SETCODE:
        _check_reg(pc, instr, "rd", required=True)
        if instr.rs is None and instr.imm is None:
            raise ValidationError(pc, instr, "setcode needs rs or imm")
    elif op is Op.MARKFREE:
        _check_reg(pc, instr, "rs", required=True)
        if instr.rt is None and instr.imm is None:
            raise ValidationError(pc, instr, "needs rt or imm")
    elif op in (Op.CALLR, Op.SBRK, Op.PRINT, Op.PRINTC, Op.PRINTS):
        _check_reg(pc, instr, "rs", required=True)
    elif op in (Op.RET, Op.HALT, Op.ABORT):
        pass
    else:  # pragma: no cover - exhaustiveness guard
        raise ValidationError(pc, instr, "unknown opcode")


def validate_program(program: Program) -> List[str]:
    """Validate every instruction; returns warnings (non-fatal).

    Raises :class:`ValidationError` on structural problems; returns a
    list of advisory warnings (currently: code falling off the end
    without halt/jump/ret).
    """
    code_len = len(program.instrs)
    if code_len == 0:
        raise ValidationError(0, Instruction(Op.HALT),
                              "empty program")
    for pc, instr in enumerate(program.instrs):
        validate_instruction(pc, instr, code_len)
    warnings = []
    last = program.instrs[-1]
    if last.op not in (Op.HALT, Op.ABORT, Op.RET, Op.JMP):
        warnings.append("control can fall off the end of the program")
    return warnings
