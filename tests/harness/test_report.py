"""The report CLI module (corpus path only; figures are benchmarked)."""

import io
import sys

from repro.harness import report


def test_report_corpus_prints_clean_summary(capsys):
    report.report_corpus()
    out = capsys.readouterr().out
    assert "288 pairs" in out
    assert "0 false positives" in out
    assert "MISSED" not in out


def test_main_rejects_unknown_topic(capsys):
    assert report.main(["report", "nonsense"]) == 2
    assert "Usage" in capsys.readouterr().out


def test_main_corpus_topic(capsys):
    assert report.main(["report", "corpus"]) == 0
    assert "288" in capsys.readouterr().out


def test_main_figures_topic_renders_all_tables(capsys, monkeypatch):
    from repro.harness.runner import run_benchmark_matrix

    matrix = run_benchmark_matrix(workloads=["treeadd"],
                                  with_baselines=True)
    monkeypatch.setattr(report, "run_benchmark_matrix",
                        lambda: matrix)
    assert report.main(["report", "figures"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5: runtime overhead breakdown" in out
    assert "Figure 6: extra distinct pages touched" in out
    assert "Figure 7: comparison vs software schemes" in out
    # a measured cell from the matrix round-trips into the output
    cell = "%.2f" % matrix["treeadd"].overhead("intern11")
    assert cell in out
