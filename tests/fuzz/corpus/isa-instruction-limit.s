; an unbounded loop under a tight instruction limit: the whole-trace
; charge would overrun the budget, so the superblock tier must
; demote to block dispatch and stop at the identical icount/pc
main:
    mov r1, 0
L:
    add r1, r1, 1
    jmp L
