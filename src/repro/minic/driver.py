"""Compilation driver: source text to linked Program (and execution)."""

from __future__ import annotations

from typing import Optional

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.machine.config import MachineConfig, SafetyMode
from repro.machine.cpu import CPU, RunResult
from repro.minic.codegen import InstrumentMode, generate
from repro.minic.optimizer import optimize_asm
from repro.minic.parser import parse
from repro.minic.sema import analyze
from repro.minic.stdlib import STDLIB_SOURCE


def compile_to_asm(source: str,
                   mode: InstrumentMode = InstrumentMode.HARDBOUND,
                   include_stdlib: bool = True,
                   optimize_static: bool = False,
                   optimize: bool = True) -> str:
    """Compile MiniC source to assembler text.

    ``optimize`` (default on) runs the textual peephole pass of
    :mod:`repro.minic.optimizer` over the generated assembler; it
    preserves observable results (output, traps, final memory) while
    shrinking the instruction stream.  ``optimize_static`` is the
    older AST-level constant folder; the two compose.
    """
    if include_stdlib:
        source = STDLIB_SOURCE + "\n" + source
    unit = analyze(parse(source))
    asm = generate(unit, mode, optimize_static)
    if optimize:
        asm = optimize_asm(asm)
    return asm


def compile_program(source: str,
                    mode: InstrumentMode = InstrumentMode.HARDBOUND,
                    include_stdlib: bool = True,
                    optimize_static: bool = False,
                    optimize: bool = True) -> Program:
    """Compile MiniC source to a linked :class:`Program`."""
    asm = compile_to_asm(source, mode, include_stdlib, optimize_static,
                         optimize)
    return assemble(asm)


def mode_for_config(config: MachineConfig) -> InstrumentMode:
    """The instrumentation matching a machine configuration.

    Full-safety HardBound runs need instrumented binaries; the plain
    baseline and the malloc-only legacy mode run binaries whose only
    instrumentation is inside ``malloc`` (kept by ``HARDBOUND`` mode;
    stripped entirely by ``NONE``).
    """
    if config.mode is SafetyMode.OFF:
        return InstrumentMode.NONE
    if config.mode is SafetyMode.MALLOC_ONLY:
        return InstrumentMode.HEAP_ONLY
    return InstrumentMode.HARDBOUND


def compile_and_run(source: str,
                    config: Optional[MachineConfig] = None,
                    mode: Optional[InstrumentMode] = None,
                    include_stdlib: bool = True,
                    optimize: bool = True) -> RunResult:
    """Compile and execute; returns the :class:`RunResult`.

    The instrumentation mode defaults to whatever matches the machine
    configuration (instrumented binaries for HardBound cores, plain
    binaries for the baseline core).
    """
    config = config or MachineConfig.hardbound(timing=False)
    if mode is None:
        mode = mode_for_config(config)
    program = compile_program(source, mode, include_stdlib,
                              optimize=optimize)
    return CPU(program, config).run()
