"""The buffered JSONL event log and the CPU's event stream."""

import json
import os

import pytest

from repro.harness.runner import run_workload
from repro.machine.config import MachineConfig
from repro.obs.events import EventLog, read_events, run_label, split_runs


class TestEventLog:
    def test_pathless_log_accumulates_in_memory(self):
        log = EventLog()
        log.emit("run_start", manifest={"engine": "blocks"})
        log.emit("run_end", cycles=7)
        assert [e["ev"] for e in log.events] == ["run_start",
                                                 "run_end"]
        # flushing a pathless log is a no-op that keeps the buffer
        log.flush()
        assert len(log.events) == 2

    def test_emit_many_extends_buffer(self):
        log = EventLog()
        log.emit_many([{"ev": "a"}, {"ev": "b"}])
        assert [e["ev"] for e in log.events] == ["a", "b"]

    def test_flush_appends_jsonl_and_clears_buffer(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        log = EventLog(path)
        log.emit("run_start", manifest={"label": "t"})
        log.emit("run_end", cycles=1)
        log.flush()
        assert log.events == []
        log.emit("run_start", manifest={"label": "u"})
        log.flush()
        lines = open(path).read().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0])["ev"] == "run_start"
        assert json.loads(lines[2])["manifest"]["label"] == "u"

    def test_flush_with_empty_buffer_creates_no_file(self, tmp_path):
        path = str(tmp_path / "none.jsonl")
        EventLog(path).flush()
        assert not os.path.exists(path)

    def test_non_json_values_are_stringified(self, tmp_path):
        path = str(tmp_path / "odd.jsonl")
        log = EventLog(path)
        log.emit("run_abort", error=ValueError("bad"))
        log.flush()
        [event] = list(read_events(path))
        assert "bad" in event["error"]


class TestReadEvents:
    def test_skips_malformed_and_blank_lines(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"ev": "run_start"}\n'
                        "\n"
                        "not json at all\n"
                        '{"ev": "run_end", "cycles": 3}\n'
                        '{"ev": "run_ab')  # torn final line
        events = list(read_events(str(path)))
        assert [e["ev"] for e in events] == ["run_start", "run_end"]


class TestSplitRuns:
    def test_groups_at_run_start(self):
        events = [{"ev": "run_start"}, {"ev": "run_end"},
                  {"ev": "run_start"}, {"ev": "trace_profile"},
                  {"ev": "run_end"}]
        runs = split_runs(events)
        assert [len(run) for run in runs] == [2, 3]

    def test_leading_events_form_their_own_group(self):
        events = [{"ev": "sweep_summary"}, {"ev": "run_start"},
                  {"ev": "run_end"}]
        runs = split_runs(events)
        assert len(runs) == 2
        assert runs[0] == [{"ev": "sweep_summary"}]

    def test_empty_stream(self):
        assert split_runs([]) == []


class TestRunLabel:
    def test_joins_label_engine_mode(self):
        run = [{"ev": "run_start",
                "manifest": {"label": "treeadd",
                             "engine": "superblocks",
                             "mode": "full"}}]
        assert run_label(run) == "treeadd/superblocks/full"

    def test_omits_empty_parts(self):
        run = [{"ev": "run_start",
                "manifest": {"engine": "blocks", "mode": ""}}]
        assert run_label(run) == "blocks"

    def test_no_run_start(self):
        assert run_label([{"ev": "sweep_summary"}]) == "events"


class TestCpuEventStream:
    """End-to-end: a real run records the documented vocabulary."""

    def test_superblocks_run_emits_profiles(self):
        log = EventLog()
        result = run_workload(
            "treeadd",
            MachineConfig.plain(timing=False, engine="superblocks",
                                obs_events=log))
        kinds = [e["ev"] for e in log.events]
        assert kinds[0] == "run_start"
        # engine teardown (profiles, demotions) flushes before the
        # CPU-level run_end closes the stream
        assert kinds[-1] == "run_end"
        assert "trace_formed" in kinds
        assert "trace_profile" in kinds
        assert "demotions" in kinds
        assert kinds.index("demotions") < kinds.index("run_end")

        start = log.events[0]
        assert start["manifest"] == result.manifest
        assert start["manifest"]["label"] == "treeadd"

        end = next(e for e in log.events if e["ev"] == "run_end")
        assert end["cycles"] == result.cycles
        assert end["instructions"] == result.instructions
        assert end["phases"] == result.phases
        assert end["engine_stats"] == result.engine_stats

        profiles = [e for e in log.events
                    if e["ev"] == "trace_profile"]
        stats = result.engine_stats
        assert len(profiles) == stats["traces_formed"]
        assert (sum(p["dispatches"] for p in profiles)
                == stats["trace_dispatches"])
        assert (sum(p["side_exits"] for p in profiles)
                == stats["side_exits"])
        for profile in profiles:
            assert profile["pc_lo"] <= profile["head"] <= profile["pc_hi"]
            assert profile["instrs"] >= profile["blocks"] >= 1

        side = [e for e in log.events
                if e["ev"] == "side_exit_profile"]
        assert (sum(e["count"] for e in side)
                == stats["side_exits"])

    def test_run_abort_event_carries_phases(self):
        log = EventLog()
        with pytest.raises(Exception):
            run_workload(
                "treeadd",
                MachineConfig.plain(timing=False,
                                    engine="superblocks",
                                    obs_events=log,
                                    max_instructions=1000))
        kinds = [e["ev"] for e in log.events]
        assert "run_abort" in kinds
        assert "run_end" not in kinds
        abort = next(e for e in log.events if e["ev"] == "run_abort")
        assert abort["instructions"] >= 0
        assert "execute" in abort["phases"]

    def test_path_string_makes_cpu_own_and_flush(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        run_workload("treeadd",
                     MachineConfig.plain(timing=False,
                                         engine="blocks",
                                         obs_events=path))
        events = list(read_events(path))
        assert events[0]["ev"] == "run_start"
        assert any(e["ev"] == "run_end" for e in events)

    def test_events_off_runs_identically(self):
        log = EventLog()
        plain = MachineConfig.plain(timing=False,
                                    engine="superblocks")
        traced = MachineConfig.plain(timing=False,
                                     engine="superblocks",
                                     obs_events=log)
        a = run_workload("treeadd", plain)
        b = run_workload("treeadd", traced)
        # architectural statistics must be bit-identical; trace
        # introspection is compared engine-to-engine elsewhere (it
        # legitimately differs run-to-run as the plan cache warms)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions
        assert a.uops == b.uops
        assert a.output == b.output
