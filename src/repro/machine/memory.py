"""Flat-bytearray data memory with mapping discipline.

Memory is byte addressable and little endian.  The three program
segments — globals, heap and stack — are each backed by one flat
``bytearray`` arena, addressed by subtracting the segment base; the
heap arena grows by capacity doubling on :meth:`sbrk`, so growth is
amortized O(1) and never moves the *object* the execution engines
bind (arenas are published through mutable cells, see
:attr:`heap_cell`).  Word accesses go through a ``memoryview`` cast
to native 32-bit words when the host is little endian, turning a
load into one index instead of a slice plus ``int.from_bytes``.

The mapping discipline models virtual-memory protection exactly as
the old paged store did: program accesses are legal only inside the
globals segment, the heap below the current program break, or the
stack reservation — everything else traps with the same
:class:`~repro.machine.errors.MemoryFault`.  The segment *checks*
double as the guard regions of the flat model: an address that
passes a check is by construction inside that segment's arena, so
no separate bounds test is needed on the arena index.

The shadow and tag metadata regions (and any other address outside
the three program segments) are written exclusively by the simulated
hardware through the ``raw_*`` entry points, which bypass the mapping
check; they stay on a sparse 4KB page fallback — they are cold,
enormous in address extent, and never on the execution fast path.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, Tuple

from repro.layout import (
    GLOBAL_BASE,
    HEAP_BASE,
    NULL_GUARD,
    PAGE_SHIFT,
    PAGE_SIZE,
    STACK_TOP,
)
from repro.machine.errors import MemoryFault

#: host can alias a bytearray as native little-endian 32-bit words
NATIVE_LE = sys.byteorder == "little"

#: initial heap arena capacity (doubles on demand)
_HEAP_SEED = 1 << 16


def _make_cell(base: int, capacity: int, reserve_end: int) -> list:
    """An arena cell: ``[bytearray, word-view, base, reserve_end]``.

    The cell is the unit the execution engines bind: growth replaces
    the cell *contents* in place, so closures holding the cell always
    see the current buffer.  ``word-view`` is a ``memoryview`` cast
    to 32-bit native words (``None`` on big-endian hosts, where the
    cast would not be little endian).  ``reserve_end`` bounds the
    arena's *address* ownership: capacity may carry a few alignment
    padding bytes past it, but accesses are routed by the reserved
    range, never by capacity.
    """
    capacity = (capacity + 7) & ~7
    buf = bytearray(capacity)
    word_view = (memoryview(buf).cast("I")
                 if NATIVE_LE and base % 4 == 0 else None)
    return [buf, word_view, base, reserve_end]


def _grow_cell(cell: list, need: int) -> None:
    """Grow a cell's arena to at least ``need`` bytes by doubling.

    The doubling is clamped to the cell's reserved range (plus
    alignment padding) so a growth near the segment boundary cannot
    allocate address space owned by the next segment.
    """
    buf = cell[0]
    capacity = len(buf)
    if need <= capacity:
        return
    new_cap = max(capacity, _HEAP_SEED)
    while new_cap < need:
        new_cap *= 2
    new_cap = min(new_cap, (cell[3] - cell[2] + 7) & ~7)
    new_buf = bytearray(new_cap)
    new_buf[:capacity] = buf
    if cell[1] is not None:
        cell[1].release()
    cell[0] = new_buf
    cell[1] = (memoryview(new_buf).cast("I")
               if NATIVE_LE and cell[2] % 4 == 0 else None)


class Memory:
    """Flat arena store plus segment bookkeeping.

    ``globals_limit`` and ``brk`` define the mapped extents of the
    data and heap segments; ``stack_base`` the bottom of the stack
    reservation.  :meth:`check_mapped` enforces them for program
    accesses (hardware metadata accesses use the ``raw_*`` entry
    points).

    Arena routing for raw access is by *reserved range*: the globals
    arena owns ``[GLOBAL_BASE, HEAP_BASE)``, the heap arena
    ``[HEAP_BASE, stack_base)`` and the stack arena
    ``[stack_base, STACK_TOP)``; addresses outside those ranges (the
    metadata spaces, the null-guard gap) fall back to sparse pages.
    Reads beyond an arena's current capacity return zeros, exactly as
    unmaterialized pages did; writes grow the arena on demand.
    """

    def __init__(self, stack_size: int):
        self.globals_limit = GLOBAL_BASE
        self.brk = HEAP_BASE
        self.stack_base = STACK_TOP - stack_size
        #: arena cells ([buf, word-view, base, reserve_end]); the
        #: execution engines bind these once and index through them
        #: on every access
        self.globals_cell = _make_cell(GLOBAL_BASE, 0, HEAP_BASE)
        self.heap_cell = _make_cell(HEAP_BASE, _HEAP_SEED,
                                    self.stack_base)
        self.stack_cell = _make_cell(self.stack_base, stack_size,
                                     STACK_TOP)
        #: sparse fallback for everything outside the program segments
        self._pages: Dict[int, bytearray] = {}

    # -- segment management ------------------------------------------------

    def load_image(self, image: bytes, extra_bss: int = 0) -> None:
        """Copy the program's data image to ``GLOBAL_BASE``."""
        limit = GLOBAL_BASE + len(image) + extra_bss
        _grow_cell(self.globals_cell, limit - GLOBAL_BASE)
        self.globals_cell[0][:len(image)] = image
        self.globals_limit = limit

    def sbrk(self, increment: int) -> int:
        """Grow (or query, with 0) the heap; returns the old break.

        Growth is amortized O(1): the heap arena doubles its capacity
        whenever the new break outruns it, and shrinking the break
        keeps both the capacity and the bytes (so re-growing exposes
        the old contents again, like the paged store's persistent
        pages).  Unlike the paged store, the break extent is backed
        densely — a huge sparse reservation costs real memory — and
        the heap may not grow into the stack reservation: the paged
        store silently aliased the two segments onto one page store
        there, which the split arenas cannot reproduce, so crossing
        ``stack_base`` traps instead (every engine funnels through
        this method, keeping them trap-identical).
        """
        old = self.brk
        new = self.brk + increment
        if new > self.stack_base:
            raise MemoryFault(new, "sbrk")
        self.brk = new
        if new > HEAP_BASE + len(self.heap_cell[0]):
            _grow_cell(self.heap_cell, new - HEAP_BASE)
        return old

    def check_mapped(self, addr: int, size: int, access: str) -> None:
        """Trap unless [addr, addr+size) lies in a mapped segment."""
        end = addr + size
        if GLOBAL_BASE <= addr and end <= self.globals_limit:
            return
        if HEAP_BASE <= addr and end <= self.brk:
            return
        if self.stack_base <= addr and end <= STACK_TOP:
            return
        raise MemoryFault(addr, access)

    # -- raw byte access (no mapping checks) ----------------------------------

    def _route(self, addr: int):
        """Arena cell owning ``addr``'s reserved range, or ``None``."""
        if HEAP_BASE <= addr < self.stack_base:
            return self.heap_cell
        if GLOBAL_BASE <= addr < HEAP_BASE:
            return self.globals_cell
        if self.stack_base <= addr < STACK_TOP:
            return self.stack_cell
        return None

    def _page(self, page_no: int) -> bytearray:
        page = self._pages.get(page_no)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_no] = page
        return page

    def raw_read(self, addr: int, size: int) -> int:
        """Little-endian unsigned read of 1/2/4 bytes."""
        cell = self._route(addr)
        if cell is not None:
            off = addr - cell[2]
            buf = cell[0]
            # both bounds matter: capacity (alignment padding may
            # exceed the reserved range) and the reserved range
            # itself (the tail bytes may belong to the next segment)
            if off + size <= len(buf) and addr + size <= cell[3]:
                return int.from_bytes(buf[off:off + size], "little")
            return int.from_bytes(self.raw_read_bytes(addr, size),
                                  "little")
        off = addr & (PAGE_SIZE - 1)
        if off + size <= PAGE_SIZE:
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                return 0
            return int.from_bytes(page[off:off + size], "little")
        return int.from_bytes(self.raw_read_bytes(addr, size), "little")

    def raw_write(self, addr: int, size: int, value: int) -> None:
        """Little-endian write of the low ``size`` bytes of ``value``."""
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        self.raw_write_bytes(addr, data)

    def raw_read_bytes(self, addr: int, length: int) -> bytes:
        """Read an arbitrary byte range (may span arenas/pages)."""
        out = bytearray()
        while length:
            cell = self._route(addr)
            if cell is not None:
                buf = cell[0]
                off = addr - cell[2]
                # clamp to this arena's reserved range
                chunk = min(length, cell[3] - addr)
                have = max(0, min(chunk, len(buf) - off))
                if have:
                    out += buf[off:off + have]
                if chunk - have:
                    out += bytes(chunk - have)
            else:
                off = addr & (PAGE_SIZE - 1)
                chunk = min(length, PAGE_SIZE - off)
                page = self._pages.get(addr >> PAGE_SHIFT)
                if page is None:
                    out += bytes(chunk)
                else:
                    out += page[off:off + chunk]
            addr += chunk
            length -= chunk
        return bytes(out)

    def raw_write_bytes(self, addr: int, data: bytes) -> None:
        """Write an arbitrary byte range (may span arenas/pages)."""
        pos = 0
        total = len(data)
        while pos < total:
            cell = self._route(addr)
            if cell is not None:
                chunk = min(total - pos, cell[3] - addr)
                off = addr - cell[2]
                _grow_cell(cell, off + chunk)
                cell[0][off:off + chunk] = data[pos:pos + chunk]
            else:
                off = addr & (PAGE_SIZE - 1)
                chunk = min(total - pos, PAGE_SIZE - off)
                self._page(addr >> PAGE_SHIFT)[off:off + chunk] = \
                    data[pos:pos + chunk]
            addr += chunk
            pos += chunk

    # -- checked program access --------------------------------------------

    def read(self, addr: int, size: int) -> int:
        """Program read with null-guard and mapping checks."""
        if addr < NULL_GUARD:
            raise MemoryFault(addr, "read")
        self.check_mapped(addr, size, "read")
        return self.raw_read(addr, size)

    def write(self, addr: int, size: int, value: int) -> None:
        """Program write with null-guard and mapping checks."""
        if addr < NULL_GUARD:
            raise MemoryFault(addr, "write")
        self.check_mapped(addr, size, "write")
        self.raw_write(addr, size, value)

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> str:
        """Read a NUL-terminated latin-1 string (debug helper)."""
        out = []
        for i in range(limit):
            byte = self.raw_read(addr + i, 1)
            if byte == 0:
                break
            out.append(chr(byte))
        return "".join(out)

    # -- introspection -------------------------------------------------------

    def mapped_pages(self) -> Iterable[int]:
        """Page numbers holding data so far (metadata pages included).

        With flat arenas, "mapped" means covered by an arena's current
        capacity or materialized in the sparse fallback.
        """
        pages = set(self._pages.keys())
        for cell in (self.globals_cell, self.heap_cell,
                     self.stack_cell):
            base = cell[2]
            end = min(base + len(cell[0]), cell[3])
            pages.update(range(base >> PAGE_SHIFT,
                               (end + PAGE_SIZE - 1) >> PAGE_SHIFT))
        return pages

    def nonzero_pages(self) -> Dict[int, bytes]:
        """Page-number -> bytes for every page holding non-zero data.

        Backing-store independent: the paged model and the flat model
        produce identical snapshots for identical write histories,
        which is what the engine differential suite compares.  Pages
        are read back through :meth:`raw_read_bytes`, so a page that
        straddles an arena boundary (or an arena and the sparse
        fallback — possible when ``stack_base`` is not page aligned)
        is assembled from every store that owns a piece of it.
        """
        candidates = set(self._pages.keys())
        for cell in (self.globals_cell, self.heap_cell,
                     self.stack_cell):
            base = cell[2]
            end = min(base + len(cell[0]), cell[3])
            candidates.update(range(base >> PAGE_SHIFT,
                                    (end + PAGE_SIZE - 1)
                                    >> PAGE_SHIFT))
        out: Dict[int, bytes] = {}
        for no in candidates:
            page = self.raw_read_bytes(no << PAGE_SHIFT, PAGE_SIZE)
            if any(page):
                out[no] = page
        return out

    def segments(self) -> Tuple[Tuple[int, int], ...]:
        """Mapped program segments as (start, end) pairs."""
        return ((GLOBAL_BASE, self.globals_limit),
                (HEAP_BASE, self.brk),
                (self.stack_base, STACK_TOP))
