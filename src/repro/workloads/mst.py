"""mst: minimum spanning tree with per-vertex hash tables (Olden).

Vertices form a linked list; edge weights live in per-vertex open
hash tables (chained buckets), exactly Olden's data layout.  Prim's
algorithm repeatedly scans the vertex list for the closest vertex and
relaxes distances through hash lookups.

Section 5.3 of the paper: mst takes pointers *into the middle of* the
bucket array and uses each as an exclusive element pointer; the
authors inserted three ``setbound`` tightenings.  ``SOURCE`` contains
the tightened program (as benchmarked in the paper); the
``UNTIGHTENED_SOURCE`` variant keeps the conservative whole-array
bounds for the E10 ablation.
"""

N_VERTICES = 24
#: 16 buckets -> the hash struct is 64 bytes, as in Olden (whose
#: tables are larger still): compressible only by the 11-bit scheme.
HASH_SIZE = 16

_TEMPLATE = """
struct hash_entry {
    int key;
    int value;
    struct hash_entry *next;
};

struct hash {
    struct hash_entry *bucket[%(hsize)d];
};

struct vertex {
    struct vertex *next;
    struct hash *edges;
    int mindist;
    int id;
};

int edge_weight(int a, int b) {
    int h = a * 73856093 ^ b * 19349663;
    if (h < 0) { h = -h; }
    return (h %% 2048) + 1;
}

void hash_put(struct hash *h, int key, int value) {
    struct hash_entry *e = (struct hash_entry*)
        malloc(sizeof(struct hash_entry));
    struct hash_entry **slot;
    e->key = key;
    e->value = value;
    %(bucket_ptr_put)s
    e->next = *slot;
    *slot = e;
}

int hash_get(struct hash *h, int key) {
    struct hash_entry **slot;
    struct hash_entry *e;
    %(bucket_ptr_get)s
    e = *slot;
    while (e) {
        if (e->key == key) { return e->value; }
        e = e->next;
    }
    return -1;
}

struct vertex *make_graph(int n) {
    struct vertex *head = (struct vertex*)0;
    for (int i = n - 1; i >= 0; i--) {
        struct vertex *v = (struct vertex*)malloc(sizeof(struct vertex));
        struct hash *h = (struct hash*)malloc(sizeof(struct hash));
        v->id = i;
        v->mindist = 1 << 20;
        v->edges = h;
        for (int b = 0; b < %(hsize)d; b++) {
            struct hash_entry **slot;
            %(bucket_ptr_init)s
            *slot = (struct hash_entry*)0;
        }
        v->next = head;
        head = v;
    }
    for (struct vertex *v = head; v; v = v->next) {
        for (struct vertex *w = head; w; w = w->next) {
            if (v->id != w->id) {
                hash_put(v->edges, w->id, edge_weight(v->id, w->id));
            }
        }
    }
    return head;
}

int main() {
    struct vertex *graph = make_graph(%(n)d);
    int total = 0;
    int in_tree_id[%(n)d];
    int n_in_tree = 1;
    graph->mindist = 0;
    in_tree_id[0] = graph->id;
    struct vertex *last_added = graph;
    while (n_in_tree < %(n)d) {
        // relax distances through the newly added vertex
        for (struct vertex *v = graph; v; v = v->next) {
            if (v->mindist != -1 && v != last_added) {
                int w = hash_get(last_added->edges, v->id);
                if (w != -1 && w < v->mindist) { v->mindist = w; }
            }
        }
        last_added->mindist = -1;      // mark as inside the tree
        struct vertex *best = (struct vertex*)0;
        for (struct vertex *v = graph; v; v = v->next) {
            if (v->mindist != -1) {
                if (!best || v->mindist < best->mindist) { best = v; }
            }
        }
        total += best->mindist;
        in_tree_id[n_in_tree] = best->id;
        n_in_tree++;
        last_added = best;
    }
    print(total);
    print(n_in_tree);
    return 0;
}
"""

#: conservative: pointer keeps the whole bucket array's bounds
_CONSERVATIVE = {
    "bucket_ptr_put": "slot = &h->bucket[key & %d];" % (HASH_SIZE - 1),
    "bucket_ptr_get": "slot = &h->bucket[key & %d];" % (HASH_SIZE - 1),
    "bucket_ptr_init": "slot = &h->bucket[b];",
}

#: the paper's Section 5.3 change: tighten to the single element
_TIGHTENED = {
    key: ("slot = (struct hash_entry**)__setbound((void*)(%s), 4);"
          % text.split("= ", 1)[1].rstrip(";"))
    for key, text in _CONSERVATIVE.items()
}

_PARAMS = {"n": N_VERTICES, "hsize": HASH_SIZE}

SOURCE = _TEMPLATE % dict(_PARAMS, **_TIGHTENED)
UNTIGHTENED_SOURCE = _TEMPLATE % dict(_PARAMS, **_CONSERVATIVE)
