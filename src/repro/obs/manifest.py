"""Run manifests: the exact configuration behind every number.

A manifest is a small JSON-safe dict attached to every
:class:`~repro.machine.cpu.RunResult` (``result.manifest``) and
emitted as the ``run_start`` event of an obs JSONL.  It answers the
question a perf archaeologist asks first: *what exactly ran* —
engine, safety mode, encoding, every trace knob, the full cache
geometry, the source tree's git sha and the host that executed it.

Host and git identity are computed once per process (the git sha by
reading ``.git/HEAD`` directly — no subprocess — so building a
manifest stays in the microsecond range and sweeps of thousands of
cells can afford one per cell).
"""

from __future__ import annotations

import dataclasses
import os
import platform
import sys
from typing import Optional

_static: Optional[dict] = None


def _read_git_sha() -> Optional[str]:
    """The checked-out commit, or ``None`` outside a git tree.

    Walks up from this file looking for ``.git/HEAD`` and resolves
    one level of symbolic ref.  Never raises.
    """
    try:
        directory = os.path.dirname(os.path.abspath(__file__))
        for _ in range(8):
            head = os.path.join(directory, ".git", "HEAD")
            if os.path.isfile(head):
                with open(head) as fh:
                    ref = fh.read().strip()
                if not ref.startswith("ref:"):
                    return ref[:12] or None
                ref_path = os.path.join(directory, ".git",
                                        ref[4:].strip())
                if os.path.isfile(ref_path):
                    with open(ref_path) as fh:
                        return fh.read().strip()[:12] or None
                return None
            parent = os.path.dirname(directory)
            if parent == directory:
                break
            directory = parent
    except OSError:
        pass
    return None


def _static_identity() -> dict:
    """Process-constant manifest fields, computed once."""
    global _static
    if _static is None:
        _static = {
            "git_sha": _read_git_sha(),
            "host": platform.node(),
            "platform": platform.platform(),
            "python": "%d.%d.%d" % sys.version_info[:3],
        }
    return _static


def run_manifest(config, cache_params=None, label: str = "") -> dict:
    """Build the manifest for one run.

    ``config`` is a :class:`~repro.machine.config.MachineConfig`
    (duck-typed to keep this module import-light); ``cache_params``
    the :class:`~repro.caches.hierarchy.CacheParams` of the run's
    memory system, or ``None`` for functional runs.
    """
    mode = getattr(config.mode, "value", config.mode)
    factory = config.engine_factory
    manifest = {
        "label": label or getattr(config, "obs_label", ""),
        "engine": config.engine,
        "mode": str(mode),
        "encoding": config.encoding,
        "timing": config.timing,
        "check_uop": config.check_uop,
        "check_access_extent": config.check_access_extent,
        "temporal": config.temporal,
        "superblock_threshold": config.superblock_threshold,
        "superblock_max_blocks": config.superblock_max_blocks,
        "superblock_call_depth": config.superblock_call_depth,
        "max_instructions": config.max_instructions,
        "engine_factory": (getattr(factory, "__name__",
                                   type(factory).__name__)
                           if factory is not None else None),
        "cache_geometry": (dataclasses.asdict(cache_params)
                           if cache_params is not None else None),
    }
    manifest.update(_static_identity())
    return manifest
