"""MiniC abstract syntax tree.

Nodes carry their source line for diagnostics.  The semantic analyzer
annotates expressions with ``ty`` (a :mod:`repro.minic.types` type)
and lvalue-ness; codegen reads only annotated trees.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class Node:
    """Base AST node."""

    __slots__ = ("line",)

    def __init__(self, line: int):
        self.line = line


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------

class Expr(Node):
    """Base expression; ``ty`` / ``is_lvalue`` filled by sema."""

    __slots__ = ("ty", "is_lvalue")

    def __init__(self, line: int):
        super().__init__(line)
        self.ty = None
        self.is_lvalue = False


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int):
        super().__init__(line)
        self.value = value


class CharLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int):
        super().__init__(line)
        self.value = value


class StrLit(Expr):
    __slots__ = ("value", "symbol")

    def __init__(self, value: str, line: int):
        super().__init__(line)
        self.value = value
        self.symbol = None  # assigned by codegen


class Ident(Expr):
    __slots__ = ("name", "symbol")

    def __init__(self, name: str, line: int):
        super().__init__(line)
        self.name = name
        self.symbol = None  # resolved by sema


class Unary(Expr):
    """Prefix: ``- ~ ! * & ++ --`` (ops '*' = deref, '&' = addr-of)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Postfix(Expr):
    """Postfix ``++``/``--``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Assign(Expr):
    """``lhs op rhs`` where op is '=', '+=', '-=', ... ."""

    __slots__ = ("op", "target", "value")

    def __init__(self, op: str, target: Expr, value: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.target = target
        self.value = value


class Cond(Expr):
    """Ternary ``c ? t : f``."""

    __slots__ = ("cond", "then", "els")

    def __init__(self, cond: Expr, then: Expr, els: Expr, line: int):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.els = els


class Call(Expr):
    __slots__ = ("name", "args", "symbol")

    def __init__(self, name: str, args: List[Expr], line: int):
        super().__init__(line)
        self.name = name
        self.args = args
        self.symbol = None


class Index(Expr):
    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, line: int):
        super().__init__(line)
        self.base = base
        self.index = index


class Member(Expr):
    """``base.name`` or ``base->name`` (arrow=True)."""

    __slots__ = ("base", "name", "arrow", "field")

    def __init__(self, base: Expr, name: str, arrow: bool, line: int):
        super().__init__(line)
        self.base = base
        self.name = name
        self.arrow = arrow
        self.field = None  # resolved StructField


class Cast(Expr):
    __slots__ = ("target_type", "operand")

    def __init__(self, target_type, operand: Expr, line: int):
        super().__init__(line)
        self.target_type = target_type
        self.operand = operand


class SizeofType(Expr):
    __slots__ = ("target_type",)

    def __init__(self, target_type, line: int):
        super().__init__(line)
        self.target_type = target_type


class SizeofExpr(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr, line: int):
        super().__init__(line)
        self.operand = operand


# -----------------------------------------------------------------------------
# statements
# -----------------------------------------------------------------------------

class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts: List[Stmt], line: int):
        super().__init__(line)
        self.stmts = stmts


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int):
        super().__init__(line)
        self.expr = expr


class If(Stmt):
    __slots__ = ("cond", "then", "els")

    def __init__(self, cond: Expr, then: Stmt, els: Optional[Stmt],
                 line: int):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.els = els


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, line: int):
        super().__init__(line)
        self.cond = cond
        self.body = body


class For(Stmt):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body: Stmt, line: int):
        super().__init__(line)
        self.init = init      # Stmt or None (DeclStmt/ExprStmt)
        self.cond = cond      # Expr or None
        self.step = step      # Expr or None
        self.body = body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], line: int):
        super().__init__(line)
        self.value = value


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class DeclStmt(Stmt):
    """A local variable declaration (one declarator)."""

    __slots__ = ("decl",)

    def __init__(self, decl: "VarDecl", line: int):
        super().__init__(line)
        self.decl = decl


# --------------------------------------------------------------------------
# declarations
# --------------------------------------------------------------------------

class Decl(Node):
    __slots__ = ()


class VarDecl(Decl):
    """Variable declaration; ``symbol`` is filled by sema."""

    __slots__ = ("type", "name", "init", "symbol")

    def __init__(self, type_, name: str, init: Optional[Expr], line: int):
        super().__init__(line)
        self.type = type_
        self.name = name
        self.init = init
        self.symbol = None


class StructDecl(Decl):
    __slots__ = ("name", "members")

    def __init__(self, name: str, members: List[Tuple], line: int):
        super().__init__(line)
        self.name = name
        self.members = members  # [(Type, name)] after parsing


class FuncDecl(Decl):
    __slots__ = ("ret_type", "name", "params", "body", "symbol")

    def __init__(self, ret_type, name: str, params: List[Tuple],
                 body: Optional[Block], line: int):
        super().__init__(line)
        self.ret_type = ret_type
        self.name = name
        self.params = params  # [(Type, name)]
        self.body = body
        self.symbol = None


class TranslationUnit(Node):
    """Root node; ``structs`` is the parser's interned struct table."""

    __slots__ = ("decls", "structs")

    def __init__(self, decls: List[Decl], structs=None):
        super().__init__(1)
        self.decls = decls
        self.structs = structs or {}
