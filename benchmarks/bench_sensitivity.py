"""E13 (extension) — robustness of Figure 7 to baseline calibration.

The software baselines embed two modelled constants (DESIGN.md).
This sweep shows the headline comparison — HardBound cheaper than
both software schemes — holds across the entire plausible range of
those constants, not only at the calibrated point.
"""

from conftest import write_result

from repro.harness.figures import format_table
from repro.harness.sweeps import (
    hardbound_average,
    sweep_ccured_safe_fraction,
    sweep_objtable_elision,
    sweep_rows,
)

WORKLOADS = ("treeadd", "mst", "perimeter")
SAFE_FRACTIONS = (0.3, 0.5, 0.6, 0.75, 0.9)
ELIDE_FRACTIONS = (0.80, 0.90, 0.93, 0.97)


def test_calibration_sensitivity(benchmark):
    def sweep():
        ccured = sweep_ccured_safe_fraction(WORKLOADS, SAFE_FRACTIONS)
        objtable = sweep_objtable_elision(WORKLOADS, ELIDE_FRACTIONS)
        hb = hardbound_average(WORKLOADS)
        return ccured, objtable, hb

    ccured, objtable, hb = benchmark.pedantic(sweep, rounds=1,
                                              iterations=1)
    rows = sweep_rows(ccured, "ccured-safe-fraction") + \
        sweep_rows(objtable, "objtable-elide-fraction") + \
        [["hardbound-intern11", "-", "%.3f" % hb]]
    table = format_table(["model", "constant", "avg-overhead"], rows,
                         "E13: calibration sensitivity")
    print("\n" + table)
    write_result("sensitivity.txt", table)

    # CCured overhead decreases monotonically with the SAFE fraction
    ordered = [ccured[f] for f in sorted(ccured)]
    assert ordered == sorted(ordered, reverse=True)
    # even at the most favourable calibration, HardBound wins
    assert hb < min(ccured.values())
    assert hb < min(objtable.values())


def test_objtable_monotone_in_elision(benchmark):
    sweep = benchmark.pedantic(
        lambda: sweep_objtable_elision(("treeadd",), (0.5, 0.9, 0.99)),
        rounds=1, iterations=1)
    ordered = [sweep[f] for f in sorted(sweep)]
    assert ordered == sorted(ordered, reverse=True)
