"""Spatial-violation test corpus (Section 5.2).

The paper validates HardBound against 291 test pairs from the
Kratkiewicz & Lippmann buffer-overflow corpus (286 ran; each pair has
a violating and a non-violating variant).  That corpus is not
redistributable here, so we generate an equivalent cross-product over
exactly the dimensions the paper enumerates: "reads and writes; upper
and lower bounds; stack, heap, and global data segments; and various
addressing schemes and aliasing situations".

Dimensions (2 x 2 x 3 x 3 x 8 = 288 pairs):

* access:     read | write
* bound:      upper | lower
* region:     stack | heap | global
* container:  char array | int array | char array inside a struct
              (sub-object, detectable only with narrowed bounds)
* addressing: constant index, variable index, pointer arithmetic,
              loop walk, pointer passed to a callee (aliasing) —
              the first three at two overflow magnitudes
              (off-by-one and far), the last two at off-by-one.

Every violating variant must trap with a spatial-safety exception;
every non-violating variant must run to completion — zero false
positives, as in the paper.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.machine.config import MachineConfig
from repro.machine.errors import (
    BoundsError,
    DoubleFreeError,
    MemoryFault,
    NonPointerError,
    Trap,
    UseAfterFreeError,
)
from repro.minic.driver import compile_and_run

#: exception classes that count as *detection* of a violation: the
#: spatial-safety traps plus the Section 6.2 temporal traps, so the
#: same corpus machinery serves the temporal attack families of
#: :mod:`repro.fuzz.attacks` under ``temporal=True`` configs
DETECTED_TRAPS = (BoundsError, NonPointerError, MemoryFault,
                  UseAfterFreeError, DoubleFreeError)

#: elements per test buffer; char buffers use a non-multiple-of-4
#: length so byte-granular bounds are exercised
CHAR_LEN = 6
INT_LEN = 5

#: minimal self-contained runtime (keeps corpus compiles fast)
_RUNTIME = """
void *vmalloc(int n) {
    return __setbound(sbrk(n), n);
}
"""

ACCESSES = ("read", "write")
BOUNDS = ("upper", "lower")
REGIONS = ("stack", "heap", "global")
CONTAINERS = ("char_array", "int_array", "struct_member")
ADDRESSING = ("const_index", "var_index", "ptr_arith",
              "loop_walk", "func_arg")
#: magnitudes per addressing mode (paper: small and large overflows)
MAGNITUDES = {
    "const_index": ("one", "far"),
    "var_index": ("one", "far"),
    "ptr_arith": ("one", "far"),
    "loop_walk": ("one",),
    "func_arg": ("one",),
}
_FAR = 7


class ViolationCase:
    """One generated test pair."""

    def __init__(self, access: str, bound: str, region: str,
                 container: str, addressing: str, magnitude: str):
        self.access = access
        self.bound = bound
        self.region = region
        self.container = container
        self.addressing = addressing
        self.magnitude = magnitude
        self.name = "-".join((access, bound, region, container,
                              addressing, magnitude))
        self.bad_source = self._source(violate=True)
        self.ok_source = self._source(violate=False)

    # -- source construction ------------------------------------------------

    def _elem(self) -> Tuple[str, int]:
        if self.container == "int_array":
            return "int", INT_LEN
        return "char", CHAR_LEN

    def _target_index(self, violate: bool, length: int) -> int:
        if not violate:
            return length - 1 if self.bound == "upper" else 0
        delta = 0 if self.magnitude == "one" else _FAR
        if self.bound == "upper":
            return length + delta
        return -1 - delta

    def _globals(self, ctype: str, length: int) -> str:
        if self.region != "global":
            return ""
        if self.container == "struct_member":
            return ("struct wrap { char pre[4]; %s buf[%d]; int post; };\n"
                    "struct wrap g_w;\n" % (ctype, length))
        return "%s g_arr[%d];\n" % (ctype, length)

    def _setup(self, ctype: str, length: int) -> str:
        container = self.container
        region = self.region
        if container == "struct_member":
            struct_def = "" if region == "global" else \
                ("struct wrap { char pre[4]; %s buf[%d]; int post; };\n"
                 % (ctype, length))
            if region == "stack":
                body = ("    struct wrap w;\n"
                        "    %s *buf = w.buf;\n" % ctype)
            elif region == "heap":
                body = ("    struct wrap *w = (struct wrap*)"
                        "vmalloc(sizeof(struct wrap));\n"
                        "    %s *buf = w->buf;\n" % ctype)
            else:
                body = "    %s *buf = g_w.buf;\n" % ctype
            return struct_def, body
        if region == "stack":
            return "", ("    %s a[%d];\n    %s *buf = a;\n"
                        % (ctype, length, ctype))
        if region == "heap":
            return "", ("    %s *buf = (%s*)vmalloc(%d * sizeof(%s));\n"
                        % (ctype, ctype, length, ctype))
        return "", "    %s *buf = g_arr;\n" % ctype

    def _helpers(self, ctype: str) -> str:
        if self.addressing != "func_arg":
            return ""
        if self.access == "read":
            return ("int probe(%s *p, int i) { return (int)p[i]; }\n"
                    % ctype)
        return ("void probe(%s *p, int i) { p[i] = (%s)1; }\n"
                % (ctype, ctype))

    def _access_code(self, ctype: str, length: int, idx: int) -> str:
        read = self.access == "read"
        if self.addressing == "const_index":
            return ("    sink += (int)buf[%d];\n" % idx if read
                    else "    buf[%d] = (%s)1;\n" % (idx, ctype))
        if self.addressing == "var_index":
            code = "    int i = %d;\n" % idx
            return code + ("    sink += (int)buf[i];\n" if read
                           else "    buf[i] = (%s)1;\n" % ctype)
        if self.addressing == "ptr_arith":
            code = "    %s *p = buf + %d;\n" % (ctype, idx)
            return code + ("    sink += (int)*p;\n" if read
                           else "    *p = (%s)1;\n" % ctype)
        if self.addressing == "func_arg":
            return ("    sink += probe(buf, %d);\n" % idx if read
                    else "    probe(buf, %d);\n" % idx)
        # loop_walk: dereference every element on the way to idx
        if self.bound == "upper":
            loop = ("    for (int i = 0; i <= %d; i++) {\n" % idx)
        else:
            loop = ("    for (int i = %d; i >= %d; i--) {\n"
                    % (length - 1, idx))
        body = ("        sink += (int)buf[i];\n" if read
                else "        buf[i] = (%s)1;\n" % ctype)
        return loop + body + "    }\n"

    def _source(self, violate: bool) -> str:
        ctype, length = self._elem()
        idx = self._target_index(violate, length)
        struct_def, setup = "", ""
        if self.container == "struct_member":
            struct_def, setup = self._setup(ctype, length)
        else:
            _unused, setup = self._setup(ctype, length)
        parts = [_RUNTIME, struct_def,
                 self._globals(ctype, length),
                 self._helpers(ctype),
                 "int main() {\n",
                 setup,
                 "    int sink = 0;\n",
                 self._access_code(ctype, length, idx),
                 "    return sink & 1;\n",
                 "}\n"]
        return "".join(parts)

    def __repr__(self):
        return "<ViolationCase %s>" % self.name


def generate_corpus() -> List[ViolationCase]:
    """All 288 test pairs, deterministic order."""
    cases = []
    for access, bound, region, container, addressing in \
            itertools.product(ACCESSES, BOUNDS, REGIONS, CONTAINERS,
                              ADDRESSING):
        for magnitude in MAGNITUDES[addressing]:
            cases.append(ViolationCase(access, bound, region,
                                       container, addressing, magnitude))
    return cases


class CorpusResult:
    """Aggregate outcome of running the corpus."""

    def __init__(self):
        self.total = 0
        self.detected = 0
        self.missed: List[str] = []
        self.false_positives: List[str] = []
        self.errors: List[Tuple[str, str]] = []

    @property
    def clean(self) -> bool:
        return (not self.missed and not self.false_positives
                and not self.errors)

    def summary(self) -> str:
        return ("%d pairs: %d violations detected, %d missed, "
                "%d false positives, %d errors"
                % (self.total, self.detected, len(self.missed),
                   len(self.false_positives), len(self.errors)))


def run_case(case: ViolationCase,
             config: MachineConfig) -> Tuple[bool, bool, Optional[str]]:
    """Run one pair; returns (detected, false_positive, error)."""
    detected = False
    false_positive = False
    error = None
    try:
        compile_and_run(case.bad_source, config, include_stdlib=False)
    except DETECTED_TRAPS:
        detected = True
    except Trap as trap:
        error = "bad variant raised unexpected trap: %s" % trap
    except Exception as exc:  # compile errors etc.
        error = "bad variant failed: %s" % exc
    try:
        compile_and_run(case.ok_source, config, include_stdlib=False)
    except Trap as trap:
        false_positive = True
        error = error or "ok variant trapped: %s" % trap
    except Exception as exc:
        error = error or "ok variant failed: %s" % exc
    return detected, false_positive, error


def run_corpus(config: Optional[MachineConfig] = None,
               cases: Optional[List[ViolationCase]] = None,
               progress: bool = False) -> CorpusResult:
    """Run the corpus under ``config`` (default: full HardBound)."""
    config = config or MachineConfig.hardbound(timing=False)
    cases = cases if cases is not None else generate_corpus()
    result = CorpusResult()
    for i, case in enumerate(cases):
        detected, false_positive, error = run_case(case, config)
        result.total += 1
        if detected:
            result.detected += 1
        else:
            result.missed.append(case.name)
        if false_positive:
            result.false_positives.append(case.name)
        if error:
            result.errors.append((case.name, error))
        if progress and (i + 1) % 48 == 0:
            print("  ... %d/%d pairs" % (i + 1, len(cases)))
    return result
