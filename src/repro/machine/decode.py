"""Pre-decoded closure-threaded execution engine.

The legacy :meth:`~repro.machine.cpu.CPU._run_legacy` loop re-resolves
every operand form (register vs. immediate, base/index/displacement
addressing, access size) on every executed instruction, through a
dict dispatch and a stack of helper calls.  This module specializes a
linked :class:`~repro.isa.program.Program` *once per run* into a flat
list of per-instruction closures:

* operand forms are resolved at decode time — each closure is built
  for the exact ``reg/imm/disp/scale`` shape of its instruction;
* the hot handlers (``mov``/``add``/``sub``/``load``/``store``/
  branches/compares) are fully inlined with the register-file arrays
  bound as closure cells, so executing an instruction is one list
  index plus one call;
* the common HardBound bounds check (stock engine, no ``check_uop``
  ablation, paper ``ea < bound`` semantics) is inlined into the
  memory closures; ablations and substituted engines (e.g. the
  CCured cost model) fall back to engine method calls.

Execution is **bit-identical** to the legacy loop: identical
``RunResult`` statistics (instructions, µops, stalls, HardBound and
memory-system counters), identical trap types, messages and faulting
pcs.  ``tests/machine/test_engine_differential.py`` enforces this.

Decoding costs O(program length) closure constructions per run — noise
next to the millions of instructions a workload executes.
"""

from __future__ import annotations

from time import perf_counter
from types import SimpleNamespace
from typing import Callable, List, Optional

from repro.caches.fast import FastMemorySystem
from repro.hardbound.engine import HardBoundEngine
from repro.isa.opcodes import Op, REG_FP, REG_RA, REG_SP
from repro.layout import (
    GLOBAL_BASE,
    HEAP_BASE,
    MASK32,
    MAXINT,
    SHADOW_SPACE_BASE,
    STACK_TOP,
    TAG1_BASE,
    TAG1_SHIFT,
    TAG4_BASE,
    TAG4_SHIFT,
    to_signed,
)
from repro.metadata.encodings import make_inline_compressible
from repro.machine.errors import (
    AbortError,
    BoundsError,
    DivideByZeroError,
    HaltSignal,
    InstructionLimitExceeded,
    MemoryFault,
    InvalidCodePointerError,
    NonPointerError,
    Trap,
)

#: a decoded instruction: takes the current pc, returns the next pc
#: (``None`` means fall through)
DecodedOp = Callable[[int], Optional[int]]


class _LazyCode:
    """List-like decoded stream that builds closures on first use.

    The superblock engine fuses almost every instruction into
    generated code, so most decoded closures exist only as the
    single-step fallback and are never called; building them eagerly
    is pure per-run overhead.  Indexing builds and memoizes the
    closure; out-of-range pcs raise ``IndexError`` exactly like the
    eager list, which the run loops translate into fetch faults.
    """

    __slots__ = ("_builders", "_instrs", "_cache")

    def __init__(self, builders, instrs):
        self._builders = builders
        self._instrs = instrs
        self._cache: List[Optional[DecodedOp]] = [None] * len(instrs)

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, pc: int) -> DecodedOp:
        fn = self._cache[pc]
        if fn is None:
            instr = self._instrs[pc]
            fn = self._cache[pc] = self._builders[instr.op](instr)
        return fn


# -- non-propagating ALU semantics (shared with the legacy handlers) -----

def _mul(a: int, b: int) -> int:
    return to_signed(a) * to_signed(b)


def _div(a: int, b: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        raise DivideByZeroError()
    q = abs(sa) // abs(sb)
    return q if (sa < 0) == (sb < 0) else -q


def _mod(a: int, b: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        raise DivideByZeroError()
    r = abs(sa) % abs(sb)
    return r if sa >= 0 else -r


def _and(a: int, b: int) -> int:
    return a & b


def _or(a: int, b: int) -> int:
    return a | b


def _xor(a: int, b: int) -> int:
    return a ^ b


def _shl(a: int, b: int) -> int:
    return a << (b & 31)


def _shr(a: int, b: int) -> int:
    return a >> (b & 31)


def _sra(a: int, b: int) -> int:
    return to_signed(a) >> (b & 31)


_NONPROP_FNS = {
    Op.MUL: _mul, Op.DIV: _div, Op.MOD: _mod, Op.AND: _and,
    Op.OR: _or, Op.XOR: _xor, Op.SHL: _shl, Op.SHR: _shr,
    Op.SRA: _sra,
}

_SIGNED_CMPS = frozenset({Op.SLT, Op.SLE, Op.SGT, Op.SGE})


def bind_env(cpu) -> SimpleNamespace:
    """Bind the per-run state the execution engines close over.

    Shared between :func:`decode_program` and the block/superblock
    fuser (:mod:`repro.machine.blocks`) so both reference the *same*
    probe closures, counter cells and memory arena cells — a
    prerequisite for the counter bit-identity the differential suite
    enforces (two independently created probes would still agree,
    but sharing one set makes the equivalence structural rather than
    incidental).  The env also exposes every generic entry point the
    builders below call (``mem_read``/``mem_write``/``mem_sbrk``,
    ``temporal_check``, the observer, ``hb_check`` and the
    ``load_sub``/``store_sub`` metadata paths): the superblock
    tier's full-coverage templates mirror the generic closure bodies
    by calling exactly these bound names in the same order, so the
    two dispatch styles cannot drift apart.
    """
    env = SimpleNamespace()
    regs = cpu.regs
    env.value = regs.value
    env.rbase = regs.base
    env.rbound = regs.bound
    memory = cpu.memory
    env.memory = memory
    env.mem_read = memory.read
    env.mem_write = memory.write
    env.mem_sbrk = memory.sbrk
    env.read_cstring = memory.read_cstring
    env.raw_read = memory.raw_read
    env.raw_write = memory.raw_write
    # flat-heap fast path state: the arena cells (stable across heap
    # growth — see repro.machine.memory) and the fixed segment bounds
    # (only the heap break moves after construction, so it is re-read
    # from ``memory`` on every access)
    env.heap_cell = memory.heap_cell
    env.glob_cell = memory.globals_cell
    env.stack_cell = memory.stack_cell
    env.globals_limit = memory.globals_limit
    env.stack_base = memory.stack_base
    # word-view access needs native little-endian casts on all three
    # arenas (true everywhere but big-endian hosts)
    env.use_words = (memory.heap_cell[1] is not None
                     and memory.globals_cell[1] is not None
                     and memory.stack_cell[1] is not None)
    env.n_instrs = len(cpu.program.instrs)
    env.full_mode = cpu.full_mode
    temporal = cpu.temporal
    env.temporal = temporal
    env.temporal_check = temporal.check if temporal is not None else None
    env.observer = cpu.observer
    memsys = cpu.memsys
    env.memsys = memsys
    env.data_access = memsys.access if memsys is not None else None

    hb = cpu.hb
    env.hb = hb
    if hb is not None:
        env.hb_stats = hb.stats
        env.hb_check = hb.check
        env.hb_load_word = hb.load_word_meta
        env.hb_load_sub = hb.load_sub_meta
        env.hb_store_word = hb.store_word_meta
        env.hb_store_sub = hb.store_sub_meta
        env.meta_map = hb.meta._meta
        env.meta_get = env.meta_map.get
        env.meta_pop = env.meta_map.pop
        enc = hb.encoding
        # stock encodings get a flat is_compressible closure and
        # inline tag-address arithmetic; subclassed encodings keep
        # their methods and take the generic path
        comp_inline = make_inline_compressible(enc)
        env.is_comp = comp_inline if comp_inline is not None \
            else enc.is_compressible
        if comp_inline is not None:
            env.tag_base, env.tag_shift = ((TAG4_BASE, TAG4_SHIFT)
                                           if enc.tag_bits == 4
                                           else (TAG1_BASE, TAG1_SHIFT))
        else:
            env.tag_base = env.tag_shift = None
        # the stock engine with paper-default knobs and a stock
        # encoding is inlined into the memory closures; ablations and
        # substituted engines/encodings are not
        env.inline_check = (type(hb) is HardBoundEngine
                            and not hb.check_uop
                            and not hb.check_access_extent
                            and env.tag_base is not None)
    else:
        env.hb_stats = None
        env.hb_check = env.hb_load_word = env.hb_load_sub = None
        env.hb_store_word = env.hb_store_sub = None
        env.meta_map = env.meta_get = env.meta_pop = None
        env.is_comp = None
        env.inline_check = False
        env.tag_base = env.tag_shift = None

    # the fast timing model hands out single-call probes for the hot
    # access shapes (plus the cells to inline their composite-hit
    # path); the probes are generated per cache geometry with the
    # array-backed way scans unrolled — the same source the block
    # fuser inlines, so calling and inlining stay counter-identical.
    # The classic model keeps its generic entry point
    if memsys is not None and isinstance(memsys, FastMemorySystem):
        (env.dprobe, env.dp_mru, env.dp_ctr,
         env.dp_shift) = memsys.data_probe_parts()
        env.sprobe = memsys.make_shadow_probe() if hb is not None \
            else None
        if env.inline_check:
            (env.wprobe, env.wp_mru, env.wp_dctr, env.wp_tctr,
             env.wp_shift) = memsys.word_probe_parts(env.tag_base,
                                                     env.tag_shift)
        else:
            env.wprobe = None
    else:
        env.dprobe = env.sprobe = env.wprobe = None
        env.dp_mru = env.dp_ctr = env.dp_shift = None
    if env.wprobe is None:
        env.wp_mru = env.wp_dctr = env.wp_tctr = env.wp_shift = None

    out_append = cpu.output.append
    capture = cpu.config.capture_output
    echo = cpu.config.echo_output
    if capture and echo:
        def emit(text):
            out_append(text)
            print(text, end="")
    elif capture:
        emit = out_append
    elif echo:
        def emit(text):
            print(text, end="")
    else:
        def emit(text):
            pass
    env.emit = emit
    return env


def decode_program(cpu, env: SimpleNamespace = None,
                   lazy: bool = False) -> List[DecodedOp]:
    """Specialize ``cpu.program`` into per-instruction closures.

    All per-run state (register arrays, memory arenas, metadata
    engine, observers) is bound into closure cells here, once, so the
    closures touch no ``self`` attributes on the hot path.  Pass a
    pre-built ``env`` (from :func:`bind_env`) to share the bound
    state with the block fuser.  With ``lazy`` the result is a
    :class:`_LazyCode` that builds each closure on first index — the
    superblock engine's choice, since its fused templates leave most
    closures unused.
    """
    t0 = perf_counter()
    if env is None:
        env = bind_env(cpu)
    value = env.value
    rbase = env.rbase
    rbound = env.rbound
    memory = env.memory
    mem_read = env.mem_read
    mem_write = env.mem_write
    mem_sbrk = env.mem_sbrk
    read_cstring = env.read_cstring
    raw_read = env.raw_read
    raw_write = env.raw_write
    heap_cell = env.heap_cell
    glob_cell = env.glob_cell
    stack_cell = env.stack_cell
    globals_limit = env.globals_limit
    stack_base = env.stack_base
    use_words = env.use_words
    n_instrs = env.n_instrs
    full_mode = env.full_mode
    temporal = env.temporal
    temporal_check = env.temporal_check
    observer = env.observer
    memsys = env.memsys
    data_access = env.data_access
    hb = env.hb
    hb_stats = env.hb_stats
    hb_check = env.hb_check
    hb_load_word = env.hb_load_word
    hb_load_sub = env.hb_load_sub
    hb_store_word = env.hb_store_word
    hb_store_sub = env.hb_store_sub
    meta_map = env.meta_map
    meta_get = env.meta_get
    meta_pop = env.meta_pop
    is_comp = env.is_comp
    tag_base = env.tag_base
    tag_shift = env.tag_shift
    inline_check = env.inline_check
    dprobe = env.dprobe
    dp_mru = env.dp_mru
    dp_ctr = env.dp_ctr
    dp_shift = env.dp_shift
    sprobe = env.sprobe
    wprobe = env.wprobe
    wp_mru = env.wp_mru
    wp_dctr = env.wp_dctr
    wp_tctr = env.wp_tctr
    wp_shift = env.wp_shift
    emit = env.emit

    # -- shared sub-builders -------------------------------------------

    def make_ea(rs, rt, scale, disp):
        """Effective-address closure for the instruction's exact form."""
        if rs is not None and rt is not None:
            def ea_fn():
                return (value[rs] + value[rt] * scale + disp) & MASK32
        elif rs is not None:
            def ea_fn():
                return (value[rs] + disp) & MASK32
        elif rt is not None:
            def ea_fn():
                return (value[rt] * scale + disp) & MASK32
        else:
            k = disp & MASK32

            def ea_fn():
                return k
        return ea_fn

    def make_mem_check(rs, rt, size, access):
        """Figure 3C/D check closure (caller guarantees hb and rs)."""
        is_frame = rs in (REG_SP, REG_FP)

        def check(ea):
            if rbase[rs] or rbound[rs]:
                src = rs
            elif rt is not None and (rbase[rt] or rbound[rt]):
                src = rt
            else:
                src = rs
            if not (rbase[src] or rbound[src]) and is_frame:
                return
            hb_check(value[src], rbase[src], rbound[src], ea, size,
                     access, full_mode)
        return check

    # -- data movement -------------------------------------------------

    def build_mov(instr):
        rd, rs = instr.rd, instr.rs
        if rs is not None:
            def mov_rr(pc):
                value[rd] = value[rs]
                rbase[rd] = rbase[rs]
                rbound[rd] = rbound[rs]
            return mov_rr
        k = (instr.imm or 0) & MASK32

        def mov_ri(pc):
            value[rd] = k
            rbase[rd] = 0
            rbound[rd] = 0
        return mov_ri

    def build_xchg(instr):
        rd, rs = instr.rd, instr.rs

        def xchg(pc):
            value[rd], value[rs] = value[rs], value[rd]
            rbase[rd], rbase[rs] = rbase[rs], rbase[rd]
            rbound[rd], rbound[rs] = rbound[rs], rbound[rd]
        return xchg

    def build_lea(instr):
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        scale, disp = instr.scale, instr.disp
        if rs is not None and rt is not None:
            def lea_si(pc):
                ea = (value[rs] + value[rt] * scale + disp) & MASK32
                if rbase[rs] or rbound[rs]:
                    b, bd = rbase[rs], rbound[rs]
                elif rbase[rt] or rbound[rt]:
                    b, bd = rbase[rt], rbound[rt]
                else:
                    b, bd = 0, 0
                rbase[rd] = b
                rbound[rd] = bd
                value[rd] = ea
            return lea_si
        if rs is not None:
            def lea_s(pc):
                ea = (value[rs] + disp) & MASK32
                rbase[rd] = rbase[rs]
                rbound[rd] = rbound[rs]
                value[rd] = ea
            return lea_s
        if rt is not None:
            def lea_i(pc):
                ea = (value[rt] * scale + disp) & MASK32
                rbase[rd] = rbase[rt]
                rbound[rd] = rbound[rt]
                value[rd] = ea
            return lea_i
        k = disp & MASK32

        def lea_abs(pc):
            rbase[rd] = 0
            rbound[rd] = 0
            value[rd] = k
        return lea_abs

    # -- propagating arithmetic (Figure 3A/B) --------------------------

    def build_addsub(instr):
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        sub = instr.op is Op.SUB
        if rt is not None:
            if sub:
                def addsub_rr(pc):
                    v = (value[rs] - value[rt]) & MASK32
                    if rbase[rs] or rbound[rs]:
                        b, bd = rbase[rs], rbound[rs]
                    else:
                        b, bd = rbase[rt], rbound[rt]
                    value[rd] = v
                    rbase[rd] = b
                    rbound[rd] = bd
                    if observer is not None and (b or bd):
                        observer.on_pointer_arith(v)
            else:
                def addsub_rr(pc):
                    v = (value[rs] + value[rt]) & MASK32
                    if rbase[rs] or rbound[rs]:
                        b, bd = rbase[rs], rbound[rs]
                    else:
                        b, bd = rbase[rt], rbound[rt]
                    value[rd] = v
                    rbase[rd] = b
                    rbound[rd] = bd
                    if observer is not None and (b or bd):
                        observer.on_pointer_arith(v)
            return addsub_rr
        k = instr.imm or 0
        if sub:
            k = -k

        def addsub_ri(pc):
            v = (value[rs] + k) & MASK32
            if rbase[rs] or rbound[rs]:
                b, bd = rbase[rs], rbound[rs]
                value[rd] = v
                rbase[rd] = b
                rbound[rd] = bd
                if observer is not None:
                    observer.on_pointer_arith(v)
            else:
                value[rd] = v
                rbase[rd] = 0
                rbound[rd] = 0
        return addsub_ri

    # -- non-propagating ALU -------------------------------------------

    def build_nonprop(instr):
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        fn = _NONPROP_FNS[instr.op]
        if rt is not None:
            def nonprop_rr(pc):
                value[rd] = fn(value[rs], value[rt]) & MASK32
                rbase[rd] = 0
                rbound[rd] = 0
            return nonprop_rr
        k = instr.imm or 0

        def nonprop_ri(pc):
            value[rd] = fn(value[rs], k) & MASK32
            rbase[rd] = 0
            rbound[rd] = 0
        return nonprop_ri

    def build_neg(instr):
        rd, rs = instr.rd, instr.rs

        def neg(pc):
            value[rd] = (-value[rs]) & MASK32
            rbase[rd] = 0
            rbound[rd] = 0
        return neg

    def build_not(instr):
        rd, rs = instr.rd, instr.rs

        def not_(pc):
            value[rd] = (~value[rs]) & MASK32
            rbase[rd] = 0
            rbound[rd] = 0
        return not_

    # -- comparisons ---------------------------------------------------

    def build_cmp(instr):
        # Signed compares use the sign-bit flip: for masked values,
        # ``to_signed(a) < to_signed(b)`` iff ``a^MSB < b^MSB``.
        rd, rs, rt, op = instr.rd, instr.rs, instr.rt, instr.op
        MSB = 0x80000000
        if rt is not None:
            if op is Op.SEQ:
                def cmp_rr(pc):
                    value[rd] = 1 if value[rs] == value[rt] else 0
                    rbase[rd] = 0
                    rbound[rd] = 0
            elif op is Op.SNE:
                def cmp_rr(pc):
                    value[rd] = 1 if value[rs] != value[rt] else 0
                    rbase[rd] = 0
                    rbound[rd] = 0
            elif op is Op.SLT:
                def cmp_rr(pc):
                    value[rd] = (1 if (value[rs] ^ MSB)
                                 < (value[rt] ^ MSB) else 0)
                    rbase[rd] = 0
                    rbound[rd] = 0
            elif op is Op.SLE:
                def cmp_rr(pc):
                    value[rd] = (1 if (value[rs] ^ MSB)
                                 <= (value[rt] ^ MSB) else 0)
                    rbase[rd] = 0
                    rbound[rd] = 0
            elif op is Op.SGT:
                def cmp_rr(pc):
                    value[rd] = (1 if (value[rs] ^ MSB)
                                 > (value[rt] ^ MSB) else 0)
                    rbase[rd] = 0
                    rbound[rd] = 0
            elif op is Op.SGE:
                def cmp_rr(pc):
                    value[rd] = (1 if (value[rs] ^ MSB)
                                 >= (value[rt] ^ MSB) else 0)
                    rbase[rd] = 0
                    rbound[rd] = 0
            elif op is Op.SLTU:
                def cmp_rr(pc):
                    value[rd] = 1 if value[rs] < value[rt] else 0
                    rbase[rd] = 0
                    rbound[rd] = 0
            else:  # SGEU
                def cmp_rr(pc):
                    value[rd] = 1 if value[rs] >= value[rt] else 0
                    rbase[rd] = 0
                    rbound[rd] = 0
            return cmp_rr
        k = instr.imm or 0
        if op in (Op.SEQ, Op.SNE):
            # to_signed is a bijection on masked values: equality
            # against the masked immediate matches the legacy compare
            km = k & MASK32
            if op is Op.SEQ:
                def cmp_ri(pc):
                    value[rd] = 1 if value[rs] == km else 0
                    rbase[rd] = 0
                    rbound[rd] = 0
            else:
                def cmp_ri(pc):
                    value[rd] = 1 if value[rs] != km else 0
                    rbase[rd] = 0
                    rbound[rd] = 0
            return cmp_ri
        if op in _SIGNED_CMPS:
            kf = (k & MASK32) ^ MSB
            if op is Op.SLT:
                def cmp_ri(pc):
                    value[rd] = 1 if (value[rs] ^ MSB) < kf else 0
                    rbase[rd] = 0
                    rbound[rd] = 0
            elif op is Op.SLE:
                def cmp_ri(pc):
                    value[rd] = 1 if (value[rs] ^ MSB) <= kf else 0
                    rbase[rd] = 0
                    rbound[rd] = 0
            elif op is Op.SGT:
                def cmp_ri(pc):
                    value[rd] = 1 if (value[rs] ^ MSB) > kf else 0
                    rbase[rd] = 0
                    rbound[rd] = 0
            else:  # SGE
                def cmp_ri(pc):
                    value[rd] = 1 if (value[rs] ^ MSB) >= kf else 0
                    rbase[rd] = 0
                    rbound[rd] = 0
            return cmp_ri
        # unsigned compares keep the raw immediate, like _operand2
        if op is Op.SLTU:
            def cmp_ri(pc):
                value[rd] = 1 if value[rs] < k else 0
                rbase[rd] = 0
                rbound[rd] = 0
        else:  # SGEU
            def cmp_ri(pc):
                value[rd] = 1 if value[rs] >= k else 0
                rbase[rd] = 0
                rbound[rd] = 0
        return cmp_ri

    # -- memory --------------------------------------------------------

    wmask = ~3

    def build_load(instr):
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        scale, disp, size = instr.scale, instr.disp, instr.size
        checked = hb is not None and rs is not None
        # hot paths: stock engine, word access, base-register forms.
        # Memory.read and HardBoundEngine.load_word_meta are inlined
        # (same statement order, trap messages and stats updates); the
        # differential test keeps them honest.  The merged segment
        # check doubles as arena routing: an address that passes a
        # check is inside that segment's flat arena, so the word view
        # is indexed with no further bounds test (unaligned accesses
        # take the raw_read spill path).
        if checked and inline_check and size == 4 and use_words:
            is_frame = rs in (REG_SP, REG_FP)
            if rt is None:
                def load_s_word(pc):
                    ea = (value[rs] + disp) & MASK32
                    b = rbase[rs]
                    bd = rbound[rs]
                    if b or bd:
                        hb_stats.checks += 1
                        if ea < b or ea >= bd:
                            raise BoundsError(ea, b, bd, "read")
                    elif not is_frame:
                        if full_mode:
                            raise NonPointerError(value[rs], "read")
                        hb_stats.nonpointer_derefs += 1
                    if temporal_check is not None:
                        temporal_check(ea, 4)
                    end = ea + 4
                    if HEAP_BASE <= ea and end <= memory.brk:
                        v = (heap_cell[1][(ea - HEAP_BASE) >> 2]
                             if not ea & 3 else raw_read(ea, 4))
                    elif GLOBAL_BASE <= ea and end <= globals_limit:
                        v = (glob_cell[1][(ea - GLOBAL_BASE) >> 2]
                             if not ea & 3 else raw_read(ea, 4))
                    elif stack_base <= ea and end <= STACK_TOP:
                        v = (stack_cell[1][(ea - stack_base) >> 2]
                             if not ea & 3 else raw_read(ea, 4))
                    else:
                        raise MemoryFault(ea, "read")
                    if wprobe is not None:
                        wkey = ea >> wp_shift
                        if wkey == wp_mru[0] \
                                and (ea + 3) >> wp_shift == wkey:
                            wp_dctr[0] += 1
                            wp_tctr[0] += 1
                        else:
                            wprobe(ea)
                    elif data_access is not None:
                        data_access(ea, 4, False, "data")
                        data_access(tag_base + (ea >> tag_shift), 1,
                                    False, "tag")
                    if observer is not None:
                        observer.on_mem(ea, 4, False)
                    meta = meta_get(ea & wmask)
                    if meta is None:
                        value[rd] = v
                        rbase[rd] = 0
                        rbound[rd] = 0
                        return
                    mb, mbd = meta
                    hb_stats.pointer_loads += 1
                    if is_comp(v, mb, mbd):
                        hb_stats.compressed_loads += 1
                    else:
                        hb_stats.meta_uops += 1
                        if sprobe is not None:
                            sprobe(ea & wmask)
                        elif data_access is not None:
                            data_access(SHADOW_SPACE_BASE
                                        + (ea & wmask) * 2, 8, False,
                                        "shadow")
                    value[rd] = v
                    rbase[rd] = mb
                    rbound[rd] = mbd
                return load_s_word

            def load_si_word(pc):
                ea = (value[rs] + value[rt] * scale + disp) & MASK32
                b = rbase[rs]
                bd = rbound[rs]
                pv = value[rs]
                if not (b or bd):
                    b = rbase[rt]
                    bd = rbound[rt]
                    if b or bd:
                        pv = value[rt]
                if b or bd:
                    hb_stats.checks += 1
                    if ea < b or ea >= bd:
                        raise BoundsError(ea, b, bd, "read")
                elif not is_frame:
                    if full_mode:
                        raise NonPointerError(pv, "read")
                    hb_stats.nonpointer_derefs += 1
                if temporal_check is not None:
                    temporal_check(ea, 4)
                end = ea + 4
                if HEAP_BASE <= ea and end <= memory.brk:
                    v = (heap_cell[1][(ea - HEAP_BASE) >> 2]
                         if not ea & 3 else raw_read(ea, 4))
                elif GLOBAL_BASE <= ea and end <= globals_limit:
                    v = (glob_cell[1][(ea - GLOBAL_BASE) >> 2]
                         if not ea & 3 else raw_read(ea, 4))
                elif stack_base <= ea and end <= STACK_TOP:
                    v = (stack_cell[1][(ea - stack_base) >> 2]
                         if not ea & 3 else raw_read(ea, 4))
                else:
                    raise MemoryFault(ea, "read")
                if wprobe is not None:
                    wkey = ea >> wp_shift
                    if wkey == wp_mru[0] \
                            and (ea + 3) >> wp_shift == wkey:
                        wp_dctr[0] += 1
                        wp_tctr[0] += 1
                    else:
                        wprobe(ea)
                elif data_access is not None:
                    data_access(ea, 4, False, "data")
                    data_access(tag_base + (ea >> tag_shift), 1,
                                False, "tag")
                if observer is not None:
                    observer.on_mem(ea, 4, False)
                meta = meta_get(ea & wmask)
                if meta is None:
                    value[rd] = v
                    rbase[rd] = 0
                    rbound[rd] = 0
                    return
                mb, mbd = meta
                hb_stats.pointer_loads += 1
                if is_comp(v, mb, mbd):
                    hb_stats.compressed_loads += 1
                else:
                    hb_stats.meta_uops += 1
                    if sprobe is not None:
                        sprobe(ea & wmask)
                    elif data_access is not None:
                        data_access(SHADOW_SPACE_BASE + (ea & wmask) * 2,
                                    8, False, "shadow")
                value[rd] = v
                rbase[rd] = mb
                rbound[rd] = mbd
            return load_si_word

        if hb is None and size == 4 and rs is not None and rt is None \
                and use_words:
            def load_s_word_plain(pc):
                ea = (value[rs] + disp) & MASK32
                end = ea + 4
                if HEAP_BASE <= ea and end <= memory.brk:
                    v = (heap_cell[1][(ea - HEAP_BASE) >> 2]
                         if not ea & 3 else raw_read(ea, 4))
                elif GLOBAL_BASE <= ea and end <= globals_limit:
                    v = (glob_cell[1][(ea - GLOBAL_BASE) >> 2]
                         if not ea & 3 else raw_read(ea, 4))
                elif stack_base <= ea and end <= STACK_TOP:
                    v = (stack_cell[1][(ea - stack_base) >> 2]
                         if not ea & 3 else raw_read(ea, 4))
                else:
                    raise MemoryFault(ea, "read")
                if dprobe is not None:
                    bkey = ea >> dp_shift
                    if bkey == dp_mru[0] \
                            and (ea + 3) >> dp_shift == bkey:
                        dp_ctr[0] += 1
                    else:
                        dprobe(ea)
                elif data_access is not None:
                    data_access(ea, 4, False, "data")
                if observer is not None:
                    observer.on_mem(ea, 4, False)
                value[rd] = v
                rbase[rd] = 0
                rbound[rd] = 0
            return load_s_word_plain

        # generic path: any form, any size, any engine
        ea_fn = make_ea(rs, rt, scale, disp)
        check = make_mem_check(rs, rt, size, "read") if checked else None
        word = size == 4

        def load_generic(pc):
            ea = ea_fn()
            if check is not None:
                check(ea)
            if temporal_check is not None:
                temporal_check(ea, size)
            v = mem_read(ea, size)
            if data_access is not None:
                data_access(ea, size, False, "data")
            if observer is not None:
                observer.on_mem(ea, size, False)
            if hb is not None:
                if word:
                    b, bd = hb_load_word(ea, v)
                    value[rd] = v
                    rbase[rd] = b
                    rbound[rd] = bd
                    return
                hb_load_sub(ea)
            value[rd] = v
            rbase[rd] = 0
            rbound[rd] = 0
        return load_generic

    def build_store(instr):
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        scale, disp, size = instr.scale, instr.disp, instr.size
        checked = hb is not None and rs is not None
        if checked and inline_check and size == 4 and use_words:
            is_frame = rs in (REG_SP, REG_FP)
            if rt is None:
                def store_s_word(pc):
                    ea = (value[rs] + disp) & MASK32
                    b = rbase[rs]
                    bd = rbound[rs]
                    if b or bd:
                        hb_stats.checks += 1
                        if ea < b or ea >= bd:
                            raise BoundsError(ea, b, bd, "write")
                    elif not is_frame:
                        if full_mode:
                            raise NonPointerError(value[rs], "write")
                        hb_stats.nonpointer_derefs += 1
                    if temporal_check is not None:
                        temporal_check(ea, 4)
                    end = ea + 4
                    v = value[rd]
                    if HEAP_BASE <= ea and end <= memory.brk:
                        if ea & 3:
                            raw_write(ea, 4, v)
                        else:
                            heap_cell[1][(ea - HEAP_BASE) >> 2] = v
                    elif GLOBAL_BASE <= ea and end <= globals_limit:
                        if ea & 3:
                            raw_write(ea, 4, v)
                        else:
                            glob_cell[1][(ea - GLOBAL_BASE) >> 2] = v
                    elif stack_base <= ea and end <= STACK_TOP:
                        if ea & 3:
                            raw_write(ea, 4, v)
                        else:
                            stack_cell[1][(ea - stack_base) >> 2] = v
                    else:
                        raise MemoryFault(ea, "write")
                    if wprobe is not None:
                        wkey = ea >> wp_shift
                        if wkey == wp_mru[0] \
                                and (ea + 3) >> wp_shift == wkey:
                            wp_dctr[0] += 1
                            wp_tctr[0] += 1
                        else:
                            wprobe(ea)
                    elif data_access is not None:
                        data_access(ea, 4, True, "data")
                        data_access(tag_base + (ea >> tag_shift), 1,
                                    True, "tag")
                    if observer is not None:
                        observer.on_mem(ea, 4, True)
                    key = ea & wmask
                    mb = rbase[rd]
                    mbd = rbound[rd]
                    if mb == 0 and mbd == 0:
                        meta_pop(key, None)
                        return
                    meta_map[key] = (mb, mbd)
                    hb_stats.pointer_stores += 1
                    if is_comp(v, mb, mbd):
                        hb_stats.compressed_stores += 1
                    else:
                        hb_stats.meta_uops += 1
                        if sprobe is not None:
                            sprobe(key)
                        elif data_access is not None:
                            data_access(SHADOW_SPACE_BASE + key * 2, 8,
                                        True, "shadow")
                return store_s_word

            def store_si_word(pc):
                ea = (value[rs] + value[rt] * scale + disp) & MASK32
                b = rbase[rs]
                bd = rbound[rs]
                pv = value[rs]
                if not (b or bd):
                    b = rbase[rt]
                    bd = rbound[rt]
                    if b or bd:
                        pv = value[rt]
                if b or bd:
                    hb_stats.checks += 1
                    if ea < b or ea >= bd:
                        raise BoundsError(ea, b, bd, "write")
                elif not is_frame:
                    if full_mode:
                        raise NonPointerError(pv, "write")
                    hb_stats.nonpointer_derefs += 1
                if temporal_check is not None:
                    temporal_check(ea, 4)
                end = ea + 4
                v = value[rd]
                if HEAP_BASE <= ea and end <= memory.brk:
                    if ea & 3:
                        raw_write(ea, 4, v)
                    else:
                        heap_cell[1][(ea - HEAP_BASE) >> 2] = v
                elif GLOBAL_BASE <= ea and end <= globals_limit:
                    if ea & 3:
                        raw_write(ea, 4, v)
                    else:
                        glob_cell[1][(ea - GLOBAL_BASE) >> 2] = v
                elif stack_base <= ea and end <= STACK_TOP:
                    if ea & 3:
                        raw_write(ea, 4, v)
                    else:
                        stack_cell[1][(ea - stack_base) >> 2] = v
                else:
                    raise MemoryFault(ea, "write")
                if wprobe is not None:
                    wkey = ea >> wp_shift
                    if wkey == wp_mru[0] \
                            and (ea + 3) >> wp_shift == wkey:
                        wp_dctr[0] += 1
                        wp_tctr[0] += 1
                    else:
                        wprobe(ea)
                elif data_access is not None:
                    data_access(ea, 4, True, "data")
                    data_access(tag_base + (ea >> tag_shift), 1,
                                True, "tag")
                if observer is not None:
                    observer.on_mem(ea, 4, True)
                key = ea & wmask
                mb = rbase[rd]
                mbd = rbound[rd]
                if mb == 0 and mbd == 0:
                    meta_pop(key, None)
                    return
                meta_map[key] = (mb, mbd)
                hb_stats.pointer_stores += 1
                if is_comp(v, mb, mbd):
                    hb_stats.compressed_stores += 1
                else:
                    hb_stats.meta_uops += 1
                    if sprobe is not None:
                        sprobe(key)
                    elif data_access is not None:
                        data_access(SHADOW_SPACE_BASE + key * 2, 8,
                                    True, "shadow")
            return store_si_word

        if hb is None and size == 4 and rs is not None and rt is None \
                and use_words:
            def store_s_word_plain(pc):
                ea = (value[rs] + disp) & MASK32
                end = ea + 4
                v = value[rd]
                if HEAP_BASE <= ea and end <= memory.brk:
                    if ea & 3:
                        raw_write(ea, 4, v)
                    else:
                        heap_cell[1][(ea - HEAP_BASE) >> 2] = v
                elif GLOBAL_BASE <= ea and end <= globals_limit:
                    if ea & 3:
                        raw_write(ea, 4, v)
                    else:
                        glob_cell[1][(ea - GLOBAL_BASE) >> 2] = v
                elif stack_base <= ea and end <= STACK_TOP:
                    if ea & 3:
                        raw_write(ea, 4, v)
                    else:
                        stack_cell[1][(ea - stack_base) >> 2] = v
                else:
                    raise MemoryFault(ea, "write")
                if dprobe is not None:
                    bkey = ea >> dp_shift
                    if bkey == dp_mru[0] \
                            and (ea + 3) >> dp_shift == bkey:
                        dp_ctr[0] += 1
                    else:
                        dprobe(ea)
                elif data_access is not None:
                    data_access(ea, 4, True, "data")
                if observer is not None:
                    observer.on_mem(ea, 4, True)
            return store_s_word_plain

        ea_fn = make_ea(rs, rt, scale, disp)
        check = make_mem_check(rs, rt, size, "write") if checked else None
        word = size == 4

        def store_generic(pc):
            ea = ea_fn()
            if check is not None:
                check(ea)
            if temporal_check is not None:
                temporal_check(ea, size)
            v = value[rd]
            mem_write(ea, size, v)
            if data_access is not None:
                data_access(ea, size, True, "data")
            if observer is not None:
                observer.on_mem(ea, size, True)
            if hb is not None:
                if word:
                    hb_store_word(ea, v, rbase[rd], rbound[rd])
                else:
                    hb_store_sub(ea)
        return store_generic

    # -- control flow --------------------------------------------------

    def build_jmp(instr):
        target = instr.target

        def jmp(pc):
            return target
        return jmp

    def build_beqz(instr):
        rs, target = instr.rs, instr.target

        def beqz(pc):
            return target if value[rs] == 0 else None
        return beqz

    def build_bnez(instr):
        rs, target = instr.rs, instr.target

        def bnez(pc):
            return target if value[rs] != 0 else None
        return bnez

    def build_call(instr):
        target = instr.target

        def call(pc):
            value[REG_RA] = (pc + 1) & MASK32
            rbase[REG_RA] = MAXINT
            rbound[REG_RA] = MAXINT
            return target
        return call

    def build_callr(instr):
        rs = instr.rs

        def callr(pc):
            target = value[rs]
            if full_mode and not (rbase[rs] == MAXINT
                                  and rbound[rs] == MAXINT):
                raise InvalidCodePointerError(target)
            if target >= n_instrs:
                raise InvalidCodePointerError(target)
            value[REG_RA] = (pc + 1) & MASK32
            rbase[REG_RA] = MAXINT
            rbound[REG_RA] = MAXINT
            return target
        return callr

    def build_ret(instr):
        def ret(pc):
            target = value[REG_RA]
            if full_mode and not (rbase[REG_RA] == MAXINT
                                  and rbound[REG_RA] == MAXINT):
                raise InvalidCodePointerError(target)
            if target >= n_instrs:
                raise InvalidCodePointerError(target)
            return target
        return ret

    # -- HardBound primitives ------------------------------------------

    def build_setbound(instr):
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        k = instr.imm or 0

        def setbound(pc):
            v = value[rs]
            size = value[rt] if rt is not None else k
            value[rd] = v
            rbase[rd] = v
            rbound[rd] = (v + size) & MASK32
            cpu.setbound_count += 1
            if hb_stats is not None:
                hb_stats.setbound_uops += 1
            if temporal is not None:
                temporal.mark_allocated(v, (v + size) & MASK32)
            if observer is not None:
                observer.on_setbound(v, size)
        return setbound

    def build_readbase(instr):
        rd, rs = instr.rd, instr.rs

        def readbase(pc):
            value[rd] = rbase[rs]
            rbase[rd] = 0
            rbound[rd] = 0
        return readbase

    def build_readbound(instr):
        rd, rs = instr.rd, instr.rs

        def readbound(pc):
            value[rd] = rbound[rs]
            rbase[rd] = 0
            rbound[rd] = 0
        return readbound

    def build_setunsafe(instr):
        rd, rs = instr.rd, instr.rs

        def setunsafe(pc):
            value[rd] = value[rs]
            rbase[rd] = 0
            rbound[rd] = MAXINT
        return setunsafe

    def build_setcode(instr):
        rd, rs = instr.rd, instr.rs
        if rs is not None:
            def setcode_r(pc):
                value[rd] = value[rs]
                rbase[rd] = MAXINT
                rbound[rd] = MAXINT
            return setcode_r
        k = instr.imm & MASK32

        def setcode_i(pc):
            value[rd] = k
            rbase[rd] = MAXINT
            rbound[rd] = MAXINT
        return setcode_i

    def build_clrbnd(instr):
        rd, rs = instr.rd, instr.rs

        def clrbnd(pc):
            value[rd] = value[rs]
            rbase[rd] = 0
            rbound[rd] = 0
        return clrbnd

    def build_markfree(instr):
        if temporal is None:
            def markfree_noop(pc):
                pass
            return markfree_noop
        rs, rt = instr.rs, instr.rt
        k = instr.imm or 0

        def markfree(pc):
            base = value[rs]
            size = value[rt] if rt is not None else k
            if size > 0:
                temporal.mark_freed(base, (base + size) & MASK32)
        return markfree

    # -- environment ---------------------------------------------------

    def build_sbrk(instr):
        rd, rs = instr.rd, instr.rs

        def sbrk(pc):
            old = mem_sbrk(to_signed(value[rs]))
            value[rd] = old
            rbase[rd] = 0
            rbound[rd] = 0
        return sbrk

    def build_print(instr):
        rs = instr.rs

        def print_(pc):
            emit("%d\n" % to_signed(value[rs]))
        return print_

    def build_printc(instr):
        rs = instr.rs

        def printc(pc):
            emit(chr(value[rs] & 0xFF))
        return printc

    def build_prints(instr):
        rs = instr.rs

        def prints(pc):
            emit(read_cstring(value[rs]))
        return prints

    def build_halt(instr):
        rs = instr.rs
        if rs is not None:
            def halt_r(pc):
                raise HaltSignal(to_signed(value[rs]))
            return halt_r
        k = instr.imm or 0

        def halt_i(pc):
            raise HaltSignal(k)
        return halt_i

    def build_abort(instr):
        rs = instr.rs
        if rs is not None:
            def abort_r(pc):
                raise AbortError(to_signed(value[rs]))
            return abort_r
        k = instr.imm or 0

        def abort_i(pc):
            raise AbortError(k)
        return abort_i

    builders = {
        Op.MOV: build_mov, Op.XCHG: build_xchg, Op.LEA: build_lea,
        Op.ADD: build_addsub, Op.SUB: build_addsub,
        Op.MUL: build_nonprop, Op.DIV: build_nonprop,
        Op.MOD: build_nonprop, Op.AND: build_nonprop,
        Op.OR: build_nonprop, Op.XOR: build_nonprop,
        Op.SHL: build_nonprop, Op.SHR: build_nonprop,
        Op.SRA: build_nonprop,
        Op.NEG: build_neg, Op.NOT: build_not,
        Op.SEQ: build_cmp, Op.SNE: build_cmp, Op.SLT: build_cmp,
        Op.SLE: build_cmp, Op.SGT: build_cmp, Op.SGE: build_cmp,
        Op.SLTU: build_cmp, Op.SGEU: build_cmp,
        Op.LOAD: build_load, Op.STORE: build_store,
        Op.JMP: build_jmp, Op.BEQZ: build_beqz, Op.BNEZ: build_bnez,
        Op.CALL: build_call, Op.CALLR: build_callr, Op.RET: build_ret,
        Op.SETBOUND: build_setbound,
        Op.READBASE: build_readbase, Op.READBOUND: build_readbound,
        Op.SETUNSAFE: build_setunsafe, Op.SETCODE: build_setcode,
        Op.CLRBND: build_clrbnd, Op.MARKFREE: build_markfree,
        Op.SBRK: build_sbrk,
        Op.PRINT: build_print, Op.PRINTC: build_printc,
        Op.PRINTS: build_prints,
        Op.HALT: build_halt, Op.ABORT: build_abort,
    }
    if lazy:
        # lazy closures are built on first use inside the run loop;
        # only the builder setup is charged to the decode phase
        code = _LazyCode(builders, cpu.program.instrs)
    else:
        code = [builders[instr.op](instr) for instr in cpu.program.instrs]
    cpu.timers.add("decode", perf_counter() - t0)
    return code


def execute_decoded(cpu):
    """Run ``cpu`` to halt on the decoded stream.

    Mirrors the legacy loop's observable behaviour exactly: the same
    instruction counting (including the instruction that busts the
    limit), the same faulting-pc annotation on traps, and the same
    final ``cpu.pc``/``cpu.icount`` on every exit path.
    """
    from repro.machine.cpu import RunResult

    code = decode_program(cpu)
    n = len(code)
    limit = cpu.config.max_instructions
    pc = cpu.pc
    lpc = pc
    icount = cpu.icount
    t0 = perf_counter()
    timed = False
    try:
        # ``pc`` can never go negative (branch targets are label
        # indices, indirect targets are masked-unsigned register
        # values), so the out-of-range fetch of the legacy loop is the
        # IndexError of ``code[pc]`` — the common path pays no bounds
        # compare at all.
        while True:
            fn = code[pc]
            lpc = pc
            icount += 1
            if icount > limit:
                raise InstructionLimitExceeded(limit)
            npc = fn(pc)
            pc = pc + 1 if npc is None else npc
    except HaltSignal as halt:
        # the phase must land before RunResult snapshots it
        cpu.timers.add("execute", perf_counter() - t0)
        timed = True
        cpu.icount = icount
        cpu.pc = pc
        return RunResult(cpu, halt.code)
    except IndexError:
        if 0 <= pc < n:  # a genuine IndexError from inside a handler
            cpu.icount = icount
            cpu.pc = lpc
            raise
        cpu.icount = icount
        cpu.pc = lpc
        raise MemoryFault(pc, "fetch").at(lpc)
    except Trap as trap:
        cpu.icount = icount
        cpu.pc = lpc
        raise trap.at(lpc)
    except BaseException:
        cpu.icount = icount
        cpu.pc = lpc
        raise
    finally:
        if not timed:
            cpu.timers.add("execute", perf_counter() - t0)
