"""Temporal-safety extension (Section 6.2).

HardBound proper addresses only *spatial* safety; Section 6.2 notes
that the paper's per-word metadata makes Purify/MemTracker-style
allocated/unallocated tracking "a natural extension".  This module
implements that extension:

* a ``markfree`` instruction (a non-privileged hint, like
  ``setbound``) tells the hardware a bounded region is dead: the
  instrumented ``free`` executes ``markfree`` on a pointer whose
  bounds cover the chunk's user words (minus the allocator's own
  free-list link, which stays live);
* the tracker records freed words; ``setbound`` re-arms them when the
  allocator reuses the chunk;
* a load or store to a freed word raises
  :class:`~repro.machine.errors.UseAfterFreeError`; freeing an
  already-freed region raises
  :class:`~repro.machine.errors.DoubleFreeError`.

Like the rest of HardBound, detection is exact for heap objects that
go through the instrumented allocator and silent for everything else
— this is the tracking-bit design of the papers cited in §6.2, not a
garbage collector.
"""

from __future__ import annotations

from typing import Set

from repro.layout import WORD
from repro.machine.errors import DoubleFreeError, UseAfterFreeError


class TemporalTracker:
    """Word-granular freed-region tracking."""

    __slots__ = ("_freed", "frees", "reuses", "checks")

    def __init__(self):
        self._freed: Set[int] = set()
        self.frees = 0
        self.reuses = 0
        self.checks = 0

    @staticmethod
    def _words(base: int, bound: int):
        return range(base & ~(WORD - 1), bound, WORD)

    def mark_allocated(self, base: int, bound: int) -> None:
        """A ``setbound`` re-arms any freed words it covers."""
        if not self._freed:
            return
        for addr in self._words(base, bound):
            if addr in self._freed:
                self._freed.discard(addr)
                self.reuses += 1

    def mark_freed(self, base: int, bound: int) -> None:
        """A ``markfree`` poisons the covered words.

        Raises :class:`DoubleFreeError` when the region is already
        entirely dead (the signature of a double ``free``).
        """
        words = list(self._words(base, bound))
        if words and all(addr in self._freed for addr in words):
            raise DoubleFreeError(base)
        self.frees += 1
        self._freed.update(words)

    def check(self, addr: int, size: int) -> None:
        """Trap if [addr, addr+size) touches a freed word."""
        self.checks += 1
        first = addr & ~(WORD - 1)
        last = (addr + size - 1) & ~(WORD - 1)
        if first in self._freed or (last != first and
                                    last in self._freed):
            raise UseAfterFreeError(addr)

    def freed_words(self) -> int:
        return len(self._freed)
