"""Compilation driver: mode resolution, stdlib inclusion, pipeline."""

import pytest

from repro.isa import Program
from repro.machine import MachineConfig, SafetyMode
from repro.minic import InstrumentMode, compile_program, compile_to_asm
from repro.minic.driver import compile_and_run, mode_for_config


def test_mode_for_config():
    assert mode_for_config(MachineConfig.plain()) is InstrumentMode.NONE
    assert mode_for_config(MachineConfig.malloc_only()) is \
        InstrumentMode.HEAP_ONLY
    assert mode_for_config(MachineConfig.hardbound()) is \
        InstrumentMode.HARDBOUND


def test_compile_program_returns_linked_program():
    program = compile_program("int main() { return 0; }")
    assert isinstance(program, Program)
    assert "main" in program.labels
    assert "fn_main" in program.labels


def test_stdlib_can_be_excluded():
    with_lib = compile_to_asm("int main() { return 0; }")
    without = compile_to_asm("int main() { return 0; }",
                             include_stdlib=False)
    assert "fn_malloc" in with_lib
    assert "fn_malloc" not in without
    assert len(without) < len(with_lib)


def test_explicit_mode_overrides_config_default():
    # plain core, but explicitly instrumented binary: the paper's
    # forward-compatibility story (Section 4.5) — setbound runs as an
    # effective no-op and the program behaves identically
    result = compile_and_run("""
    int main() {
        int a[4];
        int *p = a;
        p[2] = 9;
        return p[2];
    }""", MachineConfig.plain(timing=False),
        mode=InstrumentMode.HARDBOUND)
    assert result.exit_code == 9


def test_instrumented_binary_is_larger():
    plain = compile_program("""
    int main() {
        int a[8];
        for (int i = 0; i < 8; i++) { a[i] = i; }
        return a[7];
    }""", InstrumentMode.NONE)
    hard = compile_program("""
    int main() {
        int a[8];
        for (int i = 0; i < 8; i++) { a[i] = i; }
        return a[7];
    }""", InstrumentMode.HARDBOUND)
    assert len(hard.instrs) > len(plain.instrs)


def test_same_binary_runs_on_all_cores():
    """One fully instrumented binary, three machine configurations."""
    source = """
    int main() {
        int *p = (int*)malloc(8);
        p[0] = 3; p[1] = 4;
        return p[0] * p[0] + p[1] * p[1];
    }"""
    program = compile_program(source, InstrumentMode.HARDBOUND)
    from repro.machine import CPU
    for config in (MachineConfig.plain(timing=False),
                   MachineConfig.malloc_only(timing=False),
                   MachineConfig.hardbound(timing=False)):
        assert CPU(program, config).run().exit_code == 25


def test_compile_and_run_default_config_is_hardbound():
    from repro.machine import BoundsError
    with pytest.raises(BoundsError):
        compile_and_run("""
        int main() {
            char *p = (char*)malloc(2);
            p[2] = 'x';
            return 0;
        }""")
