"""MiniC: the C-subset compiler used to drive HardBound.

The paper instruments C programs with a CIL source-to-source pass and
compiles with GCC; our substitute is a small, self-contained compiler
for a C subset rich enough for the Olden benchmarks and the
spatial-violation corpus: ints, chars, pointers, arrays, structs,
functions, full expression/statement syntax, ``sizeof``, casts and
string literals.

Pipeline: :mod:`lexer` → :mod:`parser` → :mod:`sema` (type checking +
annotation) → :mod:`codegen` (assembly text) → the ISA assembler.
Instrumentation modes (Section 3.2 of the paper):

* ``InstrumentMode.NONE`` — plain binary (the GCC baseline; even the
  explicit ``__setbound`` intrinsics are stripped);
* ``InstrumentMode.HEAP_ONLY`` — legacy binary whose only
  instrumentation is inside ``malloc`` (footnote 2's mode);
* ``InstrumentMode.HARDBOUND`` — additionally insert ``setbound`` for
  address-taken locals/globals, array decay, sub-object narrowing and
  string literals (full spatial safety).
"""

from repro.minic.errors import MiniCError, LexError, ParseError, TypeError_
from repro.minic.driver import (
    InstrumentMode,
    compile_program,
    compile_to_asm,
    compile_and_run,
)
from repro.minic.stdlib import STDLIB_SOURCE

__all__ = [
    "MiniCError",
    "LexError",
    "ParseError",
    "TypeError_",
    "InstrumentMode",
    "compile_program",
    "compile_to_asm",
    "compile_and_run",
    "STDLIB_SOURCE",
]
