"""E8: the prior approaches' blind spots vs. HardBound (Sections 2.1-2.2).

Two structural incompleteness results the paper uses as motivation:

* the object table gives ``&node`` and ``node.str`` the same entry
  (identical addresses), so member overflows that stay inside the
  struct are invisible;
* red-zone tripwires miss overflows whose stride jumps the zone.

Both scenarios trap under HardBound (see also
tests/minic/test_violations.py::TestSubObjectViolations).
"""

import pytest

from repro.baselines import RedZoneChecker, SplayTree
from repro.machine import BoundsError, CPU, MachineConfig
from repro.minic import InstrumentMode, compile_program


class TestObjectTableBlindSpot:
    def test_member_and_struct_share_one_entry(self):
        """node.str's address maps to the whole-node interval."""
        table = SplayTree()
        node_addr, node_size = 0x1000, 12     # {char str[5]; int x;}
        table.insert(node_addr, node_addr + node_size)
        # the overflow target (node.x at offset 8) is "in bounds"
        # according to the table, because str's pointer can only be
        # resolved to the whole-node interval:
        entry, _ = table.lookup(node_addr)        # ptr = node.str
        assert entry.start == node_addr
        overflow_target = node_addr + 8           # inside node.x
        assert entry.start <= overflow_target < entry.end, \
            "the object table considers the corrupting write legal"

    def test_hardbound_narrows_where_the_table_cannot(self):
        source = """
        struct rec { char str[5]; int x; };
        int main() {
            struct rec *n = (struct rec*)malloc(sizeof(struct rec));
            char *p = n->str;
            p[8] = 'x';      // within the struct, outside the member
            return 0;
        }"""
        program = compile_program(source, InstrumentMode.HARDBOUND)
        with pytest.raises(BoundsError):
            CPU(program, MachineConfig.hardbound(timing=False)).run()


class TestRedZoneBlindSpot:
    #: a Purify-style allocator: 4 unallocated bytes between objects
    #: (the stdlib allocator's internal header bookkeeping would
    #: confuse a validity-map observer, as it would real Purify
    #: without its malloc interposition layer)
    SOURCE = """
    void *rzmalloc(int n) {
        return __setbound(sbrk(n + 4), n);   // 4-byte gap after
    }
    int main() {
        char *a = (char*)rzmalloc(8);
        char *b = (char*)rzmalloc(8);
        b[0] = 'b';                  // neighbouring valid object
        a[%d] = 'X';
        return 0;
    }"""

    def _run_with_checker(self, index, zone=4):
        source = self.SOURCE % index
        program = compile_program(source, InstrumentMode.HEAP_ONLY,
                                  include_stdlib=False)
        # the tripwire run uses a *plain* core (the binary still calls
        # setbound inside the allocator, which the checker observes),
        # so the buggy access actually executes
        cpu = CPU(program, MachineConfig.plain(timing=False))
        checker = RedZoneChecker(zone=zone)
        cpu.observer = checker
        cpu.run()
        # reference run: does HardBound's malloc-only mode catch it?
        hardbound_caught = False
        try:
            CPU(program, MachineConfig.malloc_only(timing=False)).run()
        except BoundsError:
            hardbound_caught = True
        return checker, hardbound_caught

    def test_contiguous_overflow_hits_the_zone(self):
        checker, hb = self._run_with_checker(index=8)
        assert checker.detected(), "off-by-one should hit the red zone"
        assert hb, "HardBound catches it too"

    def test_far_overflow_jumps_the_zone(self):
        # a[14] lands beyond the 4-byte zone, inside object b
        checker, hb = self._run_with_checker(index=14)
        assert not checker.detected(), \
            "the tripwire should be jumped clean over"
        assert hb, "HardBound still catches it"

    def test_zone_bookkeeping(self):
        checker = RedZoneChecker(zone=4)
        checker.on_setbound(0x1000, 8)
        assert checker.is_valid(0x1000)
        assert checker.is_valid(0x1007)
        assert checker.is_red(0x1008)
        assert checker.is_red(0x100B)
        assert not checker.is_red(0x100C)
        # an adjacent later allocation reclaims its red bytes
        checker.on_setbound(0x1008, 8)
        assert checker.is_valid(0x1008)
        assert not checker.is_red(0x1008)
