"""Shared fixtures for the figure-regeneration benchmarks.

The full measurement matrix (9 Olden workloads x {baseline, three
encodings, CCured-sim, object-table}) is computed once per pytest
session and shared by every figure benchmark.  Each benchmark writes
its regenerated table to ``results/`` so EXPERIMENTS.md can point at
concrete artifacts.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.runner import BenchmarkRun, run_benchmark_matrix
from repro.machine.config import MachineConfig
from repro.harness.runner import ENCODINGS, run_workload
from repro.workloads.registry import WORKLOADS

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                           "results")

_cache = {}


def write_result(name: str, text: str) -> str:
    """Persist a regenerated table under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path


@pytest.fixture(scope="session")
def matrix():
    """The full Section-5 measurement matrix (computed once)."""
    if "matrix" not in _cache:
        _cache["matrix"] = run_benchmark_matrix(with_baselines=True)
    return _cache["matrix"]


@pytest.fixture(scope="session")
def matrix_check_uop():
    """The Section 5.4 ablation matrix (check costs an explicit µop)."""
    if "check_uop" not in _cache:
        out = {}
        for name, wl in WORKLOADS.items():
            bench = BenchmarkRun(wl)
            bench.base = run_workload(wl, MachineConfig.plain())
            for enc in ENCODINGS:
                bench.encodings[enc] = run_workload(
                    wl, MachineConfig.hardbound(encoding=enc,
                                                check_uop=True))
            out[name] = bench
        _cache["check_uop"] = out
    return _cache["check_uop"]
