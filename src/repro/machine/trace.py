"""Execution tracing: per-instruction logs with bounds metadata.

Wraps a CPU's dispatch table so every executed instruction is
recorded (pc, disassembly, destination triple).  Intended for
debugging compiler output and violation reports::

    cpu = CPU(program, config)
    tracer = Tracer(cpu, limit=200)
    try:
        cpu.run()
    finally:
        print(tracer.format())

Tracing costs an extra Python call per instruction — use it on small
programs, not benchmark runs.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.isa.disasm import disassemble
from repro.isa.opcodes import reg_name


class TraceEntry(NamedTuple):
    pc: int
    text: str
    dest: Optional[str]       # "r3 = {value; base; bound}" or None


class Tracer:
    """Records the last ``limit`` executed instructions of a CPU."""

    def __init__(self, cpu, limit: int = 1000):
        self.cpu = cpu
        self.limit = limit
        self.entries: List[TraceEntry] = []
        self.total = 0
        self._wrap_dispatch()

    def _wrap_dispatch(self) -> None:
        cpu = self.cpu
        # wrapping the dispatch table only observes the legacy loop;
        # the decoded engine never consults it
        cpu.force_legacy = True
        original = dict(cpu._dispatch)

        def make_wrapper(op, handler):
            def wrapped(instr):
                try:
                    result = handler(instr)
                finally:
                    # record in a finally so traps and halt are traced
                    self._record(instr)
                return result
            return wrapped

        for op, handler in original.items():
            cpu._dispatch[op] = make_wrapper(op, handler)

    def _record(self, instr) -> None:
        self.total += 1
        dest = None
        if instr.rd is not None and instr.op.value not in ("store",):
            regs = self.cpu.regs
            rd = instr.rd
            dest = "%s = {0x%08x; 0x%08x; 0x%08x}" % (
                reg_name(rd), regs.value[rd], regs.base[rd],
                regs.bound[rd])
        self.entries.append(TraceEntry(self.cpu.pc,
                                       disassemble(instr), dest))
        if len(self.entries) > self.limit:
            del self.entries[0]

    def format(self, last: Optional[int] = None) -> str:
        """Render the trace tail as aligned text."""
        entries = self.entries if last is None else self.entries[-last:]
        lines = []
        for entry in entries:
            line = "%6d: %-34s" % (entry.pc, entry.text)
            if entry.dest:
                line += "  ; " + entry.dest
            lines.append(line.rstrip())
        return "\n".join(lines)

    def pointer_writes(self) -> List[TraceEntry]:
        """Entries whose destination carries bounds (debug helper)."""
        out = []
        for entry in self.entries:
            if entry.dest and not entry.dest.endswith(
                    "{0x00000000; 0x00000000; 0x00000000}") and \
                    "; 0x00000000; 0x00000000}" not in entry.dest:
                out.append(entry)
        return out
