"""One declarative entry point for every sensitivity sweep.

The harness grew three near-identical sweep functions —
``sweep_ccured_safe_fraction_parallel``,
``sweep_objtable_elision_parallel``, ``sweep_tag_cache_parallel`` —
each hand-rolling the same shape: build a (workload × grid) job
list, resolve it through the result cache, shard the misses over a
pool, reduce.  :func:`run_sweep` replaces all three behind a
declarative :class:`SweepSpec`::

    from repro.harness import SweepSpec, run_sweep

    spec = SweepSpec(kind="objtable", workloads=("treeadd", "power"),
                     grid=(0.0, 0.5, 0.95))
    curve = run_sweep(spec, workers=4, cache=ResultCache(".repro-cache"))

and every spec executes identically on all three backends:

* in process (``workers=1``),
* a fresh pool (``workers=N`` — :func:`map_jobs`),
* the persistent service (``service=`` a
  :class:`repro.service.Client` or in-process ``Service``), where
  cells are submitted with their content-hash keys so identical
  in-flight cells deduplicate and the shared store serves repeats.

The old entry points survive as thin deprecated wrappers in
:mod:`repro.harness.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.harness.parallel import (
    CACHE_SCHEMA,
    ResultCache,
    _ccured_fraction_cell,
    _knob_descriptor,
    _objtable_descriptor,
    _objtable_elision_cell,
    _run_cached_jobs,
    _tag_cache_cell,
    _tag_cache_descriptor,
)
from repro.harness.runner import source_digest
from repro.machine.config import (ENGINE_SUPERBLOCKS, ENGINES,
                                  MachineConfig)
from repro.workloads.registry import WORKLOADS

#: registered sweep kinds (the validation error lists these)
SWEEP_KINDS = ("ccured", "objtable", "tagcache")


@dataclass(frozen=True)
class SweepSpec:
    """Declarative identity of one sensitivity sweep.

    ``kind``
        one of :data:`SWEEP_KINDS` — ``"ccured"`` (SAFE-fraction
        grid), ``"objtable"`` (elision-fraction grid), or
        ``"tagcache"`` (tag-metadata-cache size grid);
    ``workloads``
        workload names (any iterable; stored as a tuple);
    ``grid``
        the swept values — fractions for the first two kinds, sizes
        in bytes for ``"tagcache"``;
    ``encoding``
        pointer encoding (``"tagcache"`` only);
    ``engine``
        execution engine for the cells that take one (the ccured
        cells run the software fat-pointer engine and ignore it).
    """

    kind: str
    workloads: Tuple[str, ...]
    grid: Tuple = field(default_factory=tuple)
    encoding: str = "extern4"
    engine: str = ENGINE_SUPERBLOCKS

    def __post_init__(self):
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "grid", tuple(self.grid))
        if self.kind not in SWEEP_KINDS:
            raise ValueError("unknown sweep kind %r (have: %s)"
                             % (self.kind, ", ".join(SWEEP_KINDS)))
        if not self.workloads:
            raise ValueError("SweepSpec needs at least one workload")
        if not self.grid:
            raise ValueError("SweepSpec needs a non-empty grid")
        for name in self.workloads:
            if name not in WORKLOADS:
                raise ValueError("unknown workload %r (have: %s)"
                                 % (name, ", ".join(WORKLOADS)))
        if self.engine not in ENGINES:
            raise ValueError("unknown engine %r (have: %s)"
                             % (self.engine, ", ".join(ENGINES)))


def _ccured_descriptor(name: str, fraction: Optional[float]) -> dict:
    """Cell identity for the CCured SAFE-fraction sweep.

    New with the unified API: these cells were never cacheable
    before.  ``fraction=None`` is the plain-core baseline cell.
    """
    descr = {
        "schema": CACHE_SCHEMA,
        "sweep": "ccured-safe",
        "source": source_digest(WORKLOADS[name].source),
        "workload": name,
        "fraction": fraction,
    }
    descr.update(_knob_descriptor(MachineConfig()))
    return descr


def _ccured_jobs(spec: SweepSpec):
    jobs = [(name, None) for name in spec.workloads]
    jobs += [(name, fraction) for fraction in spec.grid
             for name in spec.workloads]
    return jobs


def _ccured_reduce(spec: SweepSpec, results: Dict) -> Dict[float, float]:
    # cells return (name, fraction, cycles) tuples
    cycles = {job: results[job][2] for job in results}
    return {fraction: sum(cycles[(name, fraction)]
                          / cycles[(name, None)]
                          for name in spec.workloads)
            / len(spec.workloads)
            for fraction in spec.grid}


def _objtable_jobs(spec: SweepSpec):
    jobs = [(name, None, spec.engine) for name in spec.workloads]
    jobs += [(name, fraction, spec.engine) for fraction in spec.grid
             for name in spec.workloads]
    return jobs


def _objtable_reduce(spec: SweepSpec,
                     results: Dict) -> Dict[float, float]:
    out: Dict[float, float] = {}
    for fraction in spec.grid:
        total = 0.0
        for name in spec.workloads:
            base = results[(name, None, spec.engine)]
            summary = results[(name, fraction, spec.engine)]
            total += (base.cycles + summary.extra_uops) / base.cycles
        out[fraction] = total / len(spec.workloads)
    return out


def _tagcache_jobs(spec: SweepSpec):
    return [(name, size, spec.encoding, spec.engine)
            for name in spec.workloads for size in spec.grid]


def _tagcache_reduce(spec: SweepSpec, results: Dict
                     ) -> Dict[Tuple[str, int], Dict[str, float]]:
    out: Dict[Tuple[str, int], Dict[str, float]] = {}
    for name in spec.workloads:
        for size in spec.grid:
            run = results[(name, size, spec.encoding, spec.engine)]
            tag = run.mem_stats.kinds["tag"]
            out[(name, size)] = {
                "cycles": run.cycles,
                "tag_miss_rate": (tag.l1_misses / tag.accesses
                                  if tag.accesses else 0.0),
            }
    return out


class _SweepKind:
    __slots__ = ("jobs", "cell", "descriptor", "reduce")

    def __init__(self, jobs: Callable, cell: Callable,
                 descriptor: Callable, reduce: Callable):
        self.jobs = jobs
        self.cell = cell
        self.descriptor = descriptor
        self.reduce = reduce


_KINDS: Dict[str, _SweepKind] = {
    "ccured": _SweepKind(_ccured_jobs, _ccured_fraction_cell,
                         _ccured_descriptor, _ccured_reduce),
    "objtable": _SweepKind(_objtable_jobs, _objtable_elision_cell,
                           _objtable_descriptor, _objtable_reduce),
    "tagcache": _SweepKind(_tagcache_jobs, _tag_cache_cell,
                           _tag_cache_descriptor, _tagcache_reduce),
}


def run_sweep(spec: SweepSpec, *, workers: int = 2,
              cache: Optional[ResultCache] = None, service=None):
    """Execute one :class:`SweepSpec` and reduce it (see module).

    Returns the same shape the sweep's legacy entry point returned:
    ``{fraction: mean overhead}`` for ``ccured``/``objtable``,
    ``{(workload, size): {"cycles", "tag_miss_rate"}}`` for
    ``tagcache``.  ``service`` (a ``repro.service`` Client or
    Service) takes precedence over ``workers``.
    """
    kind = _KINDS[spec.kind]
    results = _run_cached_jobs(kind.jobs(spec), kind.cell,
                               kind.descriptor, workers, cache,
                               service=service)
    return kind.reduce(spec, results)
