"""HardBound core: bounded-pointer propagation, checking and metadata.

This package is the paper's primary contribution.  The
:class:`~repro.hardbound.engine.HardBoundEngine` implements the
hardware duties of Section 3.1/4.4: implicit bounds checks on every
dereference, metadata propagation to and from memory, tag-space and
shadow-space traffic, and opportunistic compression.  It plugs into
:class:`repro.machine.cpu.CPU`, which implements register-to-register
propagation (Figure 3A/B) inline.
"""

from repro.hardbound.engine import HardBoundEngine, HardBoundStats

__all__ = ["HardBoundEngine", "HardBoundStats"]
