"""em3d: electromagnetic wave propagation on a bipartite graph (Olden).

Two linked lists of nodes (E-field and H-field); each node depends on
a fixed number of random nodes from the other list, with per-edge
coefficients.  Each iteration updates every node from its dependencies
— the classic irregular-gather kernel.  Olden's doubles become 16.16
fixed point.
"""

#: Olden em3d nodes carry pointer+coefficient arrays sized by the
#: out-degree; degree 7 gives 64-byte nodes (matching Olden's typical
#: node footprint), which only the 11-bit encoding can compress.
N_NODES = 32    # per side
DEGREE = 7
ITERATIONS = 6

SOURCE = """
struct enode {
    int value;
    struct enode *next;
    struct enode *from[%(degree)d];
    int coeff[%(degree)d];
};

int __seed;

int nextrand() {
    __seed = __seed * 1103515245 + 12345;
    return (__seed >> 8) & 32767;
}

struct enode *make_list(int n) {
    struct enode *head = (struct enode*)0;
    for (int i = 0; i < n; i++) {
        struct enode *e = (struct enode*)malloc(sizeof(struct enode));
        e->value = nextrand();
        e->next = head;
        for (int d = 0; d < %(degree)d; d++) {
            e->from[d] = (struct enode*)0;
            e->coeff[d] = (nextrand() & 255) + 1;   // ~[1/256, 1)
        }
        head = e;
    }
    return head;
}

struct enode *pick(struct enode *list, int index, int n) {
    struct enode *e = list;
    int skip = index %% n;
    for (int i = 0; i < skip; i++) { e = e->next; }
    return e;
}

void link_deps(struct enode *to_list, struct enode *from_list, int n) {
    for (struct enode *e = to_list; e; e = e->next) {
        for (int d = 0; d < %(degree)d; d++) {
            e->from[d] = pick(from_list, nextrand(), n);
        }
    }
}

void compute(struct enode *list) {
    for (struct enode *e = list; e; e = e->next) {
        int acc = 0;
        for (int d = 0; d < %(degree)d; d++) {
            acc += (e->coeff[d] * e->from[d]->value) >> 8;
        }
        e->value = e->value - (acc >> 2);
    }
}

int checksum(struct enode *list) {
    int sum = 0;
    for (struct enode *e = list; e; e = e->next) {
        sum = (sum * 31 + (e->value & 65535)) %% 1000003;
    }
    return sum;
}

int main() {
    __seed = 777;
    struct enode *elist = make_list(%(n)d);
    struct enode *hlist = make_list(%(n)d);
    link_deps(elist, hlist, %(n)d);
    link_deps(hlist, elist, %(n)d);
    for (int it = 0; it < %(iters)d; it++) {
        compute(elist);
        compute(hlist);
    }
    print(checksum(elist));
    print(checksum(hlist));
    return 0;
}
""" % {"n": N_NODES, "degree": DEGREE, "iters": ITERATIONS}
