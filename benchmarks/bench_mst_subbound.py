"""E10 — Section 5.3: mst's programmer-specified sub-bounding.

The paper inserted setbound tightenings at three places in mst where
a pointer into the middle of an array is used as an exclusive element
pointer; this "reduces overheads by avoiding the propagation of
difficult-to-compress pointers".  We compare the tightened mst (the
paper's benchmarked version) against the conservative variant.
"""

from conftest import write_result

from repro.harness.runner import run_workload
from repro.machine.config import MachineConfig
from repro.harness.figures import format_table
from repro.workloads.registry import MST_UNTIGHTENED, WORKLOADS


def test_mst_subbounding(benchmark):
    def measure():
        out = {}
        for label, wl in (("tightened", WORKLOADS["mst"]),
                          ("conservative", MST_UNTIGHTENED)):
            base = run_workload(wl, MachineConfig.plain())
            runs = {}
            for enc in ("extern4", "intern4", "intern11"):
                runs[enc] = run_workload(
                    wl, MachineConfig.hardbound(encoding=enc))
            out[label] = (base, runs)
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for label, (base, runs) in out.items():
        for enc, run in runs.items():
            rows.append([label, enc,
                         "%.3f" % (run.cycles / base.cycles),
                         "%.3f" % run.hb_stats.compression_ratio()])
    table = format_table(
        ["variant", "encoding", "overhead", "compressed-fraction"],
        rows, "E10: mst sub-bounding (Section 5.3)")
    print("\n" + table)
    write_result("mst_subbound.txt", table)

    # outputs must agree (tightening is semantics-preserving)
    t_base, t_runs = out["tightened"]
    c_base, c_runs = out["conservative"]
    assert t_base.output == c_base.output
    # tightening improves (or at least never hurts) compression
    for enc in t_runs:
        assert t_runs[enc].hb_stats.compression_ratio() >= \
            c_runs[enc].hb_stats.compression_ratio() - 1e-9, enc
