"""Basic-block fusion execution engine.

The decoded engine (:mod:`repro.machine.decode`) pays a fixed
dispatch tax per *instruction*: a list index, an instruction-limit
compare, a faulting-pc bookkeeping store, a closure call and a
next-pc select.  This module amortizes that tax over straight-line
runs:

1. **Block discovery** — a linear pass over the linked program finds
   block leaders (the entry point, branch/call targets, fallthrough
   points after control transfers, and ``setcode`` immediates, which
   are the ISA's function-pointer constants) and grows each leader
   into a maximal straight-line block, giving a CFG of
   :class:`BasicBlock` nodes.

2. **Superinstruction fusion** — each block is compiled into one
   *block closure*: a generated function executing the whole block
   in a single call.  Hot handler shapes (``mov``, ``add``/``sub``,
   compares, non-propagating ALU, branches, ``call``/``callr``/
   ``ret``) are inlined as source templates with their operands
   passed in as closure cells; everything else (memory operations,
   HardBound primitives, environment calls) calls the instruction's
   decoded closure from :func:`repro.machine.decode.decode_program`
   unchanged.  Generated code objects are cached by the block's
   *shape signature*, so two blocks with the same instruction shapes
   share one compilation.

3. **Block-threaded dispatch** — the run loop executes one block per
   iteration: one table lookup, one limit compare against the whole
   block length, one call.

Trap semantics stay **bit-identical** to the other engines without
slowing the happy path: the generator records which source line
belongs to which instruction offset, so when something raises, the
faulting offset is recovered from the exception traceback's line
number in the block frame and the instruction count is rewound to
exactly what the per-instruction engines would report.  Control
transfers into the middle of a block (a computed ``callr`` into a
non-leader pc) fall back to single-instruction stepping on the same
decoded closures, as does any block that could bust the instruction
limit mid-flight.
"""

from __future__ import annotations

import types
from typing import Dict, List, Optional, Tuple

from repro.isa.opcodes import Op, REG_RA
from repro.isa.program import Program
from repro.layout import MASK32, MAXINT
from repro.machine.errors import (
    HaltSignal,
    InstructionLimitExceeded,
    InvalidCodePointerError,
    MemoryFault,
    Trap,
)

#: opcodes that end a basic block (transfer or stop control)
TERMINATORS = frozenset({
    Op.JMP, Op.BEQZ, Op.BNEZ, Op.CALL, Op.CALLR, Op.RET,
    Op.HALT, Op.ABORT,
})

#: opcodes with a static branch/call target
_TARGETED = frozenset({Op.JMP, Op.BEQZ, Op.BNEZ, Op.CALL})

#: cap on fused block length; the capped tail simply becomes the next
#: block, entered by fallthrough
MAX_BLOCK_LEN = 64


class BasicBlock:
    """One CFG node: a maximal straight-line instruction run.

    ``succs`` holds the *static* successor pcs: branch targets and
    fallthrough points.  Indirect transfers (``callr``/``ret``) and
    program exit have no static successors.
    """

    __slots__ = ("start", "length", "succs")

    def __init__(self, start: int, length: int,
                 succs: Tuple[int, ...]):
        self.start = start
        self.length = length
        self.succs = succs

    @property
    def end(self) -> int:
        """pc one past the last instruction of the block."""
        return self.start + self.length

    def __repr__(self):
        return ("BasicBlock(%d..%d -> %s)"
                % (self.start, self.end - 1, list(self.succs)))


def find_leaders(program: Program) -> set:
    """Pcs where a basic block may begin.

    Leaders are the program entry, every static branch/call target,
    the instruction after every control transfer (branch fallthrough
    and call/``callr`` return point), and every in-range ``setcode``
    immediate — the only way this ISA materializes a code-pointer
    constant for an indirect call.
    """
    instrs = program.instrs
    n = len(instrs)
    leaders = set()
    if not n:
        return leaders
    leaders.add(program.entry)
    for i, instr in enumerate(instrs):
        op = instr.op
        if op in _TARGETED:
            target = instr.target
            if target is not None and 0 <= target < n:
                leaders.add(target)
            if i + 1 < n:
                leaders.add(i + 1)
        elif op in TERMINATORS:  # callr/ret/halt/abort
            if i + 1 < n:
                leaders.add(i + 1)
        elif op is Op.SETCODE and instr.rs is None:
            target = (instr.imm or 0) & MASK32
            if target < n:
                leaders.add(target)
    return leaders


def _static_succs(program: Program, start: int,
                  length: int) -> Tuple[int, ...]:
    instrs = program.instrs
    n = len(instrs)
    last = instrs[start + length - 1]
    op = last.op
    fall = start + length
    if op is Op.JMP:
        return (last.target,)
    if op in (Op.BEQZ, Op.BNEZ):
        succs = [last.target]
        if fall < n:
            succs.append(fall)
        return tuple(succs)
    if op is Op.CALL:
        return (last.target,)
    if op in (Op.CALLR, Op.RET, Op.HALT, Op.ABORT):
        return ()
    return (fall,) if fall < n else ()


def build_cfg(program: Program) -> List[BasicBlock]:
    """Discover the basic blocks of a linked program, in pc order.

    Every leader opens a block that extends to the first terminator,
    the instruction before the next leader, or the fusion cap,
    whichever comes first.  Capped tails open follow-on blocks at
    non-leader pcs (they are only ever entered by fallthrough).
    """
    instrs = program.instrs
    n = len(instrs)
    leaders = find_leaders(program)
    blocks: List[BasicBlock] = []
    starts = sorted(leaders)
    seen = set()
    while starts:
        next_starts: List[int] = []
        for start in starts:
            if start in seen:
                continue
            seen.add(start)
            j = start
            while True:
                if instrs[j].op in TERMINATORS:
                    break
                nxt = j + 1
                if nxt >= n or nxt in leaders or nxt in seen:
                    break
                if nxt - start >= MAX_BLOCK_LEN:
                    next_starts.append(nxt)
                    break
                j = nxt
            length = j - start + 1
            blocks.append(BasicBlock(
                start, length, _static_succs(program, start, length)))
        starts = sorted(next_starts)
    blocks.sort(key=lambda b: b.start)
    return blocks


# -- superinstruction templates ----------------------------------------------

# Each fused instruction is a *part*: a template id (the shape), the
# parameters it pulls into the generated function's closure, and its
# source lines.  Blocks with equal shape-id tuples share one compiled
# code object; operands travel as closure cells, never as literals.

_M32 = str(MASK32)
_MSB = str(0x80000000)
_MAX = str(MAXINT)
_RA = str(REG_RA)

#: comparison expression templates, mirrored from decode.build_cmp
_CMP_RR = {
    Op.SEQ: "value[rs{i}] == value[rt{i}]",
    Op.SNE: "value[rs{i}] != value[rt{i}]",
    Op.SLT: "(value[rs{i}] ^ %s) < (value[rt{i}] ^ %s)" % (_MSB, _MSB),
    Op.SLE: "(value[rs{i}] ^ %s) <= (value[rt{i}] ^ %s)" % (_MSB, _MSB),
    Op.SGT: "(value[rs{i}] ^ %s) > (value[rt{i}] ^ %s)" % (_MSB, _MSB),
    Op.SGE: "(value[rs{i}] ^ %s) >= (value[rt{i}] ^ %s)" % (_MSB, _MSB),
    Op.SLTU: "value[rs{i}] < value[rt{i}]",
    Op.SGEU: "value[rs{i}] >= value[rt{i}]",
}
_CMP_RI = {
    Op.SEQ: "value[rs{i}] == k{i}",
    Op.SNE: "value[rs{i}] != k{i}",
    Op.SLT: "(value[rs{i}] ^ %s) < k{i}" % _MSB,
    Op.SLE: "(value[rs{i}] ^ %s) <= k{i}" % _MSB,
    Op.SGT: "(value[rs{i}] ^ %s) > k{i}" % _MSB,
    Op.SGE: "(value[rs{i}] ^ %s) >= k{i}" % _MSB,
    Op.SLTU: "value[rs{i}] < k{i}",
    Op.SGEU: "value[rs{i}] >= k{i}",
}
_SIGNED_CMPS = frozenset({Op.SLT, Op.SLE, Op.SGT, Op.SGE})
_NONPROP = frozenset({Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
                      Op.SHL, Op.SHR, Op.SRA})


class _Part:
    """One fused instruction: shape id, closure params, source lines."""

    __slots__ = ("shape", "params", "lines")

    def __init__(self, shape: str, params: List[Tuple[str, object]],
                 lines: List[str]):
        self.shape = shape
        self.params = params
        self.lines = lines


def _closure_part(i: int, fn, terminator: bool,
                  term_pc: int) -> _Part:
    if terminator:
        return _Part("ft", [("f%d" % i, fn), ("t%d" % i, term_pc)],
                     ["return f{i}(t{i})".format(i=i)])
    return _Part("f", [("f%d" % i, fn)], ["f{i}(0)".format(i=i)])


def _template_part(instr, i: int, pc: int, observer_none: bool,
                   full_mode: bool) -> Optional[_Part]:
    """Template for one instruction, or ``None`` to use its closure.

    Every template is a source-level copy of the corresponding
    decoded closure body (same statement order, same trap types);
    the engine differential suite enforces the equivalence.
    """
    op = instr.op
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    if op is Op.MOV:
        if rs is not None:
            return _Part("movrr", [("rd%d" % i, rd), ("rs%d" % i, rs)],
                         ["value[rd{i}] = value[rs{i}]",
                          "rbase[rd{i}] = rbase[rs{i}]",
                          "rbound[rd{i}] = rbound[rs{i}]"])
        return _Part("movri",
                     [("rd%d" % i, rd),
                      ("k%d" % i, (instr.imm or 0) & MASK32)],
                     ["value[rd{i}] = k{i}",
                      "rbase[rd{i}] = 0",
                      "rbound[rd{i}] = 0"])
    if op in (Op.ADD, Op.SUB) and observer_none:
        if rt is not None:
            sign = "-" if op is Op.SUB else "+"
            return _Part("addsubrr" + sign,
                         [("rd%d" % i, rd), ("rs%d" % i, rs),
                          ("rt%d" % i, rt)],
                         ["v = (value[rs{i}] %s value[rt{i}]) & %s"
                          % (sign, _M32),
                          "if rbase[rs{i}] or rbound[rs{i}]:",
                          "    value[rd{i}] = v",
                          "    rbase[rd{i}] = rbase[rs{i}]",
                          "    rbound[rd{i}] = rbound[rs{i}]",
                          "else:",
                          "    value[rd{i}] = v",
                          "    rbase[rd{i}] = rbase[rt{i}]",
                          "    rbound[rd{i}] = rbound[rt{i}]"])
        k = instr.imm or 0
        if op is Op.SUB:
            k = -k
        return _Part("addsubri",
                     [("rd%d" % i, rd), ("rs%d" % i, rs),
                      ("k%d" % i, k)],
                     ["v = (value[rs{i}] + k{i}) & %s" % _M32,
                      "if rbase[rs{i}] or rbound[rs{i}]:",
                      "    value[rd{i}] = v",
                      "    rbase[rd{i}] = rbase[rs{i}]",
                      "    rbound[rd{i}] = rbound[rs{i}]",
                      "else:",
                      "    value[rd{i}] = v",
                      "    rbase[rd{i}] = 0",
                      "    rbound[rd{i}] = 0"])
    if op in _CMP_RR:
        if rt is not None:
            expr = _CMP_RR[op]
            shape = "cmp_rr_" + op.value
            params = [("rd%d" % i, rd), ("rs%d" % i, rs),
                      ("rt%d" % i, rt)]
        else:
            # mirror build_cmp's immediate pre-transformations
            k = instr.imm or 0
            if op in (Op.SEQ, Op.SNE):
                k &= MASK32
            elif op in _SIGNED_CMPS:
                k = (k & MASK32) ^ 0x80000000
            expr = _CMP_RI[op]
            shape = "cmp_ri_" + op.value
            params = [("rd%d" % i, rd), ("rs%d" % i, rs),
                      ("k%d" % i, k)]
        return _Part(shape, params,
                     ["value[rd{i}] = 1 if " + expr + " else 0",
                      "rbase[rd{i}] = 0",
                      "rbound[rd{i}] = 0"])
    if op in _NONPROP:
        from repro.machine.decode import _NONPROP_FNS
        fn = _NONPROP_FNS[op]
        if rt is not None:
            return _Part("np_rr",
                         [("fn%d" % i, fn), ("rd%d" % i, rd),
                          ("rs%d" % i, rs), ("rt%d" % i, rt)],
                         ["value[rd{i}] = fn{i}(value[rs{i}], "
                          "value[rt{i}]) & %s" % _M32,
                          "rbase[rd{i}] = 0",
                          "rbound[rd{i}] = 0"])
        return _Part("np_ri",
                     [("fn%d" % i, fn), ("rd%d" % i, rd),
                      ("rs%d" % i, rs), ("k%d" % i, instr.imm or 0)],
                     ["value[rd{i}] = fn{i}(value[rs{i}], k{i}) & %s"
                      % _M32,
                      "rbase[rd{i}] = 0",
                      "rbound[rd{i}] = 0"])
    if op is Op.JMP:
        return _Part("jmp", [("t%d" % i, instr.target)],
                     ["return t{i}"])
    if op is Op.BEQZ:
        return _Part("beqz", [("t%d" % i, instr.target),
                              ("rs%d" % i, rs)],
                     ["return t{i} if value[rs{i}] == 0 else None"])
    if op is Op.BNEZ:
        return _Part("bnez", [("t%d" % i, instr.target),
                              ("rs%d" % i, rs)],
                     ["return t{i} if value[rs{i}] != 0 else None"])
    if op is Op.CALL:
        return _Part("call", [("t%d" % i, instr.target),
                              ("r%d" % i, (pc + 1) & MASK32)],
                     ["value[%s] = r{i}" % _RA,
                      "rbase[%s] = %s" % (_RA, _MAX),
                      "rbound[%s] = %s" % (_RA, _MAX),
                      "return t{i}"])
    if op is Op.RET:
        lines = ["t = value[%s]" % _RA]
        if full_mode:
            lines += ["if rbase[%s] != %s or rbound[%s] != %s:"
                      % (_RA, _MAX, _RA, _MAX),
                      "    raise _icpe(t)"]
        lines += ["if t >= _n:",
                  "    raise _icpe(t)",
                  "return t"]
        return _Part("ret%d" % full_mode, [], lines)
    if op is Op.CALLR:
        lines = ["t = value[rs{i}]"]
        if full_mode:
            lines += ["if rbase[rs{i}] != %s or rbound[rs{i}] != %s:"
                      % (_MAX, _MAX),
                      "    raise _icpe(t)"]
        lines += ["if t >= _n:",
                  "    raise _icpe(t)",
                  "value[%s] = r{i}" % _RA,
                  "rbase[%s] = %s" % (_RA, _MAX),
                  "rbound[%s] = %s" % (_RA, _MAX),
                  "return t"]
        return _Part("callr%d" % full_mode,
                     [("rs%d" % i, rs), ("r%d" % i, (pc + 1) & MASK32)],
                     lines)
    return None


#: pseudo-filename of the generated fuser source (shows in tracebacks)
_FUSE_FILENAME = "<repro-block-fuse>"

#: shape signature -> (fuse function, block code object)
_fuse_cache: Dict[Tuple[str, ...], tuple] = {}
#: block code object -> {line number -> instruction offset}
_line_maps: Dict[object, Dict[int, int]] = {}

#: shared environment parameters appended to every fuser signature
_ENV_PARAMS = ("value", "rbase", "rbound", "_n", "_icpe")


def _compile_fuser(signature: Tuple[str, ...],
                   parts: List[_Part]):
    """Compile (or fetch) the fuser for a block shape signature."""
    cached = _fuse_cache.get(signature)
    if cached is not None:
        return cached
    names: List[str] = []
    for part in parts:
        names.extend(name for name, _ in part.params)
    header = "def _fuse(%s):" % ", ".join(list(names) + list(_ENV_PARAMS))
    lines = [header, "    def _block(pc):"]
    line_of: Dict[int, int] = {}
    for offset, part in enumerate(parts):
        fmt = {"i": offset}
        for raw in part.lines:
            lines.append("        " + raw.format(**fmt))
            line_of[len(lines)] = offset
    lines.append("    return _block")
    namespace: dict = {}
    exec(compile("\n".join(lines), _FUSE_FILENAME, "exec"), namespace)
    fuse = namespace["_fuse"]
    block_code = next(const for const in fuse.__code__.co_consts
                      if isinstance(const, types.CodeType)
                      and const.co_name == "_block")
    entry = (fuse, block_code)
    _fuse_cache[signature] = entry
    _line_maps[block_code] = line_of
    return entry


def build_block_table(cpu, code: list) -> list:
    """Fuse every CFG block of the cpu's program over its closures.

    Returns a pc-indexed table: ``None`` at non-block pcs, else
    ``(block_closure, length, fallthrough_pc, last_pc)``.
    """
    program = cpu.program
    instrs = program.instrs
    observer_none = cpu.observer is None
    full_mode = cpu.full_mode
    regs = cpu.regs
    env = (regs.value, regs.base, regs.bound, len(instrs),
           InvalidCodePointerError)
    table: list = [None] * len(code)
    for block in build_cfg(program):
        start, length = block.start, block.length
        parts: List[_Part] = []
        for offset in range(length):
            pc = start + offset
            part = _template_part(instrs[pc], offset, pc,
                                  observer_none, full_mode)
            if part is None:
                part = _closure_part(offset, code[pc],
                                     offset == length - 1, pc)
            parts.append(part)
        signature = tuple(part.shape for part in parts)
        fuse, _block_code = _compile_fuser(signature, parts)
        args = [value for part in parts for _, value in part.params]
        fn = fuse(*(args + list(env)))
        table[start] = (fn, length, start + length, start + length - 1)
    return table


def _trap_offset(exc: BaseException) -> Optional[int]:
    """Instruction offset within the dispatched block, if any.

    Walks the exception's traceback for a generated block frame and
    maps its line number through the block's line table to the
    instruction offset that raised.  Returns ``None`` when the
    exception did not pass through a block closure (single-step
    dispatch, or a fault in the driver itself).
    """
    tb = exc.__traceback__
    offset = None
    while tb is not None:
        line_of = _line_maps.get(tb.tb_frame.f_code)
        if line_of is not None:
            offset = line_of.get(tb.tb_lineno, offset)
        tb = tb.tb_next
    return offset


# -- block-threaded run loop -------------------------------------------------

def execute_blocks(cpu):
    """Run ``cpu`` to halt on fused basic blocks.

    Observable behaviour is bit-identical to the legacy and decoded
    engines: the same statistics, the same trap types/messages, the
    same faulting pc and instruction count on every exit path.  The
    fast path dispatches whole blocks; control transfers into
    non-leader pcs and blocks that could cross the instruction limit
    are single-stepped on the underlying decoded closures.
    """
    from repro.machine.cpu import RunResult
    from repro.machine.decode import decode_program

    code = decode_program(cpu)
    table = build_block_table(cpu, code)
    n = len(code)
    limit = cpu.config.max_instructions
    pc = cpu.pc
    lpc = pc
    icount = cpu.icount
    blen = 1
    try:
        while True:
            entry = table[pc]
            if entry is not None:
                fn, blen, fall, last = entry
                nic = icount + blen
                if nic <= limit:
                    icount = nic
                    lpc = last
                    npc = fn(pc)
                    pc = fall if npc is None else npc
                    continue
            # single-step: mid-block entry, or the limit may fire
            # within the block — mirror the decoded loop exactly
            lpc = pc
            icount += 1
            if icount > limit:
                raise InstructionLimitExceeded(limit)
            npc = code[pc](pc)
            pc = pc + 1 if npc is None else npc
    except HaltSignal as halt:
        offset = _trap_offset(halt)
        if offset is None:
            cpu.icount = icount
            cpu.pc = pc
        else:
            cpu.icount = icount - (blen - offset - 1)
            cpu.pc = lpc - blen + 1 + offset
        return RunResult(cpu, halt.code)
    except IndexError as exc:
        offset = _trap_offset(exc)
        if offset is not None:
            # genuine IndexError inside a fused instruction
            cpu.icount = icount - (blen - offset - 1)
            cpu.pc = lpc - blen + 1 + offset
            raise
        if 0 <= pc < n:
            # genuine IndexError in a single-stepped closure
            cpu.icount = icount
            cpu.pc = lpc
            raise
        # ``pc`` can never go negative (branch targets are label
        # indices, indirect targets masked-unsigned), so this is the
        # out-of-range fetch of the legacy loop
        cpu.icount = icount
        cpu.pc = lpc
        raise MemoryFault(pc, "fetch").at(lpc)
    except Trap as trap:
        offset = _trap_offset(trap)
        if offset is None:
            cpu.icount = icount
            cpu.pc = lpc
            raise trap.at(lpc)
        cpu.icount = icount - (blen - offset - 1)
        cpu.pc = lpc - blen + 1 + offset
        raise trap.at(cpu.pc)
    except BaseException as exc:
        offset = _trap_offset(exc)
        if offset is None:
            cpu.icount = icount
            cpu.pc = lpc
        else:
            cpu.icount = icount - (blen - offset - 1)
            cpu.pc = lpc - blen + 1 + offset
        raise
