#!/usr/bin/env python3
"""The Section 6.2 temporal extension: catching dangling pointers.

HardBound proper is spatial-only; the paper notes its per-word
metadata makes allocated/unallocated tracking "a natural extension".
This repo implements that as a ``markfree`` hint executed by the
instrumented ``free``, plus a freed-word tracker in the core.

Run:  python examples/temporal_safety.py
"""

from repro import MachineConfig, compile_and_run
from repro.machine import DoubleFreeError, UseAfterFreeError

SPATIAL_ONLY = MachineConfig.hardbound()
WITH_TEMPORAL = MachineConfig.hardbound(temporal=True)

DANGLING = """
struct msg { int id; int payload; };

int main() {
    struct msg *m = (struct msg*)malloc(sizeof(struct msg));
    m->payload = 7;
    free((void*)m);
    return m->payload;         // classic dangling read
}
"""

DOUBLE_FREE = """
int main() {
    void *p = malloc(32);
    free(p);
    free(p);                   // classic double free
    return 0;
}
"""


def main():
    print("dangling pointer read")
    print("-" * 52)
    result = compile_and_run(DANGLING, SPATIAL_ONLY)
    print("spatial-only HardBound: silent (exit=%d) -- the paper's"
          % result.exit_code)
    print("  baseline design, Section 6.2")
    try:
        compile_and_run(DANGLING, WITH_TEMPORAL)
    except UseAfterFreeError as err:
        print("with temporal tracking: %s" % err)

    print()
    print("double free")
    print("-" * 52)
    result = compile_and_run(DOUBLE_FREE, SPATIAL_ONLY)
    print("spatial-only HardBound: silent (exit=%d, free list now"
          % result.exit_code)
    print("  cyclic -- a latent allocator corruption)")
    try:
        compile_and_run(DOUBLE_FREE, WITH_TEMPORAL)
    except DoubleFreeError as err:
        print("with temporal tracking: %s" % err)


if __name__ == "__main__":
    main()
