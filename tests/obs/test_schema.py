"""The frozen engine_stats schema, live runs, manifests, phases."""

import json
import os

import pytest

from repro.harness.runner import run_workload
from repro.machine.config import ENGINES, MachineConfig
from repro.obs.schema import (
    ENGINE_STATS_KEYS,
    SUPERBLOCKS_KEYS,
    validate_engine_stats,
)

DOC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                   "docs", "OBSERVABILITY.md")


@pytest.fixture(scope="module")
def live_runs():
    """One functional treeadd run per engine tier."""
    return {engine: run_workload(
                "treeadd",
                MachineConfig.plain(timing=False, engine=engine))
            for engine in ENGINES}


def test_every_tier_has_a_schema_entry():
    assert set(ENGINE_STATS_KEYS) == set(ENGINES)


def test_live_runs_satisfy_the_frozen_schema(live_runs):
    for engine, result in live_runs.items():
        validate_engine_stats(engine, result.engine_stats)


def test_superblocks_stats_are_exactly_the_frozen_keys(live_runs):
    stats = live_runs["superblocks"].engine_stats
    assert set(stats) == SUPERBLOCKS_KEYS


def test_non_trace_tiers_record_none(live_runs):
    for engine in ("blocks", "decoded", "legacy"):
        assert live_runs[engine].engine_stats is None


def test_validate_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engine"):
        validate_engine_stats("jit", {})


def test_validate_rejects_missing_and_extra_keys(live_runs):
    stats = dict(live_runs["superblocks"].engine_stats)
    del stats["limit_demotions"]
    with pytest.raises(ValueError, match="limit_demotions"):
        validate_engine_stats("superblocks", stats)
    stats = dict(live_runs["superblocks"].engine_stats)
    stats["surprise"] = 1
    with pytest.raises(ValueError, match="surprise"):
        validate_engine_stats("superblocks", stats)


def test_validate_rejects_none_for_superblocks():
    with pytest.raises(ValueError, match="recorded no"):
        validate_engine_stats("superblocks", None)


def test_validate_rejects_stats_on_stat_free_tiers():
    with pytest.raises(ValueError, match="must record no"):
        validate_engine_stats("blocks", {"engine": "blocks"})


def test_doc_names_every_frozen_key():
    """docs/OBSERVABILITY.md is part of the schema contract."""
    with open(DOC, encoding="utf-8") as fh:
        doc = fh.read()
    for key in SUPERBLOCKS_KEYS:
        assert "`%s`" % key in doc, (
            "engine_stats key %r is not documented in "
            "docs/OBSERVABILITY.md" % key)


def test_engine_stats_survive_json_round_trip(live_runs):
    stats = live_runs["superblocks"].engine_stats
    clone = json.loads(json.dumps(stats))
    assert clone == stats
    validate_engine_stats("superblocks", clone)


class TestPhases:
    def test_every_engine_times_execute(self, live_runs):
        for engine, result in live_runs.items():
            assert result.phases["execute"] > 0.0, engine

    def test_decoding_engines_time_decode(self, live_runs):
        # legacy interprets Instruction records directly — no
        # decode phase to charge
        for engine in ("decoded", "blocks", "superblocks"):
            assert "decode" in live_runs[engine].phases, engine
        assert "decode" not in live_runs["legacy"].phases

    def test_block_tiers_time_cfg_fusion(self, live_runs):
        for engine in ("blocks", "superblocks"):
            assert "cfg_fusion" in live_runs[engine].phases

    def test_timed_run_charges_probe_compile(self):
        result = run_workload(
            "treeadd", MachineConfig.plain(timing=True,
                                           engine="superblocks"))
        assert result.phases["probe_compile"] > 0.0

    def test_phases_are_json_safe(self, live_runs):
        for result in live_runs.values():
            assert json.loads(json.dumps(result.phases)) \
                == result.phases


class TestManifest:
    def test_manifest_records_the_run_knobs(self, live_runs):
        for engine, result in live_runs.items():
            manifest = result.manifest
            assert manifest["engine"] == engine
            # workload labels are stamped only when tracing is on
            assert manifest["label"] == ""
            assert manifest["mode"] == "off"
            assert manifest["timing"] is False
            assert manifest["cache_geometry"] is None
            assert manifest["python"].count(".") == 2

    def test_manifest_records_cache_geometry_when_timed(self):
        result = run_workload(
            "treeadd", MachineConfig.hardbound(engine="blocks"))
        geometry = result.manifest["cache_geometry"]
        assert geometry is not None
        assert geometry["tag_cache_size"] > 0

    def test_manifest_is_json_safe(self, live_runs):
        for result in live_runs.values():
            assert json.loads(json.dumps(result.manifest)) \
                == result.manifest

    def test_git_sha_present_in_this_checkout(self, live_runs):
        sha = live_runs["blocks"].manifest["git_sha"]
        assert sha is None or len(sha) >= 7
