"""Functional store for in-memory bounded-pointer metadata.

Exact semantics live here: a map from word address to ``(base, bound)``
for every pointer currently in memory.  The *timing* of the equivalent
hardware accesses — tag-space probes, shadow-space double-words — is
charged separately by the HardBound engine, which consults the active
:class:`~repro.metadata.encodings.Encoding` for geometry.  This split
keeps the simulator exact (no bit-packing bugs can corrupt semantics)
while still modelling every cache/TLB/page consequence of the encoding.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.layout import WORD


class MetadataStore:
    """Word-granular pointer metadata for the whole address space."""

    __slots__ = ("_meta",)

    def __init__(self):
        self._meta: Dict[int, Tuple[int, int]] = {}

    @staticmethod
    def _key(addr: int) -> int:
        return addr & ~(WORD - 1)

    def set_pointer(self, addr: int, base: int, bound: int) -> None:
        """Record that the word at ``addr`` holds a bounded pointer."""
        self._meta[self._key(addr)] = (base, bound)

    def clear(self, addr: int) -> None:
        """Record that the word at ``addr`` holds a non-pointer."""
        self._meta.pop(self._key(addr), None)

    def get(self, addr: int) -> Tuple[int, int]:
        """Metadata of the word at ``addr`` (``(0, 0)`` = non-pointer)."""
        return self._meta.get(self._key(addr), (0, 0))

    def lookup(self, addr: int) -> Optional[Tuple[int, int]]:
        """Metadata or ``None`` when the word is not a pointer."""
        return self._meta.get(self._key(addr))

    def is_pointer(self, addr: int) -> bool:
        return self._key(addr) in self._meta

    def pointer_count(self) -> int:
        """Number of pointer-tagged words currently in memory."""
        return len(self._meta)

    def clear_all(self) -> None:
        self._meta.clear()
