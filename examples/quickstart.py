#!/usr/bin/env python3
"""Quickstart: compile a C program and watch HardBound catch a bug.

Walks through the paper's core ideas on a tiny program:

1. a heap overflow that runs silently on a plain core,
2. the same binary trapping under HardBound,
3. the Figure 2 semantics at the assembly level.

Run:  python examples/quickstart.py
"""

from repro import (
    BoundsError,
    CPU,
    MachineConfig,
    assemble,
    compile_and_run,
)
from repro.layout import HEAP_BASE

BUGGY_PROGRAM = """
int main() {
    int *scores = (int*)malloc(4 * sizeof(int));
    int *total = (int*)malloc(sizeof(int));
    *total = 1000;
    // bad loop bound: walks 2 elements past the 4-element array
    for (int i = 0; i <= 5; i++) {
        scores[i] = i * 10;
    }
    return *total;          // silently corrupted on a plain core
}
"""


def step1_plain_core():
    print("=" * 64)
    print("1. The buggy program on a plain core: silent corruption")
    print("=" * 64)
    result = compile_and_run(BUGGY_PROGRAM, MachineConfig.plain())
    print("  ran to completion, exit code %d -- *total should be 1000;"
          % result.exit_code)
    print("  the overflow scribbled over the neighbouring allocation"
          "\n  (and a chunk header) and nobody noticed.\n")


def step2_hardbound():
    print("=" * 64)
    print("2. The same program under HardBound: the bug traps")
    print("=" * 64)
    try:
        compile_and_run(BUGGY_PROGRAM, MachineConfig.hardbound())
    except BoundsError as err:
        print("  BoundsError: %s" % err)
        print("  (write of element 4 in a 4-element array)\n")


def step3_figure2_semantics():
    print("=" * 64)
    print("3. Figure 2 at the ISA level: setbound + implicit checks")
    print("=" * 64)
    program = assemble("""
    main:
        mov r1, 16
        sbrk r1                 ; map a heap page
        mov r1, %d
        setbound r2, r1, 4      ; R2 <- {A; A; A+4}
        load r3, [r2 + 2]       ; A+2: passes
        add  r4, r2, 1          ; bounds propagate through add
        load r5, [r4 + 2]       ; A+3: passes
        load r6, [r4 + 5]       ; A+6: bounds check fails
        halt 0
    """ % HEAP_BASE)
    cpu = CPU(program, MachineConfig.hardbound(timing=False))
    try:
        cpu.run()
    except BoundsError as err:
        print("  trap at pc=%d: %s" % (err.pc, err))
        print("  r4 = {value=0x%08x base=0x%08x bound=0x%08x}"
              % (cpu.regs.value[4], cpu.regs.base[4], cpu.regs.bound[4]))
    print()


def step4_stats():
    print("=" * 64)
    print("4. What the hardware did (intern-11 encoding)")
    print("=" * 64)
    fixed = BUGGY_PROGRAM.replace("i <= 5", "i < 4")
    result = compile_and_run(fixed,
                             MachineConfig.hardbound(encoding="intern11"))
    stats = result.hb_stats
    print("  instructions: %d, uops: %d, cycles: %d"
          % (result.instructions, result.uops, result.cycles))
    print("  bounds checks performed: %d" % stats.checks)
    print("  setbound instructions:   %d" % stats.setbound_uops)
    print("  pointer loads/stores:    %d/%d (%.0f%% compressed)"
          % (stats.pointer_loads, stats.pointer_stores,
             100 * stats.compression_ratio()))


if __name__ == "__main__":
    step1_plain_core()
    step2_hardbound()
    step3_figure2_semantics()
    step4_stats()
