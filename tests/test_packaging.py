"""Packaging smoke tests.

The original ``setup.py`` was a bare ``setup()`` with no metadata and
no package discovery, so ``pip install -e .`` installed *nothing*.
Discovery now lives in ``pyproject.toml`` (src-layout); these tests
prove that an installed tree actually carries the package:

* ``find_packages("src")`` must discover ``repro`` and every
  subpackage;
* staging the build (``setup.py build``, the same discovery path pip
  drives through setuptools) must produce a tree from which
  ``import repro`` works in a fresh interpreter that has neither the
  repo checkout nor ``src/`` on its path.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_pyproject_declares_src_layout():
    with open(os.path.join(REPO_ROOT, "pyproject.toml")) as fh:
        text = fh.read()
    assert 'name = "repro-hardbound"' in text
    assert '"" = "src"' in text.replace(" ", "").replace('""="src"',
                                                         '"" = "src"') \
        or 'package-dir = { "" = "src" }' in text


def test_find_packages_discovers_repro_tree():
    setuptools = pytest.importorskip("setuptools")
    packages = set(setuptools.find_packages(
        os.path.join(REPO_ROOT, "src")))
    assert "repro" in packages
    for sub in ("repro.machine", "repro.caches", "repro.harness",
                "repro.hardbound", "repro.isa", "repro.minic",
                "repro.metadata", "repro.baselines",
                "repro.workloads"):
        assert sub in packages, packages


def test_import_from_installed_tree(tmp_path):
    """Stage the installed tree and import it with no repo on path."""
    pytest.importorskip("setuptools")
    build_base = tmp_path / "build"
    build_lib = tmp_path / "lib"
    subprocess.run(
        [sys.executable, "setup.py", "--quiet", "build",
         "--build-base", str(build_base),
         "--build-lib", str(build_lib)],
        cwd=REPO_ROOT, check=True, capture_output=True, text=True)
    assert (build_lib / "repro" / "__init__.py").exists()
    assert (build_lib / "repro" / "machine" / "blocks.py").exists()
    from repro.workloads.registry import WORKLOADS
    env = dict(os.environ, PYTHONPATH=str(build_lib))
    probe = subprocess.run(
        [sys.executable, "-c",
         "import repro, repro.machine.blocks, repro.harness.parallel,"
         " repro.workloads.registry as r;"
         " print(len(r.WORKLOADS))"],
        cwd=str(tmp_path), env=env, check=True,
        capture_output=True, text=True)
    assert probe.stdout.strip() == str(len(WORKLOADS))
