"""Sharded sweep harness: matrix runs across worker processes.

:func:`repro.harness.runner.run_benchmark_matrix` walks the workload
× encoding × baseline matrix serially — every figure regeneration
pays for the whole grid even when only one cell changed.  This module
shards the same matrix at *cell* granularity (one workload under one
configuration is one job) across a pool of worker processes, and
fronts the pool with an on-disk result cache keyed by content hash:
the workload's source digest plus the full cell configuration.  A
warm rerun touches no worker at all.

Every cell result is a pure-statistics snapshot
(:class:`~repro.machine.cpu.RunResult` without its CPU, or an
:class:`ObjTableSummary`), so results pickle cheaply across process
and cache boundaries and a long sweep holds no machine state.

Also usable as a CLI::

    PYTHONPATH=src python -m repro.harness.parallel --workers 4 --figure 5
"""

from __future__ import annotations

import argparse
import concurrent.futures
import hashlib
import json
import os
import pickle
import warnings
from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines.fatptr import ccured_sim_config
from repro.baselines.objtable import ObjectTableModel
from repro.caches.hierarchy import CacheParams
from repro.harness.runner import (
    BenchmarkRun,
    ENCODINGS,
    run_workload,
    source_digest,
)
from repro.machine.config import (
    ENGINE_SUPERBLOCKS,
    ENGINES,
    MachineConfig,
    SafetyMode,
)
from repro.obs.events import EventLog
from repro.obs.metrics import REGISTRY
from repro.workloads.registry import WORKLOADS

#: bump when cell payloads or simulator semantics change incompatibly
#: (3: cell results carry their run manifest)
CACHE_SCHEMA = 3

#: environment knob: workers append their obs JSONL event streams to
#: this path (set by the CLI ``--obs`` flag; inherited by pool
#: processes).  Never part of any cache key — events don't change
#: results.
OBS_ENV = "REPRO_OBS"

#: cell kinds beyond the per-encoding HardBound runs
KIND_BASE = "base"
KIND_CCURED = "ccured"
KIND_OBJTABLE = "objtable"


class ObjTableSummary:
    """Picklable statistics snapshot of an :class:`ObjectTableModel`.

    Carries exactly what the figure pipeline consumes (``extra_uops``
    and the event counters) without the splay tree itself.
    """

    __slots__ = ("extra_uops", "arith_events", "alloc_events",
                 "mem_events", "elide_fraction", "manifest")

    def __init__(self, model: ObjectTableModel, manifest=None):
        self.extra_uops = model.extra_uops
        self.arith_events = model.arith_events
        self.alloc_events = model.alloc_events
        self.mem_events = model.mem_events
        self.elide_fraction = model.elide_fraction
        #: run manifest of the observed run (same shape as
        #: ``RunResult.manifest``), so every cached cell records the
        #: exact knobs/host that produced it
        self.manifest = manifest

    def overhead_vs(self, base_uops: int) -> float:
        if not base_uops:
            return 1.0
        return (base_uops + self.extra_uops) / base_uops


class ResultCache:
    """Content-hash keyed on-disk pickle cache for cell results.

    Publication is atomic (write to a per-pid temp file, then
    ``os.replace``), so readers never observe a partially written
    entry even with concurrent writers in other processes.  An entry
    that nevertheless fails to unpickle — a torn write from a crashed
    process, a file damaged at rest — is counted under ``corrupt``
    (distinct from a clean miss) and *deleted*, so the caller's rerun
    rewrites it instead of tripping over the poisoned file forever.
    """

    def __init__(self, path: str):
        self.path = path
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        os.makedirs(path, exist_ok=True)

    def stats(self) -> Dict[str, int]:
        """Cumulative cache traffic of this instance."""
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "corrupt": self.corrupt}

    @staticmethod
    def key_of(descr: dict) -> str:
        """Deterministic key for a JSON-serializable cell descriptor."""
        blob = json.dumps(descr, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def _file(self, key: str) -> str:
        return os.path.join(self.path, key + ".pkl")

    def get(self, key: str):
        path = self._file(key)
        try:
            fh = open(path, "rb")
        except OSError:
            self.misses += 1
            return None
        try:
            with fh:
                result = pickle.load(fh)
        except Exception:
            # a present-but-unreadable entry is not a clean miss:
            # count it separately and drop the poisoned file so the
            # caller's rerun rewrites it (matters once concurrent
            # service workers share the store)
            self.corrupt += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, key: str, result) -> None:
        tmp = self._file(key) + ".tmp.%d" % os.getpid()
        with open(tmp, "wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, self._file(key))
        self.writes += 1


def map_jobs(fn, jobs: Iterable, workers: int = 2,
             service=None) -> List:
    """Run ``fn`` over ``jobs`` on a process pool, preserving order.

    The one pool idiom every sharded consumer shares (matrix sweeps,
    sensitivity sweeps, the fuzz CLI): ``workers <= 1`` degrades to
    an in-process loop — same results, no pool, picklability not
    required — which is also the debuggable path.  ``fn`` and each
    job must pickle when ``workers > 1``.

    With ``service`` (a ``repro.service`` Client or Service) the jobs
    go to the persistent warm-worker fleet instead of a fresh pool;
    ``workers`` is then ignored (the fleet's size rules).
    """
    jobs = list(jobs)
    if not jobs:
        return []
    if service is not None:
        return service.map(fn, jobs)
    if workers > 1:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers) as pool:
            return list(pool.map(fn, jobs))
    return [fn(job) for job in jobs]


def _sweep_cache_summary(cache: Optional[ResultCache],
                         before: Dict[str, int]) -> Dict[str, int]:
    """One sweep's cache traffic: delta vs. the pre-sweep snapshot.

    The deltas also feed the process-wide obs metrics registry
    (``harness.cache.*``), so long-lived callers can diff registry
    snapshots across sweeps, and — when ``REPRO_OBS`` streams this
    sweep — land as a ``sweep_summary`` event after the workers'
    run events.
    """
    if cache is None:
        return {"hits": 0, "misses": 0, "writes": 0}
    summary = {name: count - before.get(name, 0)
               for name, count in cache.stats().items()}
    for name, count in summary.items():
        REGISTRY.inc("harness.cache.%s" % name, count)
    path = os.environ.get(OBS_ENV)
    if path:
        log = EventLog(path)
        log.emit("sweep_summary", **summary)
        log.flush()
    return summary


def _with_obs(config: MachineConfig) -> MachineConfig:
    """Worker-side obs knob: append events to the ``REPRO_OBS`` path.

    The path travels by environment (inherited by pool processes)
    rather than through job tuples so cell descriptors — and
    therefore cache keys — can never depend on it.
    """
    path = os.environ.get(OBS_ENV)
    if path:
        config.obs_events = path
    return config


def _cell_config(kind: str, timing: bool, engine: str) -> MachineConfig:
    if kind == KIND_BASE:
        return MachineConfig.plain(timing=timing, engine=engine)
    if kind == KIND_CCURED:
        config = ccured_sim_config(timing)
        config.engine = engine
        return config
    if kind == KIND_OBJTABLE:
        # the object-table model observes a functional HardBound run
        return MachineConfig.hardbound(timing=False, engine=engine)
    return MachineConfig.hardbound(encoding=kind, timing=timing,
                                   engine=engine)


def _knob_descriptor(config: MachineConfig,
                     optimize: bool = True) -> dict:
    """Compile/trace knobs that change a cell's results: the
    ``optimize=`` compiler pass and the superblock trace-formation
    knobs.  Part of every cache key so a cached cell can never be
    served across knob (or knob-*default*) changes."""
    return {
        "optimize": optimize,
        "superblock_threshold": config.superblock_threshold,
        "superblock_max_blocks": config.superblock_max_blocks,
        "superblock_call_depth": config.superblock_call_depth,
    }


def cell_descriptor(workload: str, kind: str, timing: bool,
                    engine: str) -> dict:
    """JSON-serializable identity of one matrix cell (the cache key)."""
    descr = {
        "schema": CACHE_SCHEMA,
        "source": source_digest(WORKLOADS[workload].source),
        "workload": workload,
        "kind": kind,
        # objtable cells always run functionally (see _cell_config):
        # key on what actually runs so both sweeps share the entry
        "timing": False if kind == KIND_OBJTABLE else timing,
        "engine": engine,
    }
    descr.update(_knob_descriptor(_cell_config(kind, timing, engine)))
    return descr


def run_cell(job: Tuple[str, str, bool, str]):
    """Worker entry point: run one (workload, kind) matrix cell."""
    workload, kind, timing, engine = job
    config = _with_obs(_cell_config(kind, timing, engine))
    if kind == KIND_OBJTABLE:
        model = ObjectTableModel()
        result = run_workload(workload, config, observer=model)
        return ObjTableSummary(model, result.manifest)
    return run_workload(workload, config)


def run_benchmark_matrix_parallel(
        workloads: Optional[Iterable[str]] = None,
        encodings: Iterable[str] = ENCODINGS,
        with_baselines: bool = True,
        timing: bool = True,
        workers: int = 2,
        cache: Optional[ResultCache] = None,
        engine: str = ENGINE_SUPERBLOCKS,
        service=None) -> Dict[str, BenchmarkRun]:
    """Sharded, cached equivalent of
    :func:`repro.harness.runner.run_benchmark_matrix`.

    Cells already present in ``cache`` are served from disk; the rest
    are distributed over ``workers`` processes — or submitted, with
    their content-hash keys, to the persistent ``service`` fleet.
    Returns the same ``{workload: BenchmarkRun}`` shape as the serial
    harness, with ``bench.objtable`` holding an
    :class:`ObjTableSummary` instead of the live model.
    """
    names = list(workloads) if workloads is not None else list(WORKLOADS)
    kinds: List[str] = [KIND_BASE] + list(encodings)
    if with_baselines:
        kinds += [KIND_CCURED, KIND_OBJTABLE]

    jobs = [(name, kind, timing, engine)
            for name in names for kind in kinds]
    by_job = _run_cached_jobs(jobs, run_cell,
                              cell_descriptor, workers, cache,
                              service=service)
    results = {job[:2]: result for job, result in by_job.items()}

    matrix: Dict[str, BenchmarkRun] = {}
    for name in names:
        bench = BenchmarkRun(WORKLOADS[name])
        bench.base = results[(name, KIND_BASE)]
        for enc in encodings:
            bench.encodings[enc] = results[(name, enc)]
        if with_baselines:
            bench.ccured = results[(name, KIND_CCURED)]
            bench.objtable = results[(name, KIND_OBJTABLE)]
        matrix[name] = bench
    return matrix


# -- sharded sensitivity sweeps ---------------------------------------------

def _ccured_fraction_cell(
        job: Tuple[str, Optional[float]]) -> Tuple[str, Optional[float],
                                                   int]:
    """Worker: cycles of one workload at one CCured SAFE fraction.

    A ``None`` fraction is the plain-core baseline cell.
    """
    name, fraction = job
    if fraction is None:
        config = MachineConfig.plain()
    else:
        from repro.harness.sweeps import _engine_factory
        config = MachineConfig(mode=SafetyMode.FULL,
                               encoding="uncompressed",
                               engine_factory=_engine_factory(fraction))
    return name, fraction, run_workload(name, _with_obs(config)).cycles


def _deprecated_sweep(old: str, spec, workers, cache=None,
                      service=None):
    warnings.warn(
        "%s is deprecated; use repro.harness.run_sweep(SweepSpec(...))"
        % old, DeprecationWarning, stacklevel=3)
    from repro.harness.sweep_api import run_sweep
    return run_sweep(spec, workers=workers, cache=cache,
                     service=service)


def sweep_ccured_safe_fraction_parallel(
        workloads: Iterable[str],
        fractions: Iterable[float],
        workers: int = 2) -> Dict[float, float]:
    """Deprecated wrapper for :func:`repro.harness.run_sweep` with a
    ``kind="ccured"`` :class:`~repro.harness.sweep_api.SweepSpec`."""
    from repro.harness.sweep_api import SweepSpec
    return _deprecated_sweep(
        "sweep_ccured_safe_fraction_parallel",
        SweepSpec(kind="ccured", workloads=tuple(workloads),
                  grid=tuple(fractions)), workers)


def _objtable_elision_cell(job: Tuple[str, Optional[float], str]):
    """Worker: one workload at one object-table elision fraction.

    A ``None`` fraction is the plain-core baseline cell (timing on,
    matching :func:`repro.harness.sweeps.sweep_objtable_elision`).
    """
    name, fraction, engine = job
    if fraction is None:
        return run_workload(name,
                            _with_obs(MachineConfig.plain(engine=engine)))
    model = ObjectTableModel(elide_fraction=fraction)
    result = run_workload(
        name, _with_obs(MachineConfig.hardbound(timing=False,
                                                engine=engine)),
        observer=model)
    return ObjTableSummary(model, result.manifest)


def _objtable_descriptor(name: str, fraction: Optional[float],
                         engine: str) -> dict:
    descr = {
        "schema": CACHE_SCHEMA,
        "sweep": "objtable-elision",
        "source": source_digest(WORKLOADS[name].source),
        "workload": name,
        "fraction": fraction,
        "engine": engine,
    }
    descr.update(_knob_descriptor(MachineConfig(engine=engine)))
    return descr


def sweep_objtable_elision_parallel(
        workloads: Iterable[str],
        fractions: Iterable[float],
        workers: int = 2,
        cache: Optional[ResultCache] = None,
        engine: str = ENGINE_SUPERBLOCKS) -> Dict[float, float]:
    """Deprecated wrapper for :func:`repro.harness.run_sweep` with a
    ``kind="objtable"`` :class:`~repro.harness.sweep_api.SweepSpec`."""
    from repro.harness.sweep_api import SweepSpec
    return _deprecated_sweep(
        "sweep_objtable_elision_parallel",
        SweepSpec(kind="objtable", workloads=tuple(workloads),
                  grid=tuple(fractions), engine=engine),
        workers, cache=cache)


def _tag_cache_cell(job: Tuple[str, int, str, str]):
    """Worker: one workload under one tag-metadata-cache size."""
    name, size, encoding, engine = job
    params = CacheParams(tag_cache_size=size)
    return run_workload(
        name, _with_obs(MachineConfig.hardbound(encoding=encoding,
                                                engine=engine)),
        cache_params=params)


def _tag_cache_descriptor(name: str, size: int, encoding: str,
                          engine: str) -> dict:
    descr = {
        "schema": CACHE_SCHEMA,
        "sweep": "tag-cache",
        "source": source_digest(WORKLOADS[name].source),
        "workload": name,
        "tag_cache_size": size,
        "encoding": encoding,
        "engine": engine,
    }
    descr.update(_knob_descriptor(MachineConfig(engine=engine)))
    return descr


def sweep_tag_cache_parallel(
        workloads: Iterable[str],
        sizes: Iterable[int],
        encoding: str = "extern4",
        workers: int = 2,
        cache: Optional[ResultCache] = None,
        engine: str = ENGINE_SUPERBLOCKS
) -> Dict[Tuple[str, int], Dict[str, float]]:
    """Deprecated wrapper for :func:`repro.harness.run_sweep` with a
    ``kind="tagcache"`` :class:`~repro.harness.sweep_api.SweepSpec`."""
    from repro.harness.sweep_api import SweepSpec
    return _deprecated_sweep(
        "sweep_tag_cache_parallel",
        SweepSpec(kind="tagcache", workloads=tuple(workloads),
                  grid=tuple(sizes), encoding=encoding,
                  engine=engine), workers, cache=cache)


def _map_pending(cell_fn, pending, pending_keys, workers,
                 service) -> List:
    """Run the cache misses: fresh pool, or keyed service submission.

    Through the service, each job carries its content-hash key so
    identical in-flight cells deduplicate on the dispatcher and the
    workers publish into the shared store.
    """
    if service is None:
        return map_jobs(cell_fn, pending, workers)
    from repro.service.dispatch import JobSpec
    futures = service.submit_many(
        [JobSpec(cell_fn, job, key=key)
         for job, key in zip(pending, pending_keys)])
    return [future.result() for future in futures]


def _run_cached_jobs(jobs, cell_fn, descriptor_fn, workers,
                     cache: Optional[ResultCache],
                     service=None) -> Dict:
    """Resolve jobs through the cache, shard the misses over a pool
    (or the persistent service fleet)."""
    before = cache.stats() if cache is not None else {}
    results: Dict = {}
    pending = []
    pending_keys: List[Optional[str]] = []
    want_keys = cache is not None or service is not None
    for job in jobs:
        key = None
        if want_keys:
            key = ResultCache.key_of(descriptor_fn(*job))
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                results[job] = hit
                continue
        pending.append(job)
        pending_keys.append(key)
    if pending:
        for job, result in zip(pending,
                               _map_pending(cell_fn, pending,
                                            pending_keys, workers,
                                            service)):
            results[job] = result
        if cache is not None:
            for job, key in zip(pending, pending_keys):
                cache.put(key, results[job])
    _sweep_cache_summary(cache, before)
    return results


# -- CLI --------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Sharded figure-matrix runner with on-disk caching")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (default 2)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="workload subset (default: all nine)")
    parser.add_argument("--figure", type=int, choices=(5, 6, 7),
                        default=5, help="figure table to print")
    parser.add_argument("--cache-dir", default=".repro-cache",
                        help="on-disk result cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk cache")
    parser.add_argument("--engine", default=ENGINE_SUPERBLOCKS,
                        help="execution engine "
                             "(superblocks|blocks|decoded|legacy)")
    parser.add_argument("--sweep",
                        choices=("ccured", "objtable", "tagcache"),
                        default=None,
                        help="run a sensitivity sweep instead of a "
                             "figure matrix")
    parser.add_argument("--obs", default=None, metavar="PATH",
                        help="append every cell's obs JSONL event "
                             "stream to PATH (cached cells emit "
                             "nothing; render with python -m "
                             "repro.obs.report)")
    parser.add_argument("--service", default=None, metavar="STATE_DIR",
                        nargs="?", const=".repro-service",
                        help="submit cells to the persistent service "
                             "daemon rendezvoused in STATE_DIR "
                             "(default .repro-service) instead of a "
                             "fresh pool")
    args = parser.parse_args(argv)
    if args.obs:
        os.environ[OBS_ENV] = args.obs

    if args.engine not in ENGINES:
        parser.error("unknown engine %r (have: %s)"
                     % (args.engine, ", ".join(ENGINES)))
    for name in args.workloads or ():
        if name not in WORKLOADS:
            parser.error("unknown workload %r (have: %s)"
                         % (name, ", ".join(WORKLOADS)))

    from repro.harness.figures import (
        figure5_table, figure6_table, figure7_table, format_table)
    from repro.harness.sweep_api import SweepSpec, run_sweep

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    service = None
    if args.service is not None:
        from repro.service.client import connect
        service = connect(args.service)

    def cache_line() -> str:
        if cache is None:
            return ""
        summary = cache.stats()
        return ("\ncache: %(hits)d hit(s), %(misses)d miss(es), "
                "%(writes)d write(s), %(corrupt)d corrupt" % summary
                + " at " + cache.path)

    try:
        if args.sweep is not None:
            names = args.workloads or list(WORKLOADS)
            if args.sweep == "ccured":
                sweep = run_sweep(
                    SweepSpec(kind="ccured", workloads=names,
                              grid=(0.1, 0.5, 0.9, 1.0)),
                    workers=args.workers, cache=cache,
                    service=service)
                rows = [["%.2f" % fraction, "%.3f" % overhead]
                        for fraction, overhead in sorted(sweep.items())]
                print(format_table(["safe-frac", "overhead"], rows,
                                   "CCured SAFE-fraction sensitivity"))
            elif args.sweep == "objtable":
                sweep = run_sweep(
                    SweepSpec(kind="objtable", workloads=names,
                              grid=(0.0, 0.25, 0.5, 0.75, 0.95),
                              engine=args.engine),
                    workers=args.workers, cache=cache,
                    service=service)
                rows = [["%.2f" % fraction, "%.3f" % overhead]
                        for fraction, overhead in sorted(sweep.items())]
                print(format_table(["elision", "overhead"], rows,
                                   "Object-table elision sensitivity"))
            else:
                sweep = run_sweep(
                    SweepSpec(kind="tagcache", workloads=names,
                              grid=(512, 2048, 8192, 32768),
                              engine=args.engine),
                    workers=args.workers, cache=cache,
                    service=service)
                rows = [[name, "%dB" % size, "%d" % cell["cycles"],
                         "%.4f" % cell["tag_miss_rate"]]
                        for (name, size), cell in sorted(sweep.items())]
                print(format_table(["benchmark", "tag-cache", "cycles",
                                    "tag-miss-rate"], rows,
                                   "Tag cache size sensitivity "
                                   "(extern4)"))
            line = cache_line()
            if line:
                print(line)
            return 0
        matrix = run_benchmark_matrix_parallel(
            workloads=args.workloads, workers=args.workers,
            cache=cache, engine=args.engine, service=service)
        table_fn = {5: figure5_table, 6: figure6_table,
                    7: figure7_table}
        headers, rows = table_fn[args.figure](matrix)
        print(format_table(headers, rows, "Figure %d" % args.figure))
        line = cache_line()
        if line:
            print(line)
        return 0
    finally:
        if service is not None:
            service.close()


if __name__ == "__main__":
    raise SystemExit(main())
