"""The service daemon: one warm fleet behind an ``AF_UNIX`` socket.

:class:`DaemonServer` wraps an in-process
:class:`~repro.service.dispatch.Service` with a
:class:`multiprocessing.connection.Listener` so *other* processes —
sweep CLIs, the fuzz harness, CI — can submit into the same
long-lived worker pool.  The rendezvous is a state directory
(default ``.repro-service/``) holding:

* ``socket`` — the ``AF_UNIX`` listener address;
* ``authkey`` — 16 random bytes (mode ``0600``) both sides feed the
  connection-level HMAC challenge, so only same-user processes that
  can read the file may connect;
* ``daemon.pid`` — pid + config, for ``status``/``stop`` and stale
  detection.

Each accepted connection gets a handler thread; frames are

* client → daemon: ``(kind, req_id, payload)`` with kind in
  ``submit`` / ``status`` / ``ping`` / ``drain`` / ``stop``;
* daemon → client: ``("ack", req_id, status, answer)`` per request
  and ``("result", token, status, payload)`` per submitted job as
  its future resolves (error payloads are ``(type_name, message)``
  pairs the client rebuilds into the local exception types).

``stop`` acks first, then drains the service and removes the state
files, so the requesting client sees a clean answer rather than a
dropped connection.
"""

from __future__ import annotations

import json
import os
import secrets
import threading
from multiprocessing import connection as mpconnection
from typing import Optional

from repro.service.dispatch import Service, ServiceError
from repro.service.store import ResultStore


def _error_payload(exc: BaseException):
    return (type(exc).__name__, str(exc))


class DaemonServer:
    """Serve one :class:`Service` over a state-dir socket (see module)."""

    def __init__(self, state_dir: str, workers: int = 2,
                 store: Optional[str] = None,
                 context: Optional[str] = None,
                 obs: Optional[str] = None):
        os.makedirs(state_dir, exist_ok=True)
        self.state_dir = state_dir
        self.sock_path = os.path.join(state_dir, "socket")
        self.key_path = os.path.join(state_dir, "authkey")
        self.pid_path = os.path.join(state_dir, "daemon.pid")
        if os.path.exists(self.sock_path):
            os.unlink(self.sock_path)  # stale socket from a kill -9
        self.authkey = secrets.token_bytes(16)
        fd = os.open(self.key_path,
                     os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
        try:
            os.write(fd, self.authkey)
        finally:
            os.close(fd)
        self.service = Service(
            workers=workers,
            store=ResultStore(store) if store else None,
            context=context, obs=obs)
        self.listener = mpconnection.Listener(
            self.sock_path, family="AF_UNIX", authkey=self.authkey)
        with open(self.pid_path, "w", encoding="utf-8") as fh:
            json.dump({"pid": os.getpid(), "workers": workers,
                       "store": store, "socket": self.sock_path}, fh)
        self._stopping = threading.Event()

    def serve_forever(self) -> None:
        """Accept loop; returns after :meth:`stop` completes."""
        try:
            while not self._stopping.is_set():
                try:
                    conn = self.listener.accept()
                except mpconnection.AuthenticationError:
                    continue
                except OSError:
                    break  # listener torn down under us
                if self._stopping.is_set():
                    try:
                        conn.close()
                    except OSError:
                        pass
                    break
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    name="repro-service-conn", daemon=True)
                thread.start()
        finally:
            self._cleanup()

    def stop(self) -> None:
        """Flag shutdown and wake the accept loop.

        Closing a listening socket does NOT interrupt a thread
        already blocked in ``accept(2)``, so after setting the flag
        we poke one throwaway authenticated connection through the
        socket; the loop sees the flag on wake-up and exits (the
        listener itself is closed by the cleanup path).
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        try:
            poke = mpconnection.Client(
                self.sock_path, family="AF_UNIX",
                authkey=self.authkey)
            poke.close()
        except (OSError, mpconnection.AuthenticationError,
                EOFError):
            pass  # accept already unblocked or listener gone

    def _cleanup(self) -> None:
        try:
            self.listener.close()
        except OSError:
            pass
        self.service.shutdown(drain=True)
        for path in (self.sock_path, self.key_path, self.pid_path):
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- per-connection handler ---------------------------------------------

    def _serve_connection(self, conn) -> None:
        send_lock = threading.Lock()

        def send(frame) -> None:
            with send_lock:
                try:
                    conn.send(frame)
                except (OSError, ValueError):
                    pass  # client went away; futures still resolve

        def on_done(token):
            def callback(future):
                exc = future.exception()
                if exc is None:
                    send(("result", token, "ok", future.result()))
                else:
                    send(("result", token, "error",
                          _error_payload(exc)))
            return callback

        while True:
            try:
                kind, req_id, payload = conn.recv()
            except (EOFError, OSError):
                break
            try:
                if kind == "submit":
                    for (token, fn, arg, key, timeout) in payload:
                        try:
                            future = self.service.submit(
                                fn, arg, key=key, timeout=timeout)
                        except ServiceError as exc:
                            send(("result", token, "error",
                                  _error_payload(exc)))
                            continue
                        future.add_done_callback(on_done(token))
                    send(("ack", req_id, "ok", len(payload)))
                elif kind == "status":
                    send(("ack", req_id, "ok", self.service.status()))
                elif kind == "ping":
                    send(("ack", req_id, "ok", "pong"))
                elif kind == "drain":
                    self.service.drain()
                    send(("ack", req_id, "ok", None))
                elif kind == "stop":
                    send(("ack", req_id, "ok", None))
                    self.stop()
                    break
                else:
                    send(("ack", req_id, "error",
                          ("ServiceError",
                           "unknown request %r" % kind)))
            except Exception as exc:
                send(("ack", req_id, "error", _error_payload(exc)))
        try:
            conn.close()
        except OSError:
            pass
