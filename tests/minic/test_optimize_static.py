"""Section 8's "unbound the pointer" optimization.

When the compiler can prove a constant-index array access is in
bounds, no bounded pointer is needed: the access compiles to a direct
frame/absolute operand, eliminating setbound and check costs with
identical semantics.
"""

import re

import pytest

from repro.machine import BoundsError, CPU, MachineConfig
from repro.minic import InstrumentMode, compile_program, compile_to_asm

CFG = MachineConfig.hardbound(timing=False)

SRC = """
int tbl[4];
int main() {
    int a[4];
    a[0] = 10;
    a[3] = 20;
    tbl[1] = 30;
    return a[0] + a[3] + tbl[1];
}
"""


def test_removes_setbounds_for_constant_indices():
    baseline = compile_to_asm(SRC, include_stdlib=False)
    optimized = compile_to_asm(SRC, include_stdlib=False,
                               optimize_static=True)
    assert baseline.count("setbound") > optimized.count("setbound")
    assert optimized.count("setbound") == 0
    assert re.search(r"store \[fp - \d+\], r\d+", optimized)
    assert re.search(r"\[gv_tbl \+ 4\]", optimized)


def test_semantics_identical():
    for optimize in (False, True):
        program = compile_program(SRC, include_stdlib=False,
                                  optimize_static=optimize)
        assert CPU(program, CFG).run().exit_code == 60


def test_out_of_bounds_constant_is_not_optimized():
    """A provably *bad* index must keep the checked path and trap."""
    source = """
    int main() {
        int a[4];
        a[4] = 1;
        return 0;
    }"""
    text = compile_to_asm(source, include_stdlib=False,
                          optimize_static=True)
    assert "setbound" in text
    program = compile_program(source, include_stdlib=False,
                              optimize_static=True)
    with pytest.raises(BoundsError):
        CPU(program, CFG).run()


def test_variable_index_keeps_checked_path():
    source = """
    int main() {
        int a[4];
        int i = 2;
        a[i] = 1;
        return a[i];
    }"""
    text = compile_to_asm(source, include_stdlib=False,
                          optimize_static=True)
    assert "setbound" in text


def test_optimization_reduces_uops():
    source = """
    int main() {
        int a[8];
        int sum = 0;
        for (int i = 0; i < 1000; i++) {
            a[1] = i;
            sum += a[1] + a[2];
        }
        return sum & 63;
    }"""
    plain = CPU(compile_program(source, include_stdlib=False),
                CFG).run()
    fast = CPU(compile_program(source, include_stdlib=False,
                               optimize_static=True), CFG).run()
    assert fast.exit_code == plain.exit_code
    assert fast.uops < plain.uops


def test_member_and_pointer_accesses_unaffected():
    source = """
    struct s { int f[2]; };
    int main() {
        struct s v;
        int *p = v.f;
        p[1] = 5;
        return v.f[1];
    }"""
    for optimize in (False, True):
        program = compile_program(source, include_stdlib=False,
                                  optimize_static=optimize)
        assert CPU(program, CFG).run().exit_code == 5
