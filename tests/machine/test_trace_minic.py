"""Tracer over compiled MiniC: the debugging workflow end to end."""

import pytest

from repro.machine import BoundsError, CPU, MachineConfig
from repro.machine.trace import Tracer
from repro.minic import compile_program


def test_trace_pinpoints_the_violating_instruction():
    program = compile_program("""
    int main() {
        int *p = (int*)malloc(8);
        p[0] = 1;
        p[1] = 2;
        p[2] = 3;          // violation
        return 0;
    }""")
    cpu = CPU(program, MachineConfig.hardbound(timing=False))
    tracer = Tracer(cpu, limit=50)
    with pytest.raises(BoundsError) as exc:
        cpu.run()
    last = tracer.entries[-1]
    assert last.pc == exc.value.pc
    assert last.text.startswith("store")
    # the setbound that created the overflowed pointer is in the trace
    assert any(e.text.startswith("setbound") for e in tracer.entries)


def test_trace_shows_bounds_flowing_through_malloc():
    program = compile_program("""
    int main() {
        char *p = (char*)malloc(6);
        return (int)p[0];
    }""")
    cpu = CPU(program, MachineConfig.hardbound(timing=False))
    tracer = Tracer(cpu, limit=2000)
    cpu.run()
    pointer_creations = [e for e in tracer.pointer_writes()
                         if e.text.startswith("setbound")]
    assert pointer_creations, "malloc's setbound should be traced"
