"""Decoded-engine speedup over the legacy dispatch interpreter.

Not a paper figure — this tracks the simulator's own hot path: the
pre-decoded closure-threaded engine must stay at least 2x faster than
the legacy dispatch loop on the functional Olden sweep (the
configuration the differential tests run), while producing
bit-identical statistics.  The timing-model sweep is reported too;
its ratio is Amdahl-limited by the shared cache/TLB simulation.
"""

import time

from conftest import write_result

from repro.harness.figures import format_table
from repro.harness.runner import compile_cached, run_workload
from repro.machine.config import MachineConfig
from repro.minic.driver import mode_for_config
from repro.workloads.registry import WORKLOADS


def _warm_compile_cache(timing):
    for name in WORKLOADS:
        for config in (MachineConfig.plain(timing=timing),
                       MachineConfig.hardbound(timing=timing)):
            compile_cached(WORKLOADS[name].source,
                           mode_for_config(config))


def _sweep_seconds(engine, timing):
    start = time.perf_counter()
    for name in WORKLOADS:
        run_workload(name, MachineConfig.plain(engine=engine,
                                               timing=timing))
        run_workload(name, MachineConfig.hardbound(
            encoding="intern11", engine=engine, timing=timing))
    return time.perf_counter() - start


def test_decoded_engine_speedup(benchmark):
    def measure():
        rows = []
        speedups = {}
        for timing in (False, True):
            _warm_compile_cache(timing)
            decoded = min(_sweep_seconds("decoded", timing)
                          for _ in range(2))
            legacy = min(_sweep_seconds("legacy", timing)
                         for _ in range(2))
            speedups[timing] = legacy / decoded
            rows.append(["timing=%s" % timing, "%.2fs" % decoded,
                         "%.2fs" % legacy,
                         "%.2fx" % speedups[timing]])
        return rows, speedups

    rows, speedups = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(["sweep", "decoded", "legacy", "speedup"],
                         rows, "Decoded vs legacy engine (Olden sweep)")
    print("\n" + table)
    write_result("engine_speedup.txt", table)

    assert speedups[False] >= 2.0, speedups
    # the timing-model sweep is dominated by the shared cache
    # simulation; the decoded engine must still win clearly
    assert speedups[True] >= 1.2, speedups
