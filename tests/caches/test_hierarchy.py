"""Memory-system timing: stall accounting, kinds, page tracking."""

from repro.caches import CacheParams, MemorySystem


def make():
    return MemorySystem(CacheParams())


def test_cold_access_pays_tlb_l1_l2():
    ms = make()
    params = ms.params
    stall = ms.access(0x10000, 4, False, "data")
    assert stall == (params.tlb_miss_penalty + params.l1_miss_penalty
                     + params.l2_miss_penalty)


def test_warm_access_is_free():
    ms = make()
    ms.access(0x10000, 4, False, "data")
    assert ms.access(0x10000, 4, False, "data") == 0


def test_l1_miss_l2_hit_costs_l1_penalty():
    ms = make()
    ms.access(0x10000, 4, False, "data")
    # evict from L1 by filling its set; L2 is big enough to keep it
    p = ms.params
    stride = p.l1_size // p.l1_assoc   # same-set stride
    for i in range(1, p.l1_assoc + 1):
        ms.access(0x10000 + i * stride, 4, False, "data")
    stall = ms.access(0x10000, 4, False, "data")
    assert stall == p.l1_miss_penalty  # TLB + L2 still warm


def test_tag_kind_uses_tag_cache_and_tlb():
    ms = make()
    ms.access(0x8000_0000, 1, False, "tag")
    assert ms.tag_cache.accesses == 1
    assert ms.tag_tlb.accesses == 1
    assert ms.l1.accesses == 0
    assert ms.dtlb.accesses == 0
    # tag misses go to the unified L2 (Figure 4)
    assert ms.l2.accesses == 1


def test_shadow_kind_shares_l1_and_dtlb():
    ms = make()
    ms.access(0x4000_0000, 8, False, "shadow")
    assert ms.l1.accesses >= 1
    assert ms.dtlb.accesses == 1
    assert ms.tag_cache.accesses == 0


def test_stats_separated_by_kind():
    ms = make()
    ms.access(0x1000, 4, False, "data")
    ms.access(0x4000_0000, 8, True, "shadow")
    ms.access(0x8000_0000, 1, False, "tag")
    assert ms.stats["data"].accesses == 1
    assert ms.stats["shadow"].accesses == 1
    assert ms.stats["tag"].accesses == 1
    assert ms.stats.total_stall_cycles() == sum(
        ms.stats[k].stall_cycles for k in ("data", "shadow", "tag",
                                           "soft"))


def test_block_straddling_access_touches_two_blocks():
    ms = make()
    ms.access(0x1001E, 4, False, "data")   # crosses a 32B boundary
    assert ms.l1.accesses == 2


def test_distinct_page_tracking():
    ms = make()
    ms.access(0x1000, 4, False, "data")
    ms.access(0x1004, 4, False, "data")    # same micro-page
    ms.access(0x2000, 4, False, "data")    # different page
    assert ms.stats.distinct_pages("data") == 2


def test_metadata_stall_aggregate():
    ms = make()
    ms.access(0x8000_0000, 1, False, "tag")
    ms.access(0x4000_0000, 8, False, "shadow")
    assert ms.stats.metadata_stall_cycles() == \
        ms.stats["tag"].stall_cycles + ms.stats["shadow"].stall_cycles


def test_reset_stats():
    ms = make()
    ms.access(0x1000, 4, False, "data")
    ms.reset_stats()
    assert ms.stats["data"].accesses == 0
    # contents stay warm after reset
    assert ms.access(0x1000, 4, False, "data") == 0
