"""Sparse paged memory: mapping discipline, raw access, segments."""

import pytest
from hypothesis import given, strategies as st

from repro.layout import (
    GLOBAL_BASE,
    HEAP_BASE,
    PAGE_SIZE,
    STACK_TOP,
)
from repro.machine import Memory, MemoryFault

STACK_SIZE = 0x10000


def make(image=b""):
    mem = Memory(STACK_SIZE)
    mem.load_image(image)
    return mem


class TestMappingDiscipline:
    def test_null_guard(self):
        mem = make()
        with pytest.raises(MemoryFault):
            mem.read(0, 4)
        with pytest.raises(MemoryFault):
            mem.write(0xFFF, 1, 7)

    def test_globals_extent(self):
        mem = make(b"\x01\x02\x03\x04")
        assert mem.read(GLOBAL_BASE, 4) == 0x04030201
        with pytest.raises(MemoryFault):
            mem.read(GLOBAL_BASE + 4, 1)

    def test_heap_grows_with_sbrk(self):
        mem = make()
        with pytest.raises(MemoryFault):
            mem.write(HEAP_BASE, 4, 1)
        old = mem.sbrk(64)
        assert old == HEAP_BASE
        mem.write(HEAP_BASE, 4, 1)
        mem.write(HEAP_BASE + 60, 4, 2)
        with pytest.raises(MemoryFault):
            mem.write(HEAP_BASE + 64, 4, 3)

    def test_stack_reservation(self):
        mem = make()
        mem.write(STACK_TOP - 4, 4, 1)
        mem.write(STACK_TOP - STACK_SIZE, 4, 2)
        with pytest.raises(MemoryFault):
            mem.write(STACK_TOP - STACK_SIZE - 4, 4, 3)

    def test_access_straddling_segment_end_faults(self):
        mem = make(b"\x00" * 6)
        with pytest.raises(MemoryFault):
            mem.read(GLOBAL_BASE + 4, 4)   # last 2 bytes unmapped

    def test_segments_reporting(self):
        mem = make(b"xy")
        segs = mem.segments()
        assert segs[0] == (GLOBAL_BASE, GLOBAL_BASE + 2)
        assert segs[1] == (HEAP_BASE, HEAP_BASE)
        assert segs[2] == (STACK_TOP - STACK_SIZE, STACK_TOP)


class TestRawAccess:
    def test_little_endian(self):
        mem = make()
        mem.raw_write(0x5000, 4, 0x11223344)
        assert mem.raw_read(0x5000, 1) == 0x44
        assert mem.raw_read(0x5001, 1) == 0x33
        assert mem.raw_read(0x5002, 2) == 0x1122

    def test_cross_page_access(self):
        mem = make()
        addr = 0x6000 - 2   # straddles a page boundary
        mem.raw_write(addr, 4, 0xAABBCCDD)
        assert mem.raw_read(addr, 4) == 0xAABBCCDD

    def test_unmapped_reads_zero(self):
        mem = make()
        assert mem.raw_read(0x123456, 4) == 0

    def test_bulk_bytes(self):
        mem = make()
        blob = bytes(range(200))
        mem.raw_write_bytes(0x7F00, blob)   # crosses a page
        assert mem.raw_read_bytes(0x7F00, 200) == blob

    def test_write_masks_to_size(self):
        mem = make()
        mem.raw_write(0x5000, 1, 0x1FF)
        assert mem.raw_read(0x5000, 1) == 0xFF
        assert mem.raw_read(0x5001, 1) == 0

    def test_read_cstring(self):
        mem = make()
        mem.raw_write_bytes(0x5000, b"hello\0world")
        assert mem.read_cstring(0x5000) == "hello"


@given(addr=st.integers(0x5000, 0x9000),
       size=st.sampled_from([1, 2, 4]),
       value=st.integers(0, 0xFFFFFFFF))
def test_raw_roundtrip(addr, size, value):
    mem = make()
    mem.raw_write(addr, size, value)
    assert mem.raw_read(addr, size) == value & ((1 << (8 * size)) - 1)


@given(writes=st.lists(
    st.tuples(st.integers(0, PAGE_SIZE * 3 - 1), st.integers(0, 255)),
    max_size=100))
def test_byte_writes_match_dict_model(writes):
    mem = make()
    model = {}
    base = 0x8000
    for offset, value in writes:
        mem.raw_write(base + offset, 1, value)
        model[offset] = value
    for offset, value in model.items():
        assert mem.raw_read(base + offset, 1) == value
