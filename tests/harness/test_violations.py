"""Violation corpus: generator shape and a fast detection sample.

The full 288-pair run lives in benchmarks/bench_violations.py; here
we verify the generator's coverage and run a representative sample.
"""

import itertools

import pytest

from repro.harness.violations import (
    ACCESSES,
    ADDRESSING,
    BOUNDS,
    CONTAINERS,
    MAGNITUDES,
    REGIONS,
    ViolationCase,
    generate_corpus,
    run_case,
    run_corpus,
)
from repro.machine import MachineConfig

FULL = MachineConfig.hardbound(timing=False)


def test_corpus_has_288_pairs():
    corpus = generate_corpus()
    assert len(corpus) == 288
    names = {case.name for case in corpus}
    assert len(names) == 288


def test_corpus_covers_every_dimension_combination():
    corpus = generate_corpus()
    seen = {(c.access, c.bound, c.region, c.container, c.addressing)
            for c in corpus}
    expected = set(itertools.product(ACCESSES, BOUNDS, REGIONS,
                                     CONTAINERS, ADDRESSING))
    assert seen == expected


def test_magnitudes_per_addressing():
    corpus = generate_corpus()
    for mode, mags in MAGNITUDES.items():
        have = {c.magnitude for c in corpus if c.addressing == mode}
        assert have == set(mags)


def test_sources_differ_between_variants():
    for case in generate_corpus()[:20]:
        assert case.bad_source != case.ok_source


@pytest.mark.parametrize("stride_offset", range(6))
def test_sampled_detection(stride_offset):
    """Every 36th pair, staggered: 48 distinct pairs across the six
    parametrized runs, all detected with no false positives."""
    cases = generate_corpus()[stride_offset::36]
    result = run_corpus(FULL, cases)
    assert result.detected == result.total
    assert not result.false_positives
    assert not result.errors


def test_malloc_only_mode_is_incomplete_by_design():
    """Footnote 2's mode protects heap objects at *per-allocation*
    granularity: whole-allocation overflows are caught, sub-object
    overflows inside a struct are not (they need the compiler's
    narrowing), and stack objects are wholly unprotected."""
    cfg = MachineConfig.malloc_only(timing=False)
    corpus = generate_corpus()
    heap_alloc = [c for c in corpus if c.region == "heap"
                  and c.container != "struct_member"][::4]
    heap_member = [c for c in corpus if c.region == "heap"
                   and c.container == "struct_member"
                   and c.magnitude == "one"
                   and c.addressing == "var_index"]
    stack = [c for c in corpus
             if c.region == "stack" and c.container != "struct_member"
             and c.magnitude == "one"][::4]

    alloc_result = run_corpus(cfg, heap_alloc)
    assert alloc_result.detected == alloc_result.total
    assert not alloc_result.false_positives

    member_result = run_corpus(cfg, heap_member)
    assert member_result.detected < member_result.total, \
        "sub-object overflows need compiler narrowing"
    assert not member_result.false_positives

    stack_result = run_corpus(cfg, stack)
    assert stack_result.detected < stack_result.total
    assert not stack_result.false_positives


def test_run_case_reports_errors_for_broken_source():
    case = generate_corpus()[0]
    case.bad_source = "int main() { syntax error"
    detected, fp, error = run_case(case, FULL)
    assert not detected and not fp
    assert error is not None


def test_case_names_are_stable():
    case = ViolationCase("read", "upper", "heap", "char_array",
                         "const_index", "one")
    assert case.name == "read-upper-heap-char_array-const_index-one"


# -- every engine, not just the default ------------------------------------

ENGINES = ("legacy", "decoded", "blocks", "superblocks")


@pytest.mark.parametrize("engine", ENGINES)
def test_sampled_detection_under_every_engine(engine):
    """The detection contract holds per engine, not just under the
    default superblocks tier: a staggered 6-pair sample per engine
    (24 distinct pairs across the parametrized runs via the engine
    index) detects everything with zero false positives."""
    offset = ENGINES.index(engine) * 12
    cases = generate_corpus()[offset::48]
    config = MachineConfig.hardbound(timing=False, engine=engine)
    result = run_corpus(config, cases)
    assert result.detected == result.total
    assert not result.false_positives
    assert not result.errors


@pytest.mark.slow
@pytest.mark.parametrize("engine", ENGINES)
def test_full_corpus_under_every_engine(engine):
    """All 288 pairs under every engine (the exhaustive version of
    the sample above; ~minutes per engine, hence the slow marker)."""
    config = MachineConfig.hardbound(timing=False, engine=engine)
    result = run_corpus(config)
    assert result.total == 288
    assert result.detected == 288
    assert not result.false_positives
    assert not result.errors
