"""Assembler: syntax, operands, directives, linking, errors."""

import pytest

from repro.isa import Op, assemble, AssemblerError
from repro.layout import GLOBAL_BASE


def test_simple_program_assembles():
    prog = assemble("""
        .text
    main:
        mov r1, 5
        add r2, r1, 3
        halt 0
    """)
    assert len(prog.instrs) == 3
    assert prog.entry == prog.labels["main"] == 0
    assert prog.instrs[0].op is Op.MOV
    assert prog.instrs[0].imm == 5
    assert prog.instrs[1].op is Op.ADD
    assert prog.instrs[1].imm == 3


def test_register_aliases():
    prog = assemble("mov sp, fp\nmov ra, r0\n")
    assert prog.instrs[0].rd == 13
    assert prog.instrs[0].rs == 14
    assert prog.instrs[1].rd == 15


def test_alu_register_and_immediate_forms():
    prog = assemble("add r1, r2, r3\nadd r1, r2, -7\n")
    assert prog.instrs[0].rt == 3 and prog.instrs[0].imm is None
    assert prog.instrs[1].rt is None and prog.instrs[1].imm == -7


def test_hex_and_char_immediates():
    prog = assemble("mov r1, 0x10\nmov r2, 'A'\nmov r3, '\\n'\n")
    assert prog.instrs[0].imm == 16
    assert prog.instrs[1].imm == ord("A")
    assert prog.instrs[2].imm == ord("\n")


def test_memory_operand_full_form():
    prog = assemble("load r1, [r2 + r3*4 + 8]\n")
    instr = prog.instrs[0]
    assert (instr.rs, instr.rt, instr.scale, instr.disp) == (2, 3, 4, 8)
    assert instr.size == 4


def test_memory_operand_negative_disp():
    prog = assemble("store [fp - 12], r1\n")
    instr = prog.instrs[0]
    assert instr.rs == 14 and instr.disp == -12
    assert instr.rd == 1


def test_memory_operand_absolute():
    prog = assemble("load r1, [0x2000]\n")
    instr = prog.instrs[0]
    assert instr.rs is None and instr.rt is None and instr.disp == 0x2000


def test_load_store_sizes():
    prog = assemble("""
        loadb r1, [r2]
        loadh r1, [r2]
        load  r1, [r2]
        storeb [r2], r1
        storeh [r2], r1
        store  [r2], r1
    """)
    sizes = [i.size for i in prog.instrs]
    assert sizes == [1, 2, 4, 1, 2, 4]


def test_branch_linking():
    prog = assemble("""
    top:
        bnez r1, done
        jmp top
    done:
        halt 0
    """)
    assert prog.instrs[0].target == 2
    assert prog.instrs[1].target == 0


def test_undefined_label_raises():
    with pytest.raises(AssemblerError, match="undefined label"):
        assemble("jmp nowhere\n")


def test_duplicate_label_raises():
    with pytest.raises(AssemblerError, match="duplicate label"):
        assemble("a:\n  mov r1, 0\na:\n  halt 0\n")


def test_unknown_mnemonic_raises():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble("frobnicate r1\n")


def test_bad_register_raises():
    with pytest.raises(AssemblerError, match="expected register"):
        assemble("add r1, 5, r2\n")


def test_data_word_directive():
    prog = assemble("""
        .data
    tbl: .word 1, 2, -3
    """)
    assert prog.data_symbols["tbl"].offset == 0
    assert prog.data_image[0:4] == (1).to_bytes(4, "little")
    assert prog.data_image[8:12] == (0x100000000 - 3).to_bytes(4, "little")


def test_data_asciiz_and_space():
    prog = assemble("""
        .data
    msg: .asciiz "hi\\n"
    buf: .space 8
    """)
    assert prog.data_image[:4] == b"hi\n\0"
    assert prog.data_symbols["buf"].offset == 4
    assert prog.data_symbols["buf"].size == 8
    assert len(prog.data_image) == 12


def test_symbol_address_immediate():
    prog = assemble("""
        mov r1, =buf
        halt 0
        .data
    pad: .space 12
    buf: .word 0
    """)
    assert prog.instrs[0].imm == GLOBAL_BASE + 12


def test_symbol_in_memory_operand():
    prog = assemble("""
        load r1, [buf + 4]
        halt 0
        .data
    buf: .space 8
    """)
    assert prog.instrs[0].disp == GLOBAL_BASE + 4


def test_push_pop_expand():
    prog = assemble("push r1\npop r2\n")
    ops = [i.op for i in prog.instrs]
    assert ops == [Op.SUB, Op.STORE, Op.LOAD, Op.ADD]


def test_setbound_forms():
    prog = assemble("setbound r1, r2, 16\nsetbound r1, r2, r3\n")
    assert prog.instrs[0].imm == 16
    assert prog.instrs[1].rt == 3


def test_setcode_label_resolves():
    prog = assemble("""
    main:
        setcode r1, helper
        halt 0
    helper:
        ret
    """)
    assert prog.instrs[0].imm == 2


def test_comments_are_stripped():
    prog = assemble("mov r1, 1 ; trailing\n# full line\nhalt 0\n")
    assert len(prog.instrs) == 2


def test_align_directive():
    prog = assemble("""
        .data
    a:  .byte 1
        .align 4
    b:  .word 2
    """)
    assert prog.data_symbols["b"].offset == 4


def test_call_register_becomes_callr():
    prog = assemble("call r5\n")
    assert prog.instrs[0].op is Op.CALLR


def test_listing_roundtrip_smoke():
    prog = assemble("""
    main:
        mov r1, 3
        setbound r2, r1, 4
        load r3, [r2 + 2]
        halt 0
    """)
    text = prog.listing()
    assert "setbound r2, r1, 4" in text
    assert "main:" in text
