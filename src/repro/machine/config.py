"""Machine and HardBound configuration."""

from __future__ import annotations

import dataclasses
import enum

from repro.layout import STACK_SIZE

#: Execution-engine names accepted by :attr:`MachineConfig.engine`.
ENGINE_DECODED = "decoded"
ENGINE_LEGACY = "legacy"
ENGINE_BLOCKS = "blocks"
ENGINE_SUPERBLOCKS = "superblocks"
ENGINES = (ENGINE_DECODED, ENGINE_LEGACY, ENGINE_BLOCKS,
           ENGINE_SUPERBLOCKS)


class SafetyMode(enum.Enum):
    """How much HardBound checking the core performs.

    ``OFF``
        Plain core: no metadata, no checks (the uninstrumented
        baseline binaries of Section 5.4).
    ``MALLOC_ONLY``
        Bounds are checked only when present; dereferencing a register
        without metadata is permitted unchecked (footnote 2: legacy
        binaries with an instrumented ``malloc``).
    ``FULL``
        Compiler-instrumented binaries: every dereference must go
        through a bounded pointer, and dereferencing a non-pointer
        raises an exception (Figure 3C/D).
    """

    OFF = "off"
    MALLOC_ONLY = "malloc-only"
    FULL = "full"


@dataclasses.dataclass
class MachineConfig:
    """All knobs of the simulated machine.

    Attributes mirror the experimental knobs of Section 5:

    ``encoding``
        Pointer-metadata encoding name: ``"uncompressed"``,
        ``"extern4"``, ``"intern4"`` or ``"intern11"``.  Ignored when
        ``mode`` is ``OFF``.
    ``check_uop``
        Section 5.4 ablation: the bounds check of an uncompressed
        pointer consumes an explicit extra µop instead of running on a
        dedicated parallel ALU.
    ``check_access_extent``
        Extension (not paper behaviour): also require ``ea + size <=
        bound`` rather than the paper's ``ea < bound``.  Default off to
        match Figure 2 semantics exactly.
    ``timing``
        Whether to run the cache/TLB timing model.  Functional tests
        turn it off for speed.
    ``engine``
        Execution engine: ``"superblocks"`` (default) adds a trace
        tier on top of the block engine — hot blocks are chained with
        their dominant successors into single generated *trace
        closures* with branch side-exits, and every instruction shape
        (including sub-word load/store and the ``setbound``/``sbrk``
        environment ops) fuses into the generated code; ``"blocks"``
        fuses straight-line runs into basic-block superinstructions —
        including the word load/store bodies over the flat-bytearray
        heap; both pair with the fast memory-timing model
        (:class:`~repro.caches.fast.FastMemorySystem`).  ``"decoded"``
        pre-decodes the program into per-instruction closures with
        operand forms resolved once; ``"legacy"`` is the original
        per-instruction dispatch loop, retained for differential
        testing.  All four produce bit-identical
        :class:`~repro.machine.cpu.RunResult` statistics.
    ``superblock_threshold``
        Block-entry count at which the superblock tier attempts to
        grow a trace from that block (hotness knob; only read by
        ``engine="superblocks"``).
    ``superblock_max_blocks``
        Maximum number of basic blocks chained into one trace
        (max-trace-length knob).
    ``superblock_call_depth``
        Maximum call-nesting depth a trace may inline by following
        ``call`` edges into the callee and predicted ``ret`` edges
        back (whole-function traces).  ``0`` restores the PR 5
        behaviour of stopping every trace at call/ret boundaries;
        indirect calls and recursive back-edges always terminate
        traces regardless of this knob.
    ``obs_events``
        Opt-in structured event tracing (off by default, and free
        when off).  A path string makes the run append its JSONL
        event stream — run manifest, phase times, trace formation,
        demotions, per-trace dispatch profiles, side-exit counts —
        to that file (one atomic write at run end, so concurrent
        harness workers can share a file); an
        :class:`~repro.obs.events.EventLog` instance records into
        that shared in-memory log instead, leaving flushing to the
        caller.  Render the file with ``python -m repro.obs.report``.
    ``obs_label``
        Free-form label stamped into the run manifest (the harness
        sets the workload name); purely cosmetic, never part of any
        result or cache key.
    ``retain_cpu``
        Keep a strong reference to the :class:`~repro.machine.cpu.CPU`
        on the returned :class:`~repro.machine.cpu.RunResult` so its
        memory image and caches stay inspectable after the run.  Off
        by default so long matrix sweeps don't pin whole machine
        states; without it ``RunResult.cpu`` only works while the CPU
        is otherwise alive.
    """

    mode: SafetyMode = SafetyMode.OFF
    encoding: str = "uncompressed"
    check_uop: bool = False
    check_access_extent: bool = False
    timing: bool = True
    engine: str = ENGINE_SUPERBLOCKS
    superblock_threshold: int = 64
    superblock_max_blocks: int = 32
    superblock_call_depth: int = 8
    obs_events: object = None
    obs_label: str = ""
    retain_cpu: bool = False
    stack_size: int = STACK_SIZE
    max_instructions: int = 200_000_000
    capture_output: bool = True
    echo_output: bool = False
    #: Section 6.2 temporal extension: track freed heap words via the
    #: ``markfree`` hint and trap use-after-free / double-free.
    temporal: bool = False
    #: Optional metadata-engine factory with the signature
    #: ``(encoding, memsys, check_uop, check_access_extent) -> engine``;
    #: the software-checking baselines substitute a cost-model engine
    #: here (see repro.baselines.fatptr).
    engine_factory: object = None

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise ValueError("unknown engine %r (have: %s)"
                             % (self.engine, ", ".join(ENGINES)))

    @classmethod
    def plain(cls, **kw) -> "MachineConfig":
        """Uninstrumented baseline core."""
        return cls(mode=SafetyMode.OFF, **kw)

    @classmethod
    def hardbound(cls, encoding: str = "intern11", **kw) -> "MachineConfig":
        """Full-safety HardBound core with the given encoding."""
        return cls(mode=SafetyMode.FULL, encoding=encoding, **kw)

    @classmethod
    def malloc_only(cls, encoding: str = "intern11",
                    **kw) -> "MachineConfig":
        """Legacy-binary mode: heap bounds only."""
        return cls(mode=SafetyMode.MALLOC_ONLY, encoding=encoding, **kw)
