"""Integration: every example script runs cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")

EXAMPLES = [
    "quickstart.py",
    "legacy_heap_protection.py",
    "subobject_overflow.py",
    "attack_demo.py",
    "temporal_safety.py",
]

EXPECTED_SNIPPETS = {
    "quickstart.py": ["BoundsError", "bounds checks performed"],
    "legacy_heap_protection.py": ["caught", "ran silently"],
    "subobject_overflow.py": ["caught inside strcpy",
                              "red zone MISSED it"],
    "attack_demo.py": ["PWNED", "trap in strcpy", "non-pointer"],
    "temporal_safety.py": ["use-after-free", "double free"],
}


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    for snippet in EXPECTED_SNIPPETS[name]:
        assert snippet in proc.stdout, \
            "%s missing %r in output" % (name, snippet)


def test_olden_report_subset():
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "olden_report.py"),
         "treeadd"],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert "Figure 5" in proc.stdout
    assert "Figure 7" in proc.stdout
    assert "treeadd" in proc.stdout


def test_olden_report_rejects_unknown():
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "olden_report.py"),
         "nonesuch"],
        capture_output=True, text=True, timeout=60)
    assert proc.returncode != 0
