"""Figure builders and the measurement runner on a reduced matrix."""

import pytest

from repro.harness.figures import (
    FIGURE7_PUBLISHED,
    FIGURE7_PUBLISHED_AVERAGE,
    check_uop_ablation_table,
    figure5_breakdown,
    figure5_table,
    figure6_table,
    figure7_table,
    format_table,
)
from repro.harness.runner import (
    BenchmarkRun,
    ENCODINGS,
    compile_cached,
    run_benchmark_matrix,
    run_workload,
)
from repro.machine import MachineConfig
from repro.minic.codegen import InstrumentMode
from repro.workloads import WORKLOADS


@pytest.fixture(scope="module")
def small_matrix():
    return run_benchmark_matrix(workloads=["treeadd", "mst"],
                                with_baselines=True)


def test_published_table_matches_paper_rows():
    assert set(FIGURE7_PUBLISHED) == set(WORKLOADS)
    # spot-check two cells quoted from the paper
    assert FIGURE7_PUBLISHED["mst"]["ccured_pub"] == 1.87
    assert FIGURE7_PUBLISHED["em3d"]["jkrlda"] == 1.68
    assert FIGURE7_PUBLISHED_AVERAGE["intern11"] == 1.05


def test_format_table_alignment():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert all(len(line) >= 6 for line in lines[2:])


def test_figure5_table_structure(small_matrix):
    headers, rows = figure5_table(small_matrix)
    assert headers[0] == "benchmark"
    # 2 workloads x 3 encodings + 3 average rows
    assert len(rows) == 2 * 3 + 3
    assert rows[-1][0] == "average"


def test_figure5_breakdown_fields(small_matrix):
    seg = figure5_breakdown(small_matrix["treeadd"], "intern11")
    assert set(seg) == {"setbound", "meta_uops", "meta_stall",
                        "pollution", "total"}
    assert seg["total"] > 0
    assert seg["setbound"] >= 0


def test_figure6_table_structure(small_matrix):
    headers, rows = figure6_table(small_matrix)
    assert len(rows) == 2 * 3 + 3
    pages = small_matrix["treeadd"].page_overhead("extern4")
    assert pages["total"] == pytest.approx(pages["tag"]
                                           + pages["shadow"])


def test_figure7_table_structure(small_matrix):
    headers, rows = figure7_table(small_matrix)
    assert len(headers) == 14
    assert len(rows) == 3  # two workloads + average
    for row in rows:
        for cell in row[1:]:
            assert float(cell) > 0.5


def test_check_uop_table(small_matrix):
    # reuse the same matrix for both: deltas must then be ~zero
    headers, rows = check_uop_ablation_table(small_matrix,
                                             small_matrix)
    assert rows[-1][-1] == "+0.0%"


def test_benchmark_run_metrics(small_matrix):
    bench = small_matrix["treeadd"]
    assert bench.overhead("intern11") > 1.0
    assert bench.ccured_runtime_overhead() > 1.0
    assert bench.ccured_uop_overhead() > 1.0
    assert bench.objtable_runtime_overhead() > 1.0


def test_compile_cached_reuses_programs():
    wl = WORKLOADS["treeadd"]
    p1 = compile_cached(wl.source, InstrumentMode.HARDBOUND)
    p2 = compile_cached(wl.source, InstrumentMode.HARDBOUND)
    assert p1 is p2
    p3 = compile_cached(wl.source, InstrumentMode.NONE)
    assert p3 is not p1


def test_run_workload_accepts_name_or_object():
    by_name = run_workload("treeadd",
                           MachineConfig.plain(timing=False))
    by_obj = run_workload(WORKLOADS["treeadd"],
                          MachineConfig.plain(timing=False))
    assert by_name.output == by_obj.output


def test_encodings_constant_matches_paper_order():
    assert ENCODINGS == ("extern4", "intern4", "intern11")


# -- golden output / round-trip coverage (PR 7) ------------------------------

def test_format_table_golden_output():
    text = format_table(["name", "value"],
                        [["a", "1.00x"], ["bb", "12.34x"]],
                        title="Overheads")
    assert text == ("Overheads\n"
                    "=========\n"
                    "name  value \n"
                    "----  ------\n"
                    "a     1.00x \n"
                    "bb    12.34x")


def test_format_table_without_title():
    text = format_table(["h"], [["x"]])
    assert text == "h\n-\nx"


def test_figure5_cells_round_trip_the_overheads(small_matrix):
    headers, rows = figure5_table(small_matrix)
    total_col = headers.index("total-overhead")
    for row in rows:
        name, enc = row[0], row[1]
        if name == "average":
            continue
        bench = small_matrix[name]
        expected = "%.1f%%" % (100 * (bench.overhead(enc) - 1.0))
        assert row[total_col] == expected


def test_figure6_cells_round_trip_the_page_overheads(small_matrix):
    headers, rows = figure6_table(small_matrix)
    extra_col = headers.index("extra-pages")
    for row in rows:
        name, enc = row[0], row[1]
        if name == "average":
            continue
        pages = small_matrix[name].page_overhead(enc)
        assert row[extra_col] == "%.1f%%" % (100 * pages["total"])


def test_figure7_cells_round_trip_the_measurements(small_matrix):
    headers, rows = figure7_table(small_matrix)
    sim_int11 = headers.index("int11(sim)")
    pub_int11 = headers.index("int11(pub)")
    for row in rows:
        name = row[0]
        if name == "average":
            continue
        bench = small_matrix[name]
        assert row[sim_int11] == "%.2f" % bench.overhead("intern11")
        assert row[pub_int11] \
            == "%.2f" % FIGURE7_PUBLISHED[name]["intern11"]


def test_figure_tables_render_deterministically(small_matrix):
    for builder in (figure5_table, figure6_table, figure7_table):
        headers, rows = builder(small_matrix)
        again = builder(small_matrix)
        assert format_table(headers, rows) \
            == format_table(*again)
