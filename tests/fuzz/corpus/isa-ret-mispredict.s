; alternating callees from one loop: a cross-call trace inlines one
; call edge and its predicted ret, so every other iteration takes
; the ret-mispredict guard — counters must still match exactly
main:
    mov r5, 0
    mov r6, 8
L:
    and r1, r6, 1
    beqz r1, Leven
    call f1
    jmp Lnext
Leven:
    call f2
Lnext:
    sub r6, r6, 1
    bnez r6, L
    halt r5
f1:
    add r5, r5, 1
    ret
f2:
    add r5, r5, 2
    ret
