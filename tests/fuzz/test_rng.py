"""Seed plumbing: the reproduction contract everything else leans on."""

import pytest

from repro.fuzz.rng import (
    FUZZ_SEED_ENV,
    fuzz_rng,
    resolve_seed,
    seed_banner,
    seed_range,
    shard_ranges,
    spawn,
)


def test_resolve_seed_defaults(monkeypatch):
    monkeypatch.delenv(FUZZ_SEED_ENV, raising=False)
    assert resolve_seed(42) == 42


def test_resolve_seed_env_override(monkeypatch):
    monkeypatch.setenv(FUZZ_SEED_ENV, "1234")
    assert resolve_seed(42) == 1234
    monkeypatch.setenv(FUZZ_SEED_ENV, "0xC0DE")
    assert resolve_seed(42) == 0xC0DE


def test_resolve_seed_rejects_garbage(monkeypatch):
    monkeypatch.setenv(FUZZ_SEED_ENV, "not-a-seed")
    with pytest.raises(ValueError):
        resolve_seed(0)


def test_fuzz_rng_deterministic(monkeypatch):
    monkeypatch.delenv(FUZZ_SEED_ENV, raising=False)
    rng_a, seed_a = fuzz_rng(7)
    rng_b, seed_b = fuzz_rng(7)
    assert seed_a == seed_b == 7
    assert [rng_a.random() for _ in range(5)] == \
        [rng_b.random() for _ in range(5)]


def test_fuzz_rng_reports_effective_seed(monkeypatch):
    monkeypatch.setenv(FUZZ_SEED_ENV, "99")
    _rng, seed = fuzz_rng(7)
    assert seed == 99


def test_seed_banner_names_the_env_var():
    banner = seed_banner(1234, "attack")
    assert FUZZ_SEED_ENV in banner
    assert "1234" in banner
    assert "attack" in banner


def test_spawn_is_stable():
    rng_a, _ = fuzz_rng(5)
    rng_b, _ = fuzz_rng(5)
    assert spawn(rng_a).random() == spawn(rng_b).random()


class TestShardRanges:
    def test_partitions_exactly(self):
        ranges = shard_ranges(0, 100, 7)
        covered = [seed for lo, hi in ranges
                   for seed in range(lo, hi)]
        assert covered == list(range(100))

    def test_contiguous_and_balanced(self):
        ranges = shard_ranges(10, 10, 3)
        assert ranges == [(10, 14), (14, 17), (17, 20)]

    def test_more_shards_than_seeds(self):
        ranges = shard_ranges(0, 2, 8)
        assert ranges == [(0, 1), (1, 2)]

    def test_zero_seeds(self):
        assert shard_ranges(0, 0, 4) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            shard_ranges(0, -1, 2)

    def test_seed_range_cap(self):
        assert list(seed_range(5, 50, cap=3)) == [5, 6, 7]
        assert list(seed_range(5, 7, cap=100)) == [5, 6]
