"""Red-zone tripwire baseline (Section 2.1).

Purify/Valgrind-style checking: each allocation is surrounded by a
small invalid "red zone"; every access is checked against a validity
map.  Contiguous overflows hit the zone; *large* overflows can jump
clean over it into a neighbouring object — the incompleteness the
paper uses to motivate bounded pointers.

Attached as a CPU observer: ``setbound`` events (from ``malloc``)
register allocations, memory events are validated against the map.
Violations are recorded, not raised, so a run can be compared against
HardBound's ground truth.
"""

from __future__ import annotations

from typing import List, Set, Tuple

#: red-zone width in bytes (Purify's default is larger; a small zone
#: makes the jump-over incompleteness easy to demonstrate)
DEFAULT_ZONE = 4


class RedZoneChecker:
    """Byte-granular validity map with red zones between heap objects."""

    def __init__(self, zone: int = DEFAULT_ZONE,
                 heap_only: bool = True):
        self.zone = zone
        self.heap_only = heap_only
        self._valid: Set[int] = set()
        self._red: Set[int] = set()
        self.violations: List[Tuple[int, str]] = []
        self.allocations = 0
        self.checked_accesses = 0

    # -- CPU observer interface -------------------------------------------------

    def on_setbound(self, value: int, size: int) -> None:
        """Register [value, value+size) valid, with a trailing zone."""
        self.allocations += 1
        size = max(size, 1)
        for addr in range(value, value + size):
            self._valid.add(addr)
            self._red.discard(addr)
        for addr in range(value + size, value + size + self.zone):
            if addr not in self._valid:
                self._red.add(addr)
        for addr in range(value - self.zone, value):
            if addr not in self._valid:
                self._red.add(addr)

    def on_pointer_arith(self, value: int) -> None:
        """Red zones do not check arithmetic, only accesses."""

    def on_mem(self, ea: int, size: int, write: bool) -> None:
        self.checked_accesses += 1
        for addr in range(ea, ea + size):
            if addr in self._red:
                self.violations.append(
                    (addr, "write" if write else "read"))
                return

    # -- queries ---------------------------------------------------------------

    def is_valid(self, addr: int) -> bool:
        return addr in self._valid

    def is_red(self, addr: int) -> bool:
        return addr in self._red

    def detected(self) -> bool:
        return bool(self.violations)
