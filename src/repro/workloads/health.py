"""health: Colombian health-care simulation (Olden).

A 4-ary tree of villages; each village owns linked lists of patients
(waiting, assessment, treatment).  Every time step, patients are
generated at the leaves, treated locally or referred up the hierarchy
— an allocation-heavy linked-list shuffling workload.
"""

LEVELS = 4       # 1 + 4 + 16 + 64 villages
TIME_STEPS = 24

SOURCE = """
struct patient {
    int time;
    int time_left;
    int hosps_visited;
    struct patient *next;
};

struct village {
    struct village *child[4];
    struct village *parent;
    struct patient *waiting;
    struct patient *assess;
    struct patient *inside;
    struct patient *done;
    int label;
    int seed;
    int stats[4];              // treated/time/hosps/steps per village
};

int __treated;
int __total_time;
int __total_hosps;

int vrand(struct village *v) {
    v->seed = v->seed * 1103515245 + 12345;
    return (v->seed >> 8) & 32767;
}

struct village *build(int level, int label, struct village *parent) {
    struct village *v = (struct village*)malloc(sizeof(struct village));
    v->parent = parent;
    v->waiting = (struct patient*)0;
    v->assess = (struct patient*)0;
    v->inside = (struct patient*)0;
    v->done = (struct patient*)0;
    v->label = label;
    v->seed = label * 2654435761 + 17;
    for (int i = 0; i < 4; i++) { v->stats[i] = 0; }
    for (int i = 0; i < 4; i++) {
        if (level > 1) {
            v->child[i] = build(level - 1, label * 4 + i + 1, v);
        } else {
            v->child[i] = (struct village*)0;
        }
    }
    return v;
}

void put_list(struct patient **list, struct patient *p) {
    p->next = *list;
    *list = p;
}

struct patient *generate(struct village *v) {
    if ((vrand(v) & 15) < 3) {       // ~19%% arrival rate at leaves
        struct patient *p = (struct patient*)
            malloc(sizeof(struct patient));
        p->time = 0;
        p->time_left = 0;
        p->hosps_visited = 0;
        p->next = (struct patient*)0;
        return p;
    }
    return (struct patient*)0;
}

void check_patients_inside(struct village *v) {
    struct patient *p = v->inside;
    struct patient *prev = (struct patient*)0;
    while (p) {
        struct patient *nxt = p->next;
        p->time_left--;
        p->time++;
        if (p->time_left <= 0) {
            if (prev) { prev->next = nxt; } else { v->inside = nxt; }
            __treated++;
            __total_time += p->time;
            __total_hosps += p->hosps_visited;
            v->stats[0]++;
            v->stats[1] += p->time;
            put_list(&v->done, p);
        } else {
            prev = p;
        }
        p = nxt;
    }
}

void check_patients_assess(struct village *v) {
    struct patient *p = v->assess;
    v->assess = (struct patient*)0;
    while (p) {
        struct patient *nxt = p->next;
        p->time++;
        int r = vrand(v);
        if ((r & 15) < 10 || !v->parent) {   // treat locally
            p->time_left = (r >> 4 & 3) + 2;
            put_list(&v->inside, p);
        } else {                              // refer upward
            p->hosps_visited++;
            put_list(&v->parent->waiting, p);
        }
        p = nxt;
    }
}

void check_patients_waiting(struct village *v) {
    struct patient *p = v->waiting;
    v->waiting = (struct patient*)0;
    while (p) {
        struct patient *nxt = p->next;
        p->time++;
        put_list(&v->assess, p);
        p = nxt;
    }
}

void sim(struct village *v) {
    if (!v) { return; }
    for (int i = 0; i < 4; i++) { sim(v->child[i]); }
    check_patients_inside(v);
    check_patients_assess(v);
    check_patients_waiting(v);
    if (!v->child[0]) {                  // leaf: new arrivals
        struct patient *p = generate(v);
        if (p) { put_list(&v->waiting, p); p->hosps_visited++; }
    }
}

int main() {
    __treated = 0;
    __total_time = 0;
    __total_hosps = 0;
    struct village *top = build(%(levels)d, 0, (struct village*)0);
    for (int t = 0; t < %(steps)d; t++) { sim(top); }
    print(__treated);
    print(__total_time);
    print(__total_hosps);
    return 0;
}
""" % {"levels": LEVELS, "steps": TIME_STEPS}
