"""Experiment harness: violation corpus, runners and figure tables."""

from repro.harness.violations import (
    ViolationCase,
    generate_corpus,
    run_corpus,
    CorpusResult,
)
from repro.harness.runner import (
    BenchmarkRun,
    run_workload,
    run_benchmark_matrix,
)
from repro.harness.figures import (
    figure5_table,
    figure6_table,
    figure7_table,
    check_uop_ablation_table,
    format_table,
)

__all__ = [
    "ViolationCase",
    "generate_corpus",
    "run_corpus",
    "CorpusResult",
    "BenchmarkRun",
    "run_workload",
    "run_benchmark_matrix",
    "figure5_table",
    "figure6_table",
    "figure7_table",
    "check_uop_ablation_table",
    "format_table",
]
