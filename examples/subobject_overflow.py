#!/usr/bin/env python3
"""The sub-object overflow that defeats object tables (Section 2.2).

The paper's killer example: an array embedded in a struct.  A pointer
to ``node.str`` and a pointer to ``node`` are the same address, so an
object-lookup table cannot give them different bounds — ``strcpy``
can silently overwrite ``node.x``.  HardBound's compiler narrows the
bounds at the decay site, so the overflow traps inside ``strcpy``.

This example also runs the red-zone baseline to show its own
incompleteness: a large-stride overflow jumps the tripwire.

Run:  python examples/subobject_overflow.py
"""

from repro import BoundsError, CPU, MachineConfig, compile_program
from repro.baselines import RedZoneChecker
from repro.minic.codegen import InstrumentMode

SUBOBJECT = """
struct record {
    char str[5];
    int x;                    // could be a function pointer...
};

int main() {
    struct record node;
    node.x = 1234;
    char *ptr = node.str;     // compiler narrows bounds to 5 bytes
    strcpy(ptr, "overflow");  // 9 bytes: would overwrite node.x
    return node.x;
}
"""

JUMP_THE_REDZONE = """
// Purify-style allocator: a 4-byte unallocated gap between objects
void *rzmalloc(int n) {
    return __setbound(sbrk(n + 4), n);
}
int main() {
    char *a = (char*)rzmalloc(8);
    char *b = (char*)rzmalloc(8);
    b[0] = 'b';
    a[14] = 'X';              // far overflow: jumps the zone into b
    return 0;
}
"""


def hardbound_catches_subobject():
    print("struct { char str[5]; int x; } under full HardBound:")
    program = compile_program(SUBOBJECT, InstrumentMode.HARDBOUND)
    try:
        CPU(program, MachineConfig.hardbound()).run()
        print("  NOT DETECTED (unexpected!)")
    except BoundsError as err:
        print("  caught inside strcpy: %s" % err)
    print()


def plain_core_corrupts_silently():
    print("the same program on a plain core:")
    program = compile_program(SUBOBJECT, InstrumentMode.NONE)
    result = CPU(program, MachineConfig.plain()).run()
    print("  exit code %d -- node.x was silently corrupted"
          % result.exit_code)
    print("  (1234 became the bytes of \"flow\\0\")\n")


def redzone_misses_far_overflow():
    print("red-zone tripwire baseline on a far overflow:")
    program = compile_program(JUMP_THE_REDZONE,
                              InstrumentMode.HEAP_ONLY,
                              include_stdlib=False)
    # plain core: the buggy write actually executes, and the checker
    # (observing malloc's setbounds) plays Purify
    cpu = CPU(program, MachineConfig.plain(timing=False))
    checker = RedZoneChecker(zone=4)
    cpu.observer = checker
    cpu.run()
    if checker.detected():
        print("  red zone caught it")
    else:
        print("  red zone MISSED it: the far write jumped the "
              "4-byte zone into object b")
        print("  (HardBound catches it: bounds, not tripwires)")


if __name__ == "__main__":
    hardbound_catches_subobject()
    plain_core_corrupts_silently()
    redzone_misses_far_overflow()
