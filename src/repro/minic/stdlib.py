"""The MiniC runtime library, written in MiniC.

``malloc`` follows the paper's Section 3.2: the allocator obtains raw
memory (via ``sbrk``), manages headers through explicitly ``setbound``
pointers (the "sophisticated programmer" pattern for custom
allocators), and returns a pointer bounded to the *requested* size, so
even a one-byte overflow of a heap object is a detectable spatial
violation.  When compiled with ``InstrumentMode.NONE`` all
``__setbound`` intrinsics vanish and this becomes an ordinary
uninstrumented allocator — the legacy-binary baseline.

Chunk layout: ``[size word][user data...]``; freed chunks are chained
through their first user word (classic K&R-style free list,
first-fit, no splitting or coalescing — allocation-intensive Olden
workloads mostly never free).
"""

STDLIB_SOURCE = r"""
// ---------------------------------------------------------------- allocator
struct __chunk { int size; struct __chunk *next; };

struct __chunk *__freelist;
int __rand_seed;

void *malloc(int n) {
    struct __chunk *c;
    struct __chunk *prev;
    char *raw;
    int need;
    if (n <= 0) { n = 1; }
    need = (n + 3) & ~3;
    if (need < 8) { need = 8; }   // room for the free-list link
    prev = (struct __chunk*)0;
    c = __freelist;
    while (c) {
        if (c->size >= need) {
            if (prev) { prev->next = c->next; }
            else { __freelist = c->next; }
            return __setbound((void*)((char*)c + 4), n);
        }
        prev = c;
        c = c->next;
    }
    raw = (char*)__setbound(sbrk(need + 4), need + 4);
    *(int*)raw = need;
    return __setbound((void*)(raw + 4), n);
}

void free(void *p) {
    struct __chunk *c;
    int sz;
    if (!p) { return; }
    c = (struct __chunk*)__setbound((void*)((char*)p - 4), 8);
    sz = c->size;
    c->next = __freelist;
    __freelist = c;
    // temporal hint (Section 6.2): poison the user words beyond the
    // free-list link, which stays live for the allocator itself
    if (sz > 4) {
        __markfree((void*)((char*)p + 4), sz - 4);
    }
}

void *calloc(int count, int size) {
    int total;
    char *p;
    int i;
    total = count * size;
    p = (char*)malloc(total);
    for (i = 0; i < total; i++) { p[i] = 0; }
    return (void*)p;
}

// ---------------------------------------------------------------- memory
void *memset(void *dst, int value, int n) {
    char *d;
    int i;
    d = (char*)dst;
    for (i = 0; i < n; i++) { d[i] = (char)value; }
    return dst;
}

void *memcpy(void *dst, void *src, int n) {
    char *d;
    char *s;
    int i;
    d = (char*)dst;
    s = (char*)src;
    for (i = 0; i < n; i++) { d[i] = s[i]; }
    return dst;
}

// ---------------------------------------------------------------- strings
int strlen(char *s) {
    int n;
    n = 0;
    while (s[n]) { n++; }
    return n;
}

char *strcpy(char *dst, char *src) {
    int i;
    i = 0;
    while (src[i]) {
        dst[i] = src[i];
        i++;
    }
    dst[i] = 0;
    return dst;
}

int strcmp(char *a, char *b) {
    int i;
    i = 0;
    while (a[i] && a[i] == b[i]) { i++; }
    return (int)a[i] - (int)b[i];
}

void puts(char *s) {
    int i;
    i = 0;
    while (s[i]) {
        printc((int)s[i]);
        i++;
    }
    printc('\n');
}

// ---------------------------------------------------------------- misc
void srand(int seed) {
    __rand_seed = seed;
}

int rand() {
    __rand_seed = __rand_seed * 1103515245 + 12345;
    return (__rand_seed >> 16) & 32767;
}

int abs(int x) {
    if (x < 0) { return -x; }
    return x;
}
"""
