"""Spatial-safety detection through compiled MiniC programs.

These are the paper's motivating scenarios (Sections 2.2, 3.2, 6.1)
expressed in C and compiled with full instrumentation: every violation
must trap, and the matched safe variants must not (no false
positives).
"""

import pytest

from repro.machine import (
    BoundsError,
    MachineConfig,
    NonPointerError,
    SafetyMode,
    Trap,
)
from repro.minic import compile_and_run

CFG = MachineConfig.hardbound(timing=False)


def run(source, config=CFG):
    return compile_and_run(source, config)


class TestHeapViolations:
    def test_heap_overflow_one_past_end(self):
        with pytest.raises(BoundsError):
            run("""
            int main() {
                int *p = (int*)malloc(4 * sizeof(int));
                p[4] = 1;           // one element past the end
                return 0;
            }""")

    def test_heap_read_overflow(self):
        with pytest.raises(BoundsError):
            run("""
            int main() {
                int *p = (int*)malloc(8);
                return p[2];
            }""")

    def test_heap_underflow(self):
        with pytest.raises(BoundsError):
            run("""
            int main() {
                int *p = (int*)malloc(8);
                p[-1] = 3;          // below the allocation
                return 0;
            }""")

    def test_byte_granular_heap_bound(self):
        """malloc bounds are the *requested* size, not the rounded
        chunk: a 5-byte allocation traps at offset 5."""
        with pytest.raises(BoundsError):
            run("""
            int main() {
                char *p = (char*)malloc(5);
                p[5] = 'x';
                return 0;
            }""")

    def test_exact_fit_is_fine(self):
        assert run("""
        int main() {
            char *p = (char*)malloc(5);
            for (int i = 0; i < 5; i++) { p[i] = 'a'; }
            return p[4];
        }""").exit_code == ord("a")

    def test_pointer_walked_past_end(self):
        with pytest.raises(BoundsError):
            run("""
            int main() {
                int *p = (int*)malloc(12);
                int sum = 0;
                for (int i = 0; i <= 3; i++) { sum += *p; p++; }
                return sum;   // 4th deref is out of bounds
            }""")

    def test_out_of_bounds_pointer_unused_is_legal(self):
        """C allows pointing one past the end as long as it is not
        dereferenced (Section 2.2's object-table discussion)."""
        assert run("""
        int main() {
            int *p = (int*)malloc(12);
            int *end = p + 3;      // one past the end: fine
            int n = 0;
            while (p < end) { *p = 1; p++; n++; }
            return n;
        }""").exit_code == 3


class TestStackAndGlobalViolations:
    def test_stack_array_overflow(self):
        with pytest.raises(BoundsError):
            run("""
            int main() {
                int a[4];
                for (int i = 0; i <= 4; i++) { a[i] = i; }
                return 0;
            }""")

    def test_global_array_overflow(self):
        with pytest.raises(BoundsError):
            run("""
            int g[4];
            int main() {
                int *p = g;
                p[4] = 1;
                return 0;
            }""")

    def test_address_taken_scalar_overflow(self):
        with pytest.raises(BoundsError):
            run("""
            int main() {
                int i = 0;
                int *j = &i;
                j[1] = 5;            // past the single int
                return 0;
            }""")

    def test_address_taken_scalar_legal_use(self):
        assert run("""
        int main() {
            int i = 3;
            int *j = &i;
            *j = *j + 4;
            return i;
        }""").exit_code == 7

    def test_array_argument_overflow_inside_callee(self):
        """Bounds travel with the pointer through the call."""
        with pytest.raises(BoundsError):
            run("""
            void fill(int *a, int n) {
                for (int i = 0; i < n; i++) { a[i] = i; }
            }
            int main() {
                int buf[4];
                fill(buf, 5);        // callee overflows caller buffer
                return 0;
            }""")


class TestSubObjectViolations:
    """Section 2.2's killer example: array inside a struct."""

    SRC = """
    struct rec { char str[5]; int x; };
    int main() {
        struct rec node;
        node.x = 1234;
        char *ptr = node.str;
        strcpy(ptr, "%s");
        return node.x;
    }"""

    def test_strcpy_overflow_into_sibling_field_detected(self):
        with pytest.raises(BoundsError):
            run(self.SRC % "overflow")  # 9 bytes into a 5-byte member

    def test_strcpy_exact_fit_no_false_positive(self):
        assert run(self.SRC % "abcd").exit_code == 1234

    def test_member_array_index_overflow(self):
        with pytest.raises(BoundsError):
            run("""
            struct rec { int a[2]; int b[2]; };
            int main() {
                struct rec r;
                int *p = r.a;
                p[2] = 9;            // lands in r.b: sub-object violation
                return 0;
            }""")

    def test_address_of_member_is_narrowed(self):
        with pytest.raises(BoundsError):
            run("""
            struct pt { int x; int y; };
            int main() {
                struct pt p;
                int *px = &p.x;
                px[1] = 3;           // would hit p.y
                return 0;
            }""")

    def test_heap_struct_member_narrowing(self):
        with pytest.raises(BoundsError):
            run("""
            struct rec { char s[4]; int x; };
            int main() {
                struct rec *r = (struct rec*)malloc(sizeof(struct rec));
                char *p = r->s;
                p[4] = 'x';
                return 0;
            }""")

    def test_whole_struct_pointer_can_reach_all_fields(self):
        assert run("""
        struct rec { char s[4]; int x; };
        int main() {
            struct rec *r = (struct rec*)malloc(sizeof(struct rec));
            r->s[0] = 'a';
            r->x = 7;
            return r->x;
        }""").exit_code == 7


class TestCastSemantics:
    """Section 6.1: casts are metadata no-ops; forging traps."""

    def test_manufactured_pointer_traps(self):
        with pytest.raises((NonPointerError, Trap)):
            run("""
            int main() {
                int *w = (int*)4096;
                *w = 42;             // no bounds info: illegal write
                return 0;
            }""")

    def test_int_roundtrip_keeps_bounds(self):
        assert run("""
        int main() {
            int x = 17;
            char *z = (char*)&x;
            int a = (int)z;
            (*(int*)a) = 42;
            return x;
        }""").exit_code == 42

    def test_explicit_setbound_redeems_forged_pointer(self):
        """Programmers can bless a manufactured pointer (Section 3.2)."""
        assert run("""
        int main() {
            int x = 5;
            int raw = (int)&x;
            int *p = (int*)__setbound((void*)raw, sizeof(int));
            return *p;
        }""").exit_code == 5

    def test_upcast_then_downcast_via_void(self):
        assert run("""
        struct s { int a; int b; };
        int main() {
            struct s v;
            v.b = 9;
            void *anon = (void*)&v;
            struct s *back = (struct s*)anon;
            return back->b;
        }""").exit_code == 9


class TestZeroLengthTrailingArray:
    """Footnote 3: dynamic over-allocation of trailing arrays."""

    SRC = """
    struct msg { int len; char data[0]; };
    int main() {
        struct msg *m = (struct msg*)malloc(sizeof(struct msg) + 8);
        m->len = 8;
        char *d = m->data;
        d[%d] = 'x';
        return 0;
    }"""

    def test_within_allocation_ok(self):
        run(self.SRC % 7)

    def test_past_allocation_traps(self):
        with pytest.raises(BoundsError):
            run(self.SRC % 8)


class TestMallocOnlyMode:
    """Footnote 2: legacy binaries with only malloc instrumented."""

    CFG = MachineConfig.malloc_only(timing=False)

    def test_heap_overflow_detected(self):
        with pytest.raises(BoundsError):
            run("""
            int main() {
                char *p = (char*)malloc(4);
                p[4] = 'x';
                return 0;
            }""", self.CFG)

    def test_stack_overflow_not_detected(self):
        """Stack arrays have no bounds in this mode: silent corruption
        (bounded only by the stack segment)."""
        result = run("""
        int main() {
            int a[2];
            int b[2];
            a[2] = 77;           // silently lands in another slot
            return 0;
        }""", self.CFG)
        assert result.exit_code == 0

    def test_legal_heap_use_unaffected(self):
        assert run("""
        int main() {
            int *p = (int*)malloc(3 * sizeof(int));
            p[0] = 1; p[1] = 2; p[2] = 3;
            return p[0] + p[1] + p[2];
        }""", self.CFG).exit_code == 6
