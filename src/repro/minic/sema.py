"""Semantic analysis: name resolution, type checking, frame layout.

Annotates the AST in place (``expr.ty``, ``expr.is_lvalue``, resolved
``symbol``/``field`` references) and computes stack-frame layout for
every function.  Codegen consumes only analyzed trees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.minic import ast
from repro.minic.errors import TypeError_
from repro.minic.types import (
    ArrayType,
    CHAR,
    INT,
    PointerType,
    StructType,
    Type,
    VOID,
    compatible_assign,
)

WORD = 4


class Symbol:
    """A named entity: variable, parameter or function."""

    __slots__ = ("name", "type", "kind", "offset", "init_value",
                 "init_string", "frame_size", "params", "defined",
                 "data_label")

    def __init__(self, name: str, type_: Type, kind: str):
        self.name = name
        self.type = type_
        self.kind = kind          # 'global', 'local', 'param', 'func'
        self.offset = 0           # frame offset (locals/params)
        self.init_value = 0       # globals: constant initializer
        self.init_string = None   # globals: string-literal initializer
        self.frame_size = 0       # functions
        self.params: List[Tuple[Type, str]] = []
        self.defined = False
        self.data_label = None    # globals: assembly symbol

    def __repr__(self):
        return "<Symbol %s %s %r>" % (self.kind, self.name, self.type)


#: Builtin signature table: name -> (ret, [param types], variadic-ish
#: marker).  ``None`` parameter means "any pointer" and ``ret`` of
#: ``"same"`` means "type of first argument" (the bound-manipulation
#: intrinsics are generic over the pointer type).
_BUILTINS: Dict[str, Tuple[object, List[object]]] = {
    "__setbound": ("same", [None, INT]),
    "__setunsafe": ("same", [None]),
    "__clrbnd": ("same", [None]),
    "__markfree": (VOID, [None, INT]),
    "__readbase": (INT, [None]),
    "__readbound": (INT, [None]),
    "sbrk": (PointerType(VOID), [INT]),
    "print": (VOID, [INT]),
    "printc": (VOID, [INT]),
    "prints": (VOID, [PointerType(CHAR)]),
    "abort": (VOID, [INT]),
}

BUILTIN_NAMES = frozenset(_BUILTINS)


class _Scope:
    def __init__(self, parent: Optional["_Scope"]):
        self.parent = parent
        self.names: Dict[str, Symbol] = {}

    def define(self, sym: Symbol, line: int) -> None:
        if sym.name in self.names:
            raise TypeError_("redefinition of %r" % sym.name, line)
        self.names[sym.name] = sym

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class Analyzer:
    """Walks a translation unit, annotating and checking."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.globals = _Scope(None)
        self.functions: Dict[str, Symbol] = {}
        self.current_func: Optional[Symbol] = None
        self.scope = self.globals
        self.loop_depth = 0
        self._frame_top = 0

    # -- entry point ---------------------------------------------------------

    def run(self) -> ast.TranslationUnit:
        for decl in self.unit.decls:
            if isinstance(decl, ast.StructDecl):
                self.declare_struct(decl)
        for decl in self.unit.decls:
            if isinstance(decl, ast.VarDecl):
                self.declare_global(decl)
            elif isinstance(decl, ast.FuncDecl):
                self.declare_function(decl)
        for decl in self.unit.decls:
            if isinstance(decl, ast.FuncDecl) and decl.body is not None:
                self.check_function(decl)
        return self.unit

    # -- declarations ----------------------------------------------------------

    def declare_struct(self, decl: ast.StructDecl) -> None:
        struct = self.unit.structs.get(decl.name)
        if struct is None:
            struct = StructType(decl.name)
            self.unit.structs[decl.name] = struct
        struct.complete(decl.members, decl.line)

    def declare_global(self, decl: ast.VarDecl) -> None:
        self._require_complete(decl.type, decl.line)
        sym = Symbol(decl.name, decl.type, "global")
        if decl.init is not None:
            if isinstance(decl.init, ast.StrLit):
                if decl.type != PointerType(CHAR):
                    raise TypeError_(
                        "string initializer needs char*", decl.line)
                sym.init_string = decl.init.value
            else:
                sym.init_value = self._const_value(decl.init)
        self.globals.define(sym, decl.line)
        decl.symbol = sym

    def declare_function(self, decl: ast.FuncDecl) -> None:
        existing = self.functions.get(decl.name)
        if existing is not None:
            if existing.defined and decl.body is not None:
                raise TypeError_("redefinition of %s()" % decl.name,
                                 decl.line)
            if [t for t, _ in existing.params] != \
                    [t for t, _ in decl.params] or \
                    existing.type != decl.ret_type:
                raise TypeError_("conflicting declaration of %s()"
                                 % decl.name, decl.line)
            decl.symbol = existing
            if decl.body is not None:
                existing.defined = True
            return
        if decl.name in BUILTIN_NAMES:
            raise TypeError_("%s is a builtin" % decl.name, decl.line)
        sym = Symbol(decl.name, decl.ret_type, "func")
        sym.params = list(decl.params)
        sym.defined = decl.body is not None
        self.functions[decl.name] = sym
        self.globals.define(sym, decl.line)
        decl.symbol = sym

    # -- function bodies -------------------------------------------------------

    def check_function(self, decl: ast.FuncDecl) -> None:
        self.current_func = decl.symbol
        self.scope = _Scope(self.globals)
        self._frame_top = 0
        for i, (pty, pname) in enumerate(decl.params):
            psym = Symbol(pname, pty, "param")
            psym.offset = 8 + WORD * i  # above saved fp + ra
            self.scope.define(psym, decl.line)
        self.check_block(decl.body, new_scope=False)
        decl.symbol.frame_size = _round_up(self._frame_top, WORD)
        self.scope = self.globals
        self.current_func = None

    def check_block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self.scope = _Scope(self.scope)
        for stmt in block.stmts:
            self.check_stmt(stmt)
        if new_scope:
            self.scope = self.scope.parent

    def check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.check_block(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            self.declare_local(stmt.decl)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._check_condition(stmt.cond)
            self.check_stmt(stmt.then)
            if stmt.els is not None:
                self.check_stmt(stmt.els)
        elif isinstance(stmt, ast.While):
            self._check_condition(stmt.cond)
            self.loop_depth += 1
            self.check_stmt(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.For):
            self.scope = _Scope(self.scope)
            if isinstance(stmt.init, ast.Block):
                # declarations in the for-header live in the for scope
                for inner in stmt.init.stmts:
                    self.check_stmt(inner)
            elif stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_condition(stmt.cond)
            if stmt.step is not None:
                self.check_expr(stmt.step)
            self.loop_depth += 1
            self.check_stmt(stmt.body)
            self.loop_depth -= 1
            self.scope = self.scope.parent
        elif isinstance(stmt, ast.Return):
            ret = self.current_func.type
            if stmt.value is None:
                if not ret.is_void():
                    raise TypeError_("return without value", stmt.line)
            else:
                ty = self.check_expr(stmt.value)
                if ret.is_void():
                    raise TypeError_("void function returns a value",
                                     stmt.line)
                if not compatible_assign(ret, ty):
                    raise TypeError_(
                        "cannot return %r from function returning %r"
                        % (ty, ret), stmt.line)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                raise TypeError_("break/continue outside a loop",
                                 stmt.line)
        else:
            raise TypeError_("unhandled statement %r" % stmt, stmt.line)

    def declare_local(self, decl: ast.VarDecl) -> None:
        self._require_complete(decl.type, decl.line)
        sym = Symbol(decl.name, decl.type, "local")
        size = _round_up(max(decl.type.size, 1), WORD)
        self._frame_top = _round_up(self._frame_top + size,
                                    max(decl.type.align, WORD))
        sym.offset = self._frame_top  # distance below fp
        self.scope.define(sym, decl.line)
        decl.symbol = sym
        if decl.init is not None:
            if not decl.type.is_scalar():
                raise TypeError_("initializer on non-scalar local",
                                 decl.line)
            ty = self._rvalue(decl.init)
            if not compatible_assign(decl.type, ty):
                raise TypeError_("cannot initialize %r with %r"
                                 % (decl.type, ty), decl.line)

    # -- expressions ------------------------------------------------------------

    def _check_condition(self, expr: ast.Expr) -> None:
        ty = self.check_expr(expr)
        if not ty.is_scalar():
            raise TypeError_("condition must be scalar, got %r" % ty,
                             expr.line)

    def check_expr(self, expr: ast.Expr) -> Type:
        """Annotate ``expr`` and return its (decayed for rvalues) type."""
        method = getattr(self, "_expr_" + type(expr).__name__)
        ty = method(expr)
        expr.ty = ty
        return ty

    def _expr_IntLit(self, expr: ast.IntLit) -> Type:
        return INT

    def _expr_CharLit(self, expr: ast.CharLit) -> Type:
        return INT  # character constants have type int, as in C

    def _expr_StrLit(self, expr: ast.StrLit) -> Type:
        return PointerType(CHAR)

    def _expr_Ident(self, expr: ast.Ident) -> Type:
        sym = self.scope.lookup(expr.name)
        if sym is None:
            raise TypeError_("undeclared identifier %r" % expr.name,
                             expr.line)
        if sym.kind == "func":
            raise TypeError_(
                "function %r used as a value (MiniC has no function "
                "pointers)" % expr.name, expr.line)
        expr.symbol = sym
        expr.is_lvalue = not sym.type.is_array()
        return sym.type

    def _expr_Unary(self, expr: ast.Unary) -> Type:
        op = expr.op
        if op == "&":
            ty = self.check_expr(expr.operand)
            if not expr.operand.is_lvalue and not ty.is_array():
                raise TypeError_("cannot take address of rvalue",
                                 expr.line)
            if ty.is_array():
                ty = ty.element if isinstance(ty, ArrayType) else ty
                return PointerType(ty)
            return PointerType(ty)
        if op == "*":
            ty = self._rvalue(expr.operand)
            if not ty.is_pointer():
                raise TypeError_("cannot dereference %r" % ty, expr.line)
            if ty.target.is_void():
                raise TypeError_("cannot dereference void*", expr.line)
            expr.is_lvalue = not ty.target.is_array()
            return ty.target
        if op in ("++", "--"):
            ty = self.check_expr(expr.operand)
            self._require_modifiable(expr.operand, expr.line)
            return ty
        ty = self._rvalue(expr.operand)
        if op == "!":
            if not ty.is_scalar():
                raise TypeError_("! needs a scalar", expr.line)
            return INT
        if not ty.is_integer():
            raise TypeError_("unary %s needs an integer, got %r"
                             % (op, ty), expr.line)
        return INT

    def _expr_Postfix(self, expr: ast.Postfix) -> Type:
        ty = self.check_expr(expr.operand)
        self._require_modifiable(expr.operand, expr.line)
        return ty

    def _expr_Binary(self, expr: ast.Binary) -> Type:
        op = expr.op
        if op == ",":
            self.check_expr(expr.left)
            return self._rvalue(expr.right)
        lty = self._rvalue(expr.left)
        rty = self._rvalue(expr.right)
        if op in ("&&", "||"):
            if not (lty.is_scalar() and rty.is_scalar()):
                raise TypeError_("%s needs scalars" % op, expr.line)
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            ok = (lty.is_integer() and rty.is_integer()) or \
                (lty.is_pointer() and rty.is_pointer()) or \
                (lty.is_pointer() and _is_zero(expr.right)) or \
                (rty.is_pointer() and _is_zero(expr.left))
            if not ok:
                raise TypeError_("cannot compare %r with %r" % (lty, rty),
                                 expr.line)
            return INT
        if op == "+":
            if lty.is_pointer() and rty.is_integer():
                return lty
            if lty.is_integer() and rty.is_pointer():
                return rty
        if op == "-":
            if lty.is_pointer() and rty.is_integer():
                return lty
            if lty.is_pointer() and rty.is_pointer():
                if lty != rty:
                    raise TypeError_("pointer difference of %r and %r"
                                     % (lty, rty), expr.line)
                return INT
        if lty.is_integer() and rty.is_integer():
            return INT
        raise TypeError_("invalid operands to %s: %r and %r"
                         % (op, lty, rty), expr.line)

    def _expr_Assign(self, expr: ast.Assign) -> Type:
        tty = self.check_expr(expr.target)
        self._require_modifiable(expr.target, expr.line)
        vty = self._rvalue(expr.value)
        if expr.op == "=":
            if not compatible_assign(tty, vty):
                raise TypeError_("cannot assign %r to %r" % (vty, tty),
                                 expr.line)
        else:
            base_op = expr.op[:-1]
            if tty.is_pointer():
                if base_op not in ("+", "-") or not vty.is_integer():
                    raise TypeError_("invalid %s on pointer" % expr.op,
                                     expr.line)
            elif not (tty.is_integer() and vty.is_integer()):
                raise TypeError_("invalid operands to %s" % expr.op,
                                 expr.line)
        return tty

    def _expr_Cond(self, expr: ast.Cond) -> Type:
        self._check_condition(expr.cond)
        tty = self._rvalue(expr.then)
        ety = self._rvalue(expr.els)
        if tty == ety:
            return tty
        if tty.is_integer() and ety.is_integer():
            return INT
        if tty.is_pointer() and _is_zero(expr.els):
            return tty
        if ety.is_pointer() and _is_zero(expr.then):
            return ety
        raise TypeError_("mismatched ?: arms: %r vs %r" % (tty, ety),
                         expr.line)

    def _expr_Call(self, expr: ast.Call) -> Type:
        if expr.name in _BUILTINS:
            return self._check_builtin(expr)
        sym = self.functions.get(expr.name)
        if sym is None:
            raise TypeError_("call to undeclared function %r" % expr.name,
                             expr.line)
        expr.symbol = sym
        if len(expr.args) != len(sym.params):
            raise TypeError_("%s() expects %d argument(s), got %d"
                             % (expr.name, len(sym.params),
                                len(expr.args)), expr.line)
        for arg, (pty, _pname) in zip(expr.args, sym.params):
            aty = self._rvalue(arg)
            if not compatible_assign(pty, aty):
                raise TypeError_("argument of type %r where %r expected"
                                 % (aty, pty), arg.line)
        return sym.type

    def _check_builtin(self, expr: ast.Call) -> Type:
        ret, params = _BUILTINS[expr.name]
        if len(expr.args) != len(params):
            raise TypeError_("%s expects %d argument(s)"
                             % (expr.name, len(params)), expr.line)
        arg_types = []
        for arg, pty in zip(expr.args, params):
            aty = self._rvalue(arg)
            arg_types.append(aty)
            if pty is None:
                if not aty.is_pointer():
                    raise TypeError_("%s needs a pointer argument"
                                     % expr.name, arg.line)
            elif not compatible_assign(pty, aty):
                raise TypeError_("argument of type %r where %r expected"
                                 % (aty, pty), arg.line)
        if ret == "same":
            return arg_types[0]
        return ret

    def _expr_Index(self, expr: ast.Index) -> Type:
        bty = self.check_expr(expr.base)
        ity = self._rvalue(expr.index)
        if not ity.is_integer():
            raise TypeError_("array index must be an integer", expr.line)
        if bty.is_array():
            elem = bty.element
        elif bty.is_pointer():
            elem = bty.target
            if elem.is_void():
                raise TypeError_("cannot index void*", expr.line)
        else:
            raise TypeError_("cannot index %r" % bty, expr.line)
        expr.is_lvalue = not elem.is_array()
        return elem

    def _expr_Member(self, expr: ast.Member) -> Type:
        bty = self.check_expr(expr.base)
        if expr.arrow:
            if not (bty.is_pointer() and bty.target.is_struct()):
                raise TypeError_("-> on non-struct-pointer %r" % bty,
                                 expr.line)
            struct = bty.target
        else:
            if not bty.is_struct():
                raise TypeError_(". on non-struct %r" % bty, expr.line)
            struct = bty
        field = struct.field(expr.name, expr.line)
        expr.field = field
        expr.is_lvalue = not field.type.is_array()
        return field.type

    def _expr_Cast(self, expr: ast.Cast) -> Type:
        ty = self._rvalue(expr.operand)
        target = expr.target_type
        if target.is_void():
            return target
        if not (target.is_scalar() and ty.is_scalar()):
            raise TypeError_("invalid cast from %r to %r" % (ty, target),
                             expr.line)
        return target

    def _expr_SizeofType(self, expr: ast.SizeofType) -> Type:
        self._require_complete(expr.target_type, expr.line)
        return INT

    def _expr_SizeofExpr(self, expr: ast.SizeofExpr) -> Type:
        self.check_expr(expr.operand)  # typed but never evaluated
        return INT

    # -- helpers --------------------------------------------------------------

    def _rvalue(self, expr: ast.Expr) -> Type:
        """Check ``expr`` and return its decayed rvalue type."""
        ty = self.check_expr(expr)
        if ty.is_array():
            decayed = ty.decayed()
            expr.ty = decayed
            return decayed
        return ty

    def _require_modifiable(self, expr: ast.Expr, line: int) -> None:
        if not expr.is_lvalue:
            raise TypeError_("expression is not assignable", line)
        if not expr.ty.is_scalar():
            raise TypeError_("assignment to aggregate is not supported "
                             "(use memcpy)", line)

    def _require_complete(self, ty: Type, line: int) -> None:
        base = ty
        while isinstance(base, ArrayType):
            base = base.element
        if isinstance(base, StructType) and not base.is_complete:
            raise TypeError_("incomplete type %r" % base, line)
        if base.is_void() and not ty.is_pointer():
            if ty is base:
                raise TypeError_("cannot declare a void variable", line)

    def _const_value(self, expr: ast.Expr) -> int:
        if isinstance(expr, (ast.IntLit, ast.CharLit)):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_value(expr.operand)
        if isinstance(expr, ast.SizeofType):
            return expr.target_type.size
        raise TypeError_("global initializer must be constant", expr.line)


def _is_zero(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.IntLit) and expr.value == 0


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


def analyze(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Run semantic analysis; returns the annotated unit."""
    return Analyzer(unit).run()
