"""The fuzz smoke suite (``pytest -m fuzz``): the CI acceptance bar.

Fixed seed ranges, >= 200 generated programs, every one through all
four engines x both memory models (x optimize on/off for MiniC),
zero divergences.  Excluded from tier-1 by the ``fuzz`` marker; CI
runs it as its own job with a junit record the bench gate requires.
"""

import os

import pytest

from repro.fuzz.cli import run_fuzz
from repro.fuzz.rng import FUZZ_SEED_ENV

pytestmark = pytest.mark.fuzz

#: fixed smoke ranges: 168 ISA + 40 MiniC = 208 programs
ISA_SEEDS = 168
MINIC_SEEDS = 40

WORKERS = min(4, os.cpu_count() or 1)


def _assert_clean(records, expected):
    assert len(records) == expected
    bad = [r for r in records if not r["ok"]]
    assert not bad, (
        "divergent seeds %s — reproduce with %s=<seed>"
        % ([(r["level"], r["seed"]) for r in bad], FUZZ_SEED_ENV))


def test_isa_smoke_all_engines_both_models():
    records = run_fuzz(("isa",), seeds=ISA_SEEDS, workers=WORKERS,
                       timings=(False, True))
    _assert_clean(records, ISA_SEEDS)
    # the corpus must exercise both sides of the trap boundary
    statuses = {r["status"] for r in records}
    assert "exit" in statuses and "trap" in statuses


def test_minic_smoke_all_engines_both_models():
    records = run_fuzz(("minic",), seeds=MINIC_SEEDS,
                       workers=WORKERS, timings=(False, True))
    _assert_clean(records, MINIC_SEEDS)


def test_smoke_covers_200_programs():
    assert ISA_SEEDS + MINIC_SEEDS >= 200
