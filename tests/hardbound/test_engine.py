"""HardBoundEngine unit tests: checks, metadata movement, accounting."""

import pytest

from repro.caches import MemorySystem
from repro.hardbound import HardBoundEngine
from repro.layout import shadow_base_addr, tag1_addr
from repro.machine import BoundsError, NonPointerError
from repro.metadata import get_encoding


def make(encoding="intern11", memsys=False, **kw):
    ms = MemorySystem() if memsys else None
    return HardBoundEngine(get_encoding(encoding), ms, **kw)


class TestCheck:
    def test_in_bounds_passes(self):
        engine = make()
        assert engine.check(0x1000, 0x1000, 0x1010, 0x100C, 4,
                            "read", True) == 0
        assert engine.stats.checks == 1

    def test_effective_address_semantics(self):
        """Paper (Fig 2): only the EA is checked, not ea+size."""
        engine = make()
        engine.check(0x1000, 0x1000, 0x1004, 0x1002, 4, "read", True)

    def test_extent_extension(self):
        engine = make(check_access_extent=True)
        with pytest.raises(BoundsError):
            engine.check(0x1000, 0x1000, 0x1004, 0x1002, 4,
                         "read", True)

    def test_upper_violation(self):
        engine = make()
        with pytest.raises(BoundsError) as exc:
            engine.check(0x1000, 0x1000, 0x1010, 0x1010, 1,
                         "write", True)
        assert exc.value.bound == 0x1010

    def test_lower_violation(self):
        engine = make()
        with pytest.raises(BoundsError):
            engine.check(0x1000, 0x1000, 0x1010, 0xFFF, 1,
                         "read", True)

    def test_nonpointer_full_vs_malloc_only(self):
        engine = make()
        with pytest.raises(NonPointerError):
            engine.check(0x1000, 0, 0, 0x1000, 4, "read", True)
        assert engine.check(0x1000, 0, 0, 0x1000, 4, "read",
                            False) == 0
        assert engine.stats.nonpointer_derefs == 1

    def test_check_uop_only_for_uncompressed(self):
        engine = make("intern11", check_uop=True)
        # compressible pointer: free check
        extra = engine.check(0x100_0000, 0x100_0000, 0x100_0010,
                             0x100_0004, 4, "read", True)
        assert extra == 0
        # interior pointer (incompressible): one µop
        extra = engine.check(0x100_0004, 0x100_0000, 0x100_0010,
                             0x100_0004, 4, "read", True)
        assert extra == 1
        assert engine.stats.check_uops == 1


class TestMetadataMovement:
    def test_word_roundtrip(self):
        engine = make()
        engine.store_word_meta(0x2000, 0x100_0000, 0x100_0000,
                               0x100_0010)
        assert engine.load_word_meta(0x2000, 0x100_0000) == \
            (0x100_0000, 0x100_0010)

    def test_nonpointer_store_clears(self):
        engine = make()
        engine.store_word_meta(0x2000, 5, 0x10, 0x20)
        engine.store_word_meta(0x2000, 7, 0, 0)
        assert engine.load_word_meta(0x2000, 7) == (0, 0)

    def test_sub_word_store_clears(self):
        engine = make()
        engine.store_word_meta(0x2000, 5, 0x10, 0x20)
        engine.store_sub_meta(0x2001)
        assert engine.load_word_meta(0x2000, 5) == (0, 0)

    def test_compressed_pointer_skips_shadow_and_uop(self):
        engine = make("intern11", memsys=True)
        ptr = 0x100_0000
        engine.store_word_meta(0x2000, ptr, ptr, ptr + 16)
        engine.load_word_meta(0x2000, ptr)
        assert engine.stats.meta_uops == 0
        assert engine.memsys.stats["shadow"].accesses == 0
        assert engine.stats.compressed_stores == 1
        assert engine.stats.compressed_loads == 1

    def test_uncompressed_pointer_costs_uop_and_shadow(self):
        engine = make("uncompressed", memsys=True)
        ptr = 0x100_0000
        engine.store_word_meta(0x2000, ptr, ptr, ptr + 16)
        engine.load_word_meta(0x2000, ptr)
        assert engine.stats.meta_uops == 2
        assert engine.memsys.stats["shadow"].accesses == 2

    def test_tag_probe_on_every_access(self):
        engine = make("intern11", memsys=True)
        engine.load_word_meta(0x2000, 0)        # non-pointer word
        engine.load_sub_meta(0x2004)
        engine.store_sub_meta(0x2008)
        assert engine.memsys.stats["tag"].accesses == 3

    def test_tag_and_shadow_addresses(self):
        engine = make("uncompressed", memsys=True)
        ptr = 0x100_0000
        engine.store_word_meta(0x2000, ptr, ptr, ptr + 2048)
        tag_pages = engine.memsys.stats["tag"].pages
        shadow_pages = engine.memsys.stats["shadow"].pages
        assert (tag1_addr(0x2000) >> 8) in tag_pages
        assert (shadow_base_addr(0x2000) >> 8) in shadow_pages


class TestStats:
    def test_compression_ratio(self):
        engine = make("intern11")
        ptr = 0x100_0000
        engine.store_word_meta(0x2000, ptr, ptr, ptr + 16)     # comp
        engine.store_word_meta(0x2004, ptr + 4, ptr, ptr + 16)  # not
        assert engine.stats.compression_ratio() == pytest.approx(0.5)

    def test_empty_ratio_is_one(self):
        assert make().stats.compression_ratio() == 1.0

    def test_extra_uops_sum(self):
        engine = make()
        engine.stats.meta_uops = 3
        engine.stats.check_uops = 2
        assert engine.stats.extra_uops() == 5

    def test_as_dict(self):
        d = make().stats.as_dict()
        assert set(d) >= {"setbound_uops", "meta_uops", "checks"}
