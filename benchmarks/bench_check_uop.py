"""E5 — Section 5.4 ablation: bounds check as an explicit µop.

The paper's baseline checks bounds on a dedicated parallel ALU; a
more modest implementation inserts a µop per uncompressed-pointer
check, which "increased the average overhead by approximately 3%
for all three encodings, while the maximum was a 10% increase".
"""

from conftest import write_result

from repro.harness.figures import check_uop_ablation_table, format_table
from repro.harness.runner import ENCODINGS


def test_check_uop_ablation(matrix, matrix_check_uop, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: check_uop_ablation_table(matrix, matrix_check_uop),
        rounds=1, iterations=1)
    table = format_table(headers, rows,
                         "Section 5.4: check-as-uop ablation")
    print("\n" + table)
    write_result("check_uop_ablation.txt", table)

    for enc in ENCODINGS:
        deltas = [matrix_check_uop[n].overhead(enc)
                  - matrix[n].overhead(enc) for n in matrix]
        avg = sum(deltas) / len(deltas)
        # paper: ~+3% average, max +10%
        assert 0.0 <= avg < 0.08, (enc, avg)
        assert max(deltas) < 0.15, (enc, max(deltas))
