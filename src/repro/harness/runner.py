"""Benchmark runner: compile-once/run-many over the Olden matrix."""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, Optional

from repro.baselines.fatptr import SETBOUND_EXTRA_UOPS, ccured_sim_config
from repro.baselines.objtable import ObjectTableModel
from repro.caches.hierarchy import CacheParams
from repro.isa.program import Program
from repro.machine.config import MachineConfig
from repro.machine.cpu import CPU, RunResult
from repro.minic.codegen import InstrumentMode
from repro.minic.driver import compile_program, mode_for_config
from repro.workloads.registry import WORKLOADS, Workload

#: the three encodings of Figure 5, in bar order
ENCODINGS = ("extern4", "intern4", "intern11")

_program_cache: Dict[tuple, Program] = {}


def source_digest(source: str) -> str:
    """Stable content hash of a workload source (also used by the
    parallel harness's on-disk cache keys)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def compile_cached(source: str, mode: InstrumentMode,
                   optimize: bool = True) -> Program:
    """Compile with memoization (programs are reusable across runs).

    Keyed on a sha256 content digest plus the instrumentation mode
    and the optimizer knob: ``hash(source)`` would be unstable across
    interpreter runs under hash randomization and collision-prone
    within one, and an optimized program must never be served for an
    ``optimize=False`` request (or vice versa).
    """
    key = (source_digest(source), mode, optimize)
    if key not in _program_cache:
        _program_cache[key] = compile_program(source, mode,
                                              optimize=optimize)
    return _program_cache[key]


def run_workload(workload, config: MachineConfig,
                 cache_params: Optional[CacheParams] = None,
                 observer=None, optimize: bool = True) -> RunResult:
    """Run one workload (by name or object) under a configuration.

    With event tracing on and no explicit label, the workload name is
    stamped as the run's ``obs_label`` so obs reports and A/B diffs
    can match runs across files.
    """
    if isinstance(workload, str):
        workload = WORKLOADS[workload]
    if config.obs_events and not config.obs_label:
        config = dataclasses.replace(config, obs_label=workload.name)
    program = compile_cached(workload.source, mode_for_config(config),
                             optimize)
    cpu = CPU(program, config, cache_params)
    if observer is not None:
        cpu.observer = observer
    return cpu.run()


class BenchmarkRun:
    """All measurements for one workload (Figures 5-7 inputs)."""

    def __init__(self, workload: Workload):
        self.workload = workload
        self.name = workload.name
        self.base: Optional[RunResult] = None
        self.encodings: Dict[str, RunResult] = {}
        self.ccured: Optional[RunResult] = None
        self.objtable: Optional[ObjectTableModel] = None

    # -- derived metrics ----------------------------------------------------

    def overhead(self, encoding: str) -> float:
        """Relative runtime of an encoding vs. the plain baseline."""
        return self.encodings[encoding].cycles / self.base.cycles

    def ccured_uop_overhead(self) -> float:
        run = self.ccured
        uops = run.uops + SETBOUND_EXTRA_UOPS * run.setbound_uops
        return uops / self.base.uops

    def ccured_runtime_overhead(self) -> float:
        run = self.ccured
        cycles = run.cycles + SETBOUND_EXTRA_UOPS * run.setbound_uops
        return cycles / self.base.cycles

    def objtable_runtime_overhead(self) -> float:
        return (self.base.cycles + self.objtable.extra_uops) \
            / self.base.cycles

    def page_overhead(self, encoding: str) -> Dict[str, float]:
        """Figure 6: extra distinct pages, split by metadata kind."""
        stats = self.encodings[encoding].mem_stats
        base_pages = self.base.mem_stats.distinct_pages("data")
        return {
            "base_pages": base_pages,
            "tag": stats.distinct_pages("tag") / base_pages,
            "shadow": stats.distinct_pages("shadow") / base_pages,
            "total": (stats.distinct_pages("tag")
                      + stats.distinct_pages("shadow")) / base_pages,
        }


def run_benchmark_matrix(
        workloads: Optional[Iterable[str]] = None,
        encodings: Iterable[str] = ENCODINGS,
        with_baselines: bool = True,
        timing: bool = True) -> Dict[str, BenchmarkRun]:
    """Run the full measurement matrix of Section 5.

    Per workload: a plain-core baseline, one HardBound run per
    encoding and (optionally) the CCured-simulation and object-table
    baselines.  Returns runs keyed by workload name.
    """
    names = list(workloads) if workloads is not None else list(WORKLOADS)
    matrix: Dict[str, BenchmarkRun] = {}
    for name in names:
        wl = WORKLOADS[name]
        bench = BenchmarkRun(wl)
        bench.base = run_workload(wl, MachineConfig.plain(timing=timing))
        for encoding in encodings:
            bench.encodings[encoding] = run_workload(
                wl, MachineConfig.hardbound(encoding=encoding,
                                            timing=timing))
        if with_baselines:
            bench.ccured = run_workload(wl, ccured_sim_config(timing))
            model = ObjectTableModel()
            run_workload(wl, MachineConfig.hardbound(timing=False),
                         observer=model)
            bench.objtable = model
        matrix[name] = bench
    return matrix
