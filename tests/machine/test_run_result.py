"""RunResult reporting and xchg semantics."""

from repro.isa import assemble
from repro.layout import HEAP_BASE
from repro.machine import CPU, MachineConfig


def test_xchg_swaps_values_and_metadata():
    cpu = CPU(assemble("""
    main:
        mov r1, %d
        setbound r2, r1, 8
        mov r3, 42
        xchg r2, r3
        halt 0
    """ % HEAP_BASE), MachineConfig.hardbound(timing=False))
    cpu.run()
    assert cpu.regs.value[2] == 42
    assert not cpu.regs.is_pointer(2)
    assert cpu.regs.value[3] == HEAP_BASE
    assert cpu.regs.base[3] == HEAP_BASE
    assert cpu.regs.bound[3] == HEAP_BASE + 8


def test_summary_plain_core():
    cpu = CPU(assemble("main:\n  mov r1, 1\n  halt 0\n"),
              MachineConfig.plain(timing=False))
    result = cpu.run()
    text = result.summary()
    assert "instructions:  2" in text
    assert "bounds checks" not in text


def test_summary_hardbound_with_timing():
    cpu = CPU(assemble("""
    main:
        mov r1, 64
        sbrk r1
        mov r1, %d
        setbound r2, r1, 64
        store [r2], r2
        load r3, [r2]
        halt 0
    """ % HEAP_BASE), MachineConfig.hardbound())
    result = cpu.run()
    text = result.summary()
    assert "bounds checks: 2" in text
    assert "setbounds:     1" in text
    assert "pages (data/tag/shadow):" in text
    assert result.cycles == result.uops + result.stall_cycles


def test_repr():
    cpu = CPU(assemble("main:\n  halt 5\n"),
              MachineConfig.plain(timing=False))
    result = cpu.run()
    assert "exit=5" in repr(result)


def test_cpu_reference_is_weak_by_default():
    """Results from long sweeps must not pin whole machine states."""
    import gc
    import pytest

    def run_one():
        return CPU(assemble("main:\n  halt 0\n"),
                   MachineConfig.plain(timing=False)).run()

    result = run_one()
    gc.collect()
    with pytest.raises(ReferenceError):
        result.cpu

    # while the CPU is alive the weak reference resolves normally
    cpu = CPU(assemble("main:\n  halt 0\n"),
              MachineConfig.plain(timing=False))
    assert cpu.run().cpu is cpu


def test_retain_cpu_escape_hatch():
    """retain_cpu=True keeps machine state inspectable post-run."""
    import gc

    def run_one():
        return CPU(assemble("main:\n  mov r1, 7\n  halt 0\n"),
                   MachineConfig.plain(timing=False,
                                       retain_cpu=True)).run()

    result = run_one()
    gc.collect()
    assert result.cpu.regs.value[1] == 7


def test_result_pickles_without_cpu():
    import pickle

    cpu = CPU(assemble("main:\n  halt 3\n"),
              MachineConfig.plain(timing=False, retain_cpu=True))
    result = cpu.run()
    clone = pickle.loads(pickle.dumps(result))
    assert clone.exit_code == 3
    assert clone.uops == result.uops
