"""Fast memory-system timing model for the block-fusion engine.

:class:`~repro.caches.hierarchy.MemorySystem` spends most of every
access in Python plumbing: a dict lookup into the per-kind stats, a
``touch_page`` method call, and two or three nested
:meth:`~repro.caches.cache.Cache.access` calls, each with its own
attribute loads and ``OrderedDict`` bookkeeping.  With timing enabled
that call chain dominates the whole simulation (ROADMAP "Interpreter
follow-ons").

:class:`FastMemorySystem` charges the *same* model — TLB probe, L1 (or
tag-cache) probe, L2 on miss, two block touches on a spanning access —
from generated probes with every shift, mask, penalty and way table
bound as a local:

* set-index masks and block shifts are precomputed per structure;
* each LRU structure is one flat ``keys`` list indexed by
  ``set_index * assoc + way``, with the ways of every set kept in
  **recency order** (most recently used at way 0) — the exact order
  the ``OrderedDict`` sets of :class:`~repro.caches.cache.Cache`
  maintain via ``move_to_end``, so the hit/miss streams and eviction
  victims are identical *by construction*.  A probe is a bounded
  linear scan over at most ``assoc`` slots with **no dict, hash or
  recency-stamp traffic at all**: a front-way hit (the overwhelmingly
  common case — way order *is* recency order) is a single compare
  with nothing to update, a deeper hit shifts the younger ways back
  one slot and reinstalls the key at the front, and a miss victimizes
  the last way — the least recently used — with the same shift.
  Empty ways hold the sentinel ``-1`` (no real key is negative) and
  drift to the back, so they are consumed before any resident block
  is evicted, exactly like the classic model's fill-before-evict;
* probe bodies are **generated source**, compiled per cache geometry:
  for the small associativities the paper uses (``assoc <= 4``) the
  way scan and the recency shift are fully unrolled into
  straight-line compares and slot moves; larger associativities take
  a bounded ``for`` scan plus one slice shift over the same layout.
  The same line emitters feed the block-fusion engine
  (:func:`word_probe_lines` / :func:`data_probe_lines`), so the
  inlined charge in a fused block and the closure probes here are
  *the same source text* over the same lists;
* a most-recently-used short circuit skips the way scan entirely
  when an access touches the same block (or page) as the previous
  probe of that structure — then the block is guaranteed present
  *and* already at the front, so hit/miss/LRU state cannot change
  and only the access counters advance;
* per-kind statistics accumulate into flat counter lists and are
  materialized into an :class:`~repro.caches.stats.AccessStats` only
  when :attr:`stats` is read — **counter-batching invariant**: every
  code path that charges an access, wherever it lives, must bump the
  same shared counter lists, page sets and MRU cells, which is why
  :meth:`inline_env` hands out the records themselves rather than
  copies;
* :meth:`make_word_probe` / :meth:`make_shadow_probe` /
  :meth:`make_data_probe` hand the execution engines single-call
  probes for their hottest access shapes (a word access fused with
  its tag-byte probe, the shadow double word, a plain word), and
  :meth:`inline_env` exposes the geometry, per-kind records and
  composite-MRU cells so the block-fusion engine can generate the
  whole charge inline — called and inlined charges update the same
  state and are therefore interchangeable mid-run (fused blocks
  inline, the single-step fallback calls the probes).

Counters are **bit-identical** to :class:`MemorySystem`: the same
accesses, TLB/L1/L2 misses, stall cycles and distinct pages per kind
for any access stream (``tests/caches/test_fast.py`` runs both models
on random streams across an associativity/size sweep; the engine
differential suite runs them on whole workloads).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from repro.caches.cache import _ilog2
from repro.caches.hierarchy import CacheParams
from repro.caches.stats import AccessStats, FIG_PAGE_SHIFT, KINDS
from repro.layout import PAGE_SIZE, SHADOW_SPACE_BASE

#: indices into the per-kind counter list
_ACC, _TLB_M, _L1_M, _L2_M, _STALL, _SPANS = range(6)

#: indices into a per-kind record
_R_CTR, _R_PAGES, _R_TLBK, _R_TLB_MRU, _R_KEYS, _R_MASK, _R_ASSOC, \
    _R_MRU = range(8)


# -- generated probe source --------------------------------------------------

# The probe bodies below are emitted as source lines over a canonical
# set of bound names and exec-compiled once per cache geometry (the
# associativities are baked into the source as unroll counts; masks,
# penalties and the way tables stay bound as closure cells so one
# code object serves every size with the same associativity).  The
# block-fusion engine inlines the very same lines into its generated
# block closures, which is what makes inlined and called charges
# counter-identical by construction.

def _shift_lines(keys: str, wb: str, upto, pad: str = "") -> List[str]:
    """Shift ways ``[wb, upto)`` back one slot (recency demotion).

    ``upto`` is an int offset for the unrolled emitters or a variable
    name for the scan path; single-slot shifts skip the slice.
    """
    if upto == 1:
        return [pad + "%s[%s + 1] = %s[%s]" % (keys, wb, keys, wb)]
    if isinstance(upto, int):
        return [pad + "%s[%s + 1:%s + %d] = %s[%s:%s + %d]"
                % (keys, wb, wb, upto + 1, keys, wb, wb, upto)]
    return [pad + "%s[%s + 1:%s + 1] = %s[%s:%s]"
            % (keys, wb, upto, keys, wb, upto)]


def _touch_lines(keys: str, key: str, mask: str, assoc: int,
                 miss: List[str], tmp: str = "") -> List[str]:
    """One set-associative structure touch over the flat way table.

    The ways of a set are kept in recency order (way 0 = most
    recent), so a front-way hit — the overwhelmingly common case — is
    one compare with nothing to update.  A deeper hit shifts the
    younger ways back one slot and reinstalls the key at the front
    (``OrderedDict.move_to_end`` in array clothes); a miss runs
    ``miss`` (the caller's counter/penalty lines) and installs the
    key the same way, evicting the last way — the least recently
    used.  Unrolled for ``assoc <= 4``; a bounded ``for`` scan plus
    one slice shift otherwise.  ``tmp`` suffixes the scratch names so
    touches can nest (the L2 touch runs inside the L1/tag miss path).
    """
    wb, ww = "wb" + tmp, "ww" + tmp
    lines: List[str] = []
    if assoc == 1:
        lines.append("%s = %s & %s" % (wb, key, mask))
        lines.append("if %s[%s] != %s:" % (keys, wb, key))
        lines.extend("    " + m for m in miss)
        lines.append("    %s[%s] = %s" % (keys, wb, key))
    elif assoc <= 4:
        lines.append("%s = (%s & %s) * %d" % (wb, key, mask, assoc))
        lines.append("if %s[%s] == %s:" % (keys, wb, key))
        lines.append("    pass")
        for w in range(1, assoc):
            lines.append("elif %s[%s + %d] == %s:" % (keys, wb, w, key))
            lines.extend(_shift_lines(keys, wb, w, "    "))
            lines.append("    %s[%s] = %s" % (keys, wb, key))
        lines.append("else:")
        lines.extend("    " + m for m in miss)
        lines.extend(_shift_lines(keys, wb, assoc - 1, "    "))
        lines.append("    %s[%s] = %s" % (keys, wb, key))
    else:
        lines.append("%s = (%s & %s) * %d" % (wb, key, mask, assoc))
        lines.append("if %s[%s] != %s:" % (keys, wb, key))
        lines.append("    for %s in range(%s + 1, %s + %d):"
                     % (ww, wb, wb, assoc))
        lines.append("        if %s[%s] == %s:" % (keys, ww, key))
        lines.append("            break")
        lines.append("    else:")
        lines.extend("        " + m for m in miss)
        lines.append("        %s = %s + %d" % (ww, wb, assoc - 1))
        lines.extend(_shift_lines(keys, wb, ww, "    "))
        lines.append("    %s[%s] = %s" % (keys, wb, key))
    return lines


def _tlb_touch_lines(ctr: str, keys: str, tlb_assoc: int) -> List[str]:
    """TLB leg touch from local ``pno``: a miss charges the penalty
    straight into the kind's stall counter."""
    return _touch_lines(keys, "pno", "_tlm", tlb_assoc,
                        ["%s[1] += 1" % ctr, "%s[4] += _tpen" % ctr])


def _walk_lines(ctr: str, keys: str, mask: str, assoc: int, mru: str,
                l2_assoc: int) -> List[str]:
    """The L1(-or-tag-cache)+L2 block walk from locals ``bno``/``lb``
    with ``stall`` accumulation (at most two iterations: a spanning
    access touches the first and last block)."""
    inner = (["%s[2] += 1" % ctr, "stall += _1pen"]
             + _touch_lines("_l2k", "bno", "_l2m", l2_assoc,
                            ["%s[3] += 1" % ctr, "stall += _2pen"],
                            tmp="2"))
    lines = ["stall = 0", "while True:"]
    lines += ["    " + line
              for line in _touch_lines(keys, "bno", mask, assoc, inner)]
    lines += [
        "    %s[0] = bno" % mru,
        "    if bno == lb:",
        "        break",
        "    %s[5] += 1" % ctr,
        "    bno = lb",
        "%s[4] += stall" % ctr,
    ]
    return lines


def _pad(pad: str, lines: List[str]) -> List[str]:
    return [pad + line for line in lines]


@lru_cache(maxsize=None)
def word_probe_lines(tlb_assoc: int, l1_assoc: int, tag_assoc: int,
                     l2_assoc: int,
                     skip_cell: bool = False) -> Tuple[str, ...]:
    """The whole word+tag charge as source lines over variable ``ea``.

    Charges a 4-byte ``"data"`` access at ``ea`` followed by a 1-byte
    ``"tag"`` access at ``_tb + (ea >> _ts)`` — the exact sequence
    every HardBound word load/store performs.  A tag byte never spans
    blocks, so the tag leg drops the span handling entirely.  The
    composite short circuit skips everything when the probe repeats
    the previous probe's key granule (see :meth:`make_word_probe`).
    Consumed both by the closure compiler here and, verbatim, by the
    block-fusion templates.

    With ``skip_cell`` (the superblock tier's variant) the composite
    hit bumps the shared ``_wsk`` cell once instead of the data and
    tag access counters twice; :attr:`FastMemorySystem.stats`
    materializes the cell back into both counts, so the two variants
    are freely interchangeable mid-run.
    """
    lines = [
        # the key granule pins only the access's first block, so the
        # skip must also prove the word doesn't span out of it
        # (conservative: same key granule for both ends)
        "wkey = ea >> _wps",
        "if wkey == _wpm[0] and (ea + 3) >> _wps == wkey:",
    ]
    if skip_cell:
        lines += ["    _wsk[0] += 1"]
    else:
        lines += ["    _dct[0] += 1",
                  "    _tct[0] += 1"]
    lines += [
        "else:",
        # -- data leg (4 bytes) --
        "    _dct[0] += 1",
        "    fp = ea >> _fs",
        "    if fp != _dfg[0]:",
        "        _dpg(fp)",
        "        _dfg[0] = fp",
        "    pno = ea >> _ps",
        "    if pno != _dtm[0]:",
    ]
    lines += _pad("        ",
                  _tlb_touch_lines("_dct", "_dtlk", tlb_assoc))
    lines += [
        "        _dtm[0] = pno",
        "    fb = ea >> _bs",
        "    lb = (ea + 3) >> _bs",
        "    if fb == lb == _dmr[0]:",
        "        pass",
        "    else:",
        "        bno = fb",
    ]
    lines += _pad("        ",
                  _walk_lines("_dct", "_l1k", "_dma", l1_assoc,
                              "_dmr", l2_assoc))
    lines += [
        # -- tag leg (1 byte, never spans) --
        "    taddr = _tb + (ea >> _ts)",
        "    _tct[0] += 1",
        "    fp = taddr >> _fs",
        "    if fp != _tfg[0]:",
        "        _tpg(fp)",
        "        _tfg[0] = fp",
        "    pno = taddr >> _ps",
        "    if pno != _ttm[0]:",
    ]
    lines += _pad("        ",
                  _tlb_touch_lines("_tct", "_ttlk", tlb_assoc))
    lines += [
        "        _ttm[0] = pno",
        "    bno = taddr >> _bs",
        "    if bno != _tmr[0]:",
    ]
    tag_touch = _touch_lines(
        "_tck", "bno", "_tma", tag_assoc,
        ["_tct[2] += 1", "stall = _1pen"]
        + _touch_lines("_l2k", "bno", "_l2m", l2_assoc,
                       ["_tct[3] += 1", "stall += _2pen"], tmp="2")
        + ["_tct[4] += stall"])
    lines += _pad("        ", tag_touch)
    lines += [
        "        _tmr[0] = bno",
        # a spanning data access leaves the recency tail at the
        # second block, so a future same-key probe could not skip
        "    _wpm[0] = wkey if _cmpw and fb == lb else -1",
        "    _dpm[0] = -1",
    ]
    return tuple(lines)


@lru_cache(maxsize=None)
def data_probe_lines(tlb_assoc: int, l1_assoc: int,
                     l2_assoc: int) -> Tuple[str, ...]:
    """The plain 4-byte ``"data"`` charge as source lines over ``ea``.

    Consumed both by the closure compiler here and, verbatim, by the
    block-fusion templates.
    """
    lines = [
        "fb = ea >> _bs",
        "lb = (ea + 3) >> _bs",
        "if fb == lb == _dpm[0]:",
        "    _dct[0] += 1",
        "else:",
        "    _dct[0] += 1",
        "    fp = ea >> _fs",
        "    if fp != _dfg[0]:",
        "        _dpg(fp)",
        "        _dfg[0] = fp",
        "    pno = ea >> _ps",
        "    if pno != _dtm[0]:",
    ]
    lines += _pad("        ",
                  _tlb_touch_lines("_dct", "_dtlk", tlb_assoc))
    lines += [
        "        _dtm[0] = pno",
        "    if fb == lb == _dmr[0]:",
        "        pass",
        "    else:",
        "        bno = fb",
    ]
    lines += _pad("        ",
                  _walk_lines("_dct", "_l1k", "_dma", l1_assoc,
                              "_dmr", l2_assoc))
    lines += [
        "    _dpm[0] = fb if _cmpd and fb == lb else -1",
        "    _wpm[0] = -1",
    ]
    return tuple(lines)


@lru_cache(maxsize=None)
def _kind_probe_lines(span: int, cassoc: int, tlb_assoc: int,
                      l2_assoc: int, identity: bool) -> Tuple[str, ...]:
    """Fixed-size single-kind charge over neutral structure names
    (``_ct``/``_ck``/... are bound to the kind's record at compile
    time).  Used for the shadow probe; never inlined by the fuser."""
    if identity:
        lines = ["addr = ea"]
    else:
        lines = ["addr = _kb + ea * _ksc"]
    lines += [
        "fb = addr >> _bs",
        "lb = (addr + %d) >> _bs" % span,
        "_ct[0] += 1",
        "fp = addr >> _fs",
        "if fp != _fg[0]:",
        "    _pg(fp)",
        "    _fg[0] = fp",
        "pno = addr >> _ps",
        "if pno != _tm[0]:",
    ]
    lines += _pad("    ", _tlb_touch_lines("_ct", "_tlk", tlb_assoc))
    lines += [
        "    _tm[0] = pno",
        "if fb == lb == _mr[0]:",
        "    pass",
        "else:",
        "    bno = fb",
    ]
    lines += _pad("    ",
                  _walk_lines("_ct", "_ck", "_cm", cassoc, "_mr",
                              l2_assoc))
    lines += [
        "_wpm[0] = -1",
        "_dpm[0] = -1",
    ]
    return tuple(lines)


#: pseudo-filename of the generated probe source (shows in tracebacks)
_FAST_FILENAME = "<repro-fast-probes>"

#: (shape, geometry) -> compiled factory code object
_probe_code_cache: Dict[tuple, object] = {}

_WORD_ARGS = (
    "_bs", "_ps", "_fs", "_wps", "_tlm", "_tpen", "_1pen", "_2pen",
    "_dct", "_dpg", "_dfg", "_dtm", "_dtlk", "_l1k", "_dma", "_dmr",
    "_tct", "_tpg", "_tfg", "_ttm", "_ttlk", "_tck", "_tma", "_tmr",
    "_l2k", "_l2m", "_tb", "_ts", "_wpm", "_dpm", "_cmpw",
)

_DATA_ARGS = (
    "_bs", "_ps", "_fs", "_tlm", "_tpen", "_1pen", "_2pen",
    "_dct", "_dpg", "_dfg", "_dtm", "_dtlk", "_l1k", "_dma", "_dmr",
    "_l2k", "_l2m", "_wpm", "_dpm", "_cmpd",
)

_KIND_ARGS = (
    "_bs", "_ps", "_fs", "_tlm", "_tpen", "_1pen", "_2pen",
    "_ct", "_pg", "_fg", "_tm", "_tlk", "_ck", "_cm", "_mr",
    "_l2k", "_l2m", "_wpm", "_dpm", "_kb", "_ksc",
)


def _compile_probe(cache_key: tuple, fname: str,
                   body: Tuple[str, ...], arg_names: Tuple[str, ...]):
    """Compile ``def fname(ea)`` with ``arg_names`` as closure cells.

    The factory pattern (an outer function taking the bound state as
    parameters) turns every name the body touches into a fast closure
    cell; the compiled code object is cached by geometry so repeated
    ``FastMemorySystem`` constructions reuse it.
    """
    code = _probe_code_cache.get(cache_key)
    if code is None:
        src = ["def _make(%s):" % ", ".join(arg_names),
               "    def %s(ea):" % fname]
        src += ["        " + line for line in body]
        src.append("    return %s" % fname)
        code = compile("\n".join(src), _FAST_FILENAME, "exec")
        _probe_code_cache[cache_key] = code
    namespace: dict = {}
    exec(code, namespace)
    return namespace["_make"]


class _CacheView:
    """Read-only stand-in for a :class:`~repro.caches.cache.Cache`.

    Derives probe counts from the per-kind counters so diagnostics
    (e.g. ``memsys.tag_cache.miss_rate()``) work against the fast
    model too.  A structure's probes are the accesses of every kind
    routed to it plus one extra probe per block-spanning access; its
    misses are those kinds' per-level miss counters.
    """

    __slots__ = ("name", "accesses", "misses")

    def __init__(self, name: str, accesses: int, misses: int):
        self.name = name
        self.accesses = accesses
        self.misses = misses

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self):
        return ("_CacheView(%s: %d acc, %.1f%% miss)"
                % (self.name, self.accesses, 100.0 * self.miss_rate()))


class FastMemorySystem:
    """Drop-in fast replacement for :class:`MemorySystem`.

    Same constructor, same ``access(addr, size, write, kind)``
    signature and return value (the stall cycles charged), same
    statistics; only the implementation differs.  The model — like
    :class:`MemorySystem` — is write-agnostic: the ``write`` flag is
    accepted for interface parity and ignored.  Used by the
    ``blocks`` execution engine.
    """

    def __init__(self, params: CacheParams = None):
        self.params = params or CacheParams()
        p = self.params
        # LRU sets as flat way tables indexed by set_index * assoc +
        # way, each set's ways kept in recency order (way 0 = most
        # recently used) — the OrderedDict order of
        # :class:`~repro.caches.cache.Cache`, so eviction (the last
        # way) picks the same victim.  Empty ways hold -1 and drift
        # to the back, matching the classic fill-before-evict.
        (self._l1_keys,
         self._l1_mask) = self._make_ways(p.l1_size, p.l1_assoc,
                                          p.block)
        (self._l2_keys,
         self._l2_mask) = self._make_ways(p.l2_size, p.l2_assoc,
                                          p.block)
        (self._tag_keys,
         self._tag_mask) = self._make_ways(p.tag_cache_size,
                                           p.tag_cache_assoc, p.block)
        tlb_size = p.tlb_entries * PAGE_SIZE
        (self._dtlb_keys,
         self._tlb_mask) = self._make_ways(tlb_size, p.tlb_assoc,
                                           PAGE_SIZE)
        (self._tag_tlb_keys,
         _) = self._make_ways(tlb_size, p.tlb_assoc, PAGE_SIZE)
        # one MRU cell per structure, shared by every probe of that
        # structure (the short-circuit invariant demands it)
        l1_mru, tag_mru = [-1], [-1]
        dtlb_mru, tag_tlb_mru = [-1], [-1]
        # composite MRU cells: a probe may skip its whole structure
        # walk when it repeats the previous probe's block granule AND
        # no other probe touched the shared structures since; every
        # other probe therefore invalidates these on its full path
        self._wp_mru = [-1]
        self._dp_mru = [-1]
        # composite-hit batch counter (superblock-tier word probes):
        # one bump per composite hit, materialized into both the data
        # and tag access counts when stats are read
        self._wp_skip = [0]
        # every cell whose skip path can elide a distinct-page add;
        # reset_stats() must invalidate them so cleared page sets
        # repopulate (probes register their private fig cells here)
        self._reset_cells: List[list] = [self._wp_mru, self._dp_mru]
        #: kind -> record, layout per the ``_R_*`` indices above
        self._kinds: Dict[str, tuple] = {}
        for kind in KINDS:
            if kind == "tag":
                rec = ([0] * 6, set(), self._tag_tlb_keys, tag_tlb_mru,
                       self._tag_keys, self._tag_mask,
                       p.tag_cache_assoc, tag_mru)
            else:
                rec = ([0] * 6, set(), self._dtlb_keys, dtlb_mru,
                       self._l1_keys, self._l1_mask,
                       p.l1_assoc, l1_mru)
            self._kinds[kind] = rec
        self.access = self._build_access()

    @staticmethod
    def _make_ways(size: int, assoc: int, block: int):
        """Flat ``(keys, set_mask)`` way table for one structure
        (``num_sets * assoc`` slots)."""
        if size % (assoc * block):
            raise ValueError("size must be a multiple of assoc*block")
        num_sets = size // (assoc * block)
        _ilog2(num_sets)  # validate power of two
        return [-1] * (num_sets * assoc), num_sets - 1

    def _geometry(self):
        """Shared constants bound into every probe closure."""
        p = self.params
        return (_ilog2(p.block), _ilog2(PAGE_SIZE),
                self._tlb_mask, p.tlb_assoc,
                self._l2_keys, self._l2_mask, p.l2_assoc,
                p.tlb_miss_penalty, p.l1_miss_penalty,
                p.l2_miss_penalty, FIG_PAGE_SHIFT)

    # -- hot paths ---------------------------------------------------------

    def _build_access(self):
        """Generic probe with all parameters bound as locals.

        Works for any associativity (runtime-bounded way scans plus
        one slice shift per non-front touch); the generated probes
        below unroll the same walk for the hot access shapes.
        """
        kinds = self._kinds
        (block_shift, page_shift, tlb_mask, tlb_assoc, l2_keys,
         l2_mask, l2_assoc, tlb_pen, l1_pen, l2_pen,
         fig_shift) = self._geometry()
        wp_mru = self._wp_mru
        dp_mru = self._dp_mru

        def access(addr, size, write, kind):
            (ctr, pages, tlbk, tlb_mru, ckeys, cmask, cassoc,
             cmru) = kinds[kind]
            wp_mru[0] = -1
            dp_mru[0] = -1
            ctr[0] += 1
            pages.add(addr >> fig_shift)
            page_no = addr >> page_shift
            stall = 0
            if page_no != tlb_mru[0]:
                wb = (page_no & tlb_mask) * tlb_assoc
                if tlbk[wb] != page_no:
                    for ww in range(wb + 1, wb + tlb_assoc):
                        if tlbk[ww] == page_no:
                            break
                    else:
                        ctr[1] += 1
                        stall = tlb_pen
                        ww = wb + tlb_assoc - 1
                    tlbk[wb + 1:ww + 1] = tlbk[wb:ww]
                    tlbk[wb] = page_no
                tlb_mru[0] = page_no
            bno = addr >> block_shift
            last_bno = (addr + size - 1) >> block_shift
            if bno == last_bno == cmru[0]:
                ctr[4] += stall
                return stall
            while True:
                wb = (bno & cmask) * cassoc
                if ckeys[wb] != bno:
                    for ww in range(wb + 1, wb + cassoc):
                        if ckeys[ww] == bno:
                            break
                    else:
                        ctr[2] += 1
                        stall += l1_pen
                        wb2 = (bno & l2_mask) * l2_assoc
                        if l2_keys[wb2] != bno:
                            for ww2 in range(wb2 + 1, wb2 + l2_assoc):
                                if l2_keys[ww2] == bno:
                                    break
                            else:
                                ctr[3] += 1
                                stall += l2_pen
                                ww2 = wb2 + l2_assoc - 1
                            l2_keys[wb2 + 1:ww2 + 1] = l2_keys[wb2:ww2]
                            l2_keys[wb2] = bno
                        ww = wb + cassoc - 1
                    ckeys[wb + 1:ww + 1] = ckeys[wb:ww]
                    ckeys[wb] = bno
                cmru[0] = bno
                if bno == last_bno:
                    break
                ctr[5] += 1
                bno = last_bno
            ctr[4] += stall
            return stall

        return access

    def make_word_probe(self, tag_base: int, tag_shift: int):
        """Single-call probe for a word access plus its tag byte.

        Charges a 4-byte ``"data"`` access at the given address
        followed by a 1-byte ``"tag"`` access at ``tag_base + (addr
        >> tag_shift)`` — the exact sequence every HardBound word
        load/store performs.  Compiled from
        :func:`word_probe_lines` for this geometry, so the body is
        the same source the block fuser inlines.
        """
        p = self.params
        (block_shift, page_shift, tlb_mask, tlb_assoc, l2_keys,
         l2_mask, l2_assoc, tlb_pen, l1_pen, l2_pen,
         fig_shift) = self._geometry()
        drec = self._kinds["data"]
        trec = self._kinds["tag"]
        # distinct-page sets are idempotent, so a private
        # last-page-added cell can elide repeat adds safely
        dfig_mru = [-1]
        tfig_mru = [-1]
        self._reset_cells += [dfig_mru, tfig_mru]
        # composite short circuit: same key as the previous probe of
        # these structures means every level repeats a front-way hit
        # — only the access counters can change.  The key granule
        # must pin the data block, the tag byte and both figure
        # pages, hence the min-shift (and the off-switch for exotic
        # geometries).
        key_shift = min(tag_shift, block_shift)
        composite = key_shift <= fig_shift and block_shift < page_shift
        geometry = (tlb_assoc, p.l1_assoc, p.tag_cache_assoc, l2_assoc)
        make = _compile_probe(("word",) + geometry, "word_probe",
                              word_probe_lines(*geometry), _WORD_ARGS)
        values = {
            "_bs": block_shift, "_ps": page_shift, "_fs": fig_shift,
            "_wps": key_shift, "_tlm": tlb_mask, "_tpen": tlb_pen,
            "_1pen": l1_pen, "_2pen": l2_pen,
            "_dct": drec[_R_CTR], "_dpg": drec[_R_PAGES].add,
            "_dfg": dfig_mru, "_dtm": drec[_R_TLB_MRU],
            "_dtlk": drec[_R_TLBK], "_l1k": drec[_R_KEYS],
            "_dma": drec[_R_MASK], "_dmr": drec[_R_MRU],
            "_tct": trec[_R_CTR], "_tpg": trec[_R_PAGES].add,
            "_tfg": tfig_mru, "_ttm": trec[_R_TLB_MRU],
            "_ttlk": trec[_R_TLBK], "_tck": trec[_R_KEYS],
            "_tma": trec[_R_MASK], "_tmr": trec[_R_MRU],
            "_l2k": l2_keys, "_l2m": l2_mask,
            "_tb": tag_base, "_ts": tag_shift,
            "_wpm": self._wp_mru, "_dpm": self._dp_mru,
            "_cmpw": composite,
        }
        return make(*(values[name] for name in _WORD_ARGS))

    def make_data_probe(self):
        """Probe for a plain 4-byte ``"data"`` access at an address.

        Compiled from :func:`data_probe_lines` — the same source the
        block fuser inlines for plain (no-HardBound) word accesses.
        """
        (block_shift, page_shift, tlb_mask, tlb_assoc, l2_keys,
         l2_mask, l2_assoc, tlb_pen, l1_pen, l2_pen,
         fig_shift) = self._geometry()
        drec = self._kinds["data"]
        dfig_mru = [-1]
        self._reset_cells.append(dfig_mru)
        # only the data probe gets a composite cell; it shares the
        # dtlb/L1 with the word/shadow probes and the generic entry
        # point, so each of those invalidates it on their full paths
        composite = (block_shift <= fig_shift
                     and block_shift < page_shift)
        geometry = (tlb_assoc, self.params.l1_assoc, l2_assoc)
        make = _compile_probe(("data",) + geometry, "data_probe",
                              data_probe_lines(*geometry), _DATA_ARGS)
        values = {
            "_bs": block_shift, "_ps": page_shift, "_fs": fig_shift,
            "_tlm": tlb_mask, "_tpen": tlb_pen, "_1pen": l1_pen,
            "_2pen": l2_pen,
            "_dct": drec[_R_CTR], "_dpg": drec[_R_PAGES].add,
            "_dfg": dfig_mru, "_dtm": drec[_R_TLB_MRU],
            "_dtlk": drec[_R_TLBK], "_l1k": drec[_R_KEYS],
            "_dma": drec[_R_MASK], "_dmr": drec[_R_MRU],
            "_l2k": l2_keys, "_l2m": l2_mask,
            "_wpm": self._wp_mru, "_dpm": self._dp_mru,
            "_cmpd": composite,
        }
        return make(*(values[name] for name in _DATA_ARGS))

    def _make_kind_probe(self, kind: str, size: int, base: int,
                         addr_scale: int):
        """Fixed-size single-kind probe: charges ``base + key *
        addr_scale`` for ``size`` bytes under ``kind``."""
        (block_shift, page_shift, tlb_mask, tlb_assoc, l2_keys,
         l2_mask, l2_assoc, tlb_pen, l1_pen, l2_pen,
         fig_shift) = self._geometry()
        rec = self._kinds[kind]
        identity = base == 0 and addr_scale == 1
        fig_mru = [-1]
        self._reset_cells.append(fig_mru)
        cassoc = rec[_R_ASSOC]
        geometry = (size - 1, cassoc, tlb_assoc, l2_assoc, identity)
        make = _compile_probe(("kind",) + geometry, "kind_probe",
                              _kind_probe_lines(*geometry), _KIND_ARGS)
        values = {
            "_bs": block_shift, "_ps": page_shift, "_fs": fig_shift,
            "_tlm": tlb_mask, "_tpen": tlb_pen, "_1pen": l1_pen,
            "_2pen": l2_pen,
            "_ct": rec[_R_CTR], "_pg": rec[_R_PAGES].add,
            "_fg": fig_mru, "_tm": rec[_R_TLB_MRU],
            "_tlk": rec[_R_TLBK], "_ck": rec[_R_KEYS],
            "_cm": rec[_R_MASK], "_mr": rec[_R_MRU],
            "_l2k": l2_keys, "_l2m": l2_mask,
            "_wpm": self._wp_mru, "_dpm": self._dp_mru,
            "_kb": base, "_ksc": addr_scale,
        }
        return make(*(values[name] for name in _KIND_ARGS))

    def make_shadow_probe(self):
        """Probe for the shadow double word of a data word ``key``
        (``key`` is the word-aligned data address)."""
        return self._make_kind_probe("shadow", 8, SHADOW_SPACE_BASE, 2)

    # callers hot enough to inline the composite-hit path themselves
    # (the decoded memory closures) get the probe plus the cells the
    # short circuit reads: on a hit only the access counters advance.

    def word_probe_parts(self, tag_base: int, tag_shift: int):
        """``(probe, wp_mru, data_ctr, tag_ctr, key_shift)`` for an
        inlined ``key == wp_mru[0]`` fast path around
        :meth:`make_word_probe`."""
        probe = self.make_word_probe(tag_base, tag_shift)
        key_shift = min(tag_shift, _ilog2(self.params.block))
        return (probe, self._wp_mru, self._kinds["data"][_R_CTR],
                self._kinds["tag"][_R_CTR], key_shift)

    def data_probe_parts(self):
        """``(probe, dp_mru, data_ctr, block_shift)`` for an inlined
        non-spanning ``bkey == dp_mru[0]`` fast path around
        :meth:`make_data_probe`."""
        return (self.make_data_probe(), self._dp_mru,
                self._kinds["data"][_R_CTR],
                _ilog2(self.params.block))

    def inline_env(self, tag_base, tag_shift):
        """Everything a code generator needs to inline the charges.

        The block-fusion engine's memory templates inline the whole
        word+tag probe (and the plain data probe) into generated
        source instead of calling a probe closure.  This returns the
        geometry constants (including the associativities the line
        emitters unroll over), the per-kind way tables and counter
        records, the shared composite-MRU cells, and freshly
        registered fig-page MRU cells — the same state the closure
        probes close over, so inlined and called charges update
        identical structures and stay counter-identical.

        ``tag_base``/``tag_shift`` may be ``None`` (plain runs have
        no tag leg); the tag fields are then ``None`` too.
        """
        from types import SimpleNamespace

        (block_shift, page_shift, tlb_mask, tlb_assoc, l2_keys,
         l2_mask, l2_assoc, tlb_pen, l1_pen, l2_pen,
         fig_shift) = self._geometry()
        env = SimpleNamespace(
            block_shift=block_shift, page_shift=page_shift,
            fig_shift=fig_shift, tlb_mask=tlb_mask,
            tlb_assoc=tlb_assoc, l2_keys=l2_keys, l2_mask=l2_mask,
            l2_assoc=l2_assoc, tlb_pen=tlb_pen, l1_pen=l1_pen,
            l2_pen=l2_pen, wp_mru=self._wp_mru, dp_mru=self._dp_mru,
            wp_skip=self._wp_skip,
            tag_base=tag_base, tag_shift=tag_shift,
        )
        drec = self._kinds["data"]
        env.dctr = drec[_R_CTR]
        env.dpages_add = drec[_R_PAGES].add
        env.dtlb_keys = drec[_R_TLBK]
        env.dtlb_mru = drec[_R_TLB_MRU]
        env.dkeys = drec[_R_KEYS]
        env.dmask = drec[_R_MASK]
        env.dmru = drec[_R_MRU]
        env.dfig_mru = [-1]
        self._reset_cells.append(env.dfig_mru)
        # data-probe composite validity (mirrors make_data_probe)
        env.dp_composite = (block_shift <= fig_shift
                            and block_shift < page_shift)
        if tag_base is not None:
            trec = self._kinds["tag"]
            env.tctr = trec[_R_CTR]
            env.tpages_add = trec[_R_PAGES].add
            env.ttlb_keys = trec[_R_TLBK]
            env.ttlb_mru = trec[_R_TLB_MRU]
            env.tkeys = trec[_R_KEYS]
            env.tmask = trec[_R_MASK]
            env.tmru = trec[_R_MRU]
            env.tfig_mru = [-1]
            self._reset_cells.append(env.tfig_mru)
            # word-probe composite key/validity (mirrors
            # make_word_probe)
            env.wp_shift = min(tag_shift, block_shift)
            env.wp_composite = (env.wp_shift <= fig_shift
                                and block_shift < page_shift)
        else:
            env.tctr = env.tpages_add = env.ttlb_keys = None
            env.ttlb_mru = env.tkeys = env.tmask = None
            env.tmru = env.tfig_mru = None
            env.wp_shift = env.wp_composite = None
        return env

    # -- statistics --------------------------------------------------------

    @property
    def stats(self) -> AccessStats:
        """Materialize the batched counters as an ``AccessStats``."""
        out = AccessStats()
        skip = self._wp_skip[0]
        for kind, rec in self._kinds.items():
            ctr, pages = rec[_R_CTR], rec[_R_PAGES]
            ks = out.kinds[kind]
            ks.accesses = ctr[_ACC]
            if kind in ("data", "tag"):
                # each batched composite hit was one data access and
                # one tag access
                ks.accesses += skip
            ks.tlb_misses = ctr[_TLB_M]
            ks.l1_misses = ctr[_L1_M]
            ks.l2_misses = ctr[_L2_M]
            ks.stall_cycles = ctr[_STALL]
            ks.pages = set(pages)
        return out

    def reset_stats(self) -> None:
        """Zero all counters (cache contents are kept warm).

        The way tables are untouched — recency is encoded in the way
        *order*, so eviction order survives a reset exactly like the
        classic model's warm ``OrderedDict`` sets (and there is no
        recency counter to overflow or wrap, ever).
        """
        for rec in self._kinds.values():
            ctr, pages = rec[_R_CTR], rec[_R_PAGES]
            for i in range(len(ctr)):
                ctr[i] = 0
            pages.clear()
        self._wp_skip[0] = 0
        # composite/fig-page shortcuts may elide page-set adds; after
        # clearing the sets they must repopulate from scratch
        for cell in self._reset_cells:
            cell[0] = -1

    # -- diagnostic views --------------------------------------------------

    def _probe_counts(self, kinds_subset: Tuple[str, ...],
                      miss_idx: int,
                      spanning: bool) -> Tuple[int, int]:
        acc = misses = 0
        for kind in kinds_subset:
            ctr = self._kinds[kind][_R_CTR]
            acc += ctr[_ACC] + (ctr[_SPANS] if spanning else 0)
            if kind in ("data", "tag"):
                acc += self._wp_skip[0]
            misses += ctr[miss_idx]
        return acc, misses

    @property
    def l1(self) -> _CacheView:
        acc, m = self._probe_counts(("data", "shadow", "soft"),
                                    _L1_M, True)
        return _CacheView("L1D", acc, m)

    @property
    def tag_cache(self) -> _CacheView:
        acc, m = self._probe_counts(("tag",), _L1_M, True)
        return _CacheView("TagCache", acc, m)

    @property
    def l2(self) -> _CacheView:
        acc = sum(self._kinds[k][_R_CTR][_L1_M] for k in KINDS)
        m = sum(self._kinds[k][_R_CTR][_L2_M] for k in KINDS)
        return _CacheView("L2", acc, m)

    @property
    def dtlb(self) -> _CacheView:
        acc, m = self._probe_counts(("data", "shadow", "soft"),
                                    _TLB_M, False)
        return _CacheView("DTLB", acc, m)

    @property
    def tag_tlb(self) -> _CacheView:
        acc, m = self._probe_counts(("tag",), _TLB_M, False)
        return _CacheView("TagTLB", acc, m)
