"""Superblock trace-engine tests: formation, edge cases, coverage.

The trace tier must be bit-identical to every other engine on every
exit path — including traps raised mid-trace, side exits into cold
code, control transfers into the middle of a trace, and instruction
limits that would fire inside one.  The full-registry sweep at the
bottom closes the four-way equivalence chain over all nine Olden
workloads (``superblocks`` vs ``blocks`` here; ``blocks`` vs
``legacy``/``decoded`` in ``test_engine_differential``).
"""

import pytest

from repro.harness.runner import compile_cached, run_workload
from repro.isa import assemble
from repro.machine import CPU, MachineConfig
from repro.minic.driver import mode_for_config
from repro.workloads.registry import WORKLOADS

ENGINES = ("legacy", "decoded", "blocks", "superblocks")

#: low threshold so unit-test loops form traces within a few dozen
#: iterations
HOT = dict(superblock_threshold=8)


def run_all(program, mode_fn, timing=False, **kw):
    """Run under all four engines; assert identical, return superblocks."""
    results = {}
    cpus = {}
    for engine in ENGINES:
        cpu = CPU(program, mode_fn(timing=timing, engine=engine, **kw))
        r = cpu.run()
        results[engine] = (r.exit_code, r.instructions, r.uops,
                           r.stall_cycles, r.cycles, cpu.pc,
                           cpu.memory.nonzero_pages())
        cpus[engine] = cpu
    for engine in ENGINES[1:]:
        assert results[engine] == results["legacy"], engine
    return cpus["superblocks"]


LOOP = """
main:
    mov r1, 0
    mov r2, 200
head:
    beqz r2, done
    add r1, r1, 3
    jmp step
step:
    sub r2, r2, 1
    jmp head
done:
    halt r1
"""


class TestTraceFormation:
    def test_hot_loop_forms_trace_and_matches(self):
        cpu = run_all(assemble(LOOP), MachineConfig.plain, **HOT)
        stats = cpu.engine_stats
        assert stats["traces_formed"] >= 1
        assert stats["mean_trace_blocks"] >= 2
        assert stats["trace_dispatches"] > 100

    def test_side_exit_into_cold_block(self):
        """The loop exit edge is a side exit into a block that never
        ran before; state after it must match exactly."""
        cpu = run_all(assemble(LOOP), MachineConfig.plain, **HOT)
        stats = cpu.engine_stats
        assert stats["side_exits"] >= 1
        assert 0 < stats["side_exit_rate"] < 1

    def test_threshold_knob_disables_formation(self):
        cpu = run_all(assemble(LOOP), MachineConfig.plain,
                      superblock_threshold=1 << 30)
        assert cpu.engine_stats["traces_formed"] == 0

    def test_max_blocks_knob_bounds_traces(self):
        cpu = run_all(assemble(LOOP), MachineConfig.plain,
                      superblock_threshold=8, superblock_max_blocks=2)
        stats = cpu.engine_stats
        assert stats["traces_formed"] >= 1
        assert stats["mean_trace_blocks"] <= 2

    def test_engine_stats_travel_on_run_result(self):
        program = assemble(LOOP)
        config = MachineConfig.plain(timing=False, engine="superblocks",
                                     **HOT)
        result = CPU(program, config).run()
        stats = result.engine_stats
        assert stats["engine"] == "superblocks"
        for key in ("traces_formed", "mean_trace_blocks",
                    "trace_dispatches", "block_dispatches",
                    "side_exits", "side_exit_rate", "fallback_steps",
                    "closure_fallback_ops", "cross_call_traces",
                    "ret_mispredicts", "ret_mispredict_rate"):
            assert key in stats


class TestTraceTraps:
    def test_mid_trace_trap_attribution(self):
        """A trap firing inside a formed trace reports the faulting
        instruction's pc and count, not the trace boundary's."""
        from repro.machine import DivideByZeroError
        program = assemble("""
        main:
            mov r1, 0
            mov r2, 100
        head:
            beqz r2, done
            add r1, r1, 3
            sub r2, r2, 1
            jmp step
        step:
            sub r3, r2, 50
            div r4, r1, r3
            jmp head
        done:
            halt r1
        """)
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.plain(
                timing=False, engine=engine, **HOT))
            with pytest.raises(DivideByZeroError) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc,
                             cpu.icount, cpu.pc)
        for engine in ENGINES[1:]:
            assert traps[engine] == traps["legacy"], engine
        # the loop runs long enough that the div fired from a trace
        cpu = CPU(program, MachineConfig.plain(
            timing=False, engine="superblocks", **HOT))
        with pytest.raises(DivideByZeroError):
            cpu.run()
        assert cpu.engine_stats["traces_formed"] >= 1

    def test_mid_trace_bounds_trap(self):
        """A HardBound violation inside a trace-fused memory template
        keeps per-instruction attribution."""
        from repro.machine import BoundsError
        source = """
        int main() {
            int *p = (int*)malloc(32 * sizeof(int));
            int i;
            for (i = 0; i < 100; i = i + 1) {
                p[i] = i;              // overruns at i == 32
            }
            return 0;
        }"""
        config = MachineConfig.hardbound(timing=False)
        from repro.minic.driver import compile_program
        program = compile_program(source, mode_for_config(config))
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.hardbound(
                timing=False, engine=engine, **HOT))
            with pytest.raises(BoundsError) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc,
                             cpu.icount, cpu.pc)
        for engine in ENGINES[1:]:
            assert traps[engine] == traps["legacy"], engine

    def test_limit_busting_demotes_trace(self):
        """When the whole-trace charge would overrun the instruction
        limit, the dispatch demotes to the block tier (and then to
        single-stepping), landing on exactly the legacy pc/icount."""
        program = assemble(LOOP)
        for limit in (50, 101, 202, 303, 500, 799, 800, 801):
            states = {}
            for engine in ENGINES:
                cpu = CPU(program, MachineConfig.plain(
                    timing=False, engine=engine,
                    max_instructions=limit, **HOT))
                from repro.machine import InstructionLimitExceeded
                try:
                    result = cpu.run()
                    states[engine] = ("halt", result.exit_code,
                                      result.instructions, cpu.pc)
                except InstructionLimitExceeded:
                    states[engine] = ("limit", cpu.icount, cpu.pc)
            for engine in ENGINES[1:]:
                assert states[engine] == states["legacy"], (engine,
                                                            limit)

    def test_entry_into_trace_middle(self):
        """A computed call into a pc interior to a formed trace must
        dispatch the interior block / single-step, not the trace."""
        program = assemble("""
        main:
            mov r1, 0
            mov r2, 40
            mov r7, 0
        head:
            beqz r2, after
            add r1, r1, 3
            jmp step
        step:
            sub r2, r2, 1
            jmp head
        after:
            bnez r7, fin
            mov r7, 1
            mov r2, 5
            setcode r5, head
            add r5, r5, 1
            callr r5
        fin:
            halt r1
        """)
        # the callr lands on "add r1, r1, 3" — one past the trace
        # head formed over the hot loop — skipping the loop-exit
        # compare once, then re-entering the loop head normally
        cpu = run_all(program, MachineConfig.plain, **HOT)
        assert cpu.engine_stats["traces_formed"] >= 1


#: hot loop whose body calls a leaf; the call/ret pair inlines into
#: the loop trace, and the callee perturbs the link register via
#: ``r6`` (zero except on one iteration) so the ret-prediction guard
#: eventually fires from inside the formed trace
CROSS_CALL = """
main:
    mov r1, 0
    mov r2, 150
    mov r6, 0
head:
    beqz r2, done
    call fn
back:
    mov r7, 0
    sub r2, r2, 1
    seq r6, r2, 20
    jmp head
fn:
    add r1, r1, 2
    add ra, ra, r6
    ret
done:
    halt r1
"""


class TestCrossCallTraces:
    def test_call_ret_pair_inlines_into_trace(self):
        cpu = run_all(assemble(CROSS_CALL), MachineConfig.plain, **HOT)
        stats = cpu.engine_stats
        assert stats["traces_formed"] >= 1
        assert stats["cross_call_traces"] >= 1
        # the loop body spans at least head/call/callee/back blocks
        assert stats["mean_trace_blocks"] >= 4

    def test_ret_mispredict_takes_side_exit(self):
        """On the one iteration where the callee rewrites ``ra`` the
        guard must side-exit with the actual target — and the skipped
        instruction / diverted control flow must match every other
        engine exactly."""
        cpu = run_all(assemble(CROSS_CALL), MachineConfig.plain, **HOT)
        stats = cpu.engine_stats
        assert stats["ret_mispredicts"] >= 1
        assert stats["side_exits"] >= stats["ret_mispredicts"]
        assert 0 < stats["ret_mispredict_rate"] < 1

    def test_depth_knob_zero_restores_call_boundaries(self):
        cpu = run_all(assemble(CROSS_CALL), MachineConfig.plain,
                      superblock_threshold=8, superblock_call_depth=0)
        stats = cpu.engine_stats
        assert stats["cross_call_traces"] == 0
        assert stats["ret_mispredicts"] == 0

    def test_recursive_call_chain(self):
        """Direct recursion: the back-edge into the callee terminates
        the chain (one inlined frame at most), and push/pop-framed
        recursive returns stay bit-identical."""
        program = assemble("""
        main:
            mov r1, 0
            mov r5, 30
        outer:
            beqz r5, done
            mov r2, 6
            call fn
        ostep:
            sub r5, r5, 1
            jmp outer
        fn:
            beqz r2, fbase
            add r1, r1, 1
            sub r2, r2, 1
            push ra
            call fn
        fmid:
            pop ra
            ret
        fbase:
            ret
        done:
            halt r1
        """)
        cpu = run_all(program, MachineConfig.plain, **HOT)
        stats = cpu.engine_stats
        assert stats["traces_formed"] >= 1
        assert stats["cross_call_traces"] >= 1

    def test_mid_callee_trap_attribution(self):
        """A div-by-zero deep inside an inlined callee keeps exact
        pc/icount attribution under every engine."""
        from repro.machine import DivideByZeroError
        program = assemble("""
        main:
            mov r1, 0
            mov r2, 100
        head:
            beqz r2, done
            call fn
        back:
            sub r2, r2, 1
            jmp head
        fn:
            sub r3, r2, 50
            div r4, r1, r3
            add r1, r1, 3
            ret
        done:
            halt r1
        """)
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.plain(
                timing=False, engine=engine, **HOT))
            with pytest.raises(DivideByZeroError) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc,
                             cpu.icount, cpu.pc)
        for engine in ENGINES[1:]:
            assert traps[engine] == traps["legacy"], engine
        cpu = CPU(program, MachineConfig.plain(
            timing=False, engine="superblocks", **HOT))
        with pytest.raises(DivideByZeroError):
            cpu.run()
        assert cpu.engine_stats["cross_call_traces"] >= 1


class TestFullCoverageTemplates:
    def test_subword_and_env_ops_fuse(self):
        """Sub-word load/store and setbound/sbrk no longer appear in
        the closure-fallback counts — the acceptance criterion for
        the full-coverage templates."""
        program = assemble("""
        main:
            mov r1, 4096
            sbrk r1
            setbound r3, r1, 64
            mov r2, 50
        loop:
            beqz r2, done
            storeb [r3 + 1], r2
            loadb r4, [r3 + 1]
            storeh [r3 + 4], r4
            loadh r5, [r3 + 4]
            sub r2, r2, 1
            jmp loop
        done:
            halt r5
        """)
        cpu = run_all(program, MachineConfig.hardbound, timing=True,
                      **HOT)
        fallback = cpu.engine_stats["closure_fallback_ops"]
        for op in ("load", "store", "setbound", "sbrk"):
            assert op not in fallback, fallback

    @pytest.mark.parametrize("timing", (False, True))
    def test_subword_traffic_identical(self, timing):
        """Byte/halfword traffic through the fused generic templates
        matches every engine, stats included."""
        source = """
        int main() {
            char *s = (char*)malloc(64);
            int i;
            int acc = 0;
            for (i = 0; i < 60; i = i + 1) {
                s[i] = i * 7;
            }
            for (i = 0; i < 60; i = i + 1) {
                acc = acc + s[i];
            }
            return acc;
        }"""
        config = MachineConfig.hardbound(timing=timing)
        program = compile_cached(source, mode_for_config(config))
        run_all(program, MachineConfig.hardbound, timing=timing, **HOT)

    def test_nonprop_expression_templates_identical(self):
        program = assemble("""
        main:
            mov r1, 0
            mov r2, 30
        loop:
            beqz r2, done
            mul r3, r2, -3
            and r4, r3, 255
            xor r5, r4, r2
            shl r6, r5, 2
            sra r7, r3, 1
            add r1, r1, r7
            sub r2, r2, 1
            jmp loop
        done:
            halt r1
        """)
        run_all(program, MachineConfig.plain, **HOT)


class TestInlineCompressibleExpr:
    def test_expr_matches_methods(self):
        """The spliced compressibility expressions agree with the
        stock encodings' is_compressible on a value grid."""
        from repro.metadata.encodings import (
            ENCODINGS,
            inline_compressible_expr,
        )
        cases = []
        for base in (0, 0x1000, 0x7FFF0000, 0xFFFFFF00):
            for size in (0, 4, 8, 56, 60, 8192, 8196, 10000):
                bound = (base + size) & 0xFFFFFFFF
                for value in (base, base + 4, 0):
                    cases.append((value, base, bound))
        for name, cls in ENCODINGS.items():
            enc = cls()
            expr = inline_compressible_expr(enc, "v", "b", "bd")
            assert expr is not None, name
            fn = eval("lambda v, b, bd: bool(%s)" % expr)
            for v, b, bd in cases:
                assert fn(v, b, bd) == bool(enc.is_compressible(v, b, bd)), \
                    (name, v, b, bd)

    def test_subclassed_encoding_returns_none(self):
        from repro.metadata.encodings import (
            Internal11Encoding,
            inline_compressible_expr,
        )

        class Odd(Internal11Encoding):
            def is_compressible(self, value, base, bound):
                return False

        assert inline_compressible_expr(Odd(), "v", "b", "bd") is None


class TestFullRegistryEquivalence:
    """Acceptance: four-way bit-identity on the full Olden registry.

    ``superblocks`` vs ``blocks`` here on every workload (timed, so
    cache/TLB counters are in play); ``blocks``/``decoded`` vs
    ``legacy`` on the sampled workloads plus every trap scenario in
    ``test_engine_differential`` close the chain to the reference
    interpreter.
    """

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_superblocks_matches_blocks_timed(self, name):
        snaps = {}
        for engine in ("blocks", "superblocks"):
            config = MachineConfig.hardbound(engine=engine,
                                             retain_cpu=True)
            r = run_workload(name, config)
            snaps[engine] = (
                r.exit_code, r.output, r.instructions, r.uops,
                r.stall_cycles, r.cycles, r.setbound_uops,
                r.hb_stats.as_dict(), r.mem_stats.as_dict(),
                r.cpu.memory.nonzero_pages())
        assert snaps["superblocks"] == snaps["blocks"]

    def test_plain_core_matches_blocks_timed(self):
        for name in ("em3d", "health"):
            snaps = {}
            for engine in ("blocks", "superblocks"):
                r = run_workload(name, MachineConfig.plain(
                    engine=engine))
                snaps[engine] = (r.exit_code, r.output,
                                 r.instructions, r.cycles,
                                 r.mem_stats.as_dict())
            assert snaps["superblocks"] == snaps["blocks"]
