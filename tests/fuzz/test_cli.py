"""The fuzz CLI: sharding, events, corpus output, exit codes."""

import json

from repro.fuzz.cli import (
    _summarize,
    _write_divergences,
    main,
    run_fuzz,
    run_shard,
)
from repro.obs.events import read_events
from repro.obs.report import render_fuzz


def test_run_shard_returns_records_and_events(tmp_path):
    out = str(tmp_path / "fuzz.jsonl")
    records = run_shard(("isa", 0, 3, (False,), out, None))
    assert len(records) == 3
    assert all(r["ok"] for r in records)
    events = list(read_events(out))
    kinds = [e["ev"] for e in events]
    assert kinds.count("fuzz_run") == 3
    assert kinds.count("fuzz_summary") == 1
    summary = events[-1]
    assert summary["programs"] == 3
    assert summary["shard"] == [0, 3]


def test_run_shard_respects_deadline():
    records = run_shard(("isa", 0, 50, (False,), None, 0.0))
    assert records == []


def test_run_fuzz_covers_every_seed_once():
    records = run_fuzz(("isa",), seeds=5, workers=1, timings=(False,))
    assert sorted(r["seed"] for r in records) == [0, 1, 2, 3, 4]


def test_summarize_mentions_divergent_seeds():
    records = [
        {"seed": 0, "level": "isa", "status": "exit", "trap": None,
         "ok": True, "config": {}},
        {"seed": 3, "level": "isa", "status": "trap",
         "trap": "BoundsError", "ok": False, "config": {}},
    ]
    text = _summarize(records)
    assert "DIVERGENT SEEDS: isa:3" in text
    assert "REPRO_FUZZ_SEED" in text
    assert "BoundsError=1" in text


def test_write_divergences_creates_corpus_entries(tmp_path):
    corpus = str(tmp_path / "corpus")
    records = [{
        "seed": 4, "level": "isa", "status": "exit", "trap": None,
        "ok": False, "config": {"mode": "off"},
        "program": "main:\n    mov r1, 1\n    halt r1\n",
        "divergences": [{"kind": "engine", "engine": "blocks",
                         "timing": False, "fields": ["cycles"],
                         "detail": "", "optimize": None}],
    }]
    written = _write_divergences(records, corpus, minimize=False)
    assert len(written) == 1
    meta = json.loads((tmp_path / "corpus" /
                       "isa-seed4.json").read_text())
    assert meta["seed"] == 4
    assert meta["divergences"][0]["engine"] == "blocks"


def test_main_exit_zero_and_report_renders(tmp_path, capsys):
    out = str(tmp_path / "fuzz.jsonl")
    code = main(["--level", "isa", "--seeds", "3", "--workers", "1",
                 "--functional-only", "--out", out])
    assert code == 0
    printed = capsys.readouterr().out
    assert "3 programs" in printed
    assert "divergences: none" in printed
    report = render_fuzz(list(read_events(out)))
    assert "Fuzzed programs" in report
    assert "Divergences (none recorded)" in report


def test_main_rejects_negative_seeds(tmp_path):
    try:
        main(["--seeds", "-1"])
    except SystemExit as exc:
        assert exc.code == 2
    else:
        raise AssertionError("argparse should reject --seeds -1")
