"""Two-pass text assembler for the simulated ISA.

Syntax overview (see ``tests/isa/test_assembler.py`` for examples)::

    ; comment            # comment
        .text
    main:
        mov   r1, 0x1000
        mov   r2, =buf          ; address of a data symbol
        setbound r2, r2, 16
        load  r3, [r2 + r1*4 + 8]
        storeb [r2 + 1], r3
        push  r3                ; pseudo: sub sp,sp,4 ; store [sp], r3
        beqz  r3, done
        call  helper
    done:
        halt  0
        .data
    buf:    .space 16
    msg:    .asciiz "hi"
    tbl:    .word 1, 2, -3

Loads/stores come in three widths: ``load``/``store`` (word),
``loadh``/``storeh`` (halfword) and ``loadb``/``storeb`` (byte, zero
extending).  ``=sym`` immediates resolve to ``GLOBAL_BASE + offset``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op, reg_index
from repro.isa.program import DataItem, Program
from repro.layout import GLOBAL_BASE, WORD


class AssemblerError(Exception):
    """Raised with file/line context on any assembly problem."""

    def __init__(self, message: str, line_no: Optional[int] = None,
                 line: str = ""):
        if line_no is not None:
            message = "line %d: %s  [%s]" % (line_no, message, line.strip())
        super().__init__(message)
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_TOKEN_RE = re.compile(r"""
    \s*(
        "(?:[^"\\]|\\.)*"          # string literal
      | '(?:[^'\\]|\\.)'           # char literal
      | \[[^\]]*\]                 # memory operand
      | =[\w.$]+                   # address-of immediate
      | [\w.$-]+                   # bare token (number, reg, label)
    )\s*,?
""", re.VERBOSE)

#: ALU mnemonics mapping directly to an opcode with rd, rs, rt|imm.
_ALU3 = {
    "add": Op.ADD, "sub": Op.SUB, "mul": Op.MUL, "div": Op.DIV,
    "mod": Op.MOD, "and": Op.AND, "or": Op.OR, "xor": Op.XOR,
    "shl": Op.SHL, "shr": Op.SHR, "sra": Op.SRA,
    "seq": Op.SEQ, "sne": Op.SNE, "slt": Op.SLT, "sle": Op.SLE,
    "sgt": Op.SGT, "sge": Op.SGE, "sltu": Op.SLTU, "sgeu": Op.SGEU,
}

#: Two-operand mnemonics with rd, rs.
_ALU2 = {
    "neg": Op.NEG, "not": Op.NOT, "xchg": Op.XCHG,
    "readbase": Op.READBASE, "readbound": Op.READBOUND,
    "setunsafe": Op.SETUNSAFE, "clrbnd": Op.CLRBND,
}

_LOADS = {"load": 4, "loadh": 2, "loadb": 1}
_STORES = {"store": 4, "storeh": 2, "storeb": 1}

_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\",
            '"': '"', "'": "'", "r": "\r"}


def _unescape(body: str) -> str:
    out, i = [], 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            out.append(_ESCAPES.get(body[i + 1], body[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class _Assembler:
    """Internal two-pass state machine; use :func:`assemble`."""

    def __init__(self, source: str, name: str = "<asm>"):
        self.source = source
        self.name = name
        self.instrs: List[Instruction] = []
        self.labels: Dict[str, int] = {}
        self.data = bytearray()
        self.data_symbols: Dict[str, DataItem] = {}
        self.fixups: List[Tuple[Instruction, str, int, str]] = []
        self.section = "text"
        self.pending_data_label: Optional[str] = None

    # -- operand parsing ---------------------------------------------------

    def parse_int(self, tok: str, line_no: int, line: str) -> int:
        tok = tok.strip()
        if len(tok) >= 3 and tok[0] == "'" and tok[-1] == "'":
            body = _unescape(tok[1:-1])
            if len(body) != 1:
                raise AssemblerError("bad char literal %s" % tok,
                                     line_no, line)
            return ord(body)
        try:
            return int(tok, 0)
        except ValueError:
            raise AssemblerError("bad integer %r" % tok, line_no, line)

    def try_reg(self, tok: str) -> Optional[int]:
        try:
            return reg_index(tok)
        except KeyError:
            return None

    def reg(self, tok: str, line_no: int, line: str) -> int:
        idx = self.try_reg(tok)
        if idx is None:
            raise AssemblerError("expected register, got %r" % tok,
                                 line_no, line)
        return idx

    def imm_or_symbol(self, tok: str, line_no: int, line: str) -> int:
        """Immediate: integer, char literal, or ``=symbol`` address."""
        if tok.startswith("="):
            sym = tok[1:]
            if sym not in self.data_symbols:
                raise AssemblerError("unknown data symbol %r" % sym,
                                     line_no, line)
            return GLOBAL_BASE + self.data_symbols[sym].offset
        return self.parse_int(tok, line_no, line)

    def parse_mem(self, tok: str, line_no: int,
                  line: str) -> Tuple[Optional[int], Optional[int], int, int]:
        """Parse ``[base + index*scale + disp]`` -> (rs, rt, scale, disp).

        Either register may be absent; ``disp`` may be a data symbol.
        """
        if not (tok.startswith("[") and tok.endswith("]")):
            raise AssemblerError("expected memory operand, got %r" % tok,
                                 line_no, line)
        inner = tok[1:-1].strip()
        # normalise "a - b" into "a + -b"
        inner = re.sub(r"\s*-\s*", " + -", inner)
        base = index = None
        scale, disp = 1, 0
        if not inner:
            raise AssemblerError("empty memory operand", line_no, line)
        for part in (p.strip() for p in inner.split("+")):
            if not part:
                continue
            if "*" in part:
                rname, sc = (x.strip() for x in part.split("*", 1))
                if index is not None:
                    raise AssemblerError("two index registers", line_no, line)
                index = self.reg(rname, line_no, line)
                scale = self.parse_int(sc, line_no, line)
                if scale not in (1, 2, 4, 8):
                    raise AssemblerError("scale must be 1/2/4/8",
                                         line_no, line)
                continue
            ridx = self.try_reg(part)
            if ridx is not None:
                if base is None:
                    base = ridx
                elif index is None:
                    index = ridx
                else:
                    raise AssemblerError("three registers in operand",
                                         line_no, line)
                continue
            neg = part.startswith("-")
            body = part[1:] if neg else part
            if body.startswith("="):
                value = self.imm_or_symbol(body, line_no, line)
            elif body[:1].isdigit() or body[:1] == "'":
                value = self.parse_int(body, line_no, line)
            elif body in self.data_symbols:
                value = GLOBAL_BASE + self.data_symbols[body].offset
            else:
                raise AssemblerError("bad operand term %r" % part,
                                     line_no, line)
            disp += -value if neg else value
        return base, index, scale, disp

    # -- emit helpers ------------------------------------------------------

    def emit(self, instr: Instruction) -> None:
        self.instrs.append(instr)

    def branch(self, op: Op, label: str, line_no: int, line: str,
               rs: Optional[int] = None) -> None:
        instr = Instruction(op, rs=rs, label=label)
        self.fixups.append((instr, label, line_no, line))
        self.emit(instr)

    # -- directive handling ---------------------------------------------------

    def handle_data_directive(self, mnem: str, operands: List[str],
                              line_no: int, line: str) -> None:
        start = len(self.data)
        if mnem == ".word":
            for tok in operands:
                value = self.imm_or_symbol(tok, line_no, line) & 0xFFFFFFFF
                self.data += value.to_bytes(4, "little")
        elif mnem == ".byte":
            for tok in operands:
                value = self.parse_int(tok, line_no, line) & 0xFF
                self.data.append(value)
        elif mnem == ".asciiz":
            if len(operands) != 1 or not operands[0].startswith('"'):
                raise AssemblerError(".asciiz needs one string",
                                     line_no, line)
            text = _unescape(operands[0][1:-1])
            self.data += text.encode("latin-1") + b"\0"
        elif mnem == ".space":
            if len(operands) != 1:
                raise AssemblerError(".space needs a size", line_no, line)
            self.data += bytes(self.parse_int(operands[0], line_no, line))
        elif mnem == ".align":
            align = self.parse_int(operands[0], line_no, line) \
                if operands else WORD
            while len(self.data) % align:
                self.data.append(0)
            return  # alignment padding never consumes a pending label
        else:
            raise AssemblerError("unknown directive %r" % mnem,
                                 line_no, line)
        if self.pending_data_label is not None:
            item = self.data_symbols[self.pending_data_label]
            item.size = len(self.data) - item.offset
            item.initial = bytes(self.data[item.offset:])
            self.pending_data_label = None
        elif start != len(self.data):
            pass  # anonymous data is allowed

    # -- instruction handling ---------------------------------------------

    def handle_instruction(self, mnem: str, ops: List[str],
                           line_no: int, line: str) -> None:
        def need(n: int) -> None:
            if len(ops) != n:
                raise AssemblerError(
                    "%s expects %d operand(s), got %d" % (mnem, n, len(ops)),
                    line_no, line)

        if mnem in _ALU3:
            need(3)
            rd = self.reg(ops[0], line_no, line)
            rs = self.reg(ops[1], line_no, line)
            rt = self.try_reg(ops[2])
            if rt is not None:
                self.emit(Instruction(_ALU3[mnem], rd=rd, rs=rs, rt=rt))
            else:
                imm = self.imm_or_symbol(ops[2], line_no, line)
                self.emit(Instruction(_ALU3[mnem], rd=rd, rs=rs, imm=imm))
        elif mnem in _ALU2:
            need(2)
            rd = self.reg(ops[0], line_no, line)
            rs = self.reg(ops[1], line_no, line)
            self.emit(Instruction(_ALU2[mnem], rd=rd, rs=rs))
        elif mnem == "mov":
            need(2)
            rd = self.reg(ops[0], line_no, line)
            rs = self.try_reg(ops[1])
            if rs is not None:
                self.emit(Instruction(Op.MOV, rd=rd, rs=rs))
            else:
                imm = self.imm_or_symbol(ops[1], line_no, line)
                self.emit(Instruction(Op.MOV, rd=rd, imm=imm))
        elif mnem == "lea":
            need(2)
            rd = self.reg(ops[0], line_no, line)
            rs, rt, scale, disp = self.parse_mem(ops[1], line_no, line)
            self.emit(Instruction(Op.LEA, rd=rd, rs=rs, rt=rt,
                                  scale=scale, disp=disp))
        elif mnem in _LOADS:
            need(2)
            rd = self.reg(ops[0], line_no, line)
            rs, rt, scale, disp = self.parse_mem(ops[1], line_no, line)
            self.emit(Instruction(Op.LOAD, rd=rd, rs=rs, rt=rt, scale=scale,
                                  disp=disp, size=_LOADS[mnem]))
        elif mnem in _STORES:
            need(2)
            rs, rt, scale, disp = self.parse_mem(ops[0], line_no, line)
            rd = self.reg(ops[1], line_no, line)
            self.emit(Instruction(Op.STORE, rd=rd, rs=rs, rt=rt, scale=scale,
                                  disp=disp, size=_STORES[mnem]))
        elif mnem == "setbound":
            need(3)
            rd = self.reg(ops[0], line_no, line)
            rs = self.reg(ops[1], line_no, line)
            rt = self.try_reg(ops[2])
            if rt is not None:
                self.emit(Instruction(Op.SETBOUND, rd=rd, rs=rs, rt=rt))
            else:
                imm = self.imm_or_symbol(ops[2], line_no, line)
                self.emit(Instruction(Op.SETBOUND, rd=rd, rs=rs, imm=imm))
        elif mnem == "setcode":
            need(2)
            rd = self.reg(ops[0], line_no, line)
            rs = self.try_reg(ops[1])
            if rs is not None:
                self.emit(Instruction(Op.SETCODE, rd=rd, rs=rs))
            else:
                self.branch(Op.SETCODE, ops[1], line_no, line)
                self.instrs[-1].rd = rd
        elif mnem == "jmp":
            need(1)
            self.branch(Op.JMP, ops[0], line_no, line)
        elif mnem in ("beqz", "bnez"):
            need(2)
            rs = self.reg(ops[0], line_no, line)
            self.branch(Op.BEQZ if mnem == "beqz" else Op.BNEZ,
                        ops[1], line_no, line, rs=rs)
        elif mnem == "call":
            need(1)
            rs = self.try_reg(ops[0])
            if rs is not None:
                self.emit(Instruction(Op.CALLR, rs=rs))
            else:
                self.branch(Op.CALL, ops[0], line_no, line)
        elif mnem == "callr":
            need(1)
            self.emit(Instruction(Op.CALLR,
                                  rs=self.reg(ops[0], line_no, line)))
        elif mnem == "ret":
            need(0)
            self.emit(Instruction(Op.RET))
        elif mnem == "markfree":
            need(2)
            rs = self.reg(ops[0], line_no, line)
            rt = self.try_reg(ops[1])
            if rt is not None:
                self.emit(Instruction(Op.MARKFREE, rs=rs, rt=rt))
            else:
                imm = self.imm_or_symbol(ops[1], line_no, line)
                self.emit(Instruction(Op.MARKFREE, rs=rs, imm=imm))
        elif mnem in ("sbrk", "print", "printc", "prints"):
            need(1)
            op = {"sbrk": Op.SBRK, "print": Op.PRINT,
                  "printc": Op.PRINTC, "prints": Op.PRINTS}[mnem]
            rs = self.reg(ops[0], line_no, line)
            rd = rs if mnem == "sbrk" else None
            self.emit(Instruction(op, rd=rd, rs=rs))
        elif mnem in ("halt", "abort"):
            op = Op.HALT if mnem == "halt" else Op.ABORT
            if ops:
                rs = self.try_reg(ops[0])
                if rs is not None:
                    self.emit(Instruction(op, rs=rs))
                else:
                    imm = self.parse_int(ops[0], line_no, line)
                    self.emit(Instruction(op, imm=imm))
            else:
                self.emit(Instruction(op, imm=0))
        elif mnem == "push":
            need(1)
            rs = self.reg(ops[0], line_no, line)
            self.emit(Instruction(Op.SUB, rd=13, rs=13, imm=WORD))
            self.emit(Instruction(Op.STORE, rd=rs, rs=13, size=WORD))
        elif mnem == "pop":
            need(1)
            rd = self.reg(ops[0], line_no, line)
            self.emit(Instruction(Op.LOAD, rd=rd, rs=13, size=WORD))
            self.emit(Instruction(Op.ADD, rd=13, rs=13, imm=WORD))
        elif mnem == "nop":
            need(0)
            self.emit(Instruction(Op.MOV, rd=0, rs=0))
        else:
            raise AssemblerError("unknown mnemonic %r" % mnem,
                                 line_no, line)

    # -- driver ---------------------------------------------------------------

    def collect_data_symbols(self) -> None:
        """Pre-pass: lay out the data section so code can use ``=sym``."""
        section = "text"
        offset = 0
        pending: Optional[str] = None
        for raw in self.source.splitlines():
            line = raw.split(";")[0].split("#")[0].rstrip()
            stripped = line.strip()
            if not stripped:
                continue
            m = _LABEL_RE.match(stripped)
            if m:
                label = m.group(1)
                stripped = stripped[m.end():].strip()
                if section == "data":
                    pending = label
                    self.data_symbols[label] = DataItem(label, offset, 0)
                if not stripped:
                    continue
            if stripped.startswith(".text"):
                section = "text"
                continue
            if stripped.startswith(".data"):
                section = "data"
                continue
            if section != "data":
                continue
            parts = stripped.split(None, 1)
            mnem = parts[0]
            rest = parts[1] if len(parts) > 1 else ""
            operands = [m.group(1) for m in _TOKEN_RE.finditer(rest)]
            if mnem == ".align":
                align = int(operands[0], 0) if operands else WORD
                while offset % align:
                    offset += 1
                continue
            size = _directive_size(mnem, operands)
            if pending is not None:
                self.data_symbols[pending].offset = offset
                self.data_symbols[pending].size = size
                pending = None
            offset += size

    def run(self) -> Program:
        self.collect_data_symbols()
        for line_no, raw in enumerate(self.source.splitlines(), start=1):
            line = raw.split(";")[0].split("#")[0].rstrip()
            stripped = line.strip()
            if not stripped:
                continue
            m = _LABEL_RE.match(stripped)
            if m:
                label = m.group(1)
                if self.section == "text":
                    if label in self.labels:
                        raise AssemblerError("duplicate label %r" % label,
                                             line_no, line)
                    self.labels[label] = len(self.instrs)
                else:
                    self.pending_data_label = label
                stripped = stripped[m.end():].strip()
                if not stripped:
                    continue
            if stripped.startswith("."):
                parts = stripped.split(None, 1)
                mnem = parts[0]
                rest = parts[1] if len(parts) > 1 else ""
                operands = [mo.group(1) for mo in _TOKEN_RE.finditer(rest)]
                if mnem == ".text":
                    self.section = "text"
                elif mnem == ".data":
                    self.section = "data"
                else:
                    if self.section != "data":
                        raise AssemblerError(
                            "directive %s outside .data" % mnem,
                            line_no, line)
                    self.handle_data_directive(mnem, operands,
                                               line_no, line)
                continue
            if self.section != "text":
                raise AssemblerError("instruction in .data section",
                                     line_no, line)
            parts = stripped.split(None, 1)
            mnem = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            operands = [mo.group(1) for mo in _TOKEN_RE.finditer(rest)]
            self.handle_instruction(mnem, operands, line_no, line)
        # link
        for instr, label, line_no, line in self.fixups:
            if label not in self.labels:
                raise AssemblerError("undefined label %r" % label,
                                     line_no, line)
            instr.target = self.labels[label]
            if instr.op is Op.SETCODE:
                instr.imm = self.labels[label]
        return Program(self.instrs, self.labels, bytes(self.data),
                       self.data_symbols, source=self.source)


def _directive_size(mnem: str, operands: List[str]) -> int:
    """Size contribution of a data directive (pre-pass layout)."""
    if mnem == ".word":
        return 4 * len(operands)
    if mnem == ".byte":
        return len(operands)
    if mnem == ".asciiz":
        return len(_unescape(operands[0][1:-1])) + 1 if operands else 1
    if mnem == ".space":
        return int(operands[0], 0)
    if mnem == ".align":
        return 0  # approximated; the main pass emits real padding
    return 0


def assemble(source: str, name: str = "<asm>") -> Program:
    """Assemble ``source`` text into a linked :class:`Program`."""
    return _Assembler(source, name).run()
