"""Linked program image: instructions plus an initialized data segment."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction


class DataItem:
    """One named object in the data segment.

    ``offset`` is relative to the segment start; ``initial`` is the
    initial byte content (zero-filled space is represented by
    ``initial=b""`` and a nonzero ``size``).
    """

    __slots__ = ("name", "offset", "size", "initial")

    def __init__(self, name: str, offset: int, size: int,
                 initial: bytes = b""):
        self.name = name
        self.offset = offset
        self.size = size
        self.initial = initial

    def __repr__(self):
        return ("DataItem(name=%r, offset=%d, size=%d)"
                % (self.name, self.offset, self.size))


class Program:
    """A fully linked program: code, labels, data image and symbols.

    Produced by :func:`repro.isa.assembler.assemble`; consumed by
    :class:`repro.machine.cpu.CPU`, which copies ``data_image`` to
    ``GLOBAL_BASE`` and starts executing at ``entry``.
    """

    def __init__(self,
                 instrs: List[Instruction],
                 labels: Dict[str, int],
                 data_image: bytes = b"",
                 data_symbols: Optional[Dict[str, DataItem]] = None,
                 entry: Optional[int] = None,
                 source: str = ""):
        self.instrs = instrs
        self.labels = dict(labels)
        self.data_image = bytes(data_image)
        self.data_symbols = dict(data_symbols or {})
        if entry is None:
            entry = self.labels.get("main", 0)
        self.entry = entry
        self.source = source

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instrs)

    def label_at(self, pc: int) -> Optional[str]:
        """Return a label for instruction index ``pc`` if one exists."""
        for name, idx in self.labels.items():
            if idx == pc:
                return name
        return None

    def symbol_address(self, name: str, global_base: int) -> int:
        """Absolute address of data symbol ``name`` for a given layout."""
        return global_base + self.data_symbols[name].offset

    def listing(self) -> str:
        """Human-readable disassembly listing with labels."""
        from repro.isa.disasm import disassemble
        by_pc: Dict[int, List[str]] = {}
        for name, idx in self.labels.items():
            by_pc.setdefault(idx, []).append(name)
        lines = []
        for pc, instr in enumerate(self.instrs):
            for name in sorted(by_pc.get(pc, ())):
                lines.append("%s:" % name)
            lines.append("    %4d: %s" % (pc, disassemble(instr)))
        return "\n".join(lines)

    def stats(self) -> Tuple[int, int]:
        """Return ``(code_length, data_length)``."""
        return len(self.instrs), len(self.data_image)
