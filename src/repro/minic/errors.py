"""Compiler diagnostics."""

from __future__ import annotations

from typing import Optional


class MiniCError(Exception):
    """Base class for all MiniC compilation errors."""

    def __init__(self, message: str, line: Optional[int] = None):
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


class LexError(MiniCError):
    """Tokenizer failure."""


class ParseError(MiniCError):
    """Grammar failure."""


class TypeError_(MiniCError):
    """Semantic analysis failure (named to avoid shadowing builtins)."""
