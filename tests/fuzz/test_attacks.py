"""Attack corpus: every family detected (or documented as missed)."""

import pytest

from repro.fuzz.attacks import (
    FAMILIES,
    generate_attack,
    generate_attacks,
    run_attack,
)
from repro.fuzz.rng import FUZZ_SEED_ENV
from repro.harness.violations import DETECTED_TRAPS
from repro.machine.errors import (
    BoundsError,
    DoubleFreeError,
    UseAfterFreeError,
)


def test_deterministic(monkeypatch):
    monkeypatch.delenv(FUZZ_SEED_ENV, raising=False)
    a = generate_attack(7)
    b = generate_attack(7)
    assert (a.name, a.attack_source, a.benign_source) == \
        (b.name, b.attack_source, b.benign_source)


def test_family_draw_covers_all_families():
    families = {generate_attack(seed).family for seed in range(40)}
    assert families == set(FAMILIES)


def test_detected_traps_cover_temporal():
    assert UseAfterFreeError in DETECTED_TRAPS
    assert DoubleFreeError in DETECTED_TRAPS
    assert BoundsError in DETECTED_TRAPS


@pytest.mark.parametrize("family", FAMILIES)
def test_family_verdicts(family):
    """Three seeds per family: attacks trap with the expected class,
    benign twins run clean, the realloc shape is the documented
    miss."""
    for case in generate_attacks(3, start_seed=50, family=family):
        verdict, trap, detail = run_attack(case)
        if case.must_trap:
            assert verdict == "detected", \
                (case.name, verdict, trap, detail)
        else:
            assert verdict == "known_miss", \
                (case.name, verdict, trap, detail)


def test_uaf_probe_avoids_freelist_word():
    """free() keeps user word 0 live as its free-list link, so the
    UAF probe must target index >= 1 to hit poisoned memory."""
    for seed in range(20):
        case = generate_attack(seed, family="uaf")
        assert "p[0]" not in case.attack_source.split("free(")[1]


def test_stale_realloc_documents_the_gap():
    case = generate_attack(3, family="stale_realloc")
    assert not case.must_trap
    assert case.temporal
    # the attack really is temporal: stale pointer, recycled chunk
    assert "free((void*)p)" in case.attack_source
    assert "malloc" in case.attack_source.split("free(")[1]


def test_spatial_families_need_no_stdlib():
    for family in ("sub_object", "intra_alloc"):
        case = generate_attack(11, family=family)
        assert not case.temporal
        assert "vmalloc" in case.attack_source
