"""FastMemorySystem must be counter-identical to MemorySystem.

Random access streams (including tiny caches that force constant
aliasing and eviction, spanning accesses, and the hot-probe entry
points) are replayed against both models and every statistic is
compared — across an associativity/size sweep, since the fast
model's generated probes unroll their way scans for ``assoc <= 4``
and take a distinct bounded-scan path above that.  Whole-workload
equivalence is covered by the engine differential suite.
"""

import random

import pytest

from repro.caches.fast import FastMemorySystem
from repro.caches.hierarchy import CacheParams, MemorySystem
from repro.layout import TAG1_BASE, shadow_base_addr

KINDS = ("data", "shadow", "tag", "soft")


def sweep_params(assoc, sets):
    """A legal geometry with every structure at the given shape."""
    return CacheParams(
        l1_size=32 * assoc * sets, l1_assoc=assoc,
        l2_size=32 * assoc * sets * 8, l2_assoc=assoc,
        tag_cache_size=32 * assoc * sets, tag_cache_assoc=assoc,
        tlb_entries=4 * assoc, tlb_assoc=assoc)


def assert_same_stats(classic, fast):
    assert fast.stats.as_dict() == classic.stats.as_dict()
    assert fast.stats.total_stall_cycles() == \
        classic.stats.total_stall_cycles()


def replay(params, stream):
    classic = MemorySystem(params)
    fast = FastMemorySystem(params)
    for addr, size, write, kind in stream:
        assert fast.access(addr, size, write, kind) == \
            classic.access(addr, size, write, kind), (addr, size, kind)
    assert_same_stats(classic, fast)
    return classic, fast


def random_stream(rng, n, addr_space, kinds=KINDS):
    stream = []
    for _ in range(n):
        kind = rng.choice(kinds)
        addr = rng.randrange(addr_space)
        size = rng.choice((1, 2, 4, 8))
        stream.append((addr, size, rng.random() < 0.5, kind))
    return stream


class TestGenericAccessEquivalence:
    def test_random_stream_default_params(self):
        rng = random.Random(1)
        replay(CacheParams(), random_stream(rng, 4000, 1 << 20))

    def test_tiny_caches_force_evictions(self):
        rng = random.Random(2)
        params = CacheParams(l1_size=256, l1_assoc=2, l2_size=1024,
                             l2_assoc=2, tag_cache_size=128,
                             tag_cache_assoc=2, tlb_entries=4,
                             tlb_assoc=2)
        replay(params, random_stream(rng, 6000, 1 << 16))

    def test_hot_loop_with_aliasing(self):
        """Repeated small working set: exercises every MRU shortcut."""
        rng = random.Random(3)
        hot = [rng.randrange(1 << 14) for _ in range(16)]
        stream = []
        for _ in range(5000):
            if rng.random() < 0.8:
                addr = rng.choice(hot)
            else:
                addr = rng.randrange(1 << 16)
            stream.append((addr, 4, False, rng.choice(KINDS)))
        replay(CacheParams(l1_size=512, l1_assoc=2, tlb_entries=4,
                           tlb_assoc=2, tag_cache_size=128,
                           tag_cache_assoc=2), stream)

    def test_spanning_accesses_charge_two_blocks(self):
        params = CacheParams()
        classic, fast = replay(params, [(30, 4, False, "data"),
                                        (30, 4, False, "data"),
                                        (62, 8, True, "shadow")])
        assert fast.stats["data"].l1_misses == 2


class TestProbeEquivalence:
    def test_word_probe_matches_access_pair(self):
        rng = random.Random(4)
        params = CacheParams(l1_size=512, l1_assoc=2, tlb_entries=4,
                             tlb_assoc=2, tag_cache_size=128,
                             tag_cache_assoc=2)
        classic = MemorySystem(params)
        fast = FastMemorySystem(params)
        probe = fast.make_word_probe(TAG1_BASE, 5)
        hot = [rng.randrange(1 << 14) & ~3 for _ in range(8)]
        for _ in range(5000):
            addr = (rng.choice(hot) if rng.random() < 0.7
                    else rng.randrange(1 << 16))
            classic.access(addr, 4, False, "data")
            classic.access(TAG1_BASE + (addr >> 5), 1, False, "tag")
            probe(addr)
        assert_same_stats(classic, fast)

    def test_mixed_probes_and_generic_accesses(self):
        """Interleaving must not confuse the composite shortcuts."""
        rng = random.Random(5)
        params = CacheParams(l1_size=512, l1_assoc=2, tlb_entries=4,
                             tlb_assoc=2, tag_cache_size=128,
                             tag_cache_assoc=2)
        classic = MemorySystem(params)
        fast = FastMemorySystem(params)
        wprobe = fast.make_word_probe(TAG1_BASE, 5)
        dprobe = fast.make_data_probe()
        sprobe = fast.make_shadow_probe()
        hot = [rng.randrange(1 << 13) & ~3 for _ in range(6)]
        for _ in range(8000):
            addr = (rng.choice(hot) if rng.random() < 0.7
                    else rng.randrange(1 << 15) & ~3)
            op = rng.randrange(4)
            if op == 0:
                classic.access(addr, 4, False, "data")
                classic.access(TAG1_BASE + (addr >> 5), 1, False,
                               "tag")
                wprobe(addr)
            elif op == 1:
                classic.access(addr, 4, True, "data")
                dprobe(addr)
            elif op == 2:
                classic.access(shadow_base_addr(addr), 8, False,
                               "shadow")
                sprobe(addr & ~3)
            else:
                size = rng.choice((1, 2, 4))
                classic.access(addr, size, False, "data")
                fast.access(addr, size, False, "data")
        assert_same_stats(classic, fast)

    def test_misaligned_word_after_same_block_hit(self):
        """A spanning word repeating the MRU key must not be skipped.

        Regression: the composite shortcut's key granule pins only
        the access's *first* block, so a misaligned word at the tail
        of the same block still has to charge the second block.
        """
        params = CacheParams()
        classic = MemorySystem(params)
        fast = FastMemorySystem(params)
        probe = fast.make_word_probe(TAG1_BASE, 5)
        for addr in (0x07FFFFC0, 0x07FFFFDE, 0x07FFFFDE):
            classic.access(addr, 4, False, "data")
            classic.access(TAG1_BASE + (addr >> 5), 1, False, "tag")
            probe(addr)
        assert_same_stats(classic, fast)
        assert fast.stats["data"].l1_misses == 2

    def test_probe_parts_inline_fast_path(self):
        """The exported composite cells mirror the probe's skips."""
        params = CacheParams()
        classic = MemorySystem(params)
        fast = FastMemorySystem(params)
        (wprobe, wp_mru, wp_dctr, wp_tctr,
         wp_shift) = fast.word_probe_parts(TAG1_BASE, 5)
        addrs = [4096, 4100, 4104, 8192, 4096, 4096]
        for addr in addrs:
            classic.access(addr, 4, False, "data")
            classic.access(TAG1_BASE + (addr >> 5), 1, False, "tag")
            if addr >> wp_shift == wp_mru[0]:
                wp_dctr[0] += 1
                wp_tctr[0] += 1
            else:
                wprobe(addr)
        assert_same_stats(classic, fast)


class TestAssociativitySweep:
    """Counter-identity across assoc ∈ {1, 2, 4, 8} × size.

    ``assoc <= 4`` runs the unrolled way scans of the generated
    probes; ``assoc == 8`` runs the non-unrolled bounded-``for``
    scan, so both generated shapes are exercised against the classic
    model.
    """

    @pytest.mark.parametrize("assoc", [1, 2, 4, 8])
    @pytest.mark.parametrize("sets", [4, 16])
    def test_generic_stream_identity(self, assoc, sets):
        rng = random.Random(100 * assoc + sets)
        replay(sweep_params(assoc, sets),
               random_stream(rng, 4000, 1 << 16))

    @pytest.mark.parametrize("assoc", [1, 2, 4, 8])
    def test_probe_identity(self, assoc):
        """Word/data/shadow probes and generic accesses interleaved,
        per associativity (tiny sets force eviction traffic)."""
        rng = random.Random(7 + assoc)
        params = sweep_params(assoc, 4)
        classic = MemorySystem(params)
        fast = FastMemorySystem(params)
        wprobe = fast.make_word_probe(TAG1_BASE, 5)
        dprobe = fast.make_data_probe()
        sprobe = fast.make_shadow_probe()
        hot = [rng.randrange(1 << 13) & ~3 for _ in range(6)]
        for _ in range(6000):
            addr = (rng.choice(hot) if rng.random() < 0.6
                    else rng.randrange(1 << 15) & ~3)
            op = rng.randrange(4)
            if op == 0:
                classic.access(addr, 4, False, "data")
                classic.access(TAG1_BASE + (addr >> 5), 1, False,
                               "tag")
                wprobe(addr)
            elif op == 1:
                classic.access(addr, 4, True, "data")
                dprobe(addr)
            elif op == 2:
                classic.access(shadow_base_addr(addr), 8, False,
                               "shadow")
                sprobe(addr & ~3)
            else:
                size = rng.choice((1, 2, 4))
                classic.access(addr, size, False, "data")
                fast.access(addr, size, False, "data")
        assert_same_stats(classic, fast)


class TestEvictionOrder:
    """The flat way tables must evict exactly the classic LRU victim.

    Recency is encoded positionally (most recent at way 0, evict the
    last way) — the ``OrderedDict`` order of the classic model in
    array clothes.  These tests force conflict sets where the victim
    choice is observable through the miss counters.
    """

    def conflicting(self, params, n):
        """Addresses that all map to L1 set 0."""
        num_sets = params.l1_size // (params.l1_assoc * params.block)
        return [params.block * num_sets * k for k in range(n)]

    def test_lru_victim_after_reordering_hits(self):
        params = sweep_params(4, 4)
        classic = MemorySystem(params)
        fast = FastMemorySystem(params)
        a = self.conflicting(params, 6)
        # fill the set, promote a0 back to the front, then overflow:
        # the victim must be a1 (now the least recent), not a0
        pattern = [a[0], a[1], a[2], a[3], a[0], a[4]]
        # a0 must still hit; a1 must have been evicted
        pattern += [a[0], a[1]]
        for addr in pattern:
            assert (fast.access(addr, 4, False, "data")
                    == classic.access(addr, 4, False, "data")), addr
        assert_same_stats(classic, fast)
        # fill(4 misses) + promote(hit) + overflow(miss)
        # + a0 hit + evicted-a1 miss
        assert fast.stats["data"].l1_misses == 6

    def test_eviction_order_survives_reset_stats(self):
        """reset_stats clears counters but keeps warm contents AND
        their recency order, like the classic model."""
        params = sweep_params(2, 4)
        classic = MemorySystem(params)
        fast = FastMemorySystem(params)
        a = self.conflicting(params, 3)
        for addr in (a[0], a[1], a[0]):  # a1 is now the LRU way
            classic.access(addr, 4, False, "data")
            fast.access(addr, 4, False, "data")
        classic.reset_stats()
        fast.reset_stats()
        # overflow: the pre-reset order must pick a1 as the victim
        for addr in (a[2], a[0], a[1]):
            assert (fast.access(addr, 4, False, "data")
                    == classic.access(addr, 4, False, "data")), addr
        assert_same_stats(classic, fast)
        # a2 misses (evicts a1), a0 still hits, a1 misses again
        assert fast.stats["data"].l1_misses == 2

    def test_long_stream_has_no_recency_overflow(self):
        """Positional recency cannot wrap or overflow.

        The recency-stamp design this layout replaced drew stamps
        from a monotone counter; way order has no counter at all, so
        eviction order stays exact over arbitrarily long streams.
        A long conflict-heavy stream (far more touches than any
        fixed-width stamp would hold at these set counts) must stay
        counter-identical, including across a mid-stream stats
        reset."""
        params = sweep_params(2, 4)
        classic = MemorySystem(params)
        fast = FastMemorySystem(params)
        a = self.conflicting(params, 5)
        rng = random.Random(11)
        for i in range(100_000):
            addr = rng.choice(a)
            assert (fast.access(addr, 4, False, "data")
                    == classic.access(addr, 4, False, "data")), (i, addr)
            if i == 50_000:
                classic.reset_stats()
                fast.reset_stats()
        assert_same_stats(classic, fast)
        assert fast.stats["data"].l1_misses > 0


class TestInterface:
    def test_reset_stats_keeps_contents(self):
        fast = FastMemorySystem(CacheParams())
        fast.access(4096, 4, False, "data")
        fast.access(4096, 4, False, "data")
        fast.reset_stats()
        assert fast.stats["data"].accesses == 0
        # the block is still cached: the next access hits
        stall = fast.access(4096, 4, False, "data")
        assert stall == 0
        assert fast.stats["data"].l1_misses == 0

    def test_reset_stats_repopulates_page_sets_through_probes(self):
        """Regression: the fig-page/composite shortcuts must not
        survive a stats reset, or cleared page sets stay empty."""
        classic = MemorySystem(CacheParams())
        fast = FastMemorySystem(CacheParams())
        dprobe = fast.make_data_probe()
        wprobe = fast.make_word_probe(TAG1_BASE, 5)
        classic.access(4096, 4, False, "data")
        dprobe(4096)
        classic.access(8192, 4, False, "data")
        classic.access(TAG1_BASE + (8192 >> 5), 1, False, "tag")
        wprobe(8192)
        classic.reset_stats()
        fast.reset_stats()
        classic.access(4096, 4, False, "data")
        dprobe(4096)
        classic.access(8192, 4, False, "data")
        classic.access(TAG1_BASE + (8192 >> 5), 1, False, "tag")
        wprobe(8192)
        assert_same_stats(classic, fast)
        assert fast.stats["data"].as_dict()["distinct_pages"] == 2
        assert fast.stats["tag"].as_dict()["distinct_pages"] == 1

    def test_cache_views_report_miss_rates(self):
        classic = MemorySystem(CacheParams())
        fast = FastMemorySystem(CacheParams())
        stream = [(4096 + 32 * i, 4, False, "data") for i in range(64)]
        stream += [(TAG1_BASE + i, 1, False, "tag") for i in range(64)]
        for addr, size, write, kind in stream:
            classic.access(addr, size, write, kind)
            fast.access(addr, size, write, kind)
        assert fast.l1.accesses == classic.l1.accesses
        assert fast.l1.misses == classic.l1.misses
        assert fast.l1.miss_rate() == classic.l1.miss_rate()
        assert fast.tag_cache.miss_rate() == \
            classic.tag_cache.miss_rate()
        assert fast.l2.accesses == classic.l2.accesses
        assert fast.dtlb.misses == classic.dtlb.misses
        assert fast.tag_tlb.accesses == classic.tag_tlb.accesses
        assert fast.l1.hits == classic.l1.hits

    def test_stats_snapshot_is_independent(self):
        fast = FastMemorySystem(CacheParams())
        fast.access(4096, 4, False, "data")
        snap = fast.stats
        fast.access(1 << 20, 4, False, "data")
        assert snap["data"].accesses == 1
        assert fast.stats["data"].accesses == 2

    def test_rejects_bad_geometry(self):
        import pytest
        with pytest.raises(ValueError):
            FastMemorySystem(CacheParams(l1_size=1000))
