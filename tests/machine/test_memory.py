"""Flat-bytearray memory: mapping discipline, raw access, segments.

The mapping-discipline and raw-access semantics are those of the
original sparse paged store; the flat-heap cases at the bottom pin
the arena mechanics (doubling growth, cell stability, old-page-
boundary spans, guard-region traps) to the same observable
behaviour.
"""

import pytest
from hypothesis import given, strategies as st

from repro.layout import (
    GLOBAL_BASE,
    HEAP_BASE,
    PAGE_SIZE,
    STACK_TOP,
)
from repro.machine import Memory, MemoryFault

STACK_SIZE = 0x10000


def make(image=b""):
    mem = Memory(STACK_SIZE)
    mem.load_image(image)
    return mem


class TestMappingDiscipline:
    def test_null_guard(self):
        mem = make()
        with pytest.raises(MemoryFault):
            mem.read(0, 4)
        with pytest.raises(MemoryFault):
            mem.write(0xFFF, 1, 7)

    def test_globals_extent(self):
        mem = make(b"\x01\x02\x03\x04")
        assert mem.read(GLOBAL_BASE, 4) == 0x04030201
        with pytest.raises(MemoryFault):
            mem.read(GLOBAL_BASE + 4, 1)

    def test_heap_grows_with_sbrk(self):
        mem = make()
        with pytest.raises(MemoryFault):
            mem.write(HEAP_BASE, 4, 1)
        old = mem.sbrk(64)
        assert old == HEAP_BASE
        mem.write(HEAP_BASE, 4, 1)
        mem.write(HEAP_BASE + 60, 4, 2)
        with pytest.raises(MemoryFault):
            mem.write(HEAP_BASE + 64, 4, 3)

    def test_stack_reservation(self):
        mem = make()
        mem.write(STACK_TOP - 4, 4, 1)
        mem.write(STACK_TOP - STACK_SIZE, 4, 2)
        with pytest.raises(MemoryFault):
            mem.write(STACK_TOP - STACK_SIZE - 4, 4, 3)

    def test_access_straddling_segment_end_faults(self):
        mem = make(b"\x00" * 6)
        with pytest.raises(MemoryFault):
            mem.read(GLOBAL_BASE + 4, 4)   # last 2 bytes unmapped

    def test_segments_reporting(self):
        mem = make(b"xy")
        segs = mem.segments()
        assert segs[0] == (GLOBAL_BASE, GLOBAL_BASE + 2)
        assert segs[1] == (HEAP_BASE, HEAP_BASE)
        assert segs[2] == (STACK_TOP - STACK_SIZE, STACK_TOP)


class TestRawAccess:
    def test_little_endian(self):
        mem = make()
        mem.raw_write(0x5000, 4, 0x11223344)
        assert mem.raw_read(0x5000, 1) == 0x44
        assert mem.raw_read(0x5001, 1) == 0x33
        assert mem.raw_read(0x5002, 2) == 0x1122

    def test_cross_page_access(self):
        mem = make()
        addr = 0x6000 - 2   # straddles a page boundary
        mem.raw_write(addr, 4, 0xAABBCCDD)
        assert mem.raw_read(addr, 4) == 0xAABBCCDD

    def test_unmapped_reads_zero(self):
        mem = make()
        assert mem.raw_read(0x123456, 4) == 0

    def test_bulk_bytes(self):
        mem = make()
        blob = bytes(range(200))
        mem.raw_write_bytes(0x7F00, blob)   # crosses a page
        assert mem.raw_read_bytes(0x7F00, 200) == blob

    def test_write_masks_to_size(self):
        mem = make()
        mem.raw_write(0x5000, 1, 0x1FF)
        assert mem.raw_read(0x5000, 1) == 0xFF
        assert mem.raw_read(0x5001, 1) == 0

    def test_read_cstring(self):
        mem = make()
        mem.raw_write_bytes(0x5000, b"hello\0world")
        assert mem.read_cstring(0x5000) == "hello"


@given(addr=st.integers(0x5000, 0x9000),
       size=st.sampled_from([1, 2, 4]),
       value=st.integers(0, 0xFFFFFFFF))
def test_raw_roundtrip(addr, size, value):
    mem = make()
    mem.raw_write(addr, size, value)
    assert mem.raw_read(addr, size) == value & ((1 << (8 * size)) - 1)


@given(writes=st.lists(
    st.tuples(st.integers(0, PAGE_SIZE * 3 - 1), st.integers(0, 255)),
    max_size=100))
def test_byte_writes_match_dict_model(writes):
    mem = make()
    model = {}
    base = 0x8000
    for offset, value in writes:
        mem.raw_write(base + offset, 1, value)
        model[offset] = value
    for offset, value in model.items():
        assert mem.raw_read(base + offset, 1) == value


class TestFlatHeap:
    """Flat-arena edge cases: the behaviours the paged store gave for
    free and the flat store must preserve."""

    def test_bulk_bytes_span_old_page_boundaries(self):
        """raw_*_bytes across 4KB boundaries inside each arena."""
        mem = make(b"\x00" * (PAGE_SIZE * 2))
        blob = bytes((7 * i) & 0xFF for i in range(PAGE_SIZE + 64))
        # globals arena, straddling the first page boundary
        mem.raw_write_bytes(GLOBAL_BASE + PAGE_SIZE - 32, blob)
        assert mem.raw_read_bytes(GLOBAL_BASE + PAGE_SIZE - 32,
                                  len(blob)) == blob
        # heap arena
        mem.sbrk(PAGE_SIZE * 3)
        mem.raw_write_bytes(HEAP_BASE + PAGE_SIZE - 100, blob)
        assert mem.raw_read_bytes(HEAP_BASE + PAGE_SIZE - 100,
                                  len(blob)) == blob
        # stack arena
        stack_addr = STACK_TOP - STACK_SIZE + PAGE_SIZE - 8
        mem.raw_write_bytes(stack_addr, blob)
        assert mem.raw_read_bytes(stack_addr, len(blob)) == blob

    def test_bulk_bytes_span_arena_and_fallback(self):
        """A range crossing from the null-guard gap into globals."""
        blob = bytes(range(200))
        mem = make(b"\x00" * 256)
        mem.raw_write_bytes(GLOBAL_BASE - 100, blob)
        assert mem.raw_read_bytes(GLOBAL_BASE - 100, len(blob)) == blob

    def test_raw_read_spanning_segment_boundaries(self):
        """A raw word straddling two arenas is assembled from both,
        even when alignment padding (or an overshooting doubling)
        leaves spare capacity past the reserved range."""
        mem = make()
        # fill the globals arena right up to its reserved range so
        # its capacity reaches the heap boundary
        mem.raw_write_bytes(HEAP_BASE - 1, b"\x00")
        mem.raw_write(HEAP_BASE, 1, 0xAB)
        assert mem.raw_read(HEAP_BASE - 2, 4) == 0xAB0000
        # capacity never claims the next segment's address space
        assert len(mem.globals_cell[0]) <= \
            ((HEAP_BASE - GLOBAL_BASE + 7) & ~7)
        # same at the top of the stack (fallback pages above it)
        mem.raw_write(STACK_TOP, 1, 0xCD)
        assert mem.raw_read(STACK_TOP - 2, 4) == 0xCD0000

    def test_unaligned_stack_base_snapshot(self):
        """A page straddling the fallback/stack boundary (non-page-
        aligned stack_size) is assembled from both stores."""
        mem = Memory(0x10001)
        sb = mem.stack_base
        assert sb % PAGE_SIZE != 0
        mem.raw_write(sb, 1, 0x11)          # stack arena byte
        mem.raw_write(sb - 1, 1, 0x22)      # fallback byte, same page
        page = mem.nonzero_pages()[sb >> 12]
        assert page[sb % PAGE_SIZE] == 0x11
        assert page[(sb - 1) % PAGE_SIZE] == 0x22

    def test_sbrk_growth_across_a_doubling(self):
        mem = make()
        initial_cap = len(mem.heap_cell[0])
        mem.sbrk(64)
        mem.write(HEAP_BASE, 4, 0xDEADBEEF)
        mem.write(HEAP_BASE + 60, 4, 0x12345678)
        # force at least one capacity doubling
        increment = initial_cap * 2
        old = mem.sbrk(increment)
        assert old == HEAP_BASE + 64
        assert len(mem.heap_cell[0]) >= 64 + increment
        # old contents survive the buffer swap...
        assert mem.read(HEAP_BASE, 4) == 0xDEADBEEF
        assert mem.read(HEAP_BASE + 60, 4) == 0x12345678
        # ...new space reads zero and is writable to the new break
        top = HEAP_BASE + 64 + increment - 4
        assert mem.read(top, 4) == 0
        mem.write(top, 4, 0xCAFEF00D)
        assert mem.read(top, 4) == 0xCAFEF00D
        with pytest.raises(MemoryFault):
            mem.read(top + 4, 4)

    def test_heap_cell_stable_across_growth(self):
        """Engines bind the cell once; growth must not orphan it."""
        mem = make()
        cell = mem.heap_cell
        mem.sbrk(32)
        mem.write(HEAP_BASE, 4, 41)
        mem.sbrk(len(mem.heap_cell[0]) * 4)      # forces a doubling
        assert mem.heap_cell is cell
        if cell[1] is not None:
            assert cell[1][0] == 41              # word view re-cast
        mem.write(HEAP_BASE, 4, 42)
        assert int.from_bytes(cell[0][0:4], "little") == 42

    def test_sbrk_into_stack_reservation_traps(self):
        """Split arenas cannot alias heap and stack storage the way
        the unified page store did, so crossing stack_base traps
        instead of silently overlapping; the break is unchanged."""
        mem = make()
        with pytest.raises(MemoryFault) as exc:
            mem.sbrk(STACK_TOP - STACK_SIZE - HEAP_BASE + 4)
        assert exc.value.access == "sbrk"
        assert mem.brk == HEAP_BASE
        assert mem.sbrk(64) == HEAP_BASE     # normal growth unaffected

    def test_sbrk_shrink_keeps_bytes(self):
        """Like persistent pages: shrink + regrow re-exposes data."""
        mem = make()
        mem.sbrk(64)
        mem.write(HEAP_BASE + 32, 4, 99)
        mem.sbrk(-64)
        with pytest.raises(MemoryFault):
            mem.read(HEAP_BASE + 32, 4)
        mem.sbrk(64)
        assert mem.read(HEAP_BASE + 32, 4) == 99

    @pytest.mark.parametrize("addr,access", [
        (0x0, "read"),                           # null guard
        (0xFFC, "write"),                        # null guard, last word
        (HEAP_BASE - 4, "read"),                 # globals/heap gap
        (HEAP_BASE, "write"),                    # heap before any sbrk
        (STACK_TOP - STACK_SIZE - 4, "write"),   # below the stack
        (STACK_TOP, "read"),                     # above the stack
    ])
    def test_guard_region_traps_match_paged_model(self, addr, access):
        """Same trap type, message, addr and access as the old store."""
        mem = make(b"\x00" * 8)
        with pytest.raises(MemoryFault) as exc:
            if access == "read":
                mem.read(addr, 4)
            else:
                mem.write(addr, 4, 1)
        assert exc.value.addr == addr
        assert exc.value.access == access
        assert str(exc.value) == (
            "memory fault: %s of unmapped 0x%08x" % (access, addr))

    def test_unaligned_word_in_each_segment(self):
        """Unaligned checked words spill to raw_* and round-trip."""
        mem = make(b"\x00" * 64)
        mem.sbrk(64)
        for base in (GLOBAL_BASE, HEAP_BASE, STACK_TOP - 64):
            for off in (1, 2, 3):
                mem.write(base + off, 4, 0xA1B2C3D4 + off)
                assert mem.read(base + off, 4) == 0xA1B2C3D4 + off

    def test_nonzero_pages_snapshot(self):
        mem = make(b"\x01\x00\x02")
        mem.sbrk(16)
        mem.write(HEAP_BASE + 8, 4, 5)
        mem.raw_write(0x5000, 1, 9)              # fallback page
        pages = mem.nonzero_pages()
        assert pages[GLOBAL_BASE >> 12][0] == 1
        assert pages[HEAP_BASE >> 12][8] == 5
        assert pages[0x5][0] == 9
        for page in pages.values():
            assert len(page) == PAGE_SIZE
