"""CCured-style software fat pointers as a cost-profile engine.

CCured (Section 2.3) enforces the same per-pointer bounds HardBound
does, but in software: every SEQ-pointer dereference executes explicit
compare-and-branch instructions, and every pointer that crosses memory
drags its base/bound words along with ordinary loads and stores.
Rather than re-implementing fat-pointer code generation, we run the
*same instrumented binary* on a core whose metadata engine charges the
software costs (the functional semantics are identical — both schemes
track exactly the per-pointer bounds):

* every bounds check costs :data:`CHECK_UOPS` explicit µops (two
  compares and a branch, CCured's ``CHECK_SEQ``);
* every pointer load/store moves two extra metadata words through the
  regular cache hierarchy (SoftBound-style disjoint table at
  ``SOFT_SHADOW_BASE``, which keeps struct layout intact — the paper
  notes CCured's own inline layout is strictly less compatible);
* every ``setbound`` costs :data:`SETBOUND_EXTRA_UOPS` extra µops to
  materialize the metadata in software registers;
* there is no tag space and no hardware compression — pointer-ness is
  static type information in CCured.

This reproduces Figure 7's "CCured simulator µops / runtime" columns:
a large instruction overhead that an in-order core cannot hide.
"""

from __future__ import annotations

from repro.hardbound.engine import HardBoundEngine
from repro.layout import WORD
from repro.machine.config import MachineConfig, SafetyMode
from repro.metadata.encodings import Encoding

#: explicit compare/compare/branch per checked SEQ dereference
CHECK_UOPS = 3
#: null test per SAFE dereference (CCured checks SAFE pointers for
#: null; the compiler folds some of these, hence a single µop)
NULL_CHECK_UOPS = 1
#: extra µops (and words moved) per fat-pointer load or store
META_WORDS = 2
#: software cost of creating bounds metadata
SETBOUND_EXTRA_UOPS = 1
#: CCured's whole-program type inference proves most pointers SAFE
#: (no arithmetic, no casts): they carry no fat metadata and need only
#: the null test above.  SEQ pointers pay the full software cost.  We
#: model the inference with a deterministic fraction of dynamic
#: pointer events treated as SAFE.
SAFE_FRACTION = 0.6


class SoftBoundEngine(HardBoundEngine):
    """Charges software-checking costs instead of hardware ones."""

    def __init__(self, encoding: Encoding, memsys=None,
                 check_uop: bool = False,
                 check_access_extent: bool = False,
                 safe_fraction: float = SAFE_FRACTION):
        # encodings are meaningless in software: nothing compresses
        super().__init__(encoding, memsys, check_uop=False,
                         check_access_extent=check_access_extent)
        self.safe_fraction = safe_fraction
        self._check_accum = 0.0
        self._meta_accum = 0.0

    def _is_seq(self, accum_name: str) -> bool:
        """Deterministic SAFE/SEQ classification at the given rate."""
        accum = getattr(self, accum_name) + self.safe_fraction
        if accum >= 1.0:
            setattr(self, accum_name, accum - 1.0)
            return False
        setattr(self, accum_name, accum)
        return True

    # -- checking: explicit instructions for SEQ pointers ---------------------

    def check(self, value, base, bound, ea, size, access, full_mode):
        extra = super().check(value, base, bound, ea, size, access,
                              full_mode)
        if base or bound:
            cost = CHECK_UOPS if self._is_seq("_check_accum") \
                else NULL_CHECK_UOPS
            self.stats.check_uops += cost
            extra += cost
        return extra

    # -- metadata traffic: ordinary loads/stores, no tags ----------------------

    def _soft_table_access(self, addr: int, write: bool) -> None:
        """Fat-pointer metadata traffic.

        CCured's metadata is *inline* with the pointer (the two extra
        words of the fat pointer live adjacent in the same object), so
        the extra words usually share the pointer's cache line; we
        model them as an adjacent double-word access rather than a
        far-away table probe.
        """
        if self.memsys is not None:
            self.memsys.access(addr + WORD, 2 * WORD, write, "soft")

    def load_word_meta(self, addr, value):
        meta = self.meta.lookup(addr)
        if meta is None:
            return 0, 0
        self.stats.pointer_loads += 1
        if self._is_seq("_meta_accum"):
            self.stats.meta_uops += META_WORDS
            self._soft_table_access(addr, write=False)
        return meta

    def load_sub_meta(self, addr):
        return None  # no tag space to probe

    def store_word_meta(self, addr, value, base, bound):
        if base == 0 and bound == 0:
            self.meta.clear(addr)
            return
        self.meta.set_pointer(addr, base, bound)
        self.stats.pointer_stores += 1
        if self._is_seq("_meta_accum"):
            self.stats.meta_uops += META_WORDS
            self._soft_table_access(addr, write=True)

    def store_sub_meta(self, addr):
        self.meta.clear(addr)


def ccured_sim_config(timing: bool = True) -> MachineConfig:
    """Machine configuration for the CCured-simulation baseline.

    Runs the HardBound-instrumented binary with the software cost
    engine.  ``setbound`` µop surcharges are added post-run by the
    harness (SETBOUND_EXTRA_UOPS per executed setbound).
    """
    return MachineConfig(
        mode=SafetyMode.FULL,
        encoding="uncompressed",
        timing=timing,
        engine_factory=SoftBoundEngine,
    )
