"""Client-side API of the simulation service.

:class:`Client` presents one submission surface —
``submit``/``submit_many``/``map``/``status``/``drain`` — over either
backend:

* **local** (``Client(service=Service(...))``): calls delegate
  straight to the in-process :class:`~repro.service.dispatch.Service`;
* **remote** (``Client(address=..., authkey=...)`` or
  :func:`connect`): calls travel over the daemon's ``AF_UNIX``
  socket (:mod:`multiprocessing.connection`, HMAC-authenticated by
  the state dir's ``authkey`` file), so any process on the machine
  can feed the one warm fleet that ``python -m repro.service start``
  left running.

Remote futures are real :class:`concurrent.futures.Future` objects:
the client registers each future under a token *before* the request
leaves the socket, so a result frame can never race its own
registration.  Failures come back as the same exception types the
local path raises (:class:`JobFailed`, :class:`JobTimeout`,
:class:`ServiceClosed`).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from concurrent.futures import Future
from multiprocessing import connection as mpconnection
from typing import Dict, List, Optional

from repro.service.dispatch import (JobFailed, JobSpec, JobTimeout,
                                    Service, ServiceClosed,
                                    ServiceError)

#: default on-disk rendezvous directory for a daemon (socket, authkey, pid)
STATE_DIR = ".repro-service"

_ERRORS = {"JobFailed": JobFailed, "JobTimeout": JobTimeout,
           "ServiceClosed": ServiceClosed, "ServiceError": ServiceError}


def _rebuild_error(name: str, message: str) -> ServiceError:
    return _ERRORS.get(name, ServiceError)(message)


class Client:
    """Uniform submission API over a local or remote service fleet."""

    def __init__(self, service: Optional[Service] = None,
                 address: Optional[str] = None,
                 authkey: Optional[bytes] = None):
        if (service is None) == (address is None):
            raise ValueError(
                "pass exactly one of service= (local) or address= "
                "(remote daemon socket)")
        self._service = service
        self._conn = None
        self._futures: Dict[int, Future] = {}
        self._acks: Dict[int, list] = {}
        self._ack_ready: Dict[int, threading.Event] = {}
        self._next_token = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False
        if address is not None:
            self._conn = mpconnection.Client(
                address, family="AF_UNIX", authkey=authkey)
            self._reader = threading.Thread(
                target=self._read_loop, name="repro-service-client",
                daemon=True)
            self._reader.start()

    # -- submission ----------------------------------------------------------

    def submit(self, fn, arg=None, *, key: Optional[str] = None,
               timeout: Optional[float] = None) -> Future:
        spec = fn if isinstance(fn, JobSpec) else \
            JobSpec(fn, arg, key=key, timeout=timeout)
        if self._service is not None:
            return self._service.submit(spec)
        return self.submit_many([spec])[0]

    def submit_many(self, specs) -> List[Future]:
        specs = [spec if isinstance(spec, JobSpec) else JobSpec(*spec)
                 for spec in specs]
        if self._service is not None:
            return self._service.submit_many(specs)
        with self._lock:
            if self._closed:
                raise ServiceClosed("client is closed")
            batch = []
            futures = []
            for spec in specs:
                token = next(self._next_token)
                future: Future = Future()
                # register *before* sending: the daemon may answer
                # a result frame before we even see the ack
                self._futures[token] = future
                futures.append(future)
                batch.append((token, spec.fn, spec.arg, spec.key,
                              spec.timeout))
        self._request("submit", batch)
        return futures

    def map(self, fn, jobs, timeout: Optional[float] = None) -> List:
        """``map_jobs``-shaped blocking call: ``[fn(job) ...]``."""
        futures = [self.submit(fn, job, timeout=timeout)
                   for job in jobs]
        return [future.result() for future in futures]

    # -- control -------------------------------------------------------------

    def status(self) -> dict:
        if self._service is not None:
            return self._service.status()
        return self._request("status", None)

    def ping(self) -> bool:
        if self._service is not None:
            return True
        return self._request("ping", None) == "pong"

    def drain(self) -> None:
        if self._service is not None:
            self._service.drain()
            return
        self._request("drain", None)

    def stop(self) -> None:
        """Ask a remote daemon to drain and exit (local: shutdown)."""
        if self._service is not None:
            self._service.shutdown()
            return
        self._request("stop", None)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._conn is not None:
            # the reader owns the socket: closing it here while the
            # reader blocks in recv() would free the fd for reuse by
            # the next connection and desynchronize its stream, so
            # just flag and wait for the reader's poll loop to exit
            self._reader.join(5.0)

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- remote plumbing -----------------------------------------------------

    def _request(self, kind: str, payload):
        with self._lock:
            if self._conn is None:
                raise ServiceError("no remote connection")
            req_id = next(self._next_token)
            event = threading.Event()
            self._ack_ready[req_id] = event
            try:
                self._conn.send((kind, req_id, payload))
            except (OSError, ValueError) as exc:
                self._ack_ready.pop(req_id, None)
                raise ServiceError(
                    "daemon connection lost: %s" % exc) from exc
        if not event.wait(30.0):
            self._ack_ready.pop(req_id, None)
            raise ServiceError("daemon did not answer %r" % kind)
        status, answer = self._acks.pop(req_id)
        if status == "error":
            raise _rebuild_error(*answer)
        return answer

    def _read_loop(self) -> None:
        while True:
            try:
                if not self._conn.poll(0.2):
                    if self._closed:
                        break
                    continue
                msg = self._conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "ack":
                _, req_id, status, answer = msg
                event = self._ack_ready.pop(req_id, None)
                if event is not None:
                    self._acks[req_id] = (status, answer)
                    event.set()
            elif kind == "result":
                _, token, status, payload = msg
                future = self._futures.pop(token, None)
                if future is None or future.done():
                    continue
                if status == "ok":
                    future.set_result(payload)
                else:
                    future.set_exception(_rebuild_error(*payload))
        try:
            self._conn.close()
        except OSError:
            pass
        # connection gone: fail everything still pending
        with self._lock:
            futures = list(self._futures.values())
            self._futures.clear()
            events = list(self._ack_ready.items())
            self._ack_ready.clear()
        for future in futures:
            if not future.done():
                future.set_exception(
                    ServiceClosed("daemon connection closed"))
        for req_id, event in events:
            self._acks[req_id] = (
                "error", ("ServiceClosed", "daemon connection closed"))
            event.set()


def connect(state_dir: str = STATE_DIR) -> Client:
    """Connect to the daemon rendezvoused in ``state_dir``.

    ``python -m repro.service start`` leaves ``socket`` and
    ``authkey`` files there; raises :class:`ServiceError` when no
    daemon is (or was) running.
    """
    sock = os.path.join(state_dir, "socket")
    keyfile = os.path.join(state_dir, "authkey")
    if not os.path.exists(sock) or not os.path.exists(keyfile):
        raise ServiceError(
            "no service daemon found in %r (run: python -m "
            "repro.service start)" % state_dir)
    with open(keyfile, "rb") as fh:
        authkey = fh.read()
    return Client(address=sock, authkey=authkey)


def state_info(state_dir: str = STATE_DIR) -> dict:
    """Best-effort description of a state dir (for ``status`` CLI)."""
    info = {"state_dir": state_dir,
            "socket": os.path.join(state_dir, "socket")}
    pidfile = os.path.join(state_dir, "daemon.pid")
    try:
        with open(pidfile, "r", encoding="utf-8") as fh:
            info["pid"] = json.load(fh)["pid"]
    except (OSError, ValueError, KeyError):
        info["pid"] = None
    return info
