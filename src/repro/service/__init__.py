"""Simulation-as-a-service: persistent workers, async submission.

The public surface (stable; ``tests/service/test_public_api.py``
asserts it does not shrink):

* :class:`Client` / :func:`connect` — the submission API, local or
  over a daemon socket;
* :class:`Service` / :class:`JobSpec` — the in-process dispatcher
  and its unit of work;
* :class:`ResultStore` — the shared content-addressed result store;
* the failure types :class:`ServiceError`, :class:`ServiceClosed`,
  :class:`JobFailed`, :class:`JobTimeout`.

See ``docs/SERVICE.md`` for architecture, the warm-cache contract,
and failure semantics; ``python -m repro.service`` for the daemon
CLI (``start`` / ``status`` / ``stop`` / ``bench``).
"""

from repro.service.client import STATE_DIR, Client, connect
from repro.service.dispatch import (JobFailed, JobSpec, JobTimeout,
                                    Service, ServiceClosed,
                                    ServiceError)
from repro.service.store import ResultStore

__all__ = [
    "Client",
    "connect",
    "Service",
    "JobSpec",
    "ResultStore",
    "ServiceError",
    "ServiceClosed",
    "JobFailed",
    "JobTimeout",
    "STATE_DIR",
]
