"""E1 — Section 5.2: functional correctness on the violation corpus.

The paper reports 286/286 test pairs detected with zero false
positives.  Our generated corpus has 288 pairs over the same
dimensions; HardBound must detect every violating variant and pass
every safe variant, under every pointer encoding (compression is
semantics-transparent).
"""

from conftest import write_result

from repro.harness.violations import generate_corpus, run_corpus
from repro.machine.config import MachineConfig


def test_corpus_full_safety(benchmark):
    result = benchmark.pedantic(run_corpus, rounds=1, iterations=1)
    summary = "Section 5.2 corpus (full safety): " + result.summary()
    print("\n" + summary)
    write_result("violations.txt", summary)
    assert result.total == 288
    assert result.detected == result.total
    assert not result.false_positives
    assert not result.errors


def test_corpus_invariant_across_encodings():
    """Spot-check: compression never changes detection behaviour."""
    cases = generate_corpus()[::12]   # every 12th pair (24 pairs)
    for encoding in ("extern4", "intern4", "intern11"):
        cfg = MachineConfig.hardbound(encoding=encoding, timing=False)
        result = run_corpus(cfg, cases)
        assert result.detected == result.total, encoding
        assert not result.false_positives, encoding
