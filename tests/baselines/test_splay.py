"""Splay tree: correctness against a model, invariants, splaying."""

from hypothesis import given, strategies as st

from repro.baselines import SplayTree


def build(intervals):
    tree = SplayTree()
    for start, length in intervals:
        tree.insert(start, start + length)
    return tree


def test_lookup_by_containment():
    tree = build([(100, 10), (200, 20), (50, 5)])
    node, _ = tree.lookup(105)
    assert (node.start, node.end) == (100, 110)
    node, _ = tree.lookup(219)
    assert (node.start, node.end) == (200, 220)
    node, _ = tree.lookup(110)       # one past the end: not contained
    assert node is None
    node, _ = tree.lookup(55)
    assert node is None


def test_lookup_splays_to_root():
    tree = build([(i * 100, 10) for i in range(20)])
    node, _ = tree.lookup(1505)
    assert tree.root is node


def test_repeated_lookup_gets_cheaper():
    tree = build([(i * 100, 10) for i in range(64)])
    _node, first = tree.lookup(3105)
    _node, second = tree.lookup(3105)
    assert second == 1
    assert first >= second


def test_remove():
    tree = build([(100, 10), (200, 10), (300, 10)])
    assert tree.remove(200) is True
    assert tree.remove(200) is False
    node, _ = tree.lookup(205)
    assert node is None
    node, _ = tree.lookup(305)
    assert node is not None
    assert tree.size == 2


intervals = st.lists(
    st.integers(0, 500),
    min_size=1, max_size=120, unique=True)


@given(starts=intervals)
def test_insert_lookup_matches_model(starts):
    tree = SplayTree()
    for start in starts:
        tree.insert(start * 16, start * 16 + 8)
    tree.check_invariants()
    for start in starts:
        node, _ = tree.lookup(start * 16 + 3)
        assert node is not None and node.start == start * 16
        node, _ = tree.lookup(start * 16 + 12)   # in the gap
        assert node is None


@given(starts=intervals, removals=st.lists(st.integers(0, 500),
                                           max_size=60))
def test_insert_remove_sequences(starts, removals):
    tree = SplayTree()
    model = {}
    for start in starts:
        tree.insert(start * 16, start * 16 + 8)
        model[start * 16] = start * 16 + 8
    for victim in removals:
        removed = tree.remove(victim * 16)
        assert removed == (victim * 16 in model)
        model.pop(victim * 16, None)
    tree.check_invariants()
    assert tree.size == len(model)
    assert dict(tree.in_order()) == model


@given(starts=intervals)
def test_in_order_is_sorted(starts):
    tree = SplayTree()
    for start in starts:
        tree.insert(start, start + 1)
    keys = [s for s, _ in tree.in_order()]
    assert keys == sorted(keys)
