"""MiniC generator: compiles, terminates, optimizer-invariant."""

import pytest

from repro.fuzz.minicgen import generate_minic_program
from repro.fuzz.rng import FUZZ_SEED_ENV
from repro.machine.config import MachineConfig
from repro.machine.cpu import CPU
from repro.minic.driver import compile_program

SEEDS = range(8)


def test_deterministic(monkeypatch):
    monkeypatch.delenv(FUZZ_SEED_ENV, raising=False)
    assert generate_minic_program(5) == generate_minic_program(5)
    assert generate_minic_program(5) != generate_minic_program(6)


def test_env_seed_override(monkeypatch):
    monkeypatch.setenv(FUZZ_SEED_ENV, "5")
    assert generate_minic_program(12345) == "\n".join(
        generate_minic_program(12345).splitlines()) + "\n"
    assert "seed=5" in generate_minic_program(999).splitlines()[0]


@pytest.mark.parametrize("seed", SEEDS)
def test_compiles_and_terminates(seed):
    source = generate_minic_program(seed)
    program = compile_program(source)
    config = MachineConfig.hardbound(timing=False, engine="legacy",
                                     max_instructions=5_000_000)
    result = CPU(program, config).run()
    # print(acc) and `return acc & 255` tie output to exit status
    assert result.output.strip()
    assert 0 <= result.exit_code <= 255


@pytest.mark.parametrize("seed", SEEDS)
def test_optimizer_invariance(seed):
    """optimize on/off must agree on exit and output (the peephole
    pass is observationally transparent on generated programs)."""
    source = generate_minic_program(seed)
    results = {}
    for optimize in (False, True):
        program = compile_program(source, optimize=optimize)
        r = CPU(program, MachineConfig.hardbound(
            timing=False, engine="legacy")).run()
        results[optimize] = (r.exit_code, r.output)
    assert results[False] == results[True]


def test_pointer_heavy_surface():
    """Structs, helpers, char buffers and free/realloc all appear
    across a modest seed range — the generator stays pointer-heavy."""
    corpus = "\n".join(generate_minic_program(seed)
                       for seed in range(30))
    assert "struct node" in corpus
    assert "->next" in corpus
    assert "char *cb" in corpus
    assert "free((void*)buf)" in corpus
    assert "int fn0(int *p, int x)" in corpus
