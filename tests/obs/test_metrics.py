"""Counters, phase timers and the execute-net helper."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    PhaseTimers,
    REGISTRY,
    execute_net,
)


class TestMetricsRegistry:
    def test_counters_spring_into_existence(self):
        reg = MetricsRegistry()
        assert reg.get("a") == 0
        assert reg.get("a", default=7) == 7
        reg.inc("a")
        reg.inc("a", 2)
        assert reg.get("a") == 3

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.inc("a")
        snap = reg.snapshot()
        reg.inc("a")
        assert snap == {"a": 1}
        assert reg.get("a") == 2

    def test_diff_reports_only_changed_counters(self):
        reg = MetricsRegistry()
        reg.inc("stale", 5)
        reg.inc("hot", 1)
        before = reg.snapshot()
        reg.inc("hot", 3)
        reg.inc("fresh", 2)
        assert reg.diff(before) == {"hot": 3, "fresh": 2}

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.reset()
        assert reg.snapshot() == {}

    def test_module_registry_is_shared(self):
        from repro.obs import metrics
        assert metrics.REGISTRY is REGISTRY


class TestPhaseTimers:
    def test_add_accumulates_seconds_and_calls(self):
        timers = PhaseTimers()
        timers.add("decode", 0.5)
        timers.add("decode", 0.25)
        timers.add("execute", 1.0)
        assert timers.seconds["decode"] == pytest.approx(0.75)
        assert timers.calls["decode"] == 2
        assert timers.total() == pytest.approx(1.75)
        assert timers.snapshot() == {"decode": pytest.approx(0.75),
                                     "execute": pytest.approx(1.0)}

    def test_snapshot_is_a_copy(self):
        timers = PhaseTimers()
        timers.add("decode", 1.0)
        snap = timers.snapshot()
        timers.add("decode", 1.0)
        assert snap["decode"] == pytest.approx(1.0)

    def test_phase_context_manager_charges_on_exit(self):
        timers = PhaseTimers()
        with timers.phase("cfg_fusion"):
            pass
        assert timers.calls["cfg_fusion"] == 1
        assert timers.seconds["cfg_fusion"] >= 0.0

    def test_phase_context_manager_charges_on_error(self):
        timers = PhaseTimers()
        with pytest.raises(RuntimeError):
            with timers.phase("execute"):
                raise RuntimeError("boom")
        assert timers.calls["execute"] == 1


class TestExecuteNet:
    def test_subtracts_nested_trace_formation(self):
        phases = {"execute": 2.0, "trace_formation": 0.5}
        assert execute_net(phases) == pytest.approx(1.5)

    def test_handles_missing_phases(self):
        assert execute_net(None) == 0.0
        assert execute_net({}) == 0.0
        assert execute_net({"decode": 1.0}) == 0.0

    def test_never_negative(self):
        phases = {"execute": 0.1, "trace_formation": 0.3}
        assert execute_net(phases) == 0.0
