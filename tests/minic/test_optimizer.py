"""The textual peephole optimizer (``repro.minic.optimizer``).

Unit cases pin each rewrite on hand-written assembler; the
differential sweep is the real contract: an optimized program must
produce identical *observable* results — exit code, output, trap
class and live final memory — to its unoptimized twin under all four
engines.  Cycle/µop counters legitimately differ (the optimized
binary is a shorter program), and so does the dead stack residue
below the final ``sp`` (it holds stale return addresses, which shift
when instruction indices change), so the memory comparison stops at
the stack region.
"""

import pytest

from repro.fuzz.rng import fuzz_rng, seed_banner
from repro.isa import assemble
from repro.layout import PAGE_SHIFT, STACK_SIZE, STACK_TOP
from repro.machine import CPU, DivideByZeroError, MachineConfig
from repro.minic.driver import compile_program, compile_to_asm
from repro.minic.optimizer import optimize_asm

ENGINES = ("legacy", "decoded", "blocks", "superblocks")

#: first page of the stack region; pages at or above hold dead
#: residue after main returns and are excluded from the comparison
STACK_PAGE = (STACK_TOP - STACK_SIZE) >> PAGE_SHIFT


def ops(text):
    """Mnemonic list of the instruction lines in assembler text."""
    out = []
    for raw in text.splitlines():
        s = raw.strip()
        if not s or s.endswith(":") or s.startswith("."):
            continue
        if s.split()[0].endswith(":"):
            continue
        out.append(s.split()[0])
    return out


def opt(body):
    return optimize_asm("main:\n" + body + "    halt r1\n")


class TestRewrites:
    def test_const_fold_chain(self):
        text = opt("    mov r1, 3\n"
                   "    add r1, r1, 4\n"
                   "    mul r1, r1, 2\n")
        assert ops(text) == ["mov", "halt"]
        assert "mov r1, 14" in text

    def test_immediate_substitution_kills_dead_temp(self):
        text = opt("    mov r1, 5\n"
                   "    mov r2, 7\n"
                   "    add r1, r1, r2\n"
                   "    mov r2, 0\n")
        # the temp mov dies (r2 is overwritten before any read) and
        # the fold then collapses the chain to a single constant
        assert "add" not in ops(text)
        assert "mov r1, 12" in text

    def test_immediate_substitution_keeps_live_temp(self):
        text = opt("    mov r2, 7\n"
                   "    add r1, r1, r2\n"
                   "    sub r3, r2, 1\n")
        assert "add r1, r1, 7" in text
        assert "mov r2, 7" in text  # r2 still read by the sub

    def test_div_mod_never_folded(self):
        text = opt("    mov r1, 8\n"
                   "    div r1, r1, 2\n")
        assert "div" in ops(text)

    def test_store_load_forwarding(self):
        text = opt("    store [fp - 4], r1\n"
                   "    load r1, [fp - 4]\n")
        assert ops(text) == ["store", "halt"]
        text = opt("    store [fp - 4], r1\n"
                   "    load r2, [fp - 4]\n")
        assert ops(text) == ["store", "mov", "halt"]
        assert "mov r2, r1" in text

    def test_forwarding_blocked_by_base_clobber(self):
        # the load's base register is the stored register: forwarding
        # would read a different address than the store wrote
        text = opt("    store [r2], r1\n"
                   "    load r2, [r2]\n")
        assert ops(text) == ["store", "load", "halt"]

    def test_subword_load_not_forwarded(self):
        text = opt("    storeb [fp - 4], r1\n"
                   "    loadb r1, [fp - 4]\n")
        assert ops(text) == ["storeb", "loadb", "halt"]

    def test_redundant_load_pair(self):
        text = opt("    load r1, [fp - 8]\n"
                   "    load r2, [fp - 8]\n")
        assert ops(text) == ["load", "mov", "halt"]

    def test_self_mov_and_add_zero_deleted(self):
        text = opt("    mov r1, r1\n"
                   "    add r2, r2, 0\n"
                   "    sub r3, r3, 0\n")
        assert ops(text) == ["halt"]

    def test_jmp_to_next_line_deleted(self):
        text = opt("    jmp next\n"
                   "next:\n"
                   "    mov r1, 1\n")
        assert "jmp" not in ops(text)

    def test_branch_chain_collapses(self):
        text = opt("    beqz r1, hop\n"
                   "    mov r1, 2\n"
                   "hop:\n"
                   "    jmp fin\n"
                   "fin:\n"
                   "    mov r1, 3\n")
        assert "beqz r1, fin" in text

    def test_unreachable_after_transfer_dropped(self):
        text = optimize_asm("main:\n"
                            "    jmp out\n"
                            "    mov r1, 9\n"
                            "    mov r2, 9\n"
                            "out:\n"
                            "    halt r1\n")
        assert ops(text) == ["halt"]

    def test_unknown_op_is_a_barrier(self):
        # setbound's imm form reads rs; a temp feeding it must survive
        text = opt("    mov r2, 7\n"
                   "    mul r1, r3, r2\n"
                   "    sbrk r2\n")
        assert "mov r2, 7" in text

    def test_data_and_directives_untouched(self):
        src = ("main:\n    halt r1\n    .data\n    .align 4\n"
               "    gv_g: .word 42\n    gv_a: .space 16\n"
               "    str_0: .asciiz \"x:\"\n")
        out = optimize_asm(src)
        for line in ("gv_g: .word 42", "gv_a: .space 16",
                     "str_0: .asciiz \"x:\""):
            assert line in out

    def test_fixpoint_on_large_program(self):
        body = "    mov r1, 0\n" + \
            "".join("    mov r2, %d\n    add r1, r1, r2\n" % i
                    for i in range(500))
        text = opt(body)
        # every pair but the last folds away within the fixpoint
        # budget (the final temp ``mov`` survives: the conservative
        # liveness scan stops at ``halt``, so it stays adjacent to —
        # and blocks — the very last fold)
        assert len(ops(text)) <= 4
        assert "mov r1, %d" % sum(range(499)) in text
        assert "add r1, r1, 499" in text


class TestObservableEquivalence:
    def run_both(self, source, config_fn, **kw):
        """(exit, output, live pages) per optimize setting/engine."""
        obs = {}
        for optimize in (False, True):
            per_engine = {}
            for engine in ENGINES:
                program = compile_program(
                    source, optimize=optimize)
                cpu = CPU(program, config_fn(
                    timing=False, engine=engine, retain_cpu=True,
                    **kw))
                r = cpu.run()
                pages = {p: d for p, d
                         in cpu.memory.nonzero_pages().items()
                         if p < STACK_PAGE}
                per_engine[engine] = (r.exit_code, r.output, pages)
            for engine in ENGINES[1:]:
                assert per_engine[engine] == per_engine["legacy"], \
                    (engine, optimize)
            obs[optimize] = per_engine["legacy"]
        assert obs[True] == obs[False]

    def test_arith_and_memory_program(self):
        self.run_both("""
        int acc;
        int main() {
            int *p = (int*)malloc(16 * sizeof(int));
            int i;
            for (i = 0; i < 16; i = i + 1) {
                p[i] = i * 3 + 1;
            }
            for (i = 0; i < 16; i = i + 1) {
                acc = acc + p[i];
            }
            print(acc);
            return acc & 255;
        }""", MachineConfig.hardbound)

    def test_trap_preserved_at_same_class(self):
        source = """
        int main() {
            int d = 4;
            int n = 20;
            while (d >= 0) {
                n = n / d;
                d = d - 1;
            }
            return n;
        }"""
        for optimize in (False, True):
            program = compile_program(source, optimize=optimize)
            cpu = CPU(program, MachineConfig.hardbound(timing=False))
            with pytest.raises(DivideByZeroError):
                cpu.run()

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_differential(self, seed):
        """Random straight-line+loop programs, optimized vs not,
        through all four engines.

        ``REPRO_FUZZ_SEED`` overrides the per-case seed (all eight
        cases then replay the same program — the reproduction
        contract of :mod:`repro.fuzz.rng`); failures print the seed
        to re-run with.
        """
        rng, effective = fuzz_rng(0xC0DE + seed)
        binops = ["+", "-", "*", "&", "|", "^"]
        lines = ["int g;", "int main() {",
                 "    int a = %d;" % rng.randrange(-50, 50),
                 "    int b = %d;" % rng.randrange(1, 50),
                 "    int c = 0;",
                 "    int *p = (int*)malloc(8 * sizeof(int));",
                 "    int i;"]
        for _ in range(rng.randrange(4, 10)):
            v = rng.choice("abc")
            kind = rng.randrange(5)
            if kind == 0:
                lines.append("    %s = %s %s %d;" % (
                    v, rng.choice("abc"), rng.choice(binops),
                    rng.randrange(-9, 10)))
            elif kind == 1:
                lines.append("    %s = %s %s %s;" % (
                    v, rng.choice("abc"), rng.choice(binops),
                    rng.choice("abc")))
            elif kind == 2:
                lines.append("    p[%d] = %s;" % (
                    rng.randrange(8), rng.choice("abc")))
            elif kind == 3:
                lines.append("    %s = p[%d];" % (
                    v, rng.randrange(8)))
            else:
                lines.append("    %s = %s / %d;" % (
                    v, rng.choice("abc"), rng.randrange(1, 7)))
        lines += ["    for (i = 0; i < 20; i = i + 1) {",
                  "        c = c + a - b + p[i & 7];",
                  "    }",
                  "    g = c;",
                  "    print(c);",
                  "    return c & 255;",
                  "}"]
        try:
            self.run_both("\n".join(lines), MachineConfig.hardbound)
        except AssertionError as err:
            raise AssertionError(
                "%s\n%s" % (err, seed_banner(
                    effective, "differential program"))) from err

    def test_assembled_text_unaffected_by_knob(self):
        """`optimize=` only touches minic output; hand-written
        assembler (the machine-test corpus) never goes through it."""
        program = assemble("main:\n    mov r1, 7\n    halt r1\n")
        r = CPU(program, MachineConfig.plain(timing=False)).run()
        assert r.exit_code == 7
        assert r.instructions == 2

    def test_static_instruction_count_shrinks(self):
        source = """
        int main() {
            int x = 2;
            int y = x * 8 + 1;
            return y;
        }"""
        plain = compile_to_asm(source, optimize=False)
        tight = compile_to_asm(source, optimize=True)
        assert len(ops(tight)) < len(ops(plain))
