"""Sparse, paged data memory with mapping discipline.

Memory is byte addressable and little endian.  Pages materialize on
first *mapped* touch; the mapping discipline models virtual-memory
protection: accesses are legal only inside the globals segment, the
heap below the current program break, or the stack reservation.  The
shadow and tag metadata regions are written exclusively by the
simulated hardware, which bypasses the mapping check (the OS maps
metadata pages on demand, Section 4.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.layout import (
    GLOBAL_BASE,
    HEAP_BASE,
    NULL_GUARD,
    PAGE_SHIFT,
    PAGE_SIZE,
    STACK_TOP,
)
from repro.machine.errors import MemoryFault


class Memory:
    """Sparse page store plus segment bookkeeping.

    ``globals_limit`` and ``brk`` define the mapped extents of the
    data and heap segments; ``stack_base`` the bottom of the stack
    reservation.  :meth:`check_mapped` enforces them for program
    accesses (hardware metadata accesses use the ``raw_*`` entry
    points).
    """

    def __init__(self, stack_size: int):
        self._pages: Dict[int, bytearray] = {}
        self.globals_limit = GLOBAL_BASE
        self.brk = HEAP_BASE
        self.stack_base = STACK_TOP - stack_size

    # -- segment management ------------------------------------------------

    def load_image(self, image: bytes, extra_bss: int = 0) -> None:
        """Copy the program's data image to ``GLOBAL_BASE``."""
        self.raw_write_bytes(GLOBAL_BASE, image)
        self.globals_limit = GLOBAL_BASE + len(image) + extra_bss

    def sbrk(self, increment: int) -> int:
        """Grow (or query, with 0) the heap; returns the old break."""
        old = self.brk
        self.brk += increment
        return old

    def check_mapped(self, addr: int, size: int, access: str) -> None:
        """Trap unless [addr, addr+size) lies in a mapped segment."""
        end = addr + size
        if GLOBAL_BASE <= addr and end <= self.globals_limit:
            return
        if HEAP_BASE <= addr and end <= self.brk:
            return
        if self.stack_base <= addr and end <= STACK_TOP:
            return
        raise MemoryFault(addr, access)

    # -- raw byte access (no mapping checks) ----------------------------------

    def _page(self, page_no: int) -> bytearray:
        page = self._pages.get(page_no)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_no] = page
        return page

    def raw_read(self, addr: int, size: int) -> int:
        """Little-endian unsigned read of 1/2/4 bytes."""
        off = addr & (PAGE_SIZE - 1)
        if off + size <= PAGE_SIZE:
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                return 0
            return int.from_bytes(page[off:off + size], "little")
        return int.from_bytes(self.raw_read_bytes(addr, size), "little")

    def raw_write(self, addr: int, size: int, value: int) -> None:
        """Little-endian write of the low ``size`` bytes of ``value``."""
        off = addr & (PAGE_SIZE - 1)
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if off + size <= PAGE_SIZE:
            self._page(addr >> PAGE_SHIFT)[off:off + size] = data
        else:
            self.raw_write_bytes(addr, data)

    def raw_read_bytes(self, addr: int, length: int) -> bytes:
        """Read an arbitrary byte range (may span pages)."""
        out = bytearray()
        while length:
            off = addr & (PAGE_SIZE - 1)
            chunk = min(length, PAGE_SIZE - off)
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                out += bytes(chunk)
            else:
                out += page[off:off + chunk]
            addr += chunk
            length -= chunk
        return bytes(out)

    def raw_write_bytes(self, addr: int, data: bytes) -> None:
        """Write an arbitrary byte range (may span pages)."""
        pos = 0
        while pos < len(data):
            off = addr & (PAGE_SIZE - 1)
            chunk = min(len(data) - pos, PAGE_SIZE - off)
            self._page(addr >> PAGE_SHIFT)[off:off + chunk] = \
                data[pos:pos + chunk]
            addr += chunk
            pos += chunk

    # -- checked program access --------------------------------------------

    def read(self, addr: int, size: int) -> int:
        """Program read with null-guard and mapping checks."""
        if addr < NULL_GUARD:
            raise MemoryFault(addr, "read")
        self.check_mapped(addr, size, "read")
        return self.raw_read(addr, size)

    def write(self, addr: int, size: int, value: int) -> None:
        """Program write with null-guard and mapping checks."""
        if addr < NULL_GUARD:
            raise MemoryFault(addr, "write")
        self.check_mapped(addr, size, "write")
        self.raw_write(addr, size, value)

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> str:
        """Read a NUL-terminated latin-1 string (debug helper)."""
        out = []
        for i in range(limit):
            byte = self.raw_read(addr + i, 1)
            if byte == 0:
                break
            out.append(chr(byte))
        return "".join(out)

    # -- introspection -------------------------------------------------------

    def mapped_pages(self) -> Iterable[int]:
        """Page numbers materialized so far (metadata pages included)."""
        return self._pages.keys()

    def segments(self) -> Tuple[Tuple[int, int], ...]:
        """Mapped program segments as (start, end) pairs."""
        return ((GLOBAL_BASE, self.globals_limit),
                (HEAP_BASE, self.brk),
                (self.stack_base, STACK_TOP))
