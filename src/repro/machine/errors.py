"""Traps and control-flow signals raised by the simulated machine.

The paper's hardware "raises an exception" on a failed bounds check or
a non-pointer dereference (Figure 3); "the runtime system handles the
exception by either terminating the process or invoking some other
language-specific exception".  We model traps as Python exceptions that
unwind out of :meth:`repro.machine.cpu.CPU.run`.
"""

from __future__ import annotations

from typing import Optional


class SimError(Exception):
    """Base class for everything the simulator can raise."""


class Trap(SimError):
    """A hardware exception delivered to the runtime system.

    ``pc`` is the instruction index that trapped (filled in by the CPU
    when the trap crosses the execute stage).
    """

    kind = "trap"

    def __init__(self, message: str, pc: Optional[int] = None):
        super().__init__(message)
        self.pc = pc

    def at(self, pc: int) -> "Trap":
        """Attach the faulting pc (idempotent)."""
        if self.pc is None:
            self.pc = pc
            self.args = ("%s (at pc=%d)" % (self.args[0], pc),)
        return self


class BoundsError(Trap):
    """Spatial safety violation: effective address outside [base, bound)."""

    kind = "bounds"

    def __init__(self, addr: int, base: int, bound: int, access: str,
                 pc: Optional[int] = None):
        super().__init__(
            "bounds check failed: %s of 0x%08x outside [0x%08x, 0x%08x)"
            % (access, addr, base, bound), pc)
        self.addr = addr
        self.base = base
        self.bound = bound
        self.access = access


class NonPointerError(Trap):
    """Dereference through a register with no bounds metadata (Fig 3C)."""

    kind = "non-pointer"

    def __init__(self, value: int, access: str, pc: Optional[int] = None):
        super().__init__(
            "non-pointer dereference: %s through raw value 0x%08x"
            % (access, value), pc)
        self.value = value
        self.access = access


class MemoryFault(Trap):
    """Access to an unmapped page (null guard, wild address)."""

    kind = "fault"

    def __init__(self, addr: int, access: str = "access",
                 pc: Optional[int] = None):
        super().__init__("memory fault: %s of unmapped 0x%08x"
                         % (access, addr), pc)
        self.addr = addr
        self.access = access


class DivideByZeroError(Trap):
    """Integer divide or modulo by zero."""

    kind = "divide"

    def __init__(self, pc: Optional[int] = None):
        super().__init__("integer divide by zero", pc)


class InvalidCodePointerError(Trap):
    """Indirect call through a value without code-pointer metadata.

    Section 6.1: code pointers carry ``{base=MAXINT; bound=MAXINT}``;
    anything else cannot be the target of an indirect call.
    """

    kind = "code-pointer"

    def __init__(self, value: int, pc: Optional[int] = None):
        super().__init__("invalid code pointer 0x%08x" % value, pc)
        self.value = value


class UseAfterFreeError(Trap):
    """Temporal extension (Section 6.2): access to a freed word."""

    kind = "use-after-free"

    def __init__(self, addr: int, pc: Optional[int] = None):
        super().__init__("use-after-free: access to freed 0x%08x"
                         % addr, pc)
        self.addr = addr


class DoubleFreeError(Trap):
    """Temporal extension (Section 6.2): markfree of a dead region."""

    kind = "double-free"

    def __init__(self, addr: int, pc: Optional[int] = None):
        super().__init__("double free of region at 0x%08x" % addr, pc)
        self.addr = addr


class AbortError(Trap):
    """Program executed ``abort`` (used by the test harness)."""

    kind = "abort"

    def __init__(self, code: int, pc: Optional[int] = None):
        super().__init__("program aborted with code %d" % code, pc)
        self.code = code


class SoftwareCheckError(Trap):
    """A *software* bounds check failed (baseline instrumentation).

    Raised via ``abort`` codes by the software-checking baselines so
    that tests can distinguish software detection from the HardBound
    hardware trap.
    """

    kind = "software-check"

    def __init__(self, code: int, pc: Optional[int] = None):
        super().__init__("software bounds check failed (code %d)" % code, pc)
        self.code = code


class InstructionLimitExceeded(SimError):
    """The configured instruction budget ran out (runaway program)."""

    def __init__(self, limit: int):
        super().__init__("instruction limit of %d exceeded" % limit)
        self.limit = limit


class HaltSignal(Exception):
    """Internal control flow: the program executed ``halt``."""

    def __init__(self, code: int):
        super().__init__(code)
        self.code = code
