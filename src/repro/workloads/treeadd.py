"""treeadd: recursive sum over a balanced binary tree (Olden).

The simplest Olden benchmark: allocate a complete binary tree on the
heap, then recursively add up the node values.  Exercises heap
allocation and pointer-chasing recursion.
"""

LEVELS = 10  # 2**10 - 1 = 1023 nodes

SOURCE = """
struct tree {
    int val;
    struct tree *left;
    struct tree *right;
};

struct tree *build(int level) {
    struct tree *t = (struct tree*)malloc(sizeof(struct tree));
    t->val = level;
    if (level <= 1) {
        t->left = (struct tree*)0;
        t->right = (struct tree*)0;
    } else {
        t->left = build(level - 1);
        t->right = build(level - 1);
    }
    return t;
}

int treesum(struct tree *t) {
    if (!t) { return 0; }
    return t->val + treesum(t->left) + treesum(t->right);
}

int main() {
    struct tree *root = build(%(levels)d);
    print(treesum(root));
    return 0;
}
""" % {"levels": LEVELS}

#: sum over a complete tree where each node at height h holds h
EXPECTED_OUTPUT = "%d\n" % sum(
    level * (1 << (LEVELS - level)) for level in range(1, LEVELS + 1))
