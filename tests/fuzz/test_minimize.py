"""Delta-debugging minimizer: shrink a seeded divergence to a test."""

import pytest

from repro.fuzz.isagen import generate_isa_program
from repro.fuzz.minimize import (
    instruction_count,
    is_instruction,
    load_corpus,
    minimize_asm,
    minimize_result,
    write_corpus_entry,
)
from repro.fuzz.oracle import Divergence, FuzzResult, run_once
from repro.isa.assembler import assemble
from repro.machine.config import MachineConfig


def traps_divide(text):
    outcome = run_once(assemble(text),
                       MachineConfig.plain(timing=False,
                                           engine="legacy"))
    return outcome.status == "trap" and \
        outcome.trap[0] == "DivideByZeroError"


def buried_program():
    """~100 instructions of generated junk hiding one true div-by-0.

    The generator's programs are div-safe by construction, so the
    appended unguarded divide is the only divergent instruction."""
    junk = generate_isa_program(2, stmts=24)
    lines = junk.splitlines()
    cut = lines.index("Lexit:")
    lines[cut:cut] = ["    mov r2, 0",
                      "    div r1, r1, r2"]
    return "\n".join(lines) + "\n"


class TestMinimizeAsm:
    def test_seeded_divergence_shrinks_to_ten_instructions(self):
        """The acceptance bar: a deliberately-seeded divergence in a
        ~100-instruction program round-trips to <= 10 instructions
        while the predicate still holds."""
        text = buried_program()
        assert instruction_count(text) >= 80
        assert traps_divide(text)
        small = minimize_asm(text, traps_divide)
        assert traps_divide(small)
        assert instruction_count(small) <= 10

    def test_structure_survives(self):
        small = minimize_asm(buried_program(), traps_divide)
        assert small.splitlines()[-1].strip().endswith(".space 64")
        assert any(line.rstrip() == "main:"
                   for line in small.splitlines())

    def test_rejects_unsatisfied_predicate(self):
        with pytest.raises(ValueError):
            minimize_asm("main:\n    halt r0\n", traps_divide)

    def test_predicate_exceptions_count_as_uninteresting(self):
        """Candidates that stop assembling must not kill the run."""
        def fragile(text):
            assemble(text)          # raises on broken candidates
            return "div" in text
        small = minimize_asm(buried_program(), fragile)
        assert "div" in small

    def test_max_checks_budget_returns_valid_program(self):
        small = minimize_asm(buried_program(), traps_divide,
                             max_checks=5)
        assert traps_divide(small)


class TestMinimizeResult:
    def test_shrinks_via_oracle_callable(self):
        text = buried_program()
        result = FuzzResult(seed=2, level="isa", status="trap",
                            trap="DivideByZeroError",
                            divergences=[Divergence(
                                "engine", "blocks", False, ["pc"])],
                            program=text, config={})

        def oracle(candidate):
            return ([Divergence("engine", "blocks", False, ["pc"])]
                    if traps_divide(candidate) else [])

        small = minimize_result(result, oracle=oracle)
        assert instruction_count(small) <= 10

    def test_minic_results_pass_through(self):
        result = FuzzResult(seed=0, level="minic", status="exit",
                            trap=None, divergences=[],
                            program="int main() { return 0; }\n",
                            config={})
        assert minimize_result(result) == result.program


class TestLineClassification:
    @pytest.mark.parametrize("line,removable", [
        ("    add r1, r2, r3", True),
        ("    halt r1", True),
        ("main:", False),
        ("Lexit:", False),
        ("    .data", False),
        ("gbuf: .space 64", False),
        ("; comment", False),
        ("", False),
    ])
    def test_is_instruction(self, line, removable):
        assert is_instruction(line) == removable


class TestCorpusIO:
    def test_write_and_load_round_trip(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        meta = {"level": "isa", "seed": 7, "config": {"mode": "full"}}
        write_corpus_entry(corpus, "isa-seed7",
                           "main:\n    halt r0\n", meta)
        entries = load_corpus(corpus)
        assert len(entries) == 1
        name, program, loaded = entries[0]
        assert name == "isa-seed7"
        assert program == "main:\n    halt r0\n"
        assert loaded == meta

    def test_minic_entries_use_c_extension(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        prog_path, _ = write_corpus_entry(
            corpus, "minic-seed1", "int main() { return 0; }\n",
            {"level": "minic", "seed": 1})
        assert prog_path.endswith(".c")
        assert load_corpus(corpus)[0][0] == "minic-seed1"

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []
