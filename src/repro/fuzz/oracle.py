"""The differential oracle: one program, every engine, diff everything.

Reuses the comparison contract of
``tests/machine/test_engine_differential.py`` — exit status, output,
instruction/µop/stall/cycle counters, HardBound and memory-system
statistics, final live memory image, and traps compared as
``(type, message, pc, icount, final pc)`` — but packages it as a
library, so the fuzzer, the minimizer and the CLI can all consume
mismatches as data (:class:`Divergence`) instead of assertion text.

Two entry points:

* :func:`diff_engines` — one assembled program through all four
  engines under both memory models (``timing=False`` functional /
  ``timing=True`` cache+TLB, which also swaps the fast memory system
  in under the block tiers);
* :func:`diff_minic` — one MiniC source, compiled with the peephole
  optimizer off and on; each binary goes through the four-engine
  diff, then the two binaries are compared against each other on the
  *observable* subset (exit, output, trap class, live heap/global
  pages — counters and stack residue legitimately differ between
  different instruction streams).

On top of the cross-engine diff, every run is checked against the
frozen ``engine_stats`` schema (:mod:`repro.obs.schema`) and the
full-coverage-template invariant: the superblock tier must never
fall back to decoded closures for memory-path shapes.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.assembler import assemble
from repro.layout import PAGE_SHIFT, STACK_SIZE, STACK_TOP
from repro.machine.config import MachineConfig
from repro.machine.cpu import CPU
from repro.machine.errors import InstructionLimitExceeded, Trap
from repro.minic.driver import compile_program, mode_for_config
from repro.obs.schema import validate_engine_stats

ENGINES = ("legacy", "decoded", "blocks", "superblocks")

#: first page of the stack region; pages at or above it hold dead
#: call residue and are excluded from optimize-pair comparisons
STACK_PAGE = (STACK_TOP - STACK_SIZE) >> PAGE_SHIFT

#: instruction shapes the superblock tier fuses with full-coverage
#: templates — seeing one in ``closure_fallback_ops`` means the
#: memory path regressed to closure dispatch
FUSED_MEMORY_OPS = frozenset({
    "load", "loadh", "loadb", "store", "storeh", "storeb",
    "setbound", "sbrk",
})


@dataclasses.dataclass
class Outcome:
    """Everything observable about one run of one program."""

    status: str                     # "exit" | "trap" | "limit"
    output: str
    icount: int
    pc: int                         # final pc
    exit_code: Optional[int] = None
    uops: Optional[int] = None
    stall_cycles: Optional[int] = None
    cycles: Optional[int] = None
    setbound_uops: Optional[int] = None
    hb: Optional[dict] = None
    mem: Optional[dict] = None
    trap: Optional[Tuple[str, str, Optional[int]]] = None
    image: Optional[tuple] = None   # (nonzero_pages, brk, glob_limit)
    engine_stats: Optional[dict] = None

    def key(self) -> tuple:
        """The cross-engine comparison tuple (order = field order)."""
        return (self.status, self.output, self.icount, self.pc,
                self.exit_code, self.uops, self.stall_cycles,
                self.cycles, self.setbound_uops, self.hb, self.mem,
                self.trap, self.image)

    _FIELDS = ("status", "output", "icount", "pc", "exit_code",
               "uops", "stall_cycles", "cycles", "setbound_uops",
               "hb_stats", "mem_stats", "trap", "memory_image")

    def diff_fields(self, other: "Outcome") -> List[str]:
        mine, theirs = self.key(), other.key()
        return [name for name, a, b in
                zip(self._FIELDS, mine, theirs) if a != b]

    def observable(self) -> tuple:
        """The optimize-invariant subset: exit/output/trap class and
        live pages below the stack (dead stack residue and counters
        shift with the instruction stream)."""
        pages = None
        if self.image is not None:
            nonzero, brk, glob = self.image
            pages = (tuple(sorted((p, bytes(d))
                                  for p, d in nonzero.items()
                                  if p < STACK_PAGE)), brk, glob)
        trap_kind = self.trap[0] if self.trap else None
        return (self.status, self.exit_code, self.output, trap_kind,
                pages)


@dataclasses.dataclass
class Divergence:
    """One observed mismatch (cross-engine, invariant, or optimize)."""

    kind: str                       # "engine" | "invariant" | "optimize"
    engine: str
    timing: bool
    fields: List[str]
    detail: str = ""
    optimize: Optional[bool] = None

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def __str__(self):
        where = "%s/timing=%s" % (self.engine, self.timing)
        if self.optimize is not None:
            where += "/optimize=%s" % self.optimize
        return "[%s] %s: %s %s" % (self.kind, where,
                                   ",".join(self.fields) or "-",
                                   self.detail)


def run_once(program, config: MachineConfig) -> Outcome:
    """Execute one program under one configuration, trap-safely."""
    cpu = CPU(program, config)
    try:
        r = cpu.run()
    except Trap as exc:
        return Outcome(status="trap", output="".join(cpu.output),
                       icount=cpu.icount, pc=cpu.pc,
                       trap=(type(exc).__name__, str(exc), exc.pc))
    except InstructionLimitExceeded:
        return Outcome(status="limit", output="".join(cpu.output),
                       icount=cpu.icount, pc=cpu.pc)
    return Outcome(
        status="exit", output=r.output, icount=cpu.icount, pc=cpu.pc,
        exit_code=r.exit_code, uops=r.uops,
        stall_cycles=r.stall_cycles, cycles=r.cycles,
        setbound_uops=r.setbound_uops,
        hb=r.hb_stats.as_dict() if r.hb_stats else None,
        mem=r.mem_stats.as_dict() if r.mem_stats else None,
        image=(cpu.memory.nonzero_pages(), cpu.memory.brk,
               cpu.memory.globals_limit),
        engine_stats=r.engine_stats)


def check_invariants(engine: str, outcome: Outcome, timing: bool,
                     temporal: bool = False) -> List[Divergence]:
    """Frozen-schema and template-coverage checks for one run.

    ``temporal`` runs insert a per-access freed-word check that the
    fuse templates don't model, so their memory ops legitimately run
    as closures — the coverage invariant only applies without it.
    """
    out: List[Divergence] = []
    if outcome.status != "exit":
        return out
    try:
        validate_engine_stats(engine, outcome.engine_stats)
    except ValueError as exc:
        out.append(Divergence("invariant", engine, timing,
                              ["engine_stats"], str(exc)))
    stats = outcome.engine_stats
    if stats and not temporal:
        bad = FUSED_MEMORY_OPS & set(stats["closure_fallback_ops"])
        if bad:
            out.append(Divergence(
                "invariant", engine, timing,
                ["closure_fallback_ops"],
                "memory-path ops fell back to closures: %s"
                % sorted(bad)))
    return out


def diff_engines(program, config_kw: Optional[dict] = None,
                 timings: Tuple[bool, ...] = (False, True),
                 ) -> List[Divergence]:
    """All four engines × both memory models over one program.

    ``config_kw`` are :class:`MachineConfig` keywords shared by every
    run (mode, encoding, temporal, superblock knobs, ...); ``engine``
    and ``timing`` are supplied by the sweep itself.
    """
    config_kw = dict(config_kw or {})
    config_kw.pop("engine", None)
    config_kw.pop("timing", None)
    divergences: List[Divergence] = []
    for timing in timings:
        outcomes: Dict[str, Outcome] = {}
        for engine in ENGINES:
            config = MachineConfig(engine=engine, timing=timing,
                                   **config_kw)
            outcomes[engine] = run_once(program, config)
            divergences.extend(check_invariants(
                engine, outcomes[engine], timing,
                temporal=bool(config_kw.get("temporal"))))
        base = outcomes["legacy"]
        for engine in ENGINES[1:]:
            fields = base.diff_fields(outcomes[engine])
            if fields:
                divergences.append(Divergence(
                    "engine", engine, timing, fields,
                    "vs legacy: %s != %s"
                    % (_summ(outcomes[engine], fields),
                       _summ(base, fields))))
    return divergences


def _summ(outcome: Outcome, fields: List[str]) -> str:
    pairs = []
    for name in fields[:3]:
        idx = Outcome._FIELDS.index(name)
        value = outcome.key()[idx]
        text = repr(value)
        if len(text) > 48:
            text = text[:45] + "..."
        pairs.append("%s=%s" % (name, text))
    return "{%s}" % ", ".join(pairs)


def diff_minic(source: str,
               config_kw: Optional[dict] = None,
               timings: Tuple[bool, ...] = (False, True),
               ) -> List[Divergence]:
    """Optimize-off and optimize-on binaries, each four-way diffed,
    then compared against each other on the observable subset."""
    config_kw = dict(config_kw or {})
    probe = MachineConfig(engine="legacy", **config_kw)
    instrument = mode_for_config(probe)
    divergences: List[Divergence] = []
    observed = {}
    for optimize in (False, True):
        program = compile_program(source, mode=instrument,
                                  optimize=optimize)
        for d in diff_engines(program, config_kw, timings):
            d.optimize = optimize
            divergences.append(d)
        observed[optimize] = run_once(
            program, MachineConfig(engine="legacy", timing=False,
                                   **config_kw)).observable()
    if observed[False] != observed[True]:
        divergences.append(Divergence(
            "optimize", "legacy", False,
            ["observable"],
            "optimized %r != unoptimized %r"
            % (observed[True][:4], observed[False][:4])))
    return divergences


# --------------------------------------------------------------- fuzz_one

#: per-seed configuration draw: the generator's own rng picks one of
#: these, so coverage spreads across modes and encodings
_MODE_VARIANTS: Tuple[Tuple[Callable[..., MachineConfig], dict], ...]


def _variants():
    return (
        (MachineConfig.plain, {}),
        (MachineConfig.malloc_only, {}),
        (MachineConfig.hardbound, {"encoding": "uncompressed"}),
        (MachineConfig.hardbound, {"encoding": "extern4"}),
        (MachineConfig.hardbound, {"encoding": "intern4"}),
        (MachineConfig.hardbound, {"encoding": "intern11"}),
        (MachineConfig.hardbound, {"encoding": "intern11",
                                   "temporal": True}),
    )


def config_for_seed(seed: int, level: str) -> dict:
    """The :class:`MachineConfig` keywords one fuzz seed runs under.

    Deterministic in the seed (independent of ``REPRO_FUZZ_SEED``,
    which only overrides *program* generation).  A low superblock
    threshold makes even small generated programs form traces.
    """
    import random
    rng = random.Random(seed * 2654435761 % (1 << 32))
    factory, kw = _variants()[rng.randrange(len(_variants()))]
    config = factory(timing=False, **kw)
    out = {"mode": config.mode, "encoding": config.encoding,
           "temporal": config.temporal,
           "superblock_threshold": 4}
    if level == "minic" and config.mode.value == "malloc-only":
        # minic instrumentation has no malloc-only flavour worth
        # fuzzing separately; fold into the full-safety draw
        out["mode"] = MachineConfig.hardbound().mode
    return out


@dataclasses.dataclass
class FuzzResult:
    """One seed's verdict, JSONL-serializable for the CLI shards."""

    seed: int
    level: str                      # "isa" | "minic"
    status: str                     # dominant outcome status
    trap: Optional[str]             # trap type name, if any
    divergences: List[Divergence]
    program: str
    config: dict

    @property
    def ok(self) -> bool:
        return not self.divergences

    def as_dict(self) -> dict:
        return {
            "seed": self.seed, "level": self.level,
            "status": self.status, "trap": self.trap,
            "ok": self.ok,
            "divergences": [d.as_dict() for d in self.divergences],
            "config": {k: getattr(v, "value", v)
                       for k, v in self.config.items()},
        }


def fuzz_one(seed: int, level: str = "isa",
             timings: Tuple[bool, ...] = (False, True)) -> FuzzResult:
    """Generate the program for one seed and run the full oracle."""
    from repro.fuzz.isagen import generate_isa_program
    from repro.fuzz.minicgen import generate_minic_program

    config_kw = config_for_seed(seed, level)
    if level == "isa":
        text = generate_isa_program(seed)
        program = assemble(text)
        divergences = diff_engines(program, config_kw, timings)
        ref = run_once(program, MachineConfig(
            engine="legacy", timing=False, **config_kw))
    elif level == "minic":
        text = generate_minic_program(seed)
        divergences = diff_minic(text, config_kw, timings)
        probe = MachineConfig(engine="legacy", timing=False,
                              **config_kw)
        ref = run_once(compile_program(
            text, mode=mode_for_config(probe)), probe)
    else:
        raise ValueError("unknown fuzz level %r" % (level,))
    return FuzzResult(
        seed=seed, level=level, status=ref.status,
        trap=ref.trap[0] if ref.trap else None,
        divergences=divergences, program=text,
        config=config_kw)
