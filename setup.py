"""Shim for legacy ``setup.py`` invocations.

All metadata and the src-layout package discovery live in
``pyproject.toml``; this file only keeps ``python setup.py ...`` and
old pip versions working.
"""

from setuptools import setup

setup()
