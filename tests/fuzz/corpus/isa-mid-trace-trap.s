; mid-trace bounds trap: the store walks off the heap buffer after
; the loop has become a hot trace, so the trap must surface from
; generated trace code with identical (pc, icount) on every engine
main:
    mov r1, 64
    sbrk r1
    setbound r2, r1, 64
    mov r3, 0
L:
    store [r2 + r3], r3
    add r3, r3, 4
    jmp L
