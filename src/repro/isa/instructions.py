"""Decoded instruction representation.

Instructions are plain Python objects (``__slots__`` for speed) rather
than packed words: the simulator is Harvard-style, with the program
counter indexing a list of :class:`Instruction`.  Code addresses are
therefore instruction indices; the paper's rule that code pointers
carry ``{base=MAXINT; bound=MAXINT}`` metadata (Section 6.1) is what
lets programs store them in data memory safely.
"""

from __future__ import annotations

from repro.isa.opcodes import Op, reg_name


class Instruction:
    """One decoded instruction.

    Fields (unused ones are ``None``/defaults):

    ``op``
        The :class:`~repro.isa.opcodes.Op`.
    ``rd``
        Destination register index (source *value* register for STORE).
    ``rs``
        First source register / memory base register.
    ``rt``
        Second source register / memory index register.
    ``imm``
        Immediate operand (used when ``rt`` is ``None`` for ALU ops, as
        the size operand of ``setbound``, or the code of ``halt``).
    ``scale``
        Index scale for memory operands (1, 2, 4 or 8).
    ``disp``
        Displacement for memory operands.
    ``size``
        Access size in bytes for LOAD/STORE (1, 2 or 4).
    ``target``
        Branch/call destination as an instruction index (filled in by
        the assembler's link step).
    ``label``
        Original textual label of ``target``, kept for disassembly.
    """

    __slots__ = ("op", "rd", "rs", "rt", "imm", "scale", "disp",
                 "size", "target", "label")

    def __init__(self, op, rd=None, rs=None, rt=None, imm=None,
                 scale=1, disp=0, size=4, target=None, label=None):
        self.op = op
        self.rd = rd
        self.rs = rs
        self.rt = rt
        self.imm = imm
        self.scale = scale
        self.disp = disp
        self.size = size
        self.target = target
        self.label = label

    # -- convenience -----------------------------------------------------

    def is_memory(self) -> bool:
        """True for LOAD/STORE."""
        return self.op is Op.LOAD or self.op is Op.STORE

    def has_base_register(self) -> bool:
        """True when the memory operand uses a base register.

        Absolute-addressed accesses (``load rd, [0x1234]``) have no
        base register; they model a compiler-generated direct access to
        a statically-sized object and are exempt from the non-pointer
        check (the compiler proved them safe, Section 3.2).
        """
        return self.rs is not None

    def mem_operand_str(self) -> str:
        """Render the memory operand as ``[rs + rt*scale + disp]``."""
        parts = []
        if self.rs is not None:
            parts.append(reg_name(self.rs))
        if self.rt is not None:
            term = reg_name(self.rt)
            if self.scale != 1:
                term += "*%d" % self.scale
            parts.append(term)
        if self.disp or not parts:
            parts.append(str(self.disp))
        return "[" + " + ".join(parts) + "]"

    def __repr__(self):
        from repro.isa.disasm import disassemble
        return "<Instruction %s>" % disassemble(self)

    def __eq__(self, other):
        if not isinstance(other, Instruction):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f)
                   for f in self.__slots__ if f != "label")

    def __hash__(self):
        return hash((self.op, self.rd, self.rs, self.rt, self.imm,
                     self.scale, self.disp, self.size, self.target))
