"""Program object: labels, symbols, listings."""

from repro.isa import assemble
from repro.layout import GLOBAL_BASE

SOURCE = """
main:
    mov r1, =greeting
    call show
    halt 0
show:
    prints r1
    ret
    .data
greeting: .asciiz "hey"
counter:  .word 5
buf:      .space 32
"""


def test_labels_and_entry():
    prog = assemble(SOURCE)
    assert prog.entry == prog.labels["main"] == 0
    assert prog.labels["show"] == 3
    assert prog.label_at(3) == "show"
    assert prog.label_at(1) is None


def test_data_symbols():
    prog = assemble(SOURCE)
    assert prog.data_symbols["greeting"].offset == 0
    assert prog.data_symbols["greeting"].size == 4  # "hey\0"
    assert prog.data_symbols["counter"].offset == 4
    assert prog.data_symbols["buf"].size == 32
    assert prog.symbol_address("counter", GLOBAL_BASE) == \
        GLOBAL_BASE + 4


def test_data_image_contents():
    prog = assemble(SOURCE)
    assert prog.data_image[:4] == b"hey\0"
    assert prog.data_image[4:8] == (5).to_bytes(4, "little")
    assert len(prog.data_image) == 4 + 4 + 32


def test_listing_includes_labels_and_pcs():
    prog = assemble(SOURCE)
    listing = prog.listing()
    assert "main:" in listing and "show:" in listing
    assert "   0: mov r1," in listing
    assert "prints r1" in listing


def test_stats():
    prog = assemble(SOURCE)
    code_len, data_len = prog.stats()
    assert code_len == len(prog.instrs) == 5
    assert data_len == 40


def test_entry_defaults_to_zero_without_main():
    prog = assemble("start:\n  halt 0\n")
    assert prog.entry == 0
