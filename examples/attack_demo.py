#!/usr/bin/env python3
"""Why spatial safety matters: a data-corruption "attack" demo.

A classic privilege-escalation-by-overflow: a fixed-size username
buffer sits next to an ``is_admin`` flag.  Overlong input silently
flips the flag on an unprotected machine; HardBound stops the write
at the buffer's bound.  Also shows Section 6.1's pointer-forging
protection: an integer cast to a pointer cannot be dereferenced.

Run:  python examples/attack_demo.py
"""

from repro import BoundsError, MachineConfig, NonPointerError, \
    compile_and_run

LOGIN = """
struct session {
    char username[8];
    int is_admin;
};

int login(struct session *s, char *name) {
    s->is_admin = 0;
    strcpy(s->username, name);      // no length check: the bug
    return s->is_admin;
}

int main() {
    struct session *s = (struct session*)malloc(sizeof(struct session));
    int admin = login(s, "AAAAAAAA\\x01\\x00\\x00");
    if (admin) { puts("uid=0  PWNED"); }
    else { puts("uid=1000"); }
    return admin != 0;
}
"""

FORGED_POINTER = """
int secret = 42;
int main() {
    // an attacker computed &secret == this address out of band
    int *probe = (int*)65536;
    return *probe;                   // forged pointer dereference
}
"""


def main():
    print("overflow into an adjacent privilege flag")
    print("-" * 56)
    result = compile_and_run(LOGIN, MachineConfig.plain())
    print("plain core:     %s (exit=%d)"
          % (result.output.strip(), result.exit_code))
    try:
        compile_and_run(LOGIN, MachineConfig.hardbound())
    except BoundsError as err:
        print("HardBound:      trap in strcpy -> %s" % err)

    print()
    print("forged pointer (Section 6.1)")
    print("-" * 56)
    result = compile_and_run(FORGED_POINTER, MachineConfig.plain())
    print("plain core:     arbitrary read succeeded (exit=%d)"
          % result.exit_code)
    try:
        compile_and_run(FORGED_POINTER, MachineConfig.hardbound())
    except NonPointerError as err:
        print("HardBound:      %s" % err)
        print("(casting an int to int* yields a non-pointer: every")
        print(" dereference through it traps)")


if __name__ == "__main__":
    main()
