"""Sharded matrix harness: worker equivalence and on-disk caching."""

import pickle

from repro.harness.parallel import (
    ObjTableSummary,
    ResultCache,
    cell_descriptor,
    run_benchmark_matrix_parallel,
    run_cell,
    sweep_objtable_elision_parallel,
    sweep_tag_cache_parallel,
)
from repro.harness.runner import run_benchmark_matrix
from repro.obs.metrics import REGISTRY
from repro.harness.sweeps import (
    sweep_ccured_safe_fraction,
    sweep_objtable_elision,
)

WORKLOADS = ("treeadd", "power")
ENCODINGS = ("intern11",)
#: cells per workload: base + intern11 + ccured + objtable
CELLS = len(WORKLOADS) * 4


def assert_matrices_equal(parallel, serial):
    assert set(parallel) == set(serial)
    for name in serial:
        p, s = parallel[name], serial[name]
        assert p.base.cycles == s.base.cycles
        assert p.base.uops == s.base.uops
        for enc in ENCODINGS:
            assert p.encodings[enc].cycles == s.encodings[enc].cycles
            assert (p.encodings[enc].hb_stats.as_dict()
                    == s.encodings[enc].hb_stats.as_dict())
            assert abs(p.overhead(enc) - s.overhead(enc)) < 1e-12
        assert p.ccured.cycles == s.ccured.cycles
        assert p.objtable.extra_uops == s.objtable.extra_uops
        assert abs(p.ccured_runtime_overhead()
                   - s.ccured_runtime_overhead()) < 1e-12
        assert abs(p.objtable_runtime_overhead()
                   - s.objtable_runtime_overhead()) < 1e-12


class TestShardedMatrix:
    def test_matches_serial_and_warm_rerun_hits_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        before = REGISTRY.snapshot()
        parallel = run_benchmark_matrix_parallel(
            workloads=WORKLOADS, encodings=ENCODINGS, workers=2,
            cache=cache)
        assert cache.hits == 0
        assert cache.misses == CELLS
        assert cache.writes == CELLS
        assert cache.stats() == {"hits": 0, "misses": CELLS,
                                 "writes": CELLS, "corrupt": 0}
        # the sweep feeds the process-wide metrics registry
        delta = REGISTRY.diff(before)
        assert delta["harness.cache.misses"] == CELLS
        assert delta["harness.cache.writes"] == CELLS
        assert "harness.cache.hits" not in delta

        serial = run_benchmark_matrix(workloads=WORKLOADS,
                                      encodings=ENCODINGS)
        assert_matrices_equal(parallel, serial)

        # warm rerun: every cell served from disk, no worker touched
        warm_cache = ResultCache(str(tmp_path / "cache"))
        before = REGISTRY.snapshot()
        warm = run_benchmark_matrix_parallel(
            workloads=WORKLOADS, encodings=ENCODINGS, workers=2,
            cache=warm_cache)
        assert warm_cache.hits == CELLS
        assert warm_cache.misses == 0
        assert warm_cache.writes == 0
        assert REGISTRY.diff(before)["harness.cache.hits"] == CELLS
        assert_matrices_equal(warm, serial)

    def test_corrupt_entry_counted_deleted_and_rewritten(
            self, tmp_path):
        import os

        cache = ResultCache(str(tmp_path / "cache"))
        key = ResultCache.key_of({"cell": "poisoned"})
        cache.put(key, {"value": 42})
        with open(cache._file(key), "wb") as fh:
            fh.write(b"not a pickle")  # torn write at rest
        assert cache.get(key) is None
        # distinguished from a clean miss, and the poison is gone
        assert cache.stats() == {"hits": 0, "misses": 0,
                                 "writes": 1, "corrupt": 1}
        assert not os.path.exists(cache._file(key))
        # the caller's rerun rewrites and serves the entry again
        cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}
        assert cache.stats() == {"hits": 1, "misses": 0,
                                 "writes": 2, "corrupt": 1}

    def test_source_change_invalidates_cell_key(self):
        a = ResultCache.key_of(
            cell_descriptor("treeadd", "intern11", True, "decoded"))
        b = ResultCache.key_of(
            cell_descriptor("treeadd", "intern11", True, "legacy"))
        c = ResultCache.key_of(
            cell_descriptor("treeadd", "intern11", False, "decoded"))
        d = ResultCache.key_of(
            cell_descriptor("power", "intern11", True, "decoded"))
        assert len({a, b, c, d}) == 4

    def test_cell_results_are_picklable_snapshots(self):
        result = run_cell(("treeadd", "intern11", False, "decoded"))
        clone = pickle.loads(pickle.dumps(result))
        assert clone.cycles == result.cycles
        assert clone.hb_stats.as_dict() == result.hb_stats.as_dict()
        summary = run_cell(("treeadd", "objtable", False, "decoded"))
        assert isinstance(summary, ObjTableSummary)
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.extra_uops == summary.extra_uops

    def test_obs_env_var_streams_worker_events(self, tmp_path,
                                               monkeypatch):
        from repro.obs.events import read_events

        path = str(tmp_path / "sweep.jsonl")
        monkeypatch.setenv("REPRO_OBS", path)
        cache = ResultCache(str(tmp_path / "cache"))
        run_benchmark_matrix_parallel(workloads=("treeadd",),
                                      encodings=ENCODINGS, workers=2,
                                      cache=cache)
        events = list(read_events(path))
        starts = [e for e in events if e.get("ev") == "run_start"]
        # base + intern11 + ccured + objtable, one run each, all
        # appended atomically by the worker processes
        assert len(starts) == 4
        assert {e["manifest"]["label"] for e in starts} \
            == {"treeadd"}
        assert any(e.get("ev") == "run_end" for e in events)
        # the parent appends the sweep's cache traffic at the end
        summary = events[-1]
        assert summary["ev"] == "sweep_summary"
        assert summary["misses"] == 4
        assert summary["writes"] == 4

    def test_obs_knobs_never_reach_cache_keys(self):
        # turning tracing on must not cold-start the result cache
        descriptor = cell_descriptor("treeadd", "intern11", True,
                                     "superblocks")
        assert "obs" not in repr(descriptor)

    def test_cell_results_carry_their_manifest(self):
        result = run_cell(("treeadd", "intern11", False, "blocks"))
        manifest = pickle.loads(pickle.dumps(result)).manifest
        assert manifest["engine"] == "blocks"
        assert manifest["encoding"] == "intern11"
        assert manifest["timing"] is False
        summary = run_cell(("treeadd", "objtable", False, "decoded"))
        assert summary.manifest["mode"] == "full"
        assert pickle.loads(pickle.dumps(summary)).manifest \
            == summary.manifest


class TestShardedSweeps:
    def test_ccured_sweep_matches_serial(self):
        names = ["treeadd"]
        fractions = [0.5, 0.9]
        serial = sweep_ccured_safe_fraction(names, fractions)
        parallel = sweep_ccured_safe_fraction(names, fractions,
                                              workers=2)
        assert set(serial) == set(parallel)
        for fraction in serial:
            assert abs(serial[fraction] - parallel[fraction]) < 1e-12

    def test_objtable_sweep_matches_serial_and_caches(self, tmp_path):
        names = ["treeadd"]
        fractions = [0.0, 0.5]
        serial = sweep_objtable_elision(names, fractions)
        cache = ResultCache(str(tmp_path / "cache"))
        parallel = sweep_objtable_elision_parallel(
            names, fractions, workers=2, cache=cache)
        assert set(serial) == set(parallel)
        for fraction in serial:
            assert abs(serial[fraction] - parallel[fraction]) < 1e-12
        # one baseline cell + one cell per fraction
        assert cache.misses == 1 + len(fractions)

        warm_cache = ResultCache(str(tmp_path / "cache"))
        warm = sweep_objtable_elision_parallel(
            names, fractions, workers=2, cache=warm_cache)
        assert warm_cache.hits == 1 + len(fractions)
        assert warm_cache.misses == 0
        assert warm == parallel

    def test_objtable_sweep_workers_delegation(self):
        names = ["treeadd"]
        fractions = [0.5]
        serial = sweep_objtable_elision(names, fractions)
        delegated = sweep_objtable_elision(names, fractions, workers=2)
        assert abs(serial[0.5] - delegated[0.5]) < 1e-12

    def test_tag_cache_sweep_matches_direct_runs(self, tmp_path):
        from repro.caches.hierarchy import CacheParams
        from repro.harness.runner import run_workload
        from repro.machine.config import MachineConfig

        names = ["treeadd"]
        sizes = [512, 8192]
        cache = ResultCache(str(tmp_path / "cache"))
        sweep = sweep_tag_cache_parallel(names, sizes, workers=2,
                                         cache=cache)
        assert set(sweep) == {("treeadd", 512), ("treeadd", 8192)}
        for size in sizes:
            run = run_workload(
                "treeadd",
                MachineConfig.hardbound(encoding="extern4",
                                        retain_cpu=True),
                cache_params=CacheParams(tag_cache_size=size))
            cell = sweep[("treeadd", size)]
            assert cell["cycles"] == run.cycles
            assert abs(cell["tag_miss_rate"]
                       - run.cpu.memsys.tag_cache.miss_rate()) < 1e-12

        warm_cache = ResultCache(str(tmp_path / "cache"))
        warm = sweep_tag_cache_parallel(names, sizes, workers=2,
                                        cache=warm_cache)
        assert warm_cache.hits == len(sizes)
        assert warm == sweep
