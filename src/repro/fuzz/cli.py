"""``python -m repro.fuzz``: sharded differential fuzzing.

Seed-range partitioning over :func:`repro.harness.parallel.map_jobs`
worker processes: the seed space ``[start, start+seeds)`` splits into
one contiguous slice per worker (:func:`repro.fuzz.rng.shard_ranges`),
each shard runs its seeds through the full oracle and appends its
JSONL event stream — ``fuzz_run`` per program, ``fuzz_divergence``
per mismatch, one ``fuzz_summary`` per shard — to the shared ``--out``
file via the obs event log (single ``O_APPEND`` write per shard, so
shards never interleave mid-line).

Divergent programs are minimized in the parent (delta debugging, ISA
level) and written to ``--corpus-dir`` as ``.s``/``.c`` + JSON
sidecar pairs ready to be committed under ``tests/fuzz/corpus/``.

Exit status: 0 when every program agreed, 1 when any divergence was
found (the nightly CI job keys off this), 2 for usage errors.

Render a result stream with ``python -m repro.obs.report fuzz
results/fuzz.jsonl``.
"""

from __future__ import annotations

import argparse
import os
import time
from typing import List, Optional, Tuple

from repro.fuzz.minimize import (
    corpus_name,
    instruction_count,
    minimize_result,
    write_corpus_entry,
)
from repro.fuzz.oracle import fuzz_one
from repro.fuzz.rng import FUZZ_SEED_ENV, shard_ranges
from repro.harness.parallel import map_jobs
from repro.obs.events import EventLog

LEVELS = ("isa", "minic", "both")


def _levels(level: str) -> Tuple[str, ...]:
    return ("isa", "minic") if level == "both" else (level,)


def run_shard(job: Tuple) -> List[dict]:
    """Worker entry: one seed slice through the oracle.

    Returns one dict per seed (program text kept only for divergent
    seeds, so big sweeps pickle small); events go to ``out`` if set.
    """
    level, lo, hi, timings, out, deadline = job
    log = EventLog(out)
    results: List[dict] = []
    by_status: dict = {}
    traps: dict = {}
    divergences = 0
    for seed in range(lo, hi):
        if deadline is not None and time.time() > deadline:
            break
        result = fuzz_one(seed, level, timings=tuple(timings))
        record = result.as_dict()
        if result.ok:
            record.pop("divergences")
        else:
            record["program"] = result.program
            divergences += len(result.divergences)
            for d in result.divergences:
                log.emit("fuzz_divergence", seed=seed, level=level,
                         **d.as_dict())
        by_status[result.status] = by_status.get(result.status, 0) + 1
        if result.trap:
            traps[result.trap] = traps.get(result.trap, 0) + 1
        log.emit("fuzz_run", **{k: v for k, v in record.items()
                                if k != "program"})
        results.append(record)
    log.emit("fuzz_summary", level=level, shard=[lo, hi],
             programs=len(results), divergences=divergences,
             by_status=by_status, traps=traps)
    log.flush()
    return results


def run_fuzz(levels: Tuple[str, ...], seeds: int, start: int = 0,
             workers: int = 1, out: Optional[str] = None,
             timings: Tuple[bool, ...] = (False, True),
             max_seconds: Optional[float] = None,
             service=None) -> List[dict]:
    """Fuzz ``seeds`` seeds per level, sharded; returns all records.

    With ``service`` (a ``repro.service`` client), the shards run on
    the persistent warm-worker fleet instead of a fresh pool;
    ``workers`` still controls how many shards the seed space splits
    into.
    """
    deadline = (time.time() + max_seconds
                if max_seconds is not None else None)
    jobs = [(level, lo, hi, tuple(timings), out, deadline)
            for level in levels
            for lo, hi in shard_ranges(start, seeds, workers)]
    records: List[dict] = []
    for shard in map_jobs(run_shard, jobs, workers, service=service):
        records.extend(shard)
    return records


def _summarize(records: List[dict]) -> str:
    by_level: dict = {}
    by_status: dict = {}
    traps: dict = {}
    bad = [r for r in records if not r["ok"]]
    for r in records:
        by_level[r["level"]] = by_level.get(r["level"], 0) + 1
        by_status[r["status"]] = by_status.get(r["status"], 0) + 1
        if r["trap"]:
            traps[r["trap"]] = traps.get(r["trap"], 0) + 1
    lines = ["fuzz: %d programs (%s)"
             % (len(records),
                ", ".join("%s=%d" % kv
                          for kv in sorted(by_level.items()))),
             "  status: " + ", ".join(
                 "%s=%d" % kv for kv in sorted(by_status.items())),
             "  traps:  " + (", ".join(
                 "%s=%d" % kv for kv in sorted(traps.items()))
                 or "none")]
    if bad:
        lines.append("  DIVERGENT SEEDS: %s"
                     % ", ".join("%s:%d" % (r["level"], r["seed"])
                                 for r in bad))
        lines.append("  reproduce one with %s=<seed> (and the same "
                     "--level)" % FUZZ_SEED_ENV)
    else:
        lines.append("  divergences: none")
    return "\n".join(lines)


def _write_divergences(records: List[dict], corpus_dir: str,
                       minimize: bool) -> List[str]:
    written = []
    for record in records:
        if record["ok"]:
            continue
        program = record["program"]
        if minimize and record["level"] == "isa":
            class _R:  # minimal shim for minimize_result
                level = record["level"]
                seed = record["seed"]
                config = None
            _R.program = program
            from repro.fuzz.oracle import config_for_seed
            _R.config = config_for_seed(record["seed"],
                                        record["level"])
            try:
                program = minimize_result(_R)
            except ValueError:
                pass   # flaky divergence: keep the full program
        meta = {
            "level": record["level"], "seed": record["seed"],
            "config": record["config"],
            "divergences": record["divergences"],
            "instructions": instruction_count(program),
        }
        name = "%s-seed%d" % (record["level"], record["seed"])
        prog_path, _meta = write_corpus_entry(corpus_dir, name,
                                              program, meta)
        written.append(prog_path)
    return written


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing: random programs through "
                    "all four engines under both memory models")
    parser.add_argument("--level", choices=LEVELS, default="both",
                        help="generator level (default: both)")
    parser.add_argument("--seeds", type=int, default=100,
                        help="seeds per level (default 100)")
    parser.add_argument("--start", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="append JSONL fuzz events to PATH "
                             "(render with python -m repro.obs.report "
                             "fuzz PATH)")
    parser.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="write divergent programs (minimized) "
                             "to DIR")
    parser.add_argument("--functional-only", action="store_true",
                        help="skip the timed memory model (faster "
                             "smoke sweeps)")
    parser.add_argument("--no-minimize", action="store_true",
                        help="write divergent programs un-minimized")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="soft wall-clock budget: shards stop "
                             "starting new seeds past it")
    parser.add_argument("--service", default=None, metavar="STATE_DIR",
                        nargs="?", const=".repro-service",
                        help="run shards on the persistent service "
                             "daemon rendezvoused in STATE_DIR "
                             "(default .repro-service) instead of a "
                             "fresh pool")
    args = parser.parse_args(argv)
    if args.seeds < 0:
        parser.error("--seeds must be >= 0")

    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
    timings = (False,) if args.functional_only else (False, True)
    service = None
    if args.service is not None:
        from repro.service.client import connect
        service = connect(args.service)
    t0 = time.time()
    try:
        records = run_fuzz(_levels(args.level), args.seeds,
                           args.start, args.workers, args.out,
                           timings, args.max_seconds,
                           service=service)
    finally:
        if service is not None:
            service.close()
    print(_summarize(records))
    print("  wall: %.1fs%s" % (time.time() - t0,
                               ", events: %s" % args.out
                               if args.out else ""))
    bad = [r for r in records if not r["ok"]]
    if bad and args.corpus_dir:
        written = _write_divergences(records, args.corpus_dir,
                                     minimize=not args.no_minimize)
        print("  corpus: %d entr%s under %s"
              % (len(written), "y" if len(written) == 1 else "ies",
                 args.corpus_dir))
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
