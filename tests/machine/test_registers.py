"""Register file with base/bound sidecars."""

from repro.machine import RegisterFile


def test_set_get_triple():
    regs = RegisterFile()
    regs.set(3, 0x100, 0x100, 0x140)
    assert regs.get(3) == (0x100, 0x100, 0x140)
    assert regs.is_pointer(3)


def test_values_wrap_to_32_bits():
    regs = RegisterFile()
    regs.set(1, -1, 2**32 + 5, 2**33)
    assert regs.get(1) == (0xFFFFFFFF, 5, 0)


def test_nonpointer_definition():
    """base == bound == 0 is the (only) non-pointer encoding."""
    regs = RegisterFile()
    assert not regs.is_pointer(0)
    regs.set(0, 5, 0, 1)      # bound-only still counts as pointer
    assert regs.is_pointer(0)
    regs.set(0, 5, 1, 0)
    assert regs.is_pointer(0)


def test_copy_and_clear_meta():
    regs = RegisterFile()
    regs.set(1, 10, 100, 200)
    regs.set(2, 20)
    regs.copy_meta(2, 1)
    assert regs.get(2) == (20, 100, 200)
    regs.clear_meta(2)
    assert regs.get(2) == (20, 0, 0)


def test_dump_contains_all_registers():
    regs = RegisterFile()
    text = regs.dump()
    assert "sp" in text and "fp" in text and "ra" in text
    assert text.count("\n") == 15
