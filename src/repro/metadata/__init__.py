"""Pointer-metadata encodings (Sections 4.2 and 4.3)."""

from repro.metadata.encodings import (
    Encoding,
    UncompressedEncoding,
    External4Encoding,
    Internal4Encoding,
    Internal11Encoding,
    get_encoding,
    ENCODINGS,
)
from repro.metadata.store import MetadataStore

__all__ = [
    "Encoding",
    "UncompressedEncoding",
    "External4Encoding",
    "Internal4Encoding",
    "Internal11Encoding",
    "get_encoding",
    "ENCODINGS",
    "MetadataStore",
]
