"""Randomized violation corpus: attacks HardBound must trap.

Extends the 288-pair spatial corpus of
:mod:`repro.harness.violations` with the attack families it doesn't
cover:

``sub_object``
    Overflow out of a struct member into its *sibling field within
    the same allocation* — invisible to allocation-granularity
    checking, caught only because the member pointer's bounds were
    narrowed (the paper's Figure 1 motivating example).
``intra_alloc``
    Explicit ``__setbound`` narrowing of a slice of one heap block,
    then an access past the slice but still inside the block.
``uaf``
    Use-after-free: read or write a freed heap word under the
    temporal extension (Section 6.2) — must raise
    ``UseAfterFreeError``.  The probe index is always ≥ 1 because
    ``free`` keeps user word 0 live as its free-list link.
``double_free``
    Freeing the same pointer twice — must raise
    ``DoubleFreeError``.
``stale_realloc``
    The MTE tag-reuse shape ("ARM MTE Performance in Practice"):
    free, re-``malloc`` (the allocator recycles the chunk, whose
    ``__setbound`` re-arms the freed words), then access through the
    *stale* old pointer.  The word-granularity temporal tracker
    cannot distinguish the stale pointer from the fresh one, so this
    is a **known miss** (``must_trap=False``) — committed here to
    document the gap the planned MTE-style tag baseline closes.

Each family also generates a *benign twin* (same shape, in-bounds /
still-live accesses) that must run to completion — the
zero-false-positive half of the contract.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Tuple

from repro.fuzz.rng import fuzz_rng
from repro.harness.violations import _RUNTIME
from repro.machine.config import MachineConfig
from repro.machine.errors import (
    BoundsError,
    DoubleFreeError,
    MemoryFault,
    NonPointerError,
    Trap,
    UseAfterFreeError,
)
from repro.minic.driver import compile_and_run

FAMILIES = ("sub_object", "intra_alloc", "uaf", "double_free",
            "stale_realloc")

#: spatial + temporal exception classes that count as detection
SPATIAL_TRAPS = (BoundsError, NonPointerError, MemoryFault)
TEMPORAL_TRAPS = (UseAfterFreeError, DoubleFreeError)


@dataclasses.dataclass
class AttackCase:
    """One generated attack with its benign twin."""

    name: str
    family: str
    seed: int
    attack_source: str
    benign_source: str
    must_trap: bool            # False only for the documented miss
    temporal: bool             # needs the temporal tracker + stdlib
    expected: tuple            # acceptable trap classes for detection

    def config(self) -> MachineConfig:
        return MachineConfig.hardbound(timing=False,
                                       temporal=self.temporal)


def _sub_object(rng: random.Random, seed: int) -> AttackCase:
    pre = rng.choice((4, 8))
    buf_len = rng.choice((4, 6, 8))
    write = rng.random() < 0.5
    over = buf_len + rng.randrange(0, 3)   # into pre/post siblings
    tmpl = (_RUNTIME +
            "struct wrap { int pre[%d]; char buf[%d]; int post; };\n"
            "int main() {\n"
            "    struct wrap *w = (struct wrap*)"
            "vmalloc(sizeof(struct wrap));\n"
            "    char *p = w->buf;\n"
            "    int sink = 0;\n"
            "%s"
            "    return sink & 1;\n"
            "}\n")
    probe = ("    p[%d] = (char)7;\n" if write
             else "    sink += (int)p[%d];\n")
    return AttackCase(
        name="sub_object-%s-%d" % ("write" if write else "read", seed),
        family="sub_object", seed=seed,
        attack_source=tmpl % (pre // 4, buf_len, probe % over),
        benign_source=tmpl % (pre // 4, buf_len,
                              probe % (buf_len - 1)),
        must_trap=True, temporal=False, expected=SPATIAL_TRAPS)


def _intra_alloc(rng: random.Random, seed: int) -> AttackCase:
    total = rng.choice((32, 48, 64))
    lo = rng.randrange(0, (total - 16) // 4) * 4
    width = rng.choice((8, 12, 16))
    write = rng.random() < 0.5
    tmpl = (_RUNTIME +
            "int main() {\n"
            "    char *blk = (char*)vmalloc(%d);\n"
            "    char *slice = (char*)__setbound("
            "(void*)(blk + %d), %d);\n"
            "    int sink = 0;\n"
            "%s"
            "    return sink & 1;\n"
            "}\n")
    probe = ("    slice[%d] = (char)3;\n" if write
             else "    sink += (int)slice[%d];\n")
    over = width + rng.randrange(0, 4)     # past slice, inside block
    return AttackCase(
        name="intra_alloc-%s-%d" % ("write" if write else "read",
                                    seed),
        family="intra_alloc", seed=seed,
        attack_source=tmpl % (total, lo, width, probe % over),
        benign_source=tmpl % (total, lo, width, probe % (width - 1)),
        must_trap=True, temporal=False, expected=SPATIAL_TRAPS)


def _uaf(rng: random.Random, seed: int) -> AttackCase:
    words = rng.choice((4, 6, 8))
    # word 0 stays live as the allocator's free-list link; the
    # poisoned region starts at word 1
    idx = rng.randrange(1, words)
    write = rng.random() < 0.5
    tmpl = ("int main() {\n"
            "    int *p = (int*)malloc(%d * sizeof(int));\n"
            "    int sink = 0;\n"
            "    p[%d] = 41;\n"
            "    sink += p[%d];\n"
            "%s"
            "%s"
            "    return sink & 1;\n"
            "}\n")
    probe = ("    p[%d] = 9;\n" % idx if write
             else "    sink += p[%d];\n" % idx)
    return AttackCase(
        name="uaf-%s-%d" % ("write" if write else "read", seed),
        family="uaf", seed=seed,
        attack_source=tmpl % (words, idx, idx,
                              "    free((void*)p);\n", probe),
        benign_source=tmpl % (words, idx, idx, "", probe),
        must_trap=True, temporal=True, expected=(UseAfterFreeError,))


def _double_free(rng: random.Random, seed: int) -> AttackCase:
    words = rng.choice((3, 5, 8))
    tmpl = ("int main() {\n"
            "    int *p = (int*)malloc(%d * sizeof(int));\n"
            "    int *q = (int*)malloc(%d * sizeof(int));\n"
            "    p[1] = 1;\n"
            "    q[1] = 2;\n"
            "    free((void*)p);\n"
            "    free((void*)%s);\n"
            "    return 0;\n"
            "}\n")
    return AttackCase(
        name="double_free-%d" % seed,
        family="double_free", seed=seed,
        attack_source=tmpl % (words, words, "p"),
        benign_source=tmpl % (words, words, "q"),
        must_trap=True, temporal=True, expected=(DoubleFreeError,))


def _stale_realloc(rng: random.Random, seed: int) -> AttackCase:
    words = rng.choice((4, 8))
    idx = rng.randrange(1, words)
    tmpl = ("int main() {\n"
            "    int *p = (int*)malloc(%d * sizeof(int));\n"
            "    int *q;\n"
            "    int sink = 0;\n"
            "    p[%d] = 5;\n"
            "    free((void*)p);\n"
            "    q = (int*)malloc(%d * sizeof(int));\n"
            "    q[%d] = 6;\n"
            "    sink += %s[%d];\n"
            "    return sink & 1;\n"
            "}\n")
    return AttackCase(
        name="stale_realloc-%d" % seed,
        family="stale_realloc", seed=seed,
        # the stale pointer p aliases the recycled chunk: a true
        # temporal violation the word-granularity tracker misses
        attack_source=tmpl % (words, idx, words, idx, "p", idx),
        benign_source=tmpl % (words, idx, words, idx, "q", idx),
        must_trap=False, temporal=True, expected=TEMPORAL_TRAPS)


_BUILDERS = {
    "sub_object": _sub_object,
    "intra_alloc": _intra_alloc,
    "uaf": _uaf,
    "double_free": _double_free,
    "stale_realloc": _stale_realloc,
}


def generate_attack(seed: int,
                    family: Optional[str] = None) -> AttackCase:
    """One deterministic attack pair (family drawn from the seed)."""
    rng, seed = fuzz_rng(seed)
    if family is None:
        family = FAMILIES[rng.randrange(len(FAMILIES))]
    return _BUILDERS[family](rng, seed)


def generate_attacks(count: int, start_seed: int = 0,
                     family: Optional[str] = None) -> List[AttackCase]:
    return [generate_attack(start_seed + i, family)
            for i in range(count)]


def run_attack(case: AttackCase) -> Tuple[str, Optional[str], str]:
    """Run one pair; returns ``(verdict, trap_name, detail)``.

    Verdicts: ``detected`` (attack trapped with an expected class),
    ``missed`` (attack completed silently), ``wrong_trap``,
    ``false_positive`` (benign twin trapped) or ``benign_failed``.
    A ``must_trap=False`` case reports ``known_miss`` instead of
    ``missed``.
    """
    config = case.config()
    verdict, trap_name, detail = "missed", None, ""
    try:
        compile_and_run(case.attack_source, config,
                        include_stdlib=case.temporal)
        if not case.must_trap:
            verdict = "known_miss"
    except case.expected as exc:
        verdict, trap_name = "detected", type(exc).__name__
    except Trap as exc:
        verdict, trap_name = "wrong_trap", type(exc).__name__
        detail = str(exc)
    try:
        compile_and_run(case.benign_source, config,
                        include_stdlib=case.temporal)
    except Trap as exc:
        return ("false_positive", type(exc).__name__, str(exc))
    except Exception as exc:
        return ("benign_failed", None, str(exc))
    return verdict, trap_name, detail
