"""Opcode table and register naming."""

import pytest

from repro.isa import Op, REG_ALIASES, REG_NAMES
from repro.isa.opcodes import (
    MEMORY_OPS,
    PROPAGATING_OPS,
    reg_index,
    reg_name,
)
from repro.layout import (
    GLOBAL_BASE,
    MASK32,
    shadow_base_addr,
    shadow_bound_addr,
    SHADOW_SPACE_BASE,
    tag1_addr,
    TAG1_BASE,
    to_signed,
    to_unsigned,
)


def test_register_names_and_aliases():
    assert len(REG_NAMES) == 16
    assert REG_ALIASES == {"sp": 13, "fp": 14, "ra": 15}
    assert reg_index("r7") == 7
    assert reg_index("SP") == 13
    assert reg_name(13) == "sp"
    assert reg_name(7) == "r7"


def test_unknown_register_raises():
    for bad in ("r16", "x1", "r-1", "reg"):
        with pytest.raises(KeyError):
            reg_index(bad)


def test_propagating_set_matches_paper():
    """'add, sub, lea, mov, and xchg' propagate (Section 3.1);
    multiply/divide/shift/logical do not."""
    assert PROPAGATING_OPS == {Op.MOV, Op.LEA, Op.ADD, Op.SUB,
                               Op.XCHG}
    assert Op.MUL not in PROPAGATING_OPS
    assert Op.XOR not in PROPAGATING_OPS


def test_memory_ops():
    assert MEMORY_OPS == {Op.LOAD, Op.STORE}


def test_opcode_values_unique():
    values = [op.value for op in Op]
    assert len(values) == len(set(values))


class TestLayoutHelpers:
    def test_shadow_interleaving(self):
        """base(a) = S + 2a; bound(a) = base(a) + 4 (Section 4.1)."""
        addr = GLOBAL_BASE + 8
        assert shadow_base_addr(addr) == SHADOW_SPACE_BASE + addr * 2
        assert shadow_bound_addr(addr) == shadow_base_addr(addr) + 4
        # byte addresses within a word share the shadow slot
        assert shadow_base_addr(addr + 3) == shadow_base_addr(addr)

    def test_tag1_density(self):
        """One tag bit per word: one tag byte covers 32 data bytes."""
        assert tag1_addr(0) == TAG1_BASE
        assert tag1_addr(31) == TAG1_BASE
        assert tag1_addr(32) == TAG1_BASE + 1

    def test_signedness_helpers(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x7FFFFFFF) == 0x7FFFFFFF
        assert to_unsigned(-1) == MASK32
        assert to_unsigned(2**40 + 5) == 5
