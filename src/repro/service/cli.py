"""``python -m repro.service`` — manage the simulation daemon.

Commands::

    start   spawn a background daemon (or --foreground) and wait
            until it answers ping
    status  print fleet/queue/counter snapshot from the daemon
    stop    drain the fleet and shut the daemon down
    bench   submit the timed Olden sweep twice through the daemon
            and print the cold vs. warm seconds
    serve   run the accept loop in *this* process (what a
            background `start` execs; also useful under systemd)

State lives in ``--state-dir`` (default ``.repro-service/``):
socket, authkey, pidfile, and the background daemon's log.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

from repro.service.client import STATE_DIR, ServiceError, connect, \
    state_info
from repro.service.daemon import DaemonServer


def _wait_for_daemon(state_dir: str, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    last: Exception = ServiceError("daemon never came up")
    while time.monotonic() < deadline:
        try:
            with connect(state_dir) as client:
                if client.ping():
                    return
        except (ServiceError, OSError) as exc:
            last = exc
        time.sleep(0.1)
    raise SystemExit("service daemon did not come up: %s" % last)


def cmd_start(args) -> int:
    info = state_info(args.state_dir)
    if os.path.exists(os.path.join(args.state_dir, "socket")):
        try:
            with connect(args.state_dir) as client:
                if client.ping():
                    print("daemon already running (pid %s)"
                          % info.get("pid"))
                    return 0
        except (ServiceError, OSError):
            pass  # stale state dir; start() will reclaim it
    store = None if args.store == "none" else args.store
    if args.foreground:
        server = DaemonServer(args.state_dir, workers=args.workers,
                              store=store, obs=args.obs)
        print("serving on %s with %d worker(s)"
              % (server.sock_path, args.workers))
        server.serve_forever()
        return 0
    os.makedirs(args.state_dir, exist_ok=True)
    log_path = os.path.join(args.state_dir, "daemon.log")
    cmd = [sys.executable, "-m", "repro.service",
           "--state-dir", args.state_dir, "serve",
           "--workers", str(args.workers),
           "--store", args.store]
    if args.obs:
        cmd += ["--obs", args.obs]
    # the child must find `repro` the same way this process did,
    # even when it came from sys.path rather than an install
    import repro
    pkg_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = pkg_root + os.pathsep + \
        env.get("PYTHONPATH", "") if env.get("PYTHONPATH") \
        else pkg_root
    with open(log_path, "ab") as log:
        subprocess.Popen(cmd, stdout=log, stderr=log, env=env,
                         start_new_session=True)
    _wait_for_daemon(args.state_dir)
    print("daemon started: %d worker(s), store=%s, log=%s"
          % (args.workers, store or "disabled", log_path))
    return 0


def cmd_serve(args) -> int:
    store = None if args.store == "none" else args.store
    server = DaemonServer(args.state_dir, workers=args.workers,
                          store=store, obs=args.obs)
    server.serve_forever()
    return 0


def cmd_status(args) -> int:
    try:
        with connect(args.state_dir) as client:
            status = client.status()
    except (ServiceError, OSError) as exc:
        print("no daemon reachable in %r: %s" % (args.state_dir, exc))
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True,
                         default=str))
        return 0
    counters = status.get("counters", {})
    print("workers (%d):" % len(status.get("workers", ())))
    for worker in status.get("workers", ()):
        print("  w%-3s pid=%-8s %-5s jobs=%-5d warm=%-5d queued=%d"
              % (worker["wid"], worker["pid"],
                 "busy" if worker["busy"] else "idle",
                 worker["jobs_done"], worker["warm_jobs"],
                 worker["queued"]))
    print("queued=%d running=%d inflight_keys=%d"
          % (status.get("queued", 0), status.get("running", 0),
             status.get("inflight_keys", 0)))
    print("counters: " + "  ".join(
        "%s=%d" % (name, counters[name])
        for name in sorted(counters)))
    store = status.get("store")
    if store:
        print("store: %s entries=%s hits=%s misses=%s corrupt=%s"
              % (store.get("path"), store.get("entries"),
                 store.get("hits"), store.get("misses"),
                 store.get("corrupt")))
    return 0


def cmd_stop(args) -> int:
    try:
        with connect(args.state_dir) as client:
            client.stop()
    except (ServiceError, OSError) as exc:
        print("no daemon reachable in %r: %s" % (args.state_dir, exc))
        return 1
    # the pidfile is the last thing the daemon's cleanup removes,
    # so its disappearance means the whole rendezvous is gone
    deadline = time.monotonic() + 30.0
    pidfile = os.path.join(args.state_dir, "daemon.pid")
    while time.monotonic() < deadline and os.path.exists(pidfile):
        time.sleep(0.1)
    print("daemon stopped")
    return 0


def cmd_bench(args) -> int:
    from repro.harness.parallel import run_cell
    from repro.harness.runner import WORKLOADS

    # keyless submits bypass the store short-circuit, so the second
    # pass measures warm *workers*, not cache hits
    jobs = [(name, kind, True, args.engine)
            for name in sorted(WORKLOADS)
            for kind in ("base", "intern11")]
    try:
        with connect(args.state_dir) as client:
            t0 = time.perf_counter()
            client.map(run_cell, jobs)
            cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            client.map(run_cell, jobs)
            warm = time.perf_counter() - t0
    except (ServiceError, OSError) as exc:
        print("no daemon reachable in %r: %s" % (args.state_dir, exc))
        return 1
    ratio = cold / warm if warm > 0 else float("inf")
    print("first pass:  %.3fs  (%d cells)" % (cold, len(jobs)))
    print("second pass: %.3fs  (warm caches)" % warm)
    print("warm speedup: %.2fx" % ratio)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="manage the simulation service daemon")
    parser.add_argument("--state-dir", default=STATE_DIR,
                        help="rendezvous directory (default %s)"
                        % STATE_DIR)
    sub = parser.add_subparsers(dest="command", required=True)

    start = sub.add_parser("start", help="launch the daemon")
    serve = sub.add_parser("serve",
                           help="run the accept loop in this process")
    for sp in (start, serve):
        sp.add_argument("--workers", type=int, default=2)
        sp.add_argument("--store", default=".repro-cache",
                        help="result store dir, or 'none' to disable")
        sp.add_argument("--obs", default=None,
                        help="append service events to this JSONL")
    start.add_argument("--foreground", action="store_true",
                       help="serve in this process instead of forking")
    start.set_defaults(func=cmd_start)
    serve.set_defaults(func=cmd_serve)

    status = sub.add_parser("status", help="query the daemon")
    status.add_argument("--json", action="store_true")
    status.set_defaults(func=cmd_status)

    stop = sub.add_parser("stop", help="drain and stop the daemon")
    stop.set_defaults(func=cmd_stop)

    bench = sub.add_parser(
        "bench", help="time a cold-then-warm Olden sweep")
    bench.add_argument("--engine", default="superblocks")
    bench.set_defaults(func=cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
