"""Memory-system timing: L1D + tag cache + unified L2 + TLBs.

Parameters follow Section 5.1 exactly:

* 32KB 4-way set-associative L1 data cache, 12-cycle miss penalty;
* 4MB 4-way L2, 200-cycle miss penalty;
* 4-way 256-entry TLBs with 4KB pages, 12-cycle miss penalty;
* tag metadata cache: 2KB 4-way for 1-bit tag encodings, 8KB 4-way for
  the 4-bit external encoding, with its own TLB, missing into the L2;
* 32-byte blocks everywhere.

The model is a hit/miss predictor: each access returns the stall
cycles it contributes beyond the core's one-µop-per-cycle baseline.
Base/bound (shadow) metadata shares the L1 data cache and data TLB,
as in Section 4.4 ("the base/bound metadata and program data share
the primary data cache"); tag metadata has a dedicated cache and TLB
that are peers of the L1 (Figure 4).
"""

from __future__ import annotations

import dataclasses

from repro.caches.cache import Cache
from repro.caches.stats import AccessStats
from repro.layout import PAGE_SIZE


@dataclasses.dataclass
class CacheParams:
    """Sizing and latency knobs of the memory system."""

    l1_size: int = 32 * 1024
    l1_assoc: int = 4
    l2_size: int = 4 * 1024 * 1024
    l2_assoc: int = 4
    block: int = 32
    tag_cache_size: int = 2 * 1024       # 8KB for the extern4 encoding
    tag_cache_assoc: int = 4
    tlb_entries: int = 256
    tlb_assoc: int = 4
    l1_miss_penalty: int = 12
    l2_miss_penalty: int = 200
    tlb_miss_penalty: int = 12


class MemorySystem:
    """Charges stall cycles for each memory access by kind."""

    def __init__(self, params: CacheParams = None):
        self.params = params or CacheParams()
        p = self.params
        self.l1 = Cache("L1D", p.l1_size, p.l1_assoc, p.block)
        self.l2 = Cache("L2", p.l2_size, p.l2_assoc, p.block)
        self.tag_cache = Cache("TagCache", p.tag_cache_size,
                               p.tag_cache_assoc, p.block)
        self.dtlb = Cache("DTLB", p.tlb_entries * PAGE_SIZE,
                          p.tlb_assoc, PAGE_SIZE)
        self.tag_tlb = Cache("TagTLB", p.tlb_entries * PAGE_SIZE,
                             p.tlb_assoc, PAGE_SIZE)
        self.stats = AccessStats()

    def access(self, addr: int, size: int, write: bool, kind: str) -> int:
        """Charge one access of ``size`` bytes at ``addr``.

        Returns the stall cycles incurred and records them (and the
        page touched) under ``kind``.  An access that spans two blocks
        is charged as two block touches (rare: only misaligned data).
        """
        ks = self.stats.kinds[kind]
        ks.accesses += 1
        ks.touch_page(addr)
        stall = 0
        if kind == "tag":
            tlb, l1 = self.tag_tlb, self.tag_cache
        else:
            tlb, l1 = self.dtlb, self.l1
        if not tlb.access(addr):
            ks.tlb_misses += 1
            stall += self.params.tlb_miss_penalty
        last = addr + size - 1
        if last // self.params.block == addr // self.params.block:
            block_addrs = (addr,)
        else:
            block_addrs = (addr, last)
        for baddr in block_addrs:
            if not l1.access(baddr):
                ks.l1_misses += 1
                stall += self.params.l1_miss_penalty
                if not self.l2.access(baddr):
                    ks.l2_misses += 1
                    stall += self.params.l2_miss_penalty
        ks.stall_cycles += stall
        return stall

    def reset_stats(self) -> None:
        """Zero all counters (cache contents are kept warm)."""
        for cache in (self.l1, self.l2, self.tag_cache, self.dtlb,
                      self.tag_tlb):
            cache.reset_stats()
        self.stats = AccessStats()
