"""E3 — Figure 6: memory overhead in extra distinct pages.

Paper shape: the 4-bit external encoding touches the most extra
pages (avg ~55%), the 4-bit internal encoding reduces tag pages but
not base/bound pages, and the 11-bit internal encoding collapses the
base/bound overhead (avg ~10%); a few benchmarks exceed 100% under
the 4-bit encodings.
"""

from conftest import write_result

from repro.harness.figures import figure6_table, format_table
from repro.harness.runner import ENCODINGS


def _avg_total(matrix, enc):
    return sum(m.page_overhead(enc)["total"] for m in matrix.values()) \
        / len(matrix)


def test_figure6(matrix, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: figure6_table(matrix), rounds=1, iterations=1)
    table = format_table(headers, rows,
                         "Figure 6: extra distinct pages touched")
    print("\n" + table)
    write_result("figure6.txt", table)

    ext4 = _avg_total(matrix, "extern4")
    int4 = _avg_total(matrix, "intern4")
    int11 = _avg_total(matrix, "intern11")
    # paper shape: extern4 worst, intern11 dramatically better
    assert ext4 >= int4 - 1e-9
    assert int11 < ext4
    assert int11 < 0.6 * ext4 + 1e-9


def test_figure6_intern4_reduces_tag_pages(matrix):
    """The 1-bit tag space shrinks tag pages vs. the 4-bit space."""
    for name, bench in matrix.items():
        tag4 = bench.page_overhead("extern4")["tag"]
        tag1 = bench.page_overhead("intern4")["tag"]
        assert tag1 <= tag4 + 1e-9, name


def test_figure6_intern11_attacks_base_bound_pages(matrix):
    """intern-11 compresses larger objects: fewer shadow pages."""
    total4 = sum(m.page_overhead("intern4")["shadow"]
                 for m in matrix.values())
    total11 = sum(m.page_overhead("intern11")["shadow"]
                  for m in matrix.values())
    assert total11 < total4
