"""Cache, TLB and memory-system timing model (Section 5.1 parameters)."""

from repro.caches.cache import Cache
from repro.caches.stats import AccessStats, KindStats
from repro.caches.hierarchy import MemorySystem, CacheParams
from repro.caches.fast import FastMemorySystem

__all__ = ["Cache", "AccessStats", "KindStats", "MemorySystem",
           "CacheParams", "FastMemorySystem"]
